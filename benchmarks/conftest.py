"""Session-scoped fixtures caching the experiment sweeps (see _harness)."""

from __future__ import annotations

import pytest

import _harness


@pytest.fixture(scope="session")
def spec_results():
    return _harness.compute_spec_results()


@pytest.fixture(scope="session")
def pgbench_results():
    return _harness.compute_pgbench_results()


@pytest.fixture(scope="session")
def grpc_results():
    return _harness.compute_grpc_results()
