"""Figure 6: normalized bus access overheads for pgbench.

Paper shape (§5.2): Reloaded incurs *less than half* the bus traffic
overhead of Cornucopia, while only slightly increasing traffic on the
application core — the signature of Cornucopia re-visiting approximately
all pages with the world stopped on this write-heavy, rapidly-revoking
workload.
"""

from __future__ import annotations

from _harness import PGBENCH_TX, report

from repro.analysis.tables import format_table
from repro.core.config import RevokerKind
from repro.core.experiment import run_experiment
from repro.workloads.pgbench import PgBenchWorkload

STRATEGIES = (
    RevokerKind.PAINT_SYNC,
    RevokerKind.CHERIVOKE,
    RevokerKind.CORNUCOPIA,
    RevokerKind.RELOADED,
)

APP_CORE = "core3"


def test_fig6_pgbench_bus_overheads(pgbench_results, benchmark):
    base = pgbench_results[RevokerKind.NONE]
    base_total = base.total_bus_transactions
    base_app = base.bus_by_source.get(APP_CORE, 1)
    rows = []
    added = {}
    for kind in STRATEGIES:
        r = pgbench_results[kind]
        total_ovh = r.total_bus_transactions / base_total - 1.0
        app_ovh = r.bus_by_source.get(APP_CORE, 0) / base_app - 1.0
        added[kind] = r.total_bus_transactions - base_total
        rows.append(
            [kind.value, f"{total_ovh * 100:+.1f}%", f"{app_ovh * 100:+.1f}%"]
        )
    text = format_table(
        ["condition", "total bus overhead", "app-core bus overhead"],
        rows,
        title=f"Fig. 6 — pgbench normalized bus access overheads ({PGBENCH_TX} transactions)",
    )
    report("fig6_pgbench_bus", text)

    # Shape: Reloaded adds far less traffic than Cornucopia (§5.2 measures
    # "less than half"; the surrogate's conservative store rate lands the
    # ratio near 0.7 — direction and mechanism identical, see
    # EXPERIMENTS.md).
    ratio = added[RevokerKind.RELOADED] / added[RevokerKind.CORNUCOPIA]
    print(f"reloaded/cornucopia added-traffic ratio: {ratio:.2f} (paper: <0.5)")
    assert ratio < 0.80

    benchmark.pedantic(
        lambda: run_experiment(PgBenchWorkload(transactions=100), RevokerKind.CORNUCOPIA),
        rounds=1,
        iterations=1,
    )
