"""Figure 4: memory bus traffic overheads of Reloaded, Cornucopia, and
CHERIvoke on the SPEC benchmarks that engage revocation.

Paper shape (§5.1): Reloaded, by not having to re-scan pages, induces
less bus traffic than Cornucopia everywhere — 87% of Cornucopia's
overhead at the median, with the two worst cases showing ~11% reductions
(omnetpp 45% vs 50%, xalancbmk 60% vs 68%). Each benchmark's baseline
transaction volume is printed above the bars in the paper; we print it as
a column.
"""

from __future__ import annotations

from _harness import SPEC_SCALE, geomean_inputs, report

from repro.analysis.stats import median
from repro.analysis.tables import format_table
from repro.core.config import RevokerKind
from repro.core.experiment import run_experiment
from repro.workloads import spec

STRATEGIES = (RevokerKind.RELOADED, RevokerKind.CORNUCOPIA, RevokerKind.CHERIVOKE)


def test_fig4_spec_bus_overheads(spec_results, benchmark):
    rows = []
    rel_vs_cor: list[float] = []
    for bench in spec.REVOKING_BENCHMARKS:
        base = geomean_inputs(
            spec_results, bench, RevokerKind.NONE, lambda r: r.total_bus_transactions
        )
        overheads = {}
        row = [bench, f"{base / 1e6:.2f}M"]
        for kind in STRATEGIES:
            test = geomean_inputs(
                spec_results, bench, kind, lambda r: r.total_bus_transactions
            )
            overheads[kind] = test - base
            row.append(f"{(test / base - 1.0) * 100:+.0f}%")
        ratio = (
            overheads[RevokerKind.RELOADED] / overheads[RevokerKind.CORNUCOPIA]
            if overheads[RevokerKind.CORNUCOPIA] > 0
            else 1.0
        )
        rel_vs_cor.append(ratio)
        row.append(f"{ratio * 100:.0f}%")
        rows.append(row)
    med = median(rel_vs_cor)
    rows.append(["median", "", "", "", "", f"{med * 100:.0f}%"])
    text = format_table(
        ["benchmark", "baseline txns", "reloaded", "cornucopia", "cherivoke",
         "reloaded/cornucopia"],
        rows,
        title=(
            f"Fig. 4 — SPEC bus traffic overhead vs baseline (scale 1/{SPEC_SCALE}); "
            "paper: Reloaded median 87% of Cornucopia"
        ),
    )
    report("fig4_spec_bus", text)

    # Shape: Reloaded's added traffic is below Cornucopia's on (almost)
    # every revoking benchmark, with a median ratio in the paper's
    # ballpark (87%).
    assert sum(1 for r in rel_vs_cor if r <= 1.02) >= len(rel_vs_cor) - 1
    assert 0.6 <= med <= 1.0

    benchmark.pedantic(
        lambda: run_experiment(
            spec.workload("astar", "rivers", scale=max(SPEC_SCALE, 512)),
            RevokerKind.RELOADED,
        ),
        rounds=1,
        iterations=1,
    )
