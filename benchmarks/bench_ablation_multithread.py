"""Ablation (§7.1): multi-threaded background revocation.

The paper proposes splitting the single background sweep thread so
multiple cores accelerate revocation. This ablation runs Reloaded with a
striped background sweep and measures the concurrent-phase duration as a
function of worker count.
"""

from __future__ import annotations

from _harness import report

from repro.alloc.quarantine import QuarantinePolicy
from repro.analysis.stats import mean
from repro.analysis.tables import format_table
from repro.core.config import RevokerKind, SimulationConfig
from repro.core.experiment import run_experiment
from repro.extensions.multithread_revoker import MultithreadReloadedRevoker
from repro.machine.costs import cycles_to_micros
from repro.workloads.churn import ChurnProfile, ChurnWorkload, SizeMix

THREADS = (1, 2, 3)


def _workload() -> ChurnWorkload:
    profile = ChurnProfile(
        name="mt-ablation",
        heap_bytes=2 << 20,
        churn_bytes=12 << 20,
        size_mix=SizeMix((128, 1024, 4096), (0.5, 0.3, 0.2)),
        pointer_slots=2,
        compute_per_iter=12_000,
        seed=17,
    )
    return ChurnWorkload(profile, QuarantinePolicy(min_bytes=128 << 10))


def _run(threads: int):
    cfg = SimulationConfig(revoker=RevokerKind.RELOADED)
    if threads > 1:
        class _MT(MultithreadReloadedRevoker):
            def __init__(self, *a, **kw):
                super().__init__(*a, sweep_threads=threads, **kw)
                # Workers use the otherwise-idle low cores.
                self.worker_cores = [0, 1][: threads - 1]

        cfg.custom_revoker = _MT
    return run_experiment(_workload(), RevokerKind.RELOADED, cfg)


def test_ablation_multithreaded_sweep(benchmark):
    rows = []
    phase_means = {}
    for threads in THREADS:
        r = _run(threads)
        conc = [e.concurrent_cycles() for e in r.epoch_records]
        phase_means[threads] = mean(conc)
        rows.append(
            [threads, r.revocations,
             f"{cycles_to_micros(mean(conc)):.0f}us",
             f"{r.wall_seconds:.3f}s", r.caps_revoked]
        )
    text = format_table(
        ["sweep threads", "revocations", "mean concurrent phase", "wall", "caps revoked"],
        rows,
        title="Ablation §7.1 — background sweep duration vs worker threads (Reloaded)",
    )
    report("ablation_multithread", text)

    # More workers shorten the concurrent phase (epochs finish sooner).
    assert phase_means[2] < phase_means[1]
    assert phase_means[3] <= phase_means[2] * 1.1

    benchmark.pedantic(lambda: _run(2), rounds=1, iterations=1)
