"""Ablation (§3.1): iterating Cornucopia is a dead end.

Before designing Reloaded, the authors tried adding a *second* concurrent
pass to Cornucopia, re-sweeping pages re-dirtied during the first pass in
the hope of leaving less for the stop-the-world phase. It "showed very
little reduction in pause times [23, fig. 15] and, by definition, would
anyway increase total work and DRAM traffic" — the quantitative intuition
that justified building load barriers instead. This ablation reproduces
that motivation experiment: extra passes barely shrink the pause while
sweep volume (and bus traffic) grows, and Reloaded beats every variant.
"""

from __future__ import annotations

from _harness import report

from repro.analysis.stats import median
from repro.analysis.tables import format_table
from repro.core.config import RevokerKind, SimulationConfig
from repro.core.experiment import run_experiment
from repro.extensions.multipass import MultipassCornucopiaRevoker
from repro.machine.costs import cycles_to_micros
from repro.workloads.pgbench import PgBenchWorkload

PASSES = (1, 2, 3)
TX = 250


def _run(passes: int | None):
    """passes=None runs Reloaded; otherwise N-pass Cornucopia."""
    cfg = SimulationConfig(revoker=RevokerKind.RELOADED)
    if passes is not None:
        cfg.revoker = RevokerKind.CORNUCOPIA
        if passes > 1:
            class _MP(MultipassCornucopiaRevoker):
                def __init__(self, *a, **kw):
                    super().__init__(*a, passes=passes, **kw)

            cfg.custom_revoker = _MP
    return run_experiment(PgBenchWorkload(transactions=TX), cfg.revoker, cfg)


def test_ablation_multipass_cornucopia(benchmark):
    rows = []
    pauses = {}
    traffic = {}
    for passes in PASSES:
        r = _run(passes)
        label = f"cornucopia x{passes}"
        pauses[passes] = median(r.stw_pauses)
        traffic[passes] = r.total_bus_transactions
        rows.append([
            label,
            f"{cycles_to_micros(median(r.stw_pauses)):.0f}us",
            f"{cycles_to_micros(max(r.stw_pauses)):.0f}us",
            r.pages_swept,
            r.total_bus_transactions,
        ])
    reloaded = _run(None)
    rows.append([
        "reloaded",
        f"{cycles_to_micros(median(reloaded.stw_pauses)):.0f}us",
        f"{cycles_to_micros(max(reloaded.stw_pauses)):.0f}us",
        reloaded.pages_swept,
        reloaded.total_bus_transactions,
    ])
    text = format_table(
        ["strategy", "median pause", "max pause", "pages swept", "bus txns"],
        rows,
        title=f"Ablation §3.1 — multi-pass Cornucopia vs Reloaded (pgbench, {TX} tx)",
    )
    report("ablation_multipass", text)

    # The paper's conclusion, quantified:
    # 1. a second pass buys little pause reduction (well under 2x)...
    assert pauses[2] > 0.5 * pauses[1]
    # 2. ...while total work strictly grows...
    assert traffic[2] > traffic[1]
    assert traffic[3] >= traffic[2]
    # 3. ...and Reloaded's pause is an order of magnitude below ANY
    #    number of Cornucopia passes.
    assert median(reloaded.stw_pauses) * 10 < min(pauses.values())

    benchmark.pedantic(lambda: _run(2), rounds=1, iterations=1)
