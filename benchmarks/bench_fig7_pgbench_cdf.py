"""Figure 7: CDF of per-transaction execution time for pgbench.

Paper shape (§5.2): all revocation strategies share similar latencies up
to ~the 85th-90th percentile (only slightly above just-quarantining), then
differentiate starkly: the 99th-percentile-minus-median spread is widest
for CHERIvoke (~27 ms, comparable to its ~20 ms median world-stopped
time), middling for Cornucopia (<10 ms vs 6.2 ms STW), smallest for
Reloaded (~5.4 ms; its cumulative trap-handling time per epoch is under a
millisecond). The dashed/dotted annotations of the paper — median STW and
trap-time per strategy — are printed as companion rows.
"""

from __future__ import annotations

from _harness import PGBENCH_TX, report

from repro.analysis.stats import cdf, median, percentile
from repro.analysis.tables import format_table
from repro.core.config import RevokerKind
from repro.core.experiment import run_experiment
from repro.machine.costs import cycles_to_millis
from repro.workloads.pgbench import PgBenchWorkload

STRATEGIES = (
    RevokerKind.PAINT_SYNC,
    RevokerKind.CHERIVOKE,
    RevokerKind.CORNUCOPIA,
    RevokerKind.RELOADED,
)


def test_fig7_pgbench_latency_cdf(pgbench_results, benchmark):
    rows = []
    spreads = {}
    stw_medians = {}
    for kind in (RevokerKind.NONE,) + STRATEGIES:
        r = pgbench_results[kind]
        ms = [s.millis for s in r.latencies]
        p50, p85, p90, p99 = (percentile(ms, p) for p in (50, 85, 90, 99))
        spreads[kind] = p99 - p50
        stw = median([cycles_to_millis(p) for p in r.stw_pauses]) if r.stw_pauses else 0.0
        stw_medians[kind] = stw
        fault_ms = (
            median([cycles_to_millis(e.fault_cycles) for e in r.epoch_records])
            if kind is RevokerKind.RELOADED and r.epoch_records
            else 0.0
        )
        rows.append(
            [kind.value, f"{p50:.2f}", f"{p85:.2f}", f"{p90:.2f}", f"{p99:.2f}",
             f"{p99 - p50:.2f}", f"{stw:.3f}", f"{fault_ms:.3f}"]
        )
    text = format_table(
        ["condition", "p50 ms", "p85 ms", "p90 ms", "p99 ms",
         "p99-p50 ms", "median STW ms", "median trap-sum ms"],
        rows,
        title=f"Fig. 7 — pgbench per-transaction latency CDF percentiles ({PGBENCH_TX} tx)",
    )
    # Also emit the CDF curves themselves (the figure's series).
    curves = []
    for kind in (RevokerKind.NONE,) + STRATEGIES:
        ms = [s.millis for s in pgbench_results[kind].latencies]
        pts = cdf(ms, points=20)
        curves.append(
            f"{kind.value}: " + " ".join(f"({p.value:.2f}ms,{p.fraction:.2f})" for p in pts)
        )
    report("fig7_pgbench_cdf", text + "\n\nCDF series (ms, fraction):\n" + "\n".join(curves))

    # Shape assertions:
    # 1. strategies are close at the 85th percentile (within ~25% of the
    #    paint+sync condition);
    ps85 = percentile([s.millis for s in pgbench_results[RevokerKind.PAINT_SYNC].latencies], 85)
    for kind in STRATEGIES:
        p85 = percentile([s.millis for s in pgbench_results[kind].latencies], 85)
        assert p85 <= ps85 * 1.35
    # 2. tail spread ordering: CHERIvoke > Cornucopia > Reloaded.
    assert spreads[RevokerKind.CHERIVOKE] > spreads[RevokerKind.CORNUCOPIA]
    assert spreads[RevokerKind.CORNUCOPIA] > spreads[RevokerKind.RELOADED] * 0.99
    # 3. median STW ordering mirrors it, with Reloaded in the microseconds.
    assert stw_medians[RevokerKind.CHERIVOKE] > stw_medians[RevokerKind.CORNUCOPIA]
    assert stw_medians[RevokerKind.RELOADED] < 0.2  # ms

    benchmark.pedantic(
        lambda: run_experiment(PgBenchWorkload(transactions=100), RevokerKind.CHERIVOKE),
        rounds=1,
        iterations=1,
    )
