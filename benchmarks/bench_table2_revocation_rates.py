"""Table 2: revocation rate statistics for Reloaded across a
representative set of benchmarks.

Paper shape (§5.5): the RSS-heavy SPEC workloads cycle orders of
magnitude more address space through the allocator than they keep live
(xalancbmk F:A 110, omnetpp 207) yet revoke less than ~1.5 times per
second; pgbench cycles nearly as much address space as xalancbmk over a
heap ~4% the size — its freed:allocated ratio and its revocations per
freed megabyte are enormously higher than any SPEC workload's. (Absolute
revocations-per-wall-second are not comparable across our workload
families: the SPEC surrogates compress simulated time far more than
pgbench, whose latencies are kept in real milliseconds for figs. 5-7 —
see EXPERIMENTS.md.)
"""

from __future__ import annotations

from _harness import SPEC_SCALE, report

#: Table 2's cross-workload ratios (freed:allocated, revocations per
#: freed byte) only line up when every row runs at the same scale, so
#: this bench runs its own pgbench at SPEC_SCALE rather than reusing the
#: figs. 5-7 run (which keeps real-millisecond latencies at scale 2).
TABLE2_PGBENCH_TX = 400

from repro.analysis.tables import format_table
from repro.core.config import RevokerKind
from repro.core.experiment import run_experiment
from repro.workloads import spec
from repro.workloads.pgbench import PgBenchWorkload

ROWS = spec.TABLE2_ROWS


def test_table2_revocation_rate_statistics(spec_results, grpc_results, benchmark):
    rows = []
    stats = {}

    def add(label, r):
        mean_alloc_mib = r.mean_alloc_bytes / (1 << 20)
        freed_mib = r.sum_freed_bytes / (1 << 20)
        fa = r.freed_to_alloc_ratio
        revs = r.revocations
        rev_per_s = r.revocations_per_second
        rev_per_mib = revs / freed_mib if freed_mib else 0.0
        stats[label] = (mean_alloc_mib, freed_mib, fa, revs, rev_per_s, rev_per_mib)
        rows.append(
            [label, f"{mean_alloc_mib:.2f}", f"{freed_mib:.1f}", f"{fa:.1f}",
             revs, f"{rev_per_s:.2f}", f"{rev_per_mib:.2f}"]
        )

    for bench, inp in ROWS:
        add(f"{bench} {inp}", spec_results[(bench, inp, RevokerKind.RELOADED)])
    pg = run_experiment(
        PgBenchWorkload(transactions=TABLE2_PGBENCH_TX, scale=SPEC_SCALE),
        RevokerKind.RELOADED,
    )
    add("pgbench", pg)
    add("gRPC QPS", grpc_results[RevokerKind.RELOADED][1])

    text = format_table(
        ["benchmark", "mean alloc MiB", "sum freed MiB", "F:A",
         "revocations", "rev/sec", "rev/freed-MiB"],
        rows,
        title="Table 2 — Reloaded revocation rate statistics (scaled; see EXPERIMENTS.md)",
    )
    report("table2_revocation_rates", text)

    # Shape assertions:
    # 1. xalancbmk and omnetpp have very large F:A ratios; gobmk small.
    assert stats["xalancbmk ref"][2] > 20
    assert stats["omnetpp ref"][2] > 40
    assert stats["gobmk trevord"][2] < 10
    # 2. pgbench's F:A dwarfs every SPEC row's (paper: 2534 vs <=207).
    #    pgbench's F:A grows linearly with run length (constant freed
    #    bytes per transaction), so extrapolate to the paper's 170,000
    #    transactions before comparing.
    pg_fa_at_paper_length = stats["pgbench"][2] * (170_000 / TABLE2_PGBENCH_TX)
    print(f"pgbench F:A extrapolated to 170k transactions: {pg_fa_at_paper_length:.0f}")
    assert pg_fa_at_paper_length > 2 * max(stats[f"{b} {i}"][2] for b, i in ROWS)
    # 3. pgbench revokes far more per freed megabyte than the RSS-heavy
    #    SPEC rows (its quarantine limit is tiny next to theirs).
    assert stats["pgbench"][5] > 3 * stats["xalancbmk ref"][5]
    # 4. every revoking workload actually revoked.
    for label, s in stats.items():
        assert s[3] >= 1, f"{label} never revoked"

    benchmark.pedantic(
        lambda: run_experiment(PgBenchWorkload(transactions=60), RevokerKind.RELOADED),
        rounds=1,
        iterations=1,
    )
