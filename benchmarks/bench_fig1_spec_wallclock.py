"""Figure 1: SPEC CPU2006 wall-clock overheads of Reloaded, Cornucopia,
and CHERIvoke vs the spatially-safe baseline, contrasted with other
published UAF defenses.

Paper shape (§5.1): Reloaded performs very similarly to Cornucopia, with
modest gains on the worst cases (xalancbmk 29.4% vs 29.7%, omnetpp 23.1%
vs 24.8%); bzip2 and sjeng never engage revocation (≈0%); CHERIvoke-based
schemes are competitive with the published techniques shown for context.
"""

from __future__ import annotations

from _harness import SPEC_SCALE, geomean_inputs, report

from repro.analysis.stats import geomean_overhead
from repro.analysis.tables import format_table
from repro.core.config import RevokerKind
from repro.core.experiment import run_experiment
from repro.workloads import spec

#: Whole-suite overheads reported by the contrasted publications (fig. 1
#: plots them as horizontal context lines; values as reported in their
#: papers, BOGO with its spatial-safety cost factored out).
PUBLISHED_CONTEXT = {
    "Oscar [20]": 0.40,
    "pSweeper [34]": 0.17,
    "CRCount [48]": 0.22,
    "DangSan [50]": 0.41,
    "BOGO [60]": 0.60,
}

STRATEGIES = (RevokerKind.RELOADED, RevokerKind.CORNUCOPIA, RevokerKind.CHERIVOKE)


def test_fig1_spec_wallclock_overheads(spec_results, benchmark):
    rows = []
    per_strategy: dict[RevokerKind, list[float]] = {k: [] for k in STRATEGIES}
    for bench in spec.BENCHMARKS:
        row = [bench]
        for kind in STRATEGIES:
            base = geomean_inputs(
                spec_results, bench, RevokerKind.NONE, lambda r: r.wall_cycles
            )
            test = geomean_inputs(
                spec_results, bench, kind, lambda r: r.wall_cycles
            )
            ovh = test / base - 1.0
            per_strategy[kind].append(ovh)
            row.append(f"{ovh * 100:+.1f}%")
        rows.append(row)
    rows.append(
        ["geomean"]
        + [
            f"{geomean_overhead(per_strategy[kind]) * 100:+.1f}%"
            for kind in STRATEGIES
        ]
    )
    for name, value in PUBLISHED_CONTEXT.items():
        rows.append([name, f"{value * 100:+.1f}%", "(as published)", ""])

    text = format_table(
        ["benchmark", "reloaded", "cornucopia", "cherivoke"],
        rows,
        title=f"Fig. 1 — SPEC wall-clock overhead vs baseline (scale 1/{SPEC_SCALE})",
    )
    report("fig1_spec_wallclock", text)

    # Shape assertions (the paper's headline):
    heavy = [spec.BENCHMARKS.index(b) for b in ("omnetpp", "xalancbmk")]
    for i in heavy:
        rel = per_strategy[RevokerKind.RELOADED][i]
        cor = per_strategy[RevokerKind.CORNUCOPIA][i]
        assert rel <= cor * 1.10, "Reloaded should not exceed Cornucopia"
        assert rel > 0.02, "heavy benchmarks must show real overhead"
    for b in ("bzip2", "sjeng"):
        i = spec.BENCHMARKS.index(b)
        for kind in STRATEGIES:
            assert abs(per_strategy[kind][i]) < 0.05, f"{b} must not engage revocation"

    # Timed kernel: one small revoking SPEC run end to end.
    benchmark.pedantic(
        lambda: run_experiment(
            spec.workload("gobmk", "13x13", scale=max(SPEC_SCALE, 512)),
            RevokerKind.RELOADED,
        ),
        rounds=1,
        iterations=1,
    )
