"""Table 1: pgbench latency percentiles under fixed-rate schedules.

Paper shape (§5.2.1): running pgbench with an a-priori schedule
(--rate), under Reloaded, the long-tail 99.9th percentile *decreases*
with lower throughput (idle headroom absorbs revocation), while the
unscheduled run matches the fastest schedule's short-tail behaviour.
Latencies ignore schedule lag.
"""

from __future__ import annotations

from _harness import PGBENCH_TX, report

from repro.analysis.stats import percentile
from repro.analysis.tables import format_table
from repro.core.config import RevokerKind
from repro.core.experiment import run_experiment
from repro.workloads.pgbench import PgBenchWorkload

PERCENTILES = (50, 90, 95, 99, 99.9)
#: The paper's schedules, scaled to this harness's transaction budget:
#: the unscheduled run here completes ~150-190 tx/s, so the schedules
#: bracket it from below just as the paper's 100/150/250 bracketed its
#: ~280 tx/s server.
RATES = (60.0, 90.0, 140.0)


def test_table1_pgbench_rate_schedules(benchmark):
    tx = max(300, PGBENCH_TX // 3)
    rows = []
    tails = {}
    shorts = {}
    for rate in RATES + (None,):
        w = PgBenchWorkload(transactions=tx, rate_tps=rate)
        result = run_experiment(w, RevokerKind.RELOADED)
        ms = [s.millis for s in result.latencies]
        label = f"{rate:.0f} tx/s" if rate else "unscheduled"
        values = [percentile(ms, p) for p in PERCENTILES]
        tails[rate] = values[-1]
        shorts[rate] = values[1]
        rows.append([label] + [f"{v:.2f}" for v in values])
    text = format_table(
        ["schedule"] + [f"p{p} ms" for p in PERCENTILES],
        rows,
        title=f"Table 1 — pgbench latency percentiles under --rate schedules (Reloaded, {tx} tx)",
    )
    report("table1_pgbench_rates", text)

    # Shape: the slowest schedule's extreme tail is no worse than the
    # fastest schedule's (lower throughput gives revocation room to hide).
    assert tails[RATES[0]] <= tails[RATES[-1]] * 1.25
    # All medians stay in the same band (the schedule changes arrival
    # times, not per-transaction work).
    medians = [row[1] for row in rows]
    assert max(float(m) for m in medians) < 2.0 * min(float(m) for m in medians)

    benchmark.pedantic(
        lambda: run_experiment(
            PgBenchWorkload(transactions=60, rate_tps=100.0), RevokerKind.RELOADED
        ),
        rounds=1,
        iterations=1,
    )
