"""Ablation (§7.3): composing CHERI and memory coloring.

The paper predicts that giving allocations an integrity-protected color
and recoloring on free lets quarantine (and the pressure to revoke) grow
at a rate inversely proportional to the number of colors — "an order of
magnitude improvement to revocation overheads" for a 16-color MTE-style
tag space — while also closing the UAF/UAR gap. This ablation sweeps the
color count over a fixed churn trace and measures exactly that.
"""

from __future__ import annotations

import random

from _harness import report

from repro.analysis.tables import format_table
from repro.extensions.coloring import ColoredHeap
from repro.kernel.kernel import Kernel
from repro.machine.machine import Machine

COLOR_COUNTS = (2, 4, 16, 64)
CHURN_OPS = 4000


def _drive(heap: ColoredHeap, seed: int = 21) -> None:
    rng = random.Random(seed)
    live = []
    for _ in range(CHURN_OPS):
        if live and rng.random() < 0.5:
            victim = live.pop(rng.randrange(len(live)))
            heap.free(victim)
            if heap.quarantined and rng.random() < 0.2:
                heap.release_after_revocation()
        else:
            live.append(heap.malloc(rng.choice((64, 256, 1024))))


def test_ablation_coloring_revocation_pressure(benchmark):
    rows = []
    quarantined = {}
    for colors in COLOR_COUNTS:
        kernel = Kernel(Machine(memory_bytes=64 << 20))
        heap = ColoredHeap(kernel, num_colors=colors)
        _drive(heap)
        stats = heap.stats
        quarantined[colors] = stats.frees_quarantined
        rows.append(
            [colors, stats.frees_total, stats.frees_quarantined,
             f"{stats.quarantine_reduction * 100:.1f}%"]
        )
    text = format_table(
        ["colors", "frees", "frees needing revocation", "absorbed by recoloring"],
        rows,
        title="Ablation §7.3 — revocation pressure vs color count (same churn trace)",
    )
    report("ablation_coloring", text)

    # §7.3's claim: pressure inversely proportional to the color count —
    # 16 colors cut revocation-bound frees by roughly an order of
    # magnitude relative to 2 colors.
    assert quarantined[2] > 0
    assert quarantined[16] * 5 <= quarantined[2]
    assert quarantined[64] <= quarantined[16]

    def timed():
        kernel = Kernel(Machine(memory_bytes=64 << 20))
        _drive(ColoredHeap(kernel, num_colors=16))

    benchmark.pedantic(timed, rounds=1, iterations=1)
