"""Figure 9: distribution of revocation phase times across a
representative subset of benchmarks.

Paper shape (§5.4): per benchmark, the boxplots show (left to right)
CHERIvoke's single world-stopped phase; Cornucopia's concurrent and
world-stopped phases (STW roughly a tenth of its concurrent phase);
Reloaded's world-stopped (tens of microseconds for single-threaded
workloads — three or more orders below Cornucopia's on large-memory
workloads) and concurrent phases; and the cumulative per-epoch foreground
fault time on the application thread. The multi-threaded gRPC workload
pushes Reloaded's STW to a few hundred microseconds of inter-core
synchronization, still over an order below Cornucopia's.
"""

from __future__ import annotations

from _harness import report

from repro.analysis.stats import BoxStats, median
from repro.analysis.tables import format_table
from repro.core.config import RevokerKind
from repro.core.experiment import run_experiment
from repro.machine.costs import cycles_to_micros
from repro.workloads import spec

SPEC_SUBSET = (("astar", "lakes"), ("omnetpp", "ref"), ("xalancbmk", "ref"),
               ("gobmk", "trevord"), ("hmmer", "nph3"))
STRATEGIES = (RevokerKind.CHERIVOKE, RevokerKind.CORNUCOPIA, RevokerKind.RELOADED)


def _phase_us(result, kind_filter: str) -> list[float]:
    return [
        cycles_to_micros(p.duration)
        for e in result.epoch_records
        for p in e.phases
        if p.kind == kind_filter
    ]


def _fault_us(result) -> list[float]:
    return [cycles_to_micros(e.fault_cycles) for e in result.epoch_records]


def test_fig9_revocation_phase_times(spec_results, pgbench_results, grpc_results, benchmark):
    rows = []
    checks = {}

    def add_rows(label: str, by_kind):
        entry = {}
        for kind in STRATEGIES:
            result = by_kind(kind)
            if result is None:
                continue
            stw = _phase_us(result, "stw")
            conc = _phase_us(result, "concurrent")
            if stw:
                entry[(kind, "stw")] = median(stw)
                box = BoxStats.of(stw)
                rows.append(
                    [label, kind.value, "stw", f"{box.median:.1f}",
                     f"{box.q1:.1f}", f"{box.q3:.1f}", f"{box.maximum:.1f}"]
                )
            if conc:
                entry[(kind, "concurrent")] = median(conc)
                box = BoxStats.of(conc)
                rows.append(
                    [label, kind.value, "concurrent", f"{box.median:.1f}",
                     f"{box.q1:.1f}", f"{box.q3:.1f}", f"{box.maximum:.1f}"]
                )
            if kind is RevokerKind.RELOADED:
                faults = [f for f in _fault_us(result)]
                if faults:
                    box = BoxStats.of(faults)
                    rows.append(
                        [label, "reloaded", "fault-sum", f"{box.median:.1f}",
                         f"{box.q1:.1f}", f"{box.q3:.1f}", f"{box.maximum:.1f}"]
                    )
        checks[label] = entry

    for bench, inp in SPEC_SUBSET:
        add_rows(f"{bench}.{inp}", lambda k, b=bench, i=inp: spec_results[(b, i, k)])
    add_rows("pgbench", lambda k: pgbench_results[k])
    add_rows("grpc-qps", lambda k: grpc_results[k][1] if k in grpc_results else None)

    text = format_table(
        ["benchmark", "strategy", "phase", "median us", "q1 us", "q3 us", "max us"],
        rows,
        title="Fig. 9 — revocation phase time distributions (microseconds)",
    )
    report("fig9_phase_times", text)

    # Shape assertions on the big-memory workloads (pgbench carries the
    # strongest contrast — its resident set is the largest relative to
    # its scale; the SPEC surrogates are scaled harder, compressing the
    # absolute gaps while preserving the ordering):
    for label in ("xalancbmk.ref", "omnetpp.ref", "pgbench"):
        entry = checks[label]
        cv_stw = entry[(RevokerKind.CHERIVOKE, "stw")]
        co_stw = entry[(RevokerKind.CORNUCOPIA, "stw")]
        rl_stw = entry[(RevokerKind.RELOADED, "stw")]
        co_conc = entry[(RevokerKind.CORNUCOPIA, "concurrent")]
        # Cornucopia's pause is a fraction of its concurrent phase
        # (the paper validates "on the order of a tenth").
        assert co_stw < 0.8 * co_conc
        # Ordering: Reloaded's pause below Cornucopia's, far below
        # CHERIvoke's.
        assert rl_stw * 2 < co_stw
        assert rl_stw * 15 < cv_stw
        # Reloaded single-threaded STW is tens of microseconds.
        assert rl_stw < 200.0
    # pgbench, the least-scaled workload, shows the paper's
    # orders-of-magnitude separation directly.
    pg = checks["pgbench"]
    assert pg[(RevokerKind.RELOADED, "stw")] * 20 < pg[(RevokerKind.CORNUCOPIA, "stw")]
    assert pg[(RevokerKind.RELOADED, "stw")] * 100 < pg[(RevokerKind.CHERIVOKE, "stw")]
    # gRPC: multi-threaded quiescing inflates Reloaded's STW, but it
    # stays far below Cornucopia's.
    g = checks["grpc-qps"]
    assert g[(RevokerKind.RELOADED, "stw")] < g[(RevokerKind.CORNUCOPIA, "stw")]

    benchmark.pedantic(
        lambda: run_experiment(
            spec.workload("gobmk", "trevord", scale=512), RevokerKind.CORNUCOPIA
        ),
        rounds=1,
        iterations=1,
    )
