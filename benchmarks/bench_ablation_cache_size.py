"""Ablation (methodology): cache size vs measured bus-traffic overheads.

Figures 4 and 6 express revocation cost as *bus traffic relative to the
baseline*, which makes the measurement sensitive to how much of the
workload's working set the caches absorb: a bigger cache shrinks the
baseline (the denominator) while the sweep's streaming traffic barely
changes. The paper's Morello numbers embed its cache hierarchy; this
ablation sweeps the per-core cache size to show how the absolute overhead
percentage moves while the *Reloaded-vs-Cornucopia ratio* — the paper's
actual claim — stays put.
"""

from __future__ import annotations

from _harness import report

from repro.alloc.quarantine import QuarantinePolicy
from repro.analysis.tables import format_table
from repro.core.config import MachineConfig, RevokerKind, SimulationConfig
from repro.core.experiment import run_experiment
from repro.workloads.churn import ChurnProfile, ChurnWorkload, SizeMix

CACHE_SIZES = (1 << 18, 1 << 20, 1 << 22)  # 256 KiB, 1 MiB, 4 MiB


def _workload() -> ChurnWorkload:
    profile = ChurnProfile(
        name="cache-ablation",
        heap_bytes=2 << 20,
        churn_bytes=10 << 20,
        size_mix=SizeMix((128, 1024, 4096), (0.4, 0.4, 0.2)),
        pointer_slots=2,
        cap_loads_per_iter=3,
        compute_per_iter=10_000,
        seed=23,
    )
    return ChurnWorkload(profile, QuarantinePolicy(min_bytes=128 << 10))


def _run(kind: RevokerKind, cache_bytes: int):
    cfg = SimulationConfig(
        revoker=kind, machine=MachineConfig(cache_bytes=cache_bytes)
    )
    return run_experiment(_workload(), kind, cfg)


def test_ablation_cache_size(benchmark):
    rows = []
    ratios = {}
    baselines = {}
    for cache in CACHE_SIZES:
        base = _run(RevokerKind.NONE, cache)
        rel = _run(RevokerKind.RELOADED, cache)
        cor = _run(RevokerKind.CORNUCOPIA, cache)
        baselines[cache] = base.total_bus_transactions
        added_rel = rel.total_bus_transactions - base.total_bus_transactions
        added_cor = cor.total_bus_transactions - base.total_bus_transactions
        ratios[cache] = added_rel / added_cor if added_cor else 1.0
        rows.append([
            f"{cache >> 10}KiB",
            base.total_bus_transactions,
            f"{added_rel / base.total_bus_transactions * 100:+.0f}%",
            f"{added_cor / base.total_bus_transactions * 100:+.0f}%",
            f"{ratios[cache] * 100:.0f}%",
        ])
    text = format_table(
        ["cache/core", "baseline txns", "reloaded ovh", "cornucopia ovh",
         "reloaded/cornucopia"],
        rows,
        title="Ablation (methodology) — bus-overhead sensitivity to cache size",
    )
    report("ablation_cache_size", text)

    # Bigger caches shrink the baseline (denominator)...
    assert baselines[CACHE_SIZES[-1]] < baselines[CACHE_SIZES[0]]
    # ...while the strategy ratio stays in a narrow band.
    values = list(ratios.values())
    assert max(values) - min(values) < 0.25
    assert all(v <= 1.05 for v in values)

    benchmark.pedantic(lambda: _run(RevokerKind.RELOADED, 1 << 20), rounds=1, iterations=1)
