"""Ablation (§7.6): the always-trap PTE disposition for clean pages.

Stock Reloaded must keep even capability-clean pages' generation bits up
to date — a PTE write per clean page per epoch (the awkwardness §7.6
describes, and the reason our fig. 2 shows Reloaded a hair above
Cornucopia on low-churn benchmarks). The proposed fix: a PTE disposition
in which capability loads always trap, letting the revoker skip such
pages entirely; a trap is healed by installing a current-generation PTE.

This ablation runs a workload with a large capability-clean tail (big
objects whose bodies never hold pointers) under stock Reloaded and the
§7.6 variant and counts the eliminated visits.
"""

from __future__ import annotations

from _harness import report

from repro.alloc.quarantine import QuarantinePolicy
from repro.analysis.tables import format_table
from repro.core.config import RevokerKind, SimulationConfig
from repro.core.experiment import run_experiment
from repro.extensions.always_trap import AlwaysTrapReloadedRevoker
from repro.workloads.churn import ChurnProfile, ChurnWorkload, SizeMix


def _workload() -> ChurnWorkload:
    profile = ChurnProfile(
        name="at76",
        heap_bytes=2 << 20,
        churn_bytes=8 << 20,
        # Mostly-large objects: few pointer-bearing pages, many clean ones.
        size_mix=SizeMix((256, 16384), (0.3, 0.7)),
        pointer_slots=2,
        compute_per_iter=12_000,
        seed=29,
    )
    return ChurnWorkload(profile, QuarantinePolicy(min_bytes=256 << 10))


def _run(revoker_cls):
    cfg = SimulationConfig(revoker=RevokerKind.RELOADED, custom_revoker=revoker_cls)
    return run_experiment(_workload(), RevokerKind.RELOADED, cfg)


def test_ablation_always_trap_disposition(benchmark):
    stock = _run(None)
    variant = _run(AlwaysTrapReloadedRevoker)

    gen_stock = sum(e.pages_gen_only for e in stock.epoch_records)
    gen_variant = sum(e.pages_gen_only for e in variant.epoch_records)
    rows = [
        ["reloaded (stock)", stock.revocations, gen_stock,
         stock.pages_swept, stock.total_cpu_cycles],
        ["reloaded-7.6", variant.revocations, gen_variant,
         variant.pages_swept, variant.total_cpu_cycles],
    ]
    text = format_table(
        ["design", "revocations", "gen-only PTE visits", "content sweeps",
         "total CPU cycles"],
        rows,
        title="Ablation §7.6 — always-trap disposition removes clean-page "
        "generation maintenance",
    )
    report("ablation_always_trap", text)

    # The §7.6 variant eliminates (nearly all) generation-only visits...
    assert gen_stock > 0
    assert gen_variant < gen_stock * 0.2
    # ...without extra content sweeps per epoch, and never costing more CPU.
    assert variant.pages_swept / max(1, variant.revocations) <= (
        stock.pages_swept / max(1, stock.revocations)
    ) * 1.1
    assert variant.total_cpu_cycles <= stock.total_cpu_cycles * 1.02

    benchmark.pedantic(lambda: _run(AlwaysTrapReloadedRevoker), rounds=1, iterations=1)
