"""Figure 5: normalized time overheads for pgbench.

Paper shape (§5.2): Reloaded offers lower wall-clock and *total* CPU time
overheads than Cornucopia, while the overheads imposed on the server
thread itself are nearly identical; the workload is not CPU bound, so CPU
overheads can exceed elapsed-time overheads (the server expands into its
idle time).
"""

from __future__ import annotations

from _harness import PGBENCH_TX, report

from repro.analysis.tables import format_table
from repro.core.config import RevokerKind
from repro.core.experiment import run_experiment
from repro.workloads.pgbench import PgBenchWorkload

STRATEGIES = (
    RevokerKind.PAINT_SYNC,
    RevokerKind.CHERIVOKE,
    RevokerKind.CORNUCOPIA,
    RevokerKind.RELOADED,
)


def test_fig5_pgbench_time_overheads(pgbench_results, benchmark):
    base = pgbench_results[RevokerKind.NONE]
    rows = []
    measured = {}
    for kind in STRATEGIES:
        r = pgbench_results[kind]
        wall = r.wall_cycles / base.wall_cycles - 1.0
        server_cpu = r.app_cpu_cycles / base.app_cpu_cycles - 1.0
        total_cpu = r.total_cpu_cycles / base.total_cpu_cycles - 1.0
        measured[kind] = (wall, server_cpu, total_cpu)
        rows.append(
            [kind.value, f"{wall * 100:+.1f}%", f"{server_cpu * 100:+.1f}%",
             f"{total_cpu * 100:+.1f}%"]
        )
    text = format_table(
        ["condition", "wall clock", "server-thread CPU", "total CPU"],
        rows,
        title=f"Fig. 5 — pgbench normalized time overheads ({PGBENCH_TX} transactions)",
    )
    report("fig5_pgbench_time", text)

    # Shape: Reloaded <= Cornucopia on wall and total CPU; server-thread
    # CPU nearly identical between the two.
    rel, cor = measured[RevokerKind.RELOADED], measured[RevokerKind.CORNUCOPIA]
    assert rel[0] <= cor[0] + 0.02
    assert rel[2] <= cor[2] + 0.02
    assert abs(rel[1] - cor[1]) < 0.10

    benchmark.pedantic(
        lambda: run_experiment(PgBenchWorkload(transactions=100), RevokerKind.RELOADED),
        rounds=1,
        iterations=1,
    )
