"""Shared experiment sweeps and reporting for the benchmark harness.

(Imported as ``_harness`` by the bench modules; the pytest fixtures that
cache these sweeps per session live in conftest.py.)

Every figure and table of the paper's evaluation (§5) has one module in
this directory that regenerates it as text. Experiment sweeps are
expensive, so they run once per pytest session in the fixtures below and
are shared by every figure that reads them (figs. 1-4 all consume the
same SPEC sweep, exactly as in the paper).

The sweeps submit their (workload x revoker) matrices through
``repro.runner`` — the parallel campaign engine with content-addressed
result caching — instead of looping in-process. A second benchmark
session with unchanged knobs and simulator code is all cache hits; with
``REPRO_JOBS=1`` (the default) and a cold cache, execution order and
results are identical to running each experiment serially by hand.

Scaling knobs (environment variables):

- ``REPRO_SPEC_SCALE``   — divisor for SPEC byte quantities (default 256;
  the paper-shape calibration was done at 128-256; use 512+ for quick
  smoke runs);
- ``REPRO_PGBENCH_TX``   — pgbench transactions per run (default 1500);
- ``REPRO_GRPC_SECONDS`` — gRPC QPS measurement duration (default 1.5).

Campaign-runner knobs (see docs/RUNNER.md):

- ``REPRO_JOBS``         — parallel worker processes for the sweeps
  (default 1 = in-process; 0 = one per CPU);
- ``REPRO_CACHE_DIR``    — result cache location (default
  ``~/.cache/repro/results``);
- ``REPRO_CACHE``        — set to 0 to disable result caching;
- ``REPRO_JOB_TIMEOUT``  — per-experiment timeout in seconds (pool mode);
- ``REPRO_PROGRESS``     — set to 1 to stream per-job progress lines.

Each run's regenerated rows/series are printed (run with ``-s`` to see
them inline) and written to ``benchmarks/results/<name>.txt``.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path

from repro import settings
from repro.core.config import RevokerKind
from repro.core.metrics import RunResult
from repro.perf.report import check_overwrite, git_sha
from repro.runner import Job, ResultCache, WorkloadSpec, run_jobs
from repro.workloads import spec
from repro.workloads.grpc_qps import GrpcQpsWorkload
from repro.workloads.pgbench import PgBenchWorkload

SPEC_SCALE = int(os.environ.get("REPRO_SPEC_SCALE", "256"))
PGBENCH_TX = int(os.environ.get("REPRO_PGBENCH_TX", "1500"))
GRPC_SECONDS = float(os.environ.get("REPRO_GRPC_SECONDS", "1.5"))

#: Conditions in the paper's order (fig. 2 includes Paint+sync).
CONDITIONS = (
    RevokerKind.NONE,
    RevokerKind.PAINT_SYNC,
    RevokerKind.CHERIVOKE,
    RevokerKind.CORNUCOPIA,
    RevokerKind.RELOADED,
)

#: Every (benchmark, input) pair for fig. 1.
SPEC_PAIRS = tuple(
    (bench, inp) for bench in spec.BENCHMARKS for inp in spec.inputs_of(bench)
)

RESULTS_DIR = Path(__file__).parent / "results"

#: Sidecar recording which commit each results/ artifact was regenerated
#: at (name -> sha). ``report()`` consults it so a stale working tree
#: cannot silently clobber figures produced at another commit; set
#: ``REPRO_BENCH_FORCE=1`` to re-record anyway.
MANIFEST = RESULTS_DIR / "MANIFEST.json"


def _read_manifest() -> dict[str, str | None]:
    try:
        data = json.loads(MANIFEST.read_text())
    except (OSError, json.JSONDecodeError):
        return {}
    return data if isinstance(data, dict) else {}


def _atomic_write(path: Path, text: str) -> None:
    fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=path.name, suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(text)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def report(name: str, text: str) -> None:
    """Print a regenerated table/series and persist it.

    Refuses to overwrite an artifact the manifest says was recorded at a
    different commit (``REPRO_BENCH_FORCE=1`` overrides). Safe under
    concurrent writers (parallel campaign jobs may report
    simultaneously): the directory create is idempotent and files land
    via a same-directory temp file + atomic ``os.replace``.
    """
    banner = f"\n===== {name} =====\n"
    print(banner + text + "\n")
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    sha = git_sha()
    manifest = _read_manifest()
    if (RESULTS_DIR / f"{name}.txt").exists():
        check_overwrite(
            manifest.get(name),
            sha,
            f"benchmarks/results/{name}.txt",
            force=settings.bench_force(),
        )
    _atomic_write(RESULTS_DIR / f"{name}.txt", text + "\n")
    manifest[name] = sha
    _atomic_write(MANIFEST, json.dumps(manifest, indent=2, sort_keys=True) + "\n")


def _cache() -> ResultCache | None:
    if os.environ.get("REPRO_CACHE", "1") == "0":
        return None
    return ResultCache()


def _sweep(jobs: list[Job]) -> list[RunResult]:
    """Run one figure sweep through the campaign engine."""
    return run_jobs(jobs, cache=_cache())


SpecResults = dict[tuple[str, str, RevokerKind], RunResult]


def compute_spec_results() -> SpecResults:
    """The SPEC CPU2006 sweep: every benchmark input under every
    condition, identical traces per condition (same seed)."""
    jobs = [
        Job(
            workload=WorkloadSpec(
                "spec", {"benchmark": bench, "input": inp, "scale": SPEC_SCALE}
            ),
            revoker=kind,
            key=(bench, inp, kind),
        )
        for bench, inp in SPEC_PAIRS
        for kind in CONDITIONS
    ]
    results = _sweep(jobs)
    return {job.key: result for job, result in zip(jobs, results)}


def compute_pgbench_results() -> dict[RevokerKind, RunResult]:
    """pgbench under every condition (fig. 5-7's runs)."""
    jobs = [
        Job(
            workload=WorkloadSpec("pgbench", {"transactions": PGBENCH_TX}),
            revoker=kind,
            key=kind,
        )
        for kind in CONDITIONS
    ]
    results = _sweep(jobs)
    return {job.key: result for job, result in zip(jobs, results)}


def compute_grpc_results() -> dict[RevokerKind, tuple[GrpcQpsWorkload, RunResult]]:
    """gRPC QPS under baseline/Cornucopia/Reloaded (§5.3 cannot run
    CHERIvoke either — the paper hit a bug; we follow its selection)."""
    jobs = [
        Job(
            workload=WorkloadSpec("grpc", {"duration_seconds": GRPC_SECONDS}),
            revoker=kind,
            config={"revoker_core": 2},
            key=kind,
        )
        for kind in (
            RevokerKind.NONE,
            RevokerKind.PAINT_SYNC,
            RevokerKind.CORNUCOPIA,
            RevokerKind.RELOADED,
        )
    ]
    results = _sweep(jobs)
    out: dict[RevokerKind, tuple[GrpcQpsWorkload, RunResult]] = {}
    for job, result in zip(jobs, results):
        # The figures read throughput off the workload object; rebuild it
        # and restore the completion counters from the run's latency
        # samples (one sample is recorded per completed request), since
        # cached/pooled runs executed in another process or session.
        w = GrpcQpsWorkload(duration_seconds=GRPC_SECONDS)
        w.completed = len(result.latencies)
        w.latencies_cycles = result.latency_cycles()
        out[job.key] = (w, result)
    return out


def geomean_inputs(
    results: SpecResults, bench: str, kind: RevokerKind, metric
) -> float:
    """Geomean of a per-run metric across a benchmark's inputs (the paper
    geomeans astar/bzip2/gobmk/hmmer input pairs in fig. 1)."""
    from repro.analysis.stats import geomean

    values = [
        metric(results[(bench, inp, kind)]) for inp in spec.inputs_of(bench)
    ]
    return geomean(values)
