"""Shared experiment sweeps and reporting for the benchmark harness.

(Imported as ``_harness`` by the bench modules; the pytest fixtures that
cache these sweeps per session live in conftest.py.)

Every figure and table of the paper's evaluation (§5) has one module in
this directory that regenerates it as text. Experiment sweeps are
expensive, so they run once per pytest session in the fixtures below and
are shared by every figure that reads them (figs. 1-4 all consume the
same SPEC sweep, exactly as in the paper).

Scaling knobs (environment variables):

- ``REPRO_SPEC_SCALE``   — divisor for SPEC byte quantities (default 256;
  the paper-shape calibration was done at 128-256; use 512+ for quick
  smoke runs);
- ``REPRO_PGBENCH_TX``   — pgbench transactions per run (default 1500);
- ``REPRO_GRPC_SECONDS`` — gRPC QPS measurement duration (default 1.5).

Each run's regenerated rows/series are printed (run with ``-s`` to see
them inline) and written to ``benchmarks/results/<name>.txt``.
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.core.config import RevokerKind, SimulationConfig
from repro.core.experiment import run_experiment
from repro.core.metrics import RunResult
from repro.workloads import spec
from repro.workloads.grpc_qps import GrpcQpsWorkload
from repro.workloads.pgbench import PgBenchWorkload

SPEC_SCALE = int(os.environ.get("REPRO_SPEC_SCALE", "256"))
PGBENCH_TX = int(os.environ.get("REPRO_PGBENCH_TX", "1500"))
GRPC_SECONDS = float(os.environ.get("REPRO_GRPC_SECONDS", "1.5"))

#: Conditions in the paper's order (fig. 2 includes Paint+sync).
CONDITIONS = (
    RevokerKind.NONE,
    RevokerKind.PAINT_SYNC,
    RevokerKind.CHERIVOKE,
    RevokerKind.CORNUCOPIA,
    RevokerKind.RELOADED,
)

#: Every (benchmark, input) pair for fig. 1.
SPEC_PAIRS = tuple(
    (bench, inp) for bench in spec.BENCHMARKS for inp in spec.inputs_of(bench)
)

RESULTS_DIR = Path(__file__).parent / "results"


def report(name: str, text: str) -> None:
    """Print a regenerated table/series and persist it."""
    banner = f"\n===== {name} =====\n"
    print(banner + text + "\n")
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


SpecResults = dict[tuple[str, str, RevokerKind], RunResult]


def compute_spec_results() -> SpecResults:
    """The SPEC CPU2006 sweep: every benchmark input under every
    condition, identical traces per condition (same seed)."""
    results: SpecResults = {}
    for bench, inp in SPEC_PAIRS:
        for kind in CONDITIONS:
            w = spec.workload(bench, inp, scale=SPEC_SCALE)
            results[(bench, inp, kind)] = run_experiment(w, kind)
    return results


def compute_pgbench_results() -> dict[RevokerKind, RunResult]:
    """pgbench under every condition (fig. 5-7's runs)."""
    results = {}
    for kind in CONDITIONS:
        w = PgBenchWorkload(transactions=PGBENCH_TX)
        results[kind] = run_experiment(w, kind)
    return results


def compute_grpc_results() -> dict[RevokerKind, tuple[GrpcQpsWorkload, RunResult]]:
    """gRPC QPS under baseline/Cornucopia/Reloaded (§5.3 cannot run
    CHERIvoke either — the paper hit a bug; we follow its selection)."""
    results = {}
    for kind in (
        RevokerKind.NONE,
        RevokerKind.PAINT_SYNC,
        RevokerKind.CORNUCOPIA,
        RevokerKind.RELOADED,
    ):
        w = GrpcQpsWorkload(duration_seconds=GRPC_SECONDS)
        cfg = SimulationConfig(revoker=kind, revoker_core=2)
        results[kind] = (w, run_experiment(w, kind, cfg))
    return results


def geomean_inputs(
    results: SpecResults, bench: str, kind: RevokerKind, metric
) -> float:
    """Geomean of a per-run metric across a benchmark's inputs (the paper
    geomeans astar/bzip2/gobmk/hmmer input pairs in fig. 1)."""
    from repro.analysis.stats import geomean

    values = [
        metric(results[(bench, inp, kind)]) for inp in spec.inputs_of(bench)
    ]
    return geomean(values)
