"""Figure 2: total CPU-time overheads (both cores) of Reloaded,
Cornucopia, CHERIvoke, and asynchronous quarantine management
(Paint+sync) on SPEC CPU2006.

Paper shape (§5.1): Reloaded does not consume more CPU time than
Cornucopia, and is in some cases modestly cheaper; Paint+sync isolates
the shim's own cost, far below any sweeping strategy on the revoking
benchmarks.
"""

from __future__ import annotations

from _harness import SPEC_SCALE, geomean_inputs, report

from repro.analysis.stats import geomean_overhead
from repro.analysis.tables import format_table
from repro.core.config import RevokerKind
from repro.core.experiment import run_experiment
from repro.workloads import spec

STRATEGIES = (
    RevokerKind.RELOADED,
    RevokerKind.CORNUCOPIA,
    RevokerKind.CHERIVOKE,
    RevokerKind.PAINT_SYNC,
)


def test_fig2_spec_cpu_time_overheads(spec_results, benchmark):
    rows = []
    per_strategy: dict[RevokerKind, list[float]] = {k: [] for k in STRATEGIES}
    for bench in spec.BENCHMARKS:
        base = geomean_inputs(
            spec_results, bench, RevokerKind.NONE, lambda r: r.total_cpu_cycles
        )
        row = [bench]
        for kind in STRATEGIES:
            test = geomean_inputs(
                spec_results, bench, kind, lambda r: r.total_cpu_cycles
            )
            ovh = test / base - 1.0
            per_strategy[kind].append(ovh)
            row.append(f"{ovh * 100:+.1f}%")
        rows.append(row)
    rows.append(
        ["geomean"]
        + [f"{geomean_overhead(per_strategy[k]) * 100:+.1f}%" for k in STRATEGIES]
    )
    text = format_table(
        ["benchmark", "reloaded", "cornucopia", "cherivoke", "paint+sync"],
        rows,
        title=f"Fig. 2 — SPEC total CPU-time overhead (both cores) (scale 1/{SPEC_SCALE})",
    )
    report("fig2_spec_cputime", text)

    # Shape: Reloaded's CPU time is at or below Cornucopia's on the
    # pointer-chase-heavy benchmarks and suite-wide (the paper's claim).
    # On low-churn benchmarks Reloaded can run *slightly* above: its
    # background pass must update the generation of every mapped page,
    # including capability-clean ones — the §7.6 awkwardness the paper
    # itself calls out — while Cornucopia walks only dirty pages.
    for bench in ("omnetpp", "xalancbmk"):
        i = spec.BENCHMARKS.index(bench)
        rel = per_strategy[RevokerKind.RELOADED][i]
        cor = per_strategy[RevokerKind.CORNUCOPIA][i]
        assert rel <= cor + 0.03, f"{bench}: Reloaded CPU must not exceed Cornucopia"
    rel_geo = geomean_overhead(per_strategy[RevokerKind.RELOADED])
    cor_geo = geomean_overhead(per_strategy[RevokerKind.CORNUCOPIA])
    assert rel_geo <= cor_geo + 0.05
    for i, bench in enumerate(spec.BENCHMARKS):
        ps = per_strategy[RevokerKind.PAINT_SYNC][i]
        assert ps <= per_strategy[RevokerKind.RELOADED][i] + 0.02

    benchmark.pedantic(
        lambda: run_experiment(
            spec.workload("hmmer", "retro", scale=max(SPEC_SCALE, 512)),
            RevokerKind.CORNUCOPIA,
        ),
        rounds=1,
        iterations=1,
    )
