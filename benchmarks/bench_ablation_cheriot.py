"""Ablation (§6.3): CHERIoT-style load *filter* vs Reloaded's load
*barrier*.

CHERIoT probes the revocation bitmap on every tagged capability load and
clears condemned tags on the way into the register file — no traps, no
stop-the-world, no UAF window, at the price of a per-load probe and a
non-self-healing memory image. This ablation contrasts the two designs on
the same machine: pause behaviour, fault counts, and the filter's
immediacy.
"""

from __future__ import annotations

from _harness import report

from repro.analysis.tables import format_table
from repro.extensions.cheriot import CheriotRevoker, LoadFilter
from repro.kernel.kernel import Kernel
from repro.kernel.revoker import ReloadedRevoker
from repro.machine.costs import PAGE_BYTES
from repro.machine.machine import Machine
from repro.machine.trap import LoadGenerationFault


def _populate(kernel: Kernel, pages: int = 256):
    heap, _ = kernel.address_space.mmap(pages * PAGE_BYTES)
    core = kernel.machine.cores[0]
    for off in range(0, pages * PAGE_BYTES, 512):
        # Targets spread across the whole heap so painting a quarter of
        # it condemns (roughly) a quarter of the stored capabilities.
        core.store_cap(
            heap.with_address(heap.base + off),
            heap.derive(heap.base + (off & ~(PAGE_BYTES - 1)), 64),
        )
    return heap, core


def _run_epoch(kernel, revoker, core):
    sched = kernel.machine.scheduler
    t = sched.spawn("rev", revoker.revoke(core, sched.cores[0]), 0, stops_for_stw=False)
    sched.run(until=[t])


def test_ablation_cheriot_vs_reloaded(benchmark):
    rows = []
    outcomes = {}
    for name, revoker_cls in (("reloaded", ReloadedRevoker), ("cheriot", CheriotRevoker)):
        kernel = Kernel(Machine(memory_bytes=32 << 20))
        revoker = kernel.install_revoker(revoker_cls)
        heap, core = _populate(kernel)
        # Condemn a quarter of the heap.
        kernel.shadow.paint(heap.base, heap.length // 4)
        filt = LoadFilter(core, kernel.shadow)
        _run_epoch(kernel, revoker, core)

        # After the epoch, load through each model's front end.
        faults = 0
        cleared = 0
        for off in range(0, heap.length, 512):
            src = heap.with_address(heap.base + off)
            if name == "cheriot":
                value = filt.load_cap(src).value
                if value is not None and not value.tag:
                    cleared += 1
            else:
                while True:
                    try:
                        core.load_cap(src)
                        break
                    except LoadGenerationFault as fault:
                        faults += kernel.handle_lg_fault(core, fault) and 1
        stw = sum(r.duration for r in kernel.machine.scheduler.stw_records)
        outcomes[name] = {
            "stw": stw,
            "faults": faults,
            "filter_probes": filt.loads_filtered if name == "cheriot" else 0,
        }
        rows.append(
            [name, stw, faults,
             filt.loads_filtered if name == "cheriot" else "-",
             cleared if name == "cheriot" else "-"]
        )
    text = format_table(
        ["design", "total STW cycles", "load faults", "filter probes", "filter-cleared"],
        rows,
        title="Ablation §6.3 — load barrier (trap + heal) vs load filter (probe, no trap)",
    )
    report("ablation_cheriot", text)

    # CHERIoT never stops the world and never traps; Reloaded pays a
    # (tiny) STW and heals via faults.
    assert outcomes["cheriot"]["stw"] == 0
    assert outcomes["cheriot"]["faults"] == 0
    assert outcomes["cheriot"]["filter_probes"] > 0
    assert outcomes["reloaded"]["stw"] > 0

    def timed():
        kernel = Kernel(Machine(memory_bytes=32 << 20))
        revoker = kernel.install_revoker(CheriotRevoker)
        heap, core = _populate(kernel, pages=64)
        _run_epoch(kernel, revoker, core)

    benchmark.pedantic(timed, rounds=1, iterations=1)
