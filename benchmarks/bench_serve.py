#!/usr/bin/env python
"""Serving-layer benchmark: warm daemon vs process-per-request.

A thin entry point over :mod:`repro.serve.bench` with the acceptance
demo's defaults baked in: fork a daemon (2 warm workers, queue bound
16), push 60 mixed requests through it closed-loop, fire a 32-request
burst of unique jobs past the admission bound (which must produce
structured ``overloaded`` rejections, not hangs), and time 5 of the same
requests the old way — one ``python -m repro run`` subprocess each.

Writes ``BENCH_serve.json`` (a schema-v1 perf report; raw phase
sections under ``detail.raw``) in the repo root and exits non-zero if
any request fails, the burst is not rejected, or the service beats the
spawn baseline by less than 5x. Re-recording over a report from a
different commit requires ``--force`` (passed through, like every other
flag, to ``repro serve-bench``). The committed baseline was produced
by::

    PYTHONPATH=src python benchmarks/bench_serve.py --force
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.serve.bench import main  # noqa: E402

DEFAULTS = [
    "--autostart",
    "--workers", "2",
    "--queue", "16",
    "--requests", "60",
    "--concurrency", "4",
    "--burst", "32",
    "--spawn-baseline", "5",
    "--min-speedup", "5.0",
    "--out", str(REPO_ROOT / "BENCH_serve.json"),
]

if __name__ == "__main__":
    # Caller flags append after the defaults, so they win on conflict.
    raise SystemExit(main(DEFAULTS + sys.argv[1:]))
