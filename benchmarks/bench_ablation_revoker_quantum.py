"""Ablation (§7.7): the background revoker's scheduling quantum.

In the gRPC configuration the revocation thread is unpinned and competes
with the server threads for CPU; the paper observes that the revoker
"will, when revocation is active, use their entire preemptive quantum"
and suggests that shrinking its quantum (or priority) would improve tail
latencies. This ablation sweeps the preemption quantum of the core the
revoker shares with a server thread and measures the request-latency
tail.
"""

from __future__ import annotations

from _harness import report

from repro.analysis.stats import percentile
from repro.analysis.tables import format_table
from repro.core.config import MachineConfig, RevokerKind, SimulationConfig
from repro.core.experiment import run_experiment
from repro.machine.costs import cycles_to_micros
from repro.workloads.grpc_qps import GrpcQpsWorkload

#: Quanta to sweep, cycles (2 ms down to 50 us at 2.5 GHz).
QUANTA = (5_000_000, 1_000_000, 125_000)


def _run(quantum: int):
    cfg = SimulationConfig(
        revoker=RevokerKind.RELOADED,
        machine=MachineConfig(quantum=quantum),
        revoker_core=2,
    )
    w = GrpcQpsWorkload(duration_seconds=0.6)
    return w, run_experiment(w, RevokerKind.RELOADED, cfg)


def test_ablation_revoker_quantum(benchmark):
    rows = []
    p999 = {}
    for quantum in QUANTA:
        w, r = _run(quantum)
        lat = [s.cycles for s in r.latencies]
        p999[quantum] = percentile(lat, 99.9)
        rows.append([
            f"{cycles_to_micros(quantum):.0f}us",
            f"{cycles_to_micros(percentile(lat, 50)):.0f}",
            f"{cycles_to_micros(percentile(lat, 99)):.0f}",
            f"{cycles_to_micros(percentile(lat, 99.9)):.0f}",
            w.completed,
        ])
    text = format_table(
        ["quantum", "p50 us", "p99 us", "p99.9 us", "requests"],
        rows,
        title="Ablation §7.7 — gRPC tail latency vs preemption quantum "
        "(Reloaded, revoker contending on a server core)",
    )
    report("ablation_revoker_quantum", text)

    # A smaller quantum lets the server preempt the revoker sooner: the
    # extreme tail should not get worse, and typically improves.
    assert p999[QUANTA[-1]] <= p999[QUANTA[0]] * 1.10

    benchmark.pedantic(lambda: _run(1_000_000), rounds=1, iterations=1)
