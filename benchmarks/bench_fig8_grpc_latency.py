"""Figure 8: gRPC QPS latency percentiles, normalized to the
no-revocation baseline.

Paper shape (§5.3): Reloaded and Cornucopia are nearly identical through
p95 (the cost there is quarantining, not revocation); at p99 Reloaded
roughly doubles latency while Cornucopia more than triples it; at p99.9
both impose ~10x tails (revoker CPU contention — the revocation thread is
unpinned and competes with the two server threads — plus mrs
back-pressure stalling allocations across epochs). Throughput losses are
statistically indistinguishable between the two (~13%).
"""

from __future__ import annotations

from _harness import GRPC_SECONDS, report

from repro.analysis.stats import percentile
from repro.analysis.tables import format_table
from repro.core.config import RevokerKind, SimulationConfig
from repro.core.experiment import run_experiment
from repro.machine.costs import cycles_to_millis
from repro.workloads.grpc_qps import GrpcQpsWorkload

PERCENTILES = (50, 90, 95, 99, 99.9)
STRATEGIES = (RevokerKind.PAINT_SYNC, RevokerKind.CORNUCOPIA, RevokerKind.RELOADED)


def test_fig8_grpc_latency_percentiles(grpc_results, benchmark):
    base_w, base_r = grpc_results[RevokerKind.NONE]
    base_lat = [s.cycles for s in base_r.latencies]
    base_ms = {p: cycles_to_millis(percentile(base_lat, p)) for p in PERCENTILES}

    rows = [
        ["baseline ms"] + [f"{base_ms[p]:.2f}" for p in PERCENTILES] + ["1.00"]
    ]
    normalized: dict[RevokerKind, dict[float, float]] = {}
    qps: dict[RevokerKind, float] = {RevokerKind.NONE: base_w.throughput_qps}
    for kind in STRATEGIES:
        w, r = grpc_results[kind]
        lat = [s.cycles for s in r.latencies]
        normalized[kind] = {
            p: percentile(lat, p) / percentile(base_lat, p) for p in PERCENTILES
        }
        qps[kind] = w.throughput_qps
        rows.append(
            [kind.value]
            + [f"{normalized[kind][p]:.2f}x" for p in PERCENTILES]
            + [f"{w.throughput_qps / base_w.throughput_qps:.3f}"]
        )
    text = format_table(
        ["condition"] + [f"p{p}" for p in PERCENTILES] + ["rel. QPS"],
        rows,
        title=(
            f"Fig. 8 — gRPC QPS latency percentiles normalized to baseline "
            f"({GRPC_SECONDS}s run, revoker contending on a server core)"
        ),
    )
    report("fig8_grpc_latency", text)

    rel, cor = normalized[RevokerKind.RELOADED], normalized[RevokerKind.CORNUCOPIA]
    # Shape 1: near-identical and modest through p95.
    for p in (50, 90, 95):
        assert rel[p] < 1.6 and cor[p] < 1.6
        assert abs(rel[p] - cor[p]) < 0.35
    # Shape 2: at p99 Reloaded's impact is clearly below Cornucopia's.
    assert rel[99] < cor[99]
    # Shape 3: both lose comparable throughput (paper: ~13% each, not
    # significantly different).
    loss_rel = 1 - qps[RevokerKind.RELOADED] / qps[RevokerKind.NONE]
    loss_cor = 1 - qps[RevokerKind.CORNUCOPIA] / qps[RevokerKind.NONE]
    assert abs(loss_rel - loss_cor) < 0.08

    benchmark.pedantic(
        lambda: run_experiment(
            GrpcQpsWorkload(duration_seconds=0.05, scale=512),
            RevokerKind.RELOADED,
            SimulationConfig(revoker_core=2),
        ),
        rounds=1,
        iterations=1,
    )
