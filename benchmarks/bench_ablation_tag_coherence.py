"""Ablation (§7.5): relaxed capability tag coherence.

Reloaded's load barrier means the revoker may operate on a view of tags
as stale as the epoch's start; if the system can provide a global tag
view cheaply (tag write-back), the sweep no longer has to stream every
data line — it reads the tag table and fetches only the lines that hold
capabilities. The paper expects this to "significantly reduce cache
coherency traffic associated with probing for the presence of
capabilities in memory". This ablation runs the same workload with and
without the tag-table sweep and measures the revoker's bus traffic.
"""

from __future__ import annotations

from _harness import report

from repro.alloc.quarantine import QuarantinePolicy
from repro.analysis.tables import format_table
from repro.core.config import MachineConfig, RevokerKind, SimulationConfig
from repro.core.experiment import run_experiment
from repro.machine.costs import CostModel
from repro.workloads.churn import ChurnProfile, ChurnWorkload, SizeMix


def _workload(pointer_slots: int) -> ChurnWorkload:
    profile = ChurnProfile(
        name=f"tagcoh-slots{pointer_slots}",
        heap_bytes=2 << 20,
        churn_bytes=8 << 20,
        size_mix=SizeMix((256, 2048), (0.6, 0.4)),
        pointer_slots=pointer_slots,
        compute_per_iter=10_000,
        seed=19,
    )
    return ChurnWorkload(profile, QuarantinePolicy(min_bytes=128 << 10))


def _run(tag_table: bool, pointer_slots: int):
    cfg = SimulationConfig(
        revoker=RevokerKind.RELOADED,
        machine=MachineConfig(costs=CostModel(tag_table_sweep=tag_table)),
    )
    return run_experiment(_workload(pointer_slots), RevokerKind.RELOADED, cfg)


def test_ablation_tag_coherence(benchmark):
    rows = []
    traffic = {}
    for slots in (1, 3):
        for tag_table in (False, True):
            r = _run(tag_table, slots)
            revoker_traffic = r.bus_by_source.get("core2", 0)
            traffic[(slots, tag_table)] = revoker_traffic
            rows.append([
                f"{slots} slots/object",
                "tag-table" if tag_table else "full-stream",
                revoker_traffic,
                r.pages_swept,
                r.revocations,
            ])
    text = format_table(
        ["capability density", "sweep mode", "revoker bus txns",
         "pages swept", "revocations"],
        rows,
        title="Ablation §7.5 — sweep traffic with vs without a tag-table view",
    )
    report("ablation_tag_coherence", text)

    # The tag-table sweep cuts revoker traffic, and the saving grows as
    # capability density falls (sparser pages -> fewer data lines).
    for slots in (1, 3):
        assert traffic[(slots, True)] < traffic[(slots, False)]
    saving_sparse = 1 - traffic[(1, True)] / traffic[(1, False)]
    saving_dense = 1 - traffic[(3, True)] / traffic[(3, False)]
    assert saving_sparse > saving_dense

    benchmark.pedantic(lambda: _run(True, 1), rounds=1, iterations=1)
