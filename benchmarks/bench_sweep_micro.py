#!/usr/bin/env python
"""Microbenchmark: the vectorized sweep engine vs the scalar reference.

Times the two implementations of the sweep hot loops on identical state:

- **scan**: `Revoker.sweep_page` over a capability-dense heap with
  nothing condemned — the pure probe-all-tagged-granules loop that
  dominates every revocation epoch;
- **revoke**: the same sweep with half the allocations painted, so the
  masked tag-clearing store runs too;
- **stream**: `Cache.access_page` of a page working set larger than the
  cache — the batched LRU/eviction arithmetic under the sweep's memory
  traffic pattern.

The scalar reference is selected per-pass via ``REPRO_SCALAR=1`` (the
same escape hatch users have); both passes run in this one process on
freshly built, identically seeded state.

Writes a JSON report (default ``BENCH_sweep.json`` in the repo root) and
exits non-zero if any vectorized hot loop fails ``--min-speedup`` (default
1.0: vectorized must at least not lose). CI runs this as a perf smoke
test; the committed baseline was produced by::

    PYTHONPATH=src python benchmarks/bench_sweep_micro.py
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.kernel.kernel import Kernel  # noqa: E402
from repro.kernel.revoker import CheriVokeRevoker  # noqa: E402
from repro.kernel.revoker.base import EpochRecord  # noqa: E402
from repro.machine.cache import Bus, Cache  # noqa: E402
from repro.machine.costs import GRANULE_BYTES, PAGE_BYTES  # noqa: E402
from repro.machine.machine import Machine  # noqa: E402


def build_rig(pages: int, caps_per_page: int):
    """A kernel with a ``pages``-page heap, ``caps_per_page`` capabilities
    planted per page at even granule spacing."""
    machine = Machine(memory_bytes=max(8 << 20, 2 * pages * PAGE_BYTES))
    kernel = Kernel(machine)
    revoker = kernel.install_revoker(CheriVokeRevoker)
    heap, _ = kernel.address_space.mmap(pages * PAGE_BYTES)
    core = machine.cores[2]
    stride = PAGE_BYTES // caps_per_page
    assert stride % GRANULE_BYTES == 0
    for page in range(pages):
        for i in range(caps_per_page):
            addr = heap.base + page * PAGE_BYTES + i * stride
            target = heap.derive(addr, GRANULE_BYTES)
            core.store_cap(heap.with_address(addr), target)
    ptes = [
        machine.pagetable.require(heap.base // PAGE_BYTES + p)
        for p in range(pages)
    ]
    return machine, kernel, revoker, heap, core, ptes


def timed(fn, reps: int) -> float:
    """Best-of-``reps`` wall seconds for one call of ``fn``."""
    best = float("inf")
    for _ in range(reps):
        began = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - began)
    return best


def bench_scan(pages: int, caps_per_page: int, reps: int) -> float:
    _, _, revoker, _, core, ptes = build_rig(pages, caps_per_page)
    record = EpochRecord(epoch=0)

    def scan() -> None:
        for pte in ptes:
            revoker.sweep_page(core, pte, record)

    return timed(scan, reps)


def bench_revoke(pages: int, caps_per_page: int, reps: int) -> float:
    _, kernel, revoker, heap, core, ptes = build_rig(pages, caps_per_page)
    record = EpochRecord(epoch=0)
    stride = PAGE_BYTES // caps_per_page
    victims = [
        (heap.base + page * PAGE_BYTES + i * stride, GRANULE_BYTES)
        for page in range(pages)
        for i in range(0, caps_per_page, 2)
    ]

    def replant() -> None:
        for addr, _ in victims:
            core.store_cap(
                heap.with_address(addr), heap.derive(addr, GRANULE_BYTES)
            )

    def sweep_all() -> None:
        for pte in ptes:
            revoker.sweep_page(core, pte, record)

    best = float("inf")
    for _ in range(reps):
        replant()
        for addr, nbytes in victims:
            kernel.shadow.paint(addr, nbytes)
        began = time.perf_counter()
        sweep_all()
        best = min(best, time.perf_counter() - began)
        kernel.shadow.unpaint_many(victims)
    return best


def bench_stream(pages: int, reps: int) -> float:
    # 16-page cache streaming a larger footprint: steady-state evictions,
    # the background sweep's traffic pattern.
    cache = Cache(Bus(), "bench", capacity_bytes=16 * PAGE_BYTES)

    def stream() -> None:
        for vpn in range(pages):
            cache.access_page(vpn)

    return timed(stream, reps)


def run_pass(scalar: bool, pages: int, caps_per_page: int, reps: int) -> dict:
    os.environ["REPRO_SCALAR"] = "1" if scalar else "0"
    try:
        return {
            "scan_s": bench_scan(pages, caps_per_page, reps),
            "revoke_s": bench_revoke(pages, caps_per_page, max(2, reps // 2)),
            "stream_s": bench_stream(4 * pages, reps),
        }
    finally:
        os.environ.pop("REPRO_SCALAR", None)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out",
        type=Path,
        default=REPO_ROOT / "BENCH_sweep.json",
        help="where to write the JSON report",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=1.0,
        help="fail unless every vectorized hot loop beats scalar by this factor",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small working set and few reps (CI smoke)",
    )
    args = parser.parse_args(argv)

    pages, caps_per_page, reps = (16, 64, 3) if args.quick else (64, 128, 5)
    scalar = run_pass(True, pages, caps_per_page, reps)
    vector = run_pass(False, pages, caps_per_page, reps)
    speedups = {
        key.removesuffix("_s"): scalar[key] / vector[key] for key in scalar
    }

    report = {
        "benchmark": "sweep_micro",
        "config": {
            "pages": pages,
            "caps_per_page": caps_per_page,
            "reps": reps,
            "quick": args.quick,
        },
        "host": {
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
        "scalar": scalar,
        "vectorized": vector,
        "speedup": {k: round(v, 2) for k, v in speedups.items()},
    }
    args.out.write_text(json.dumps(report, indent=2) + "\n")

    for key, factor in speedups.items():
        print(
            f"{key:>7}: scalar {scalar[key + '_s'] * 1e3:8.2f} ms  "
            f"vectorized {vector[key + '_s'] * 1e3:8.2f} ms  "
            f"speedup {factor:5.2f}x"
        )
    print(f"report written to {args.out}")

    slowest = min(speedups, key=speedups.get)
    if speedups[slowest] < args.min_speedup:
        print(
            f"FAIL: {slowest} speedup {speedups[slowest]:.2f}x "
            f"< required {args.min_speedup:.2f}x",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
