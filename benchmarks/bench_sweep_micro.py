#!/usr/bin/env python
"""Microbenchmark: the vectorized sweep engine vs the scalar reference.

Times the two implementations of the sweep hot loops on identical state,
using the same rigs the continuous-benchmarking registry's ``sweep.*``
targets run (:mod:`repro.perf.targets` — the standalone script and
``repro bench`` measure the identical loops):

- **scan**: `Revoker.sweep_page` over a capability-dense heap with
  nothing condemned — the pure probe-all-tagged-granules loop that
  dominates every revocation epoch;
- **revoke**: the same sweep with half the allocations painted, so the
  masked tag-clearing store runs too;
- **stream**: `Cache.access_page` of a page working set larger than the
  cache — the batched LRU/eviction arithmetic under the sweep's memory
  traffic pattern.

The scalar reference is selected per-pass via ``REPRO_SCALAR=1`` (the
same escape hatch users have); both passes run in this one process on
freshly built, identically seeded state.

Writes a schema-v1 :class:`~repro.perf.report.PerfReport` JSON (default
``BENCH_sweep.json`` in the repo root; per-pass wall samples under
``benchmarks``, best-of speedups under ``detail``) and exits non-zero if
any vectorized hot loop fails ``--min-speedup`` (default 1.0: vectorized
must at least not lose). An existing report recorded at a different git
sha is never silently clobbered — pass ``--force`` to re-record. CI runs
this as a perf smoke test; the committed baseline was produced by::

    PYTHONPATH=src python benchmarks/bench_sweep_micro.py --force
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.errors import PerfError  # noqa: E402
from repro.machine.cache import Bus, Cache  # noqa: E402
from repro.machine.costs import PAGE_BYTES  # noqa: E402
from repro.perf.registry import WALL  # noqa: E402
from repro.perf.report import (  # noqa: E402
    BenchmarkResult,
    MetricSeries,
    PerfReport,
    check_overwrite,
    git_sha,
    recorded_sha,
)
from repro.perf.targets import (  # noqa: E402
    build_sweep_rig,
    cache_stream,
    sweep_paint,
    sweep_replant,
    sweep_scan,
    sweep_unpaint,
    sweep_victims,
)


def timed(fn, reps: int) -> list[float]:
    """Wall seconds per call of ``fn``, one sample per repetition."""
    samples = []
    for _ in range(reps):
        began = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - began)
    return samples


def bench_scan(pages: int, caps_per_page: int, reps: int) -> list[float]:
    rig = build_sweep_rig(pages, caps_per_page)
    return timed(lambda: sweep_scan(rig), reps)


def bench_revoke(pages: int, caps_per_page: int, reps: int) -> list[float]:
    rig = build_sweep_rig(pages, caps_per_page)
    victims = sweep_victims(rig)
    samples = []
    for _ in range(reps):
        sweep_replant(rig, victims)
        sweep_paint(rig, victims)
        began = time.perf_counter()
        sweep_scan(rig)
        samples.append(time.perf_counter() - began)
        sweep_unpaint(rig, victims)
    return samples


def bench_stream(pages: int, reps: int) -> list[float]:
    # 16-page cache streaming a larger footprint: steady-state evictions,
    # the background sweep's traffic pattern.
    cache = Cache(Bus(), "bench", capacity_bytes=16 * PAGE_BYTES)
    return timed(lambda: cache_stream(cache, pages), reps)


def run_pass(
    scalar: bool, pages: int, caps_per_page: int, reps: int
) -> dict[str, list[float]]:
    os.environ["REPRO_SCALAR"] = "1" if scalar else "0"
    try:
        return {
            "scan": bench_scan(pages, caps_per_page, reps),
            "revoke": bench_revoke(pages, caps_per_page, max(2, reps // 2)),
            "stream": bench_stream(4 * pages, reps),
        }
    finally:
        os.environ.pop("REPRO_SCALAR", None)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out",
        type=Path,
        default=REPO_ROOT / "BENCH_sweep.json",
        help="where to write the JSON report",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=1.0,
        help="fail unless every vectorized hot loop beats scalar by this factor",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small working set and few reps (CI smoke)",
    )
    parser.add_argument(
        "--force",
        action="store_true",
        help="overwrite a report recorded at a different git sha",
    )
    args = parser.parse_args(argv)

    if args.out.exists():
        try:
            existing = json.loads(args.out.read_text())
        except (OSError, json.JSONDecodeError):
            existing = None
        if isinstance(existing, dict):
            try:
                check_overwrite(
                    recorded_sha(existing), git_sha(), str(args.out), args.force
                )
            except PerfError as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 2

    pages, caps_per_page, reps = (16, 64, 3) if args.quick else (64, 128, 5)
    scalar = run_pass(True, pages, caps_per_page, reps)
    vector = run_pass(False, pages, caps_per_page, reps)
    # Best-of comparison, like the original harness: the minimum is the
    # least-noise estimate of each loop's cost.
    speedups = {key: min(scalar[key]) / min(vector[key]) for key in scalar}

    config = {
        "pages": pages,
        "caps_per_page": caps_per_page,
        "reps": reps,
        "quick": args.quick,
    }
    report = PerfReport(
        suite="sweep-micro",
        config=config,
        benchmarks={
            f"sweep.{key}" if key != "stream" else "cache.stream": BenchmarkResult(
                metrics={
                    "wall_s": MetricSeries(kind=WALL, samples=vector[key]),
                    "scalar_wall_s": MetricSeries(kind=WALL, samples=scalar[key]),
                },
                config=config,
            )
            for key in scalar
        },
        detail={"speedup": {k: round(v, 2) for k, v in speedups.items()}},
    )
    report.save(args.out)

    for key, factor in speedups.items():
        print(
            f"{key:>7}: scalar {min(scalar[key]) * 1e3:8.2f} ms  "
            f"vectorized {min(vector[key]) * 1e3:8.2f} ms  "
            f"speedup {factor:5.2f}x"
        )
    print(f"report written to {args.out}")

    slowest = min(speedups, key=speedups.get)
    if speedups[slowest] < args.min_speedup:
        print(
            f"FAIL: {slowest} speedup {speedups[slowest]:.2f}x "
            f"< required {args.min_speedup:.2f}x",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
