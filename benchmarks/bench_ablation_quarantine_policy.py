"""Ablation (§7.2): quarantine policy tuning.

The paper notes its single policy — revoke when quarantine exceeds 1/4 of
the total heap, floor 8 MiB — "is not particularly tuned". This ablation
sweeps the fraction and the floor on a churn-heavy workload and shows the
classic CHERIvoke trade-off: a larger quarantine means fewer, bigger
revocations (less CPU/bus spent sweeping) at the cost of more resident
memory.
"""

from __future__ import annotations

from _harness import report

from repro.alloc.quarantine import QuarantinePolicy
from repro.analysis.tables import format_table
from repro.core.config import RevokerKind
from repro.core.experiment import run_experiment
from repro.workloads.churn import ChurnProfile, ChurnWorkload, SizeMix

FRACTIONS = (0.125, 0.25, 0.5)
FLOORS = (16 << 10, 64 << 10, 256 << 10)


def _workload(policy: QuarantinePolicy) -> ChurnWorkload:
    profile = ChurnProfile(
        name="policy-ablation",
        heap_bytes=1 << 20,
        churn_bytes=16 << 20,
        size_mix=SizeMix((64, 256, 2048), (0.4, 0.4, 0.2)),
        pointer_slots=2,
        compute_per_iter=8_000,
        seed=13,
    )
    return ChurnWorkload(profile, policy)


def test_ablation_quarantine_policy(benchmark):
    rows = []
    by_fraction = {}
    for fraction in FRACTIONS:
        policy = QuarantinePolicy(heap_fraction=fraction, min_bytes=16 << 10)
        r = run_experiment(_workload(policy), RevokerKind.RELOADED)
        by_fraction[fraction] = r
        rows.append(
            [f"fraction={fraction}", r.revocations, r.pages_swept,
             f"{r.peak_rss_bytes >> 10}KiB", f"{r.wall_seconds:.3f}s"]
        )
    for floor in FLOORS:
        policy = QuarantinePolicy(heap_fraction=0.25, min_bytes=floor)
        r = run_experiment(_workload(policy), RevokerKind.RELOADED)
        rows.append(
            [f"floor={floor >> 10}KiB", r.revocations, r.pages_swept,
             f"{r.peak_rss_bytes >> 10}KiB", f"{r.wall_seconds:.3f}s"]
        )
    text = format_table(
        ["policy", "revocations", "pages swept", "peak RSS", "wall"],
        rows,
        title="Ablation §7.2 — quarantine policy sweep (Reloaded, churn workload)",
    )
    report("ablation_quarantine_policy", text)

    # The trade-off: larger quarantine fraction => fewer revocations and
    # less sweep work, but a larger peak RSS.
    lo, hi = by_fraction[FRACTIONS[0]], by_fraction[FRACTIONS[-1]]
    assert hi.revocations < lo.revocations
    assert hi.pages_swept < lo.pages_swept
    assert hi.peak_rss_bytes >= lo.peak_rss_bytes

    benchmark.pedantic(
        lambda: run_experiment(
            _workload(QuarantinePolicy(min_bytes=64 << 10)), RevokerKind.RELOADED
        ),
        rounds=1,
        iterations=1,
    )
