"""Figure 3: ratio of peak memory footprint (RSS) between test condition
and baseline for a representative subset of SPEC benchmarks.

Paper shape (§5.1): the policy targets 33% of the heap in quarantine
(ratio ~1.33, the dashed line); benchmarks that free heavily while
revocation is still processing (libquantum, omnetpp, xalancbmk) overshoot
— and most of the overshoot is quarantine, not revocation, so CHERIvoke
(whose epochs complete fastest) hews closer to the target; gobmk and
hmmer use so little memory that the (scaled) 8 MiB minimum quarantine
dominates their behaviour.
"""

from __future__ import annotations

from _harness import SPEC_SCALE, geomean_inputs, report

from repro.analysis.tables import format_table
from repro.core.config import RevokerKind
from repro.core.experiment import run_experiment
from repro.workloads import spec

#: Fig. 3's representative subset, sorted descending by baseline RSS in
#: the paper; we print the measured baseline RSS alongside.
SUBSET = ("xalancbmk", "libquantum", "omnetpp", "astar", "gobmk", "hmmer")
STRATEGIES = (RevokerKind.RELOADED, RevokerKind.CORNUCOPIA, RevokerKind.CHERIVOKE)

#: The quarantine policy's implied RSS ratio target (§5.1 dashed line).
TARGET_RATIO = 1.33


def test_fig3_spec_rss_ratio(spec_results, benchmark):
    rows = []
    ratios: dict[tuple[str, RevokerKind], float] = {}
    for bench in SUBSET:
        base = geomean_inputs(
            spec_results, bench, RevokerKind.NONE, lambda r: r.peak_rss_bytes
        )
        row = [bench, f"{base / (1 << 20):.1f}MiB"]
        for kind in STRATEGIES:
            test = geomean_inputs(
                spec_results, bench, kind, lambda r: r.peak_rss_bytes
            )
            ratio = test / base
            ratios[(bench, kind)] = ratio
            row.append(f"{ratio:.2f}")
        rows.append(row)
    rows.append(["(policy target)", "", f"{TARGET_RATIO:.2f}", f"{TARGET_RATIO:.2f}", f"{TARGET_RATIO:.2f}"])
    text = format_table(
        ["benchmark", "baseline RSS", "reloaded", "cornucopia", "cherivoke"],
        rows,
        title=f"Fig. 3 — peak RSS ratio vs baseline (scale 1/{SPEC_SCALE}; scaled 8 MiB quarantine floor)",
    )
    report("fig3_spec_rss", text)

    # Shape: revocation inflates RSS on every revoking benchmark; the
    # heavy churners overshoot the 1.33 target under the concurrent
    # strategies, and CHERIvoke stays at or below Cornucopia's ratio.
    for bench in ("xalancbmk", "omnetpp"):
        assert ratios[(bench, RevokerKind.RELOADED)] > 1.05
        assert (
            ratios[(bench, RevokerKind.CHERIVOKE)]
            <= ratios[(bench, RevokerKind.CORNUCOPIA)] + 0.10
        )

    benchmark.pedantic(
        lambda: run_experiment(
            spec.workload("libquantum", scale=max(SPEC_SCALE, 512)),
            RevokerKind.RELOADED,
        ),
        rounds=1,
        iterations=1,
    )
