"""Tests for the §6/§7 extensions: mmap quarantine, coloring, CHERIoT
load filter, multi-threaded revocation."""

from __future__ import annotations

import pytest

from repro.alloc.quarantine import QuarantinePolicy
from repro.core.config import RevokerKind, SimulationConfig
from repro.core.simulation import Simulation
from repro.errors import AllocatorError, CapabilityError, SimulationError, VMError
from repro.extensions.cheriot import CheriotRevoker, LoadFilter
from repro.extensions.coloring import ColoredHeap
from repro.extensions.multithread_revoker import MultithreadReloadedRevoker
from repro.extensions.reservations import ReservationQuarantine
from repro.kernel.kernel import Kernel
from repro.kernel.revoker import ReloadedRevoker
from repro.machine.costs import PAGE_BYTES
from repro.machine.machine import Machine
from repro.machine.trap import PageFault
from repro.workloads.churn import ChurnProfile, ChurnWorkload, SizeMix


@pytest.fixture
def kernel() -> Kernel:
    return Kernel(Machine(memory_bytes=16 << 20))


def tick_epoch(kernel: Kernel) -> None:
    kernel.epoch.begin_revocation()
    kernel.epoch.end_revocation()


class TestReservationQuarantine:
    def test_quarantine_requires_fully_unmapped(self, kernel):
        rq = ReservationQuarantine(kernel)
        _, res = kernel.address_space.mmap(PAGE_BYTES * 2)
        with pytest.raises(VMError):
            rq.quarantine(res)

    def test_paint_covers_reservation(self, kernel):
        rq = ReservationQuarantine(kernel)
        cap, res = kernel.address_space.mmap(PAGE_BYTES)
        kernel.address_space.munmap(res, cap.base, PAGE_BYTES)
        rq.quarantine(res)
        assert kernel.shadow.is_painted_addr(cap.base)

    def test_recycle_waits_for_epoch(self, kernel):
        rq = ReservationQuarantine(kernel)
        cap, res = kernel.address_space.mmap(PAGE_BYTES)
        kernel.address_space.munmap(res, cap.base, PAGE_BYTES)
        rq.quarantine(res)
        assert rq.poll() == []  # no epoch has passed
        tick_epoch(kernel)
        recycled = rq.poll()
        assert recycled == [res]
        assert not kernel.shadow.is_painted_addr(cap.base)
        assert rq.pending == 0

    def test_munmap_and_quarantine_handles_partial(self, kernel):
        rq = ReservationQuarantine(kernel)
        cap, res = kernel.address_space.mmap(PAGE_BYTES * 4)
        kernel.address_space.munmap(res, cap.base + PAGE_BYTES, PAGE_BYTES)
        rq.munmap_and_quarantine(res)
        tick_epoch(kernel)
        assert rq.poll() == [res]

    def test_stale_cap_revoked_by_sweep(self, kernel):
        """§6.2: the existing sweep revokes capabilities referencing
        quarantined mappings — no revoker changes needed."""
        revoker = kernel.install_revoker(ReloadedRevoker)
        rq = ReservationQuarantine(kernel)
        heap, _ = kernel.address_space.mmap(PAGE_BYTES)
        mapped, res = kernel.address_space.mmap(PAGE_BYTES)
        core = kernel.machine.cores[0]
        core.store_cap(heap, mapped)  # a capability to the mapping
        kernel.address_space.munmap(res, mapped.base, PAGE_BYTES)
        rq.quarantine(res)
        sched = kernel.machine.scheduler
        t = sched.spawn("rev", revoker.revoke(core, sched.cores[0]), 0, stops_for_stw=False)
        sched.run(until=[t])
        # The stored capability to the unmapped region is gone.
        assert kernel.machine.memory.load_cap(heap.base) is None

    def test_guard_hole_cannot_be_refilled(self, kernel):
        cap, res = kernel.address_space.mmap(PAGE_BYTES * 2)
        kernel.address_space.munmap(res, cap.base, PAGE_BYTES)
        other, _ = kernel.address_space.mmap(PAGE_BYTES * 4)
        assert other.base >= cap.base + 2 * PAGE_BYTES  # hole stays a hole
        with pytest.raises(PageFault):
            kernel.machine.cores[0].load_data(cap, 8)


class TestColoredHeap:
    def test_alloc_and_access(self, kernel):
        heap = ColoredHeap(kernel, num_colors=4)
        ccap = heap.malloc(128)
        heap.check_access(ccap)  # fresh capability matches

    def test_stale_color_faults_immediately(self, kernel):
        """§7.3: recoloring on free closes the UAF/UAR gap — the stale
        capability dies at the next access, before any reuse."""
        heap = ColoredHeap(kernel, num_colors=4)
        ccap = heap.malloc(128)
        heap.free(ccap)
        with pytest.raises(CapabilityError):
            heap.check_access(ccap)
        assert heap.stats.miscolor_faults == 1

    def test_double_free_faults(self, kernel):
        heap = ColoredHeap(kernel, num_colors=4)
        ccap = heap.malloc(128)
        heap.free(ccap)
        with pytest.raises(CapabilityError):
            heap.free(ccap)

    def test_recolored_slot_reusable_without_revocation(self, kernel):
        heap = ColoredHeap(kernel, num_colors=4)
        a = heap.malloc(128)
        heap.free(a)
        b = heap.malloc(128)
        assert b.base == a.base
        assert b.color == a.color + 1
        heap.check_access(b)
        with pytest.raises(CapabilityError):
            heap.check_access(a)  # old color: permanently useless

    def test_quarantine_only_on_color_exhaustion(self, kernel):
        colors = 4
        heap = ColoredHeap(kernel, num_colors=colors)
        base = None
        for i in range(colors):
            ccap = heap.malloc(128)
            base = ccap.base
            heap.free(ccap)
        assert heap.stats.frees_quarantined == 1
        assert heap.stats.frees_recolored == colors - 1
        assert kernel.shadow.is_painted_addr(base)

    def test_revocation_pressure_scales_inversely_with_colors(self, kernel):
        """The paper's headline §7.3 claim."""
        results = {}
        for colors in (2, 16):
            k = Kernel(Machine(memory_bytes=16 << 20))
            heap = ColoredHeap(k, num_colors=colors)
            for _ in range(64):
                ccap = heap.malloc(256)
                heap.free(ccap)
                if heap.quarantined:
                    heap.release_after_revocation()
            results[colors] = heap.stats.frees_quarantined
        assert results[2] >= 8 * results[16]

    def test_release_after_revocation_resets_colors(self, kernel):
        heap = ColoredHeap(kernel, num_colors=2)
        a = heap.malloc(128)
        heap.free(a)  # color 0 -> 1
        a = heap.malloc(128)
        heap.free(a)  # color space exhausted
        assert heap.quarantined
        assert heap.release_after_revocation() == 1
        b = heap.malloc(128)
        assert b.base == a.base and b.color == 0

    def test_too_few_colors_rejected(self, kernel):
        with pytest.raises(AllocatorError):
            ColoredHeap(kernel, num_colors=1)


class TestCheriotLoadFilter:
    def _setup(self, kernel):
        heap, _ = kernel.address_space.mmap(PAGE_BYTES)
        core = kernel.machine.cores[0]
        filt = LoadFilter(core, kernel.shadow)
        victim = heap.derive(heap.base + 0x100, 64)
        core.store_cap(heap, victim)
        return heap, core, filt, victim

    def test_unpainted_load_passes(self, kernel):
        heap, core, filt, victim = self._setup(kernel)
        result = filt.load_cap(heap)
        assert result.value.tag
        assert filt.loads_filtered == 1
        assert filt.caps_cleared == 0

    def test_freed_object_immediately_inaccessible(self, kernel):
        """§6.3: painting at free is enough — no trap, no epoch visible."""
        heap, core, filt, victim = self._setup(kernel)
        kernel.shadow.paint(victim.base, 64)
        result = filt.load_cap(heap)
        assert not result.value.tag
        assert filt.caps_cleared == 1

    def test_filter_not_self_healing(self, kernel):
        """fn. 28: memory keeps the stale tag; every load pays the filter."""
        heap, core, filt, victim = self._setup(kernel)
        kernel.shadow.paint(victim.base, 64)
        filt.load_cap(heap)
        assert kernel.machine.memory.load_cap(heap.base) is not None
        filt.load_cap(heap)
        assert filt.caps_cleared == 2

    def test_cheriot_revoker_never_pauses(self, kernel):
        revoker = kernel.install_revoker(CheriotRevoker)
        heap, _ = kernel.address_space.mmap(16 << 10)
        core = kernel.machine.cores[0]
        for off in range(0, 16 << 10, 256):
            core.store_cap(
                heap.with_address(heap.base + off),
                heap.derive(heap.base + 0x100, 64),
            )
        sched = kernel.machine.scheduler
        t = sched.spawn("rev", revoker.revoke(core, sched.cores[0]), 0, stops_for_stw=False)
        sched.run(until=[t])
        assert sched.stw_records == []
        assert kernel.epoch.completed == 1
        assert revoker.records[0].pages_swept >= 1


class TestMultithreadRevoker:
    def _run(self, threads: int):
        def factory():
            profile = ChurnProfile(
                name="mt",
                heap_bytes=512 << 10,
                churn_bytes=2 << 20,
                size_mix=SizeMix((128, 1024), (0.6, 0.4)),
                pointer_slots=2,
                seed=6,
            )
            return ChurnWorkload(profile, QuarantinePolicy(min_bytes=64 << 10))

        cfg = SimulationConfig(
            revoker=RevokerKind.RELOADED,
            custom_revoker=None,
        )
        if threads > 1:
            class _MT(MultithreadReloadedRevoker):
                def __init__(self, *a, **kw):
                    super().__init__(*a, sweep_threads=threads, **kw)
                    self.worker_cores = [1]

            cfg.custom_revoker = _MT
        sim = Simulation(factory(), cfg)
        result = sim.run()
        return result

    def test_runs_and_revokes(self):
        result = self._run(2)
        assert result.revocations >= 1
        assert result.caps_revoked >= 0

    def test_concurrent_phase_shorter_with_more_threads(self):
        one = self._run(1)
        two = self._run(2)
        mean_one = sum(r.concurrent_cycles() for r in one.epoch_records) / len(one.epoch_records)
        mean_two = sum(r.concurrent_cycles() for r in two.epoch_records) / len(two.epoch_records)
        assert mean_two < mean_one

    def test_safety_preserved(self):
        from repro.workloads.adversarial import UafAttacker

        class _MT(MultithreadReloadedRevoker):
            def __init__(self, *a, **kw):
                super().__init__(*a, sweep_threads=2, **kw)
                self.worker_cores = [1]

        w = UafAttacker(rounds=10, churn_objects=60)
        cfg = SimulationConfig(revoker=RevokerKind.RELOADED, custom_revoker=_MT)
        Simulation(w, cfg).run()
        assert w.report.uar_hits == 0

    def test_invalid_thread_count_rejected(self, kernel):
        with pytest.raises(ValueError):
            kernel.install_revoker(
                lambda *a, **kw: MultithreadReloadedRevoker(*a, sweep_threads=0, **kw)
            )

    def test_custom_revoker_requires_kind(self):
        cfg = SimulationConfig(revoker=RevokerKind.NONE, custom_revoker=MultithreadReloadedRevoker)
        with pytest.raises(SimulationError):
            Simulation(ChurnWorkload(ChurnProfile(
                name="x", heap_bytes=4096, churn_bytes=4096,
                size_mix=SizeMix((64,), (1.0,)),
            )), cfg)


class TestMultipassCornucopia:
    def _run(self, passes: int):
        from repro.extensions.multipass import MultipassCornucopiaRevoker
        from repro.workloads.churn import ChurnProfile, ChurnWorkload, SizeMix

        cfg = SimulationConfig(revoker=RevokerKind.CORNUCOPIA)
        if passes > 1:
            class _MP(MultipassCornucopiaRevoker):
                def __init__(self, *a, **kw):
                    super().__init__(*a, passes=passes, **kw)

            cfg.custom_revoker = _MP
        profile = ChurnProfile(
            name="mp",
            heap_bytes=256 << 10,
            churn_bytes=1 << 20,
            size_mix=SizeMix((128, 1024), (0.6, 0.4)),
            pointer_slots=2,
            cap_stores_per_iter=3,
            seed=8,
        )
        w = ChurnWorkload(profile, QuarantinePolicy(min_bytes=64 << 10))
        sim = Simulation(w, cfg)
        return sim, sim.run()

    def test_runs_and_is_safe(self):
        from repro.workloads.adversarial import UafAttacker
        from repro.extensions.multipass import MultipassCornucopiaRevoker

        class _MP(MultipassCornucopiaRevoker):
            def __init__(self, *a, **kw):
                super().__init__(*a, passes=2, **kw)

        w = UafAttacker(rounds=10, churn_objects=60)
        cfg = SimulationConfig(revoker=RevokerKind.CORNUCOPIA, custom_revoker=_MP)
        Simulation(w, cfg).run()
        assert w.report.uar_hits == 0

    def test_extra_pass_increases_work(self):
        # Epoch counts differ between runs (longer epochs batch more
        # frees), so compare sweep volume *per epoch*.
        _, one = self._run(1)
        _, two = self._run(2)
        assert two.revocations >= 1
        per_epoch_one = one.pages_swept / one.revocations
        per_epoch_two = two.pages_swept / two.revocations
        assert per_epoch_two >= per_epoch_one

    def test_pass_counts_recorded(self):
        sim, _ = self._run(2)
        revoker = sim.kernel.revoker
        assert revoker.pass_page_counts
        for per_pass in revoker.pass_page_counts:
            assert len(per_pass) == 2
            # Later passes sweep (weakly) less than the full first pass.
            assert per_pass[1] <= per_pass[0]

    def test_invalid_pass_count_rejected(self):
        from repro.extensions.multipass import MultipassCornucopiaRevoker

        kernel = Kernel(Machine(memory_bytes=8 << 20))
        with pytest.raises(ValueError):
            kernel.install_revoker(
                lambda *a, **kw: MultipassCornucopiaRevoker(*a, passes=0, **kw)
            )


class TestHardwareSweepEngine:
    def test_demo_platform_pass_time(self):
        from repro.extensions.cheriot import HardwareSweepEngine

        engine = HardwareSweepEngine()
        # §6.3: 512 KiB "takes just over 3 milliseconds" at 20 MHz.
        assert 3.0e-3 < engine.seconds_per_pass() < 3.5e-3

    def test_step_accumulates_passes(self):
        from repro.extensions.cheriot import HardwareSweepEngine

        engine = HardwareSweepEngine(memory_bytes=1 << 10)  # 128 granules
        assert engine.step(64) == 0
        assert engine.step(64) == 1
        assert engine.step(256) == 2
        assert engine.passes_completed == 3

    def test_negative_step_rejected(self):
        from repro.extensions.cheriot import HardwareSweepEngine

        with pytest.raises(ValueError):
            HardwareSweepEngine().step(-1)


class TestAlwaysTrapDisposition:
    """§7.6: the always-trap PTE disposition removes clean-page
    generation maintenance."""

    def _run(self, revoker_cls):
        from repro.workloads.churn import ChurnProfile, ChurnWorkload, SizeMix

        profile = ChurnProfile(
            name="at76",
            heap_bytes=512 << 10,
            churn_bytes=2 << 20,
            # Large objects => plenty of capability-clean tail pages.
            size_mix=SizeMix((256, 16384), (0.3, 0.7)),
            pointer_slots=2,
            seed=12,
        )
        w = ChurnWorkload(profile, QuarantinePolicy(min_bytes=128 << 10))
        cfg = SimulationConfig(revoker=RevokerKind.RELOADED, custom_revoker=revoker_cls)
        sim = Simulation(w, cfg)
        return sim, sim.run()

    def test_eliminates_gen_only_visits(self):
        from repro.extensions.always_trap import AlwaysTrapReloadedRevoker

        _, stock = self._run(None)
        sim76, var76 = self._run(AlwaysTrapReloadedRevoker)
        gen_only_stock = sum(e.pages_gen_only for e in stock.epoch_records)
        gen_only_76 = sum(e.pages_gen_only for e in var76.epoch_records)
        assert gen_only_stock > 0
        assert gen_only_76 < gen_only_stock * 0.2
        assert sim76.kernel.revoker.pages_skipped_always_trap > 0

    def test_safety_preserved(self):
        from repro.extensions.always_trap import AlwaysTrapReloadedRevoker
        from repro.workloads.adversarial import UafAttacker

        w = UafAttacker(rounds=10, churn_objects=60)
        cfg = SimulationConfig(
            revoker=RevokerKind.RELOADED, custom_revoker=AlwaysTrapReloadedRevoker
        )
        Simulation(w, cfg).run()
        assert w.report.uar_hits == 0

    def test_clean_page_trap_heals_without_sweep(self):
        from repro.extensions.always_trap import AlwaysTrapReloadedRevoker

        kernel = Kernel(Machine(memory_bytes=8 << 20))
        revoker = kernel.install_revoker(AlwaysTrapReloadedRevoker)
        heap, res = kernel.address_space.mmap(PAGE_BYTES)
        pte = kernel.machine.pagetable.require(res.start_vpn)
        assert pte.always_trap_cap_loads  # born always-trap
        core = kernel.machine.cores[0]
        from repro.machine.trap import LoadGenerationFault

        with pytest.raises(LoadGenerationFault):
            core.load_cap(heap)  # untagged load STILL traps (fn. 18)
        cycles = kernel.handle_lg_fault(core, LoadGenerationFault(res.start_vpn, heap.base))
        assert cycles > 0
        assert not pte.always_trap_cap_loads
        assert revoker.clean_page_traps == 1
        assert core.load_cap(heap).value is None  # healed: no more traps

    def test_first_cap_store_transitions_disposition(self):
        from repro.extensions.always_trap import AlwaysTrapReloadedRevoker

        kernel = Kernel(Machine(memory_bytes=8 << 20))
        kernel.install_revoker(AlwaysTrapReloadedRevoker)
        heap, res = kernel.address_space.mmap(PAGE_BYTES)
        pte = kernel.machine.pagetable.require(res.start_vpn)
        core = kernel.machine.cores[0]
        core.store_cap(heap, heap)
        assert not pte.always_trap_cap_loads
        assert pte.cap_dirty
        assert pte.lg == core.clg
