"""Settings: the one typed view of every REPRO_* environment knob.

Covers the consolidation contract from docs/API.md:

- one parse point (`Settings.from_env`) with validation and typed
  defaults, `to_env` emitting only non-defaults, and the hypothesis
  round-trip `from_env(to_env(s)) == s`;
- precedence pinned: CLI flag > environment variable > built-in default;
- the historical per-variable semantics preserved (empty string unsets
  most vars but is a loud parse error for the count knobs);
- the grep lint: no direct `REPRO_*` environ reads anywhere in
  src/repro outside settings.py.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest
from hypothesis import given, strategies as st

from repro import settings
from repro.errors import ConfigError
from repro.settings import FIELDS, MANAGED_VARS, Settings

SRC = Path(__file__).resolve().parent.parent / "src" / "repro"


class TestDefaults:
    def test_from_empty_env_is_default(self):
        assert Settings.from_env({}) == Settings()

    def test_default_to_env_is_empty(self):
        assert Settings().to_env() == {}

    def test_every_field_has_a_var(self):
        s = Settings()
        for name, decl in FIELDS.items():
            assert decl.var.startswith("REPRO_")
            assert hasattr(s, name)
        assert len(MANAGED_VARS) == len(FIELDS) == 14


class TestParsing:
    def test_typed_values(self):
        s = Settings.from_env({
            "REPRO_JOBS": "4",
            "REPRO_JOB_TIMEOUT": "2.5",
            "REPRO_CACHE_DIR": "/tmp/c",
            "REPRO_PROGRESS": "1",
            "REPRO_PREFIX_EPOCH": "3",
            "REPRO_PERF_INJECT": "0.25",
        })
        assert s.jobs == 4
        assert s.job_timeout_s == 2.5
        assert s.cache_dir == Path("/tmp/c")
        assert s.progress is True
        assert s.prefix_epoch == 3
        assert s.perf_inject == 0.25

    def test_bad_int_is_loud(self):
        with pytest.raises(ConfigError, match="REPRO_JOBS='three' is not an integer"):
            Settings.from_env({"REPRO_JOBS": "three"})

    def test_bad_timeout_is_loud(self):
        with pytest.raises(ConfigError, match="is not a number"):
            Settings.from_env({"REPRO_JOB_TIMEOUT": "soon"})
        with pytest.raises(ConfigError, match="> 0 seconds"):
            Settings.from_env({"REPRO_JOB_TIMEOUT": "0"})

    def test_range_validation(self):
        with pytest.raises(ConfigError, match="REPRO_JOBS must be >= 0"):
            Settings.from_env({"REPRO_JOBS": "-1"})
        with pytest.raises(ConfigError, match="REPRO_SERVE_WORKERS must be >= 1"):
            Settings.from_env({"REPRO_SERVE_WORKERS": "0"})
        with pytest.raises(ConfigError, match="REPRO_PREFIX_EPOCH must be >= 0"):
            Settings(prefix_epoch=-2)

    def test_empty_string_unsets_most_vars(self):
        # Historical semantics: VAR="" means "unset" for paths, flags,
        # timeouts, and the epoch...
        s = Settings.from_env({
            "REPRO_CACHE_DIR": "",
            "REPRO_JOB_TIMEOUT": "",
            "REPRO_PROGRESS": "",
            "REPRO_PREFIX_EPOCH": "",
        })
        assert s == Settings()

    @pytest.mark.parametrize("var", ["REPRO_JOBS", "REPRO_SERVE_WORKERS",
                                     "REPRO_SERVE_QUEUE"])
    def test_empty_string_is_loud_for_counts(self, var):
        # ...but stays a loud parse error for the count knobs, exactly
        # as the scattered readers behaved before consolidation.
        with pytest.raises(ConfigError, match="is not an integer"):
            Settings.from_env({var: ""})


def _settings_strategy():
    paths = st.one_of(st.none(), st.just(Path("/tmp/repro-test")))
    timeouts = st.one_of(st.none(), st.floats(min_value=0.25, max_value=900.0,
                                              allow_nan=False))
    return st.builds(
        Settings,
        jobs=st.integers(min_value=0, max_value=64),
        job_timeout_s=timeouts,
        cache_dir=paths,
        trace_dir=paths,
        snapshot_dir=paths,
        prefix_dir=paths,
        prefix_epoch=st.integers(min_value=0, max_value=9),
        progress=st.booleans(),
        scalar=st.booleans(),
        serve_workers=st.integers(min_value=1, max_value=16),
        serve_queue=st.integers(min_value=1, max_value=256),
        serve_job_timeout_s=timeouts,
        perf_inject=st.one_of(st.none(),
                              st.floats(min_value=0.01, max_value=10.0,
                                        allow_nan=False)),
        bench_force=st.booleans(),
    )


class TestRoundTrip:
    @given(_settings_strategy())
    def test_env_round_trip(self, s):
        assert Settings.from_env(s.to_env()) == s

    @given(_settings_strategy())
    def test_to_env_only_emits_non_defaults(self, s):
        default = Settings()
        env = s.to_env()
        for name, decl in FIELDS.items():
            if getattr(s, name) == getattr(default, name):
                assert decl.var not in env

    def test_apply_exports_and_unsets(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "9")
        monkeypatch.setenv("REPRO_PROGRESS", "1")
        Settings(cache_dir=Path("/tmp/x")).apply()
        import os

        assert os.environ.get("REPRO_CACHE_DIR") == "/tmp/x"
        # Fields at their default are scrubbed so the environment
        # mirrors the Settings value exactly.
        assert "REPRO_JOBS" not in os.environ
        assert "REPRO_PROGRESS" not in os.environ
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)


class TestAccessors:
    """The module-level accessors re-read the environment per call, so
    monkeypatched tests (and pre-fork exports) see updates."""

    def test_max_workers_resolution(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert settings.max_workers() == 1
        monkeypatch.setenv("REPRO_JOBS", "5")
        assert settings.max_workers() == 5
        monkeypatch.setenv("REPRO_JOBS", "0")
        import os

        assert settings.max_workers() == (os.cpu_count() or 1)

    def test_set_env_round_trips(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE_DIR", raising=False)
        settings.set_env("trace_dir", "/tmp/traces")
        assert settings.trace_dir() == Path("/tmp/traces")
        settings.set_env("trace_dir", None)
        assert settings.trace_dir() is None

    def test_flag_accessor(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALAR", "1")
        assert settings.scalar_mode() is True
        monkeypatch.setenv("REPRO_SCALAR", "0")
        assert settings.scalar_mode() is False


class TestPrecedence:
    """CLI flag > environment variable > built-in default, pinned via
    the campaign command's --jobs flag against REPRO_JOBS."""

    @pytest.fixture()
    def spec_file(self, tmp_path):
        path = tmp_path / "c.json"
        path.write_text(
            '{"name": "p", "workloads": [{"kind": "spec", "params": '
            '{"benchmark": "hmmer", "input": "retro", "scale": 2048}}], '
            '"revokers": ["none"], "seeds": [1]}'
        )
        return str(path)

    def test_flag_beats_env_beats_default(self, monkeypatch, tmp_path, spec_file):
        from repro.runner import pool

        seen = []
        real = pool.run_jobs

        def spy(jobs, **kwargs):
            seen.append(kwargs.get("max_workers"))
            return real(jobs, **kwargs)

        from repro.cli import campaign as campaign_cmd, main

        monkeypatch.setattr(campaign_cmd, "run_jobs", spy, raising=False)
        monkeypatch.setattr("repro.runner.run_jobs", spy)
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))

        # Default: no flag, no env — the pool resolves REPRO_JOBS=unset to 1.
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert main(["campaign", spec_file, "--quiet"]) == 0
        assert seen[-1] is None  # pool default applies
        assert pool.default_max_workers() == 1

        # Env beats default.
        monkeypatch.setenv("REPRO_JOBS", "2")
        assert pool.default_max_workers() == 2

        # Flag beats env.
        assert main(["campaign", spec_file, "--quiet", "--jobs", "3"]) == 0
        assert seen[-1] == 3


class TestLint:
    def test_no_environ_reads_outside_settings(self):
        """The consolidation is total: settings.py is the only module in
        src/repro that touches a REPRO_* environment variable."""
        pattern = re.compile(
            r"environ\[\s*[\"']REPRO_"
            r"|environ\.get\(\s*[\"']REPRO_"
            r"|getenv\(\s*[\"']REPRO_"
        )
        offenders = []
        for path in sorted(SRC.rglob("*.py")):
            if path.name == "settings.py":
                continue
            if pattern.search(path.read_text()):
                offenders.append(str(path.relative_to(SRC)))
        assert offenders == []
