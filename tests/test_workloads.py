"""Tests for the workload layer: SPEC profiles, churn engine, pgbench,
and gRPC QPS."""

from __future__ import annotations

import pytest

from repro.alloc.quarantine import QuarantinePolicy
from repro.core.config import RevokerKind, SimulationConfig
from repro.core.simulation import Simulation
from repro.errors import ConfigError
from repro.workloads import spec
from repro.workloads.churn import ChurnProfile, ChurnWorkload, SizeMix
from repro.workloads.grpc_qps import GrpcQpsWorkload, OUTSTANDING_PER_THREAD
from repro.workloads.pgbench import PgBenchWorkload


class TestSizeMix:
    def test_mean(self):
        mix = SizeMix((100, 200), (1.0, 1.0))
        assert mix.mean() == 150

    def test_sample_respects_support(self):
        import random

        mix = SizeMix((64, 256, 1024), (0.5, 0.3, 0.2))
        rng = random.Random(1)
        samples = {mix.sample(rng) for _ in range(500)}
        assert samples <= {64, 256, 1024}
        assert len(samples) == 3

    def test_sample_deterministic(self):
        import random

        mix = SizeMix((64, 256), (0.5, 0.5))
        a = [mix.sample(random.Random(42)) for _ in range(20)]
        b = [mix.sample(random.Random(42)) for _ in range(20)]
        assert a == b

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            SizeMix((1, 2), (1.0,))


class TestSpecRegistry:
    def test_all_eight_benchmarks_present(self):
        assert set(spec.BENCHMARKS) == {
            "astar", "bzip2", "gobmk", "hmmer", "libquantum", "omnetpp",
            "sjeng", "xalancbmk",
        }

    def test_revoking_subset_excludes_bzip2_sjeng(self):
        assert "bzip2" not in spec.REVOKING_BENCHMARKS
        assert "sjeng" not in spec.REVOKING_BENCHMARKS

    def test_multi_input_benchmarks(self):
        assert spec.inputs_of("astar") == ["lakes", "rivers"]
        assert spec.inputs_of("hmmer") == ["nph3", "retro"]

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(ConfigError):
            spec.inputs_of("gcc")
        with pytest.raises(ConfigError):
            spec.workload("gcc")

    def test_unknown_input_rejected(self):
        with pytest.raises(ConfigError):
            spec.workload("astar", "mountains")

    def test_default_input_is_first(self):
        w = spec.workload("astar")
        assert w.name == "astar.lakes"

    def test_scale_divides_bytes(self):
        w1 = spec.workload("xalancbmk", scale=64)
        w2 = spec.workload("xalancbmk", scale=128)
        assert w1.profile.heap_bytes == 2 * w2.profile.heap_bytes
        assert w1.profile.churn_bytes == 2 * w2.profile.churn_bytes

    def test_policy_floor_scales(self):
        assert spec.scaled_policy(64).min_bytes == (8 << 20) // 64

    def test_invalid_scale_rejected(self):
        with pytest.raises(ConfigError):
            spec.workload("astar", scale=0)

    def test_table2_rows_registered(self):
        for bench, inp in spec.TABLE2_ROWS:
            assert spec.workload(bench, inp, scale=1024) is not None


class TestChurnEngine:
    def run_churn(self, kind=RevokerKind.RELOADED, seed=1):
        profile = ChurnProfile(
            name="t",
            heap_bytes=64 << 10,
            churn_bytes=256 << 10,
            size_mix=SizeMix((64, 512), (0.7, 0.3)),
            pointer_slots=2,
            seed=seed,
        )
        w = ChurnWorkload(profile, QuarantinePolicy(min_bytes=16 << 10))
        sim = Simulation(w, SimulationConfig(revoker=kind))
        return w, sim, sim.run()

    def test_churn_reaches_target(self):
        w, sim, result = self.run_churn()
        assert sim.alloc.total_freed_bytes >= w.profile.churn_bytes

    def test_heap_stays_near_target(self):
        w, sim, _ = self.run_churn()
        # The churn loop frees and reallocates with random sizes, so the
        # live heap drifts around the target rather than pinning it.
        assert 0.6 * w.profile.heap_bytes <= sim.alloc.allocated_bytes
        assert sim.alloc.allocated_bytes <= 2 * w.profile.heap_bytes

    def test_deterministic_iteration_count(self):
        w1, _, _ = self.run_churn(seed=9)
        w2, _, _ = self.run_churn(seed=9)
        assert w1.iterations_run == w2.iterations_run

    def test_different_seed_different_trace(self):
        w1, _, _ = self.run_churn(seed=1)
        w2, _, _ = self.run_churn(seed=2)
        assert w1.iterations_run != w2.iterations_run

    def test_revocation_engages(self):
        _, sim, result = self.run_churn()
        assert result.revocations >= 1
        assert result.caps_revoked > 0

    def test_stale_loads_seen_under_revocation(self):
        w, _, _ = self.run_churn()
        assert w.stale_loads > 0

    def test_estimated_iterations_close(self):
        w, _, _ = self.run_churn()
        estimate = w.profile.iterations()
        assert 0.5 * estimate <= w.iterations_run <= 2 * estimate


class TestBenchmarkScaledRuns:
    """Tiny-scale smoke runs of representative SPEC surrogates."""

    @pytest.mark.parametrize("bench", ["gobmk", "hmmer"])
    def test_small_bench_runs_and_revokes(self, bench):
        w = spec.workload(bench, scale=1024)
        result = Simulation(w, SimulationConfig(revoker=RevokerKind.RELOADED)).run()
        assert result.wall_cycles > 0
        assert result.revocations >= 1

    def test_bzip2_never_revokes(self):
        w = spec.workload("bzip2", "chicken", scale=1024)
        result = Simulation(w, SimulationConfig(revoker=RevokerKind.RELOADED)).run()
        assert result.revocations == 0

    def test_sjeng_never_revokes(self):
        w = spec.workload("sjeng", scale=1024)
        result = Simulation(w, SimulationConfig(revoker=RevokerKind.RELOADED)).run()
        assert result.revocations == 0


class TestPgBench:
    def run_pg(self, **kw):
        kw.setdefault("transactions", 150)
        kw.setdefault("scale", 16)
        w = PgBenchWorkload(**kw)
        sim = Simulation(w, SimulationConfig(revoker=RevokerKind.RELOADED))
        return w, sim.run()

    def test_records_one_latency_per_transaction(self):
        w, result = self.run_pg()
        assert len(result.latencies) == w.transactions
        assert w.completed == w.transactions

    def test_latencies_positive_and_plausible(self):
        _, result = self.run_pg()
        ms = [s.millis for s in result.latencies]
        assert all(m > 0 for m in ms)
        assert 0.5 < sorted(ms)[len(ms) // 2] < 50

    def test_server_idles_between_transactions(self):
        _, result = self.run_pg()
        assert result.app_cpu_cycles < result.wall_cycles

    def test_rate_mode_slows_throughput(self):
        _, serial = self.run_pg(transactions=100)
        _, paced = self.run_pg(transactions=100, rate_tps=50.0)
        assert paced.wall_cycles > serial.wall_cycles

    def test_rate_mode_latency_ignores_schedule_lag(self):
        w, result = self.run_pg(transactions=100, rate_tps=50.0)
        ms = [s.millis for s in result.latencies]
        # Latency is per-transaction work, not the 20 ms schedule interval.
        assert sorted(ms)[len(ms) // 2] < 15

    def test_revocation_engages(self):
        _, result = self.run_pg(transactions=300)
        assert result.revocations >= 1


class TestGrpcQps:
    def run_grpc(self, kind=RevokerKind.RELOADED):
        w = GrpcQpsWorkload(duration_seconds=0.2, scale=256)
        cfg = SimulationConfig(revoker=kind, revoker_core=2)
        sim = Simulation(w, cfg)
        return w, sim, sim.run()

    def test_two_server_threads(self):
        w, sim, _ = self.run_grpc()
        names = [t.name for t in sim.machine.scheduler.threads]
        assert "grpc-server-0" in names and "grpc-server-1" in names

    def test_completes_requests_on_both_threads(self):
        w, _, result = self.run_grpc()
        labels = {s.label for s in result.latencies}
        assert labels == {"rpc0", "rpc1"}
        assert w.completed > 2 * OUTSTANDING_PER_THREAD

    def test_closed_loop_latency_reflects_queue(self):
        w, _, result = self.run_grpc(kind=RevokerKind.NONE)
        lat = sorted(s.cycles for s in result.latencies)
        median = lat[len(lat) // 2]
        # With C outstanding and ~service-time pacing, the median latency
        # is roughly C x the median service gap.
        assert median > OUTSTANDING_PER_THREAD * 500_000

    def test_kernel_hoards_used(self):
        w, sim, _ = self.run_grpc()
        assert sim.kernel.hoards.total_caps() > 0

    def test_throughput_property(self):
        w, _, _ = self.run_grpc()
        assert w.throughput_qps > 0
