"""docs/API.md is the stability contract: every name its code fences
import must actually import, and the ``repro.api`` facade must cover the
documented surface."""

from __future__ import annotations

import ast
import re
from pathlib import Path

import pytest

DOC = Path(__file__).resolve().parent.parent / "docs" / "API.md"

_FENCE = re.compile(r"```python\n(.*?)```", re.DOTALL)


def _documented_imports() -> list[tuple[str, str]]:
    """Every ``import``/``from ... import`` statement in the doc's
    python fences, as (statement_source, fence_excerpt) pairs."""
    statements = []
    for fence in _FENCE.findall(DOC.read_text()):
        try:
            tree = ast.parse(fence)
        except SyntaxError:
            # Some fences are illustrative sketches (class bodies using
            # undefined helpers); they still must parse — a SyntaxError
            # in the docs is a doc bug worth failing on.
            raise AssertionError(f"docs/API.md fence does not parse:\n{fence}")
        for node in tree.body:
            if isinstance(node, (ast.Import, ast.ImportFrom)):
                statements.append((ast.unparse(node), fence[:80]))
    return statements


def test_doc_has_fences():
    assert len(_documented_imports()) >= 10


@pytest.mark.parametrize(
    "statement",
    [s for s, _ in _documented_imports()],
    ids=lambda s: s.replace(" ", "_")[:60],
)
def test_documented_import_resolves(statement):
    # Exec in a scratch namespace: an ImportError (missing module OR
    # missing symbol) fails the test, which is the point.
    exec(statement, {})


def test_facade_all_resolves():
    import repro.api as api

    missing = [name for name in api.__all__ if not hasattr(api, name)]
    assert missing == []


def test_facade_covers_core_surface():
    """The facade re-exports the load-bearing names from every layer —
    enough that downstream code needs exactly one import line."""
    import repro.api as api

    for name in (
        "RevokerKind", "SimulationConfig", "Simulation", "RunResult",
        "run_experiment", "compare_strategies",
        "Settings",
        "CampaignSpec", "Job", "run_jobs", "run_campaign",
        "Executor", "PoolExecutor",
        "DistributedExecutor", "NodeSpec", "parse_nodes", "HashRing",
        "ServeClient",
        "ReproError", "ConfigError", "DistError",
    ):
        assert name in api.__all__, name
        assert getattr(api, name) is not None
