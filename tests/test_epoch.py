"""Unit tests for the epoch clock and the dequarantine rule (§2.2.3)."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.kernel.epoch import EpochClock, release_epoch_for


class TestEpochClock:
    def test_starts_idle_at_zero(self):
        clock = EpochClock()
        assert clock.read() == 0
        assert not clock.revoking

    def test_begin_makes_counter_odd(self):
        clock = EpochClock()
        clock.begin_revocation()
        assert clock.read() == 1
        assert clock.revoking

    def test_end_makes_counter_even(self):
        clock = EpochClock()
        clock.begin_revocation()
        clock.end_revocation()
        assert clock.read() == 2
        assert not clock.revoking
        assert clock.completed == 1

    def test_double_begin_rejected(self):
        clock = EpochClock()
        clock.begin_revocation()
        with pytest.raises(SimulationError):
            clock.begin_revocation()

    def test_end_without_begin_rejected(self):
        with pytest.raises(SimulationError):
            EpochClock().end_revocation()

    def test_completed_counts_epochs(self):
        clock = EpochClock()
        for _ in range(5):
            clock.begin_revocation()
            clock.end_revocation()
        assert clock.completed == 5
        assert clock.read() == 10


class TestReleaseRule:
    """§2.2.3: wait for the counter to advance at least twice (observed
    even) or thrice (observed odd) — one revocation must both begin and
    end after the paint."""

    def test_even_observation_needs_two(self):
        assert release_epoch_for(0) == 2
        assert release_epoch_for(4) == 6

    def test_odd_observation_needs_three(self):
        assert release_epoch_for(1) == 4
        assert release_epoch_for(5) == 8

    def test_release_point_is_always_even(self):
        for observed in range(10):
            assert release_epoch_for(observed) % 2 == 0

    def test_full_revocation_happens_before_release(self):
        """Walking the counter forward from any observation, at least one
        complete begin->end pair lies between observation and release."""
        for observed in range(8):
            release = release_epoch_for(observed)
            # Epoch transitions between observed and release:
            transitions = list(range(observed + 1, release + 1))
            begins = [t for t in transitions if t % 2 == 1]
            ends = [t for t in transitions if t % 2 == 0]
            assert any(b < e for b in begins for e in ends)
