"""Unit tests for the address space: mmap, reservations, guard pages."""

from __future__ import annotations

import pytest

from repro.errors import VMError
from repro.kernel.vm import AddressSpace, ReservationState
from repro.machine.costs import PAGE_BYTES
from repro.machine.machine import Machine
from repro.machine.trap import PageFault


@pytest.fixture
def machine() -> Machine:
    return Machine(memory_bytes=16 << 20)


@pytest.fixture
def aspace(machine) -> AddressSpace:
    return AddressSpace(machine)


class TestMmap:
    def test_returns_root_capability(self, aspace):
        cap, res = aspace.mmap(8192)
        assert cap.tag
        assert cap.length >= 8192
        assert cap.base % PAGE_BYTES == 0

    def test_pages_are_mapped(self, aspace, machine):
        cap, res = aspace.mmap(8192)
        for vpn in range(res.start_vpn, res.start_vpn + res.num_pages):
            assert vpn in machine.pagetable

    def test_non_overlapping(self, aspace):
        a, _ = aspace.mmap(4096)
        b, _ = aspace.mmap(4096)
        assert a.top <= b.base or b.top <= a.base

    def test_representable_padding(self, aspace):
        # A large region must be padded to its representable length.
        cap, res = aspace.mmap((1 << 20) + 1)
        assert cap.length >= (1 << 20) + 1
        assert res.num_pages * PAGE_BYTES == cap.length

    def test_zero_size_rejected(self, aspace):
        with pytest.raises(VMError):
            aspace.mmap(0)

    def test_exhaustion_detected(self, aspace):
        with pytest.raises(VMError):
            aspace.mmap(1 << 30)

    def test_new_pages_inherit_current_generation(self, aspace, machine):
        aspace.current_lg = 1
        _, res = aspace.mmap(4096)
        assert machine.pagetable.require(res.start_vpn).lg == 1

    def test_rss_accounting(self, aspace):
        before = aspace.mapped_pages
        aspace.mmap(PAGE_BYTES * 3)
        assert aspace.mapped_pages == before + 3
        assert aspace.peak_mapped_pages >= aspace.mapped_pages
        assert aspace.rss_bytes == aspace.mapped_pages * PAGE_BYTES


class TestMunmapAndReservations:
    def test_partial_munmap_leaves_guards(self, aspace, machine):
        """§6.2: holes become guard pages so later mmaps cannot fill them."""
        cap, res = aspace.mmap(PAGE_BYTES * 4)
        aspace.munmap(res, cap.base + PAGE_BYTES, PAGE_BYTES)
        pte = machine.pagetable.require(res.start_vpn + 1)
        assert pte.guard
        assert res.state is ReservationState.ACTIVE

    def test_guarded_page_faults_on_access(self, aspace, machine):
        cap, res = aspace.mmap(PAGE_BYTES * 2)
        aspace.munmap(res, cap.base, PAGE_BYTES)
        with pytest.raises(PageFault):
            machine.cores[0].load_data(cap, 8)

    def test_full_munmap_quarantines_reservation(self, aspace):
        cap, res = aspace.mmap(PAGE_BYTES * 2)
        aspace.munmap(res, cap.base, PAGE_BYTES * 2)
        assert res.state is ReservationState.QUARANTINED

    def test_double_munmap_rejected(self, aspace):
        cap, res = aspace.mmap(PAGE_BYTES * 2)
        aspace.munmap(res, cap.base, PAGE_BYTES)
        with pytest.raises(VMError):
            aspace.munmap(res, cap.base, PAGE_BYTES)

    def test_unaligned_munmap_rejected(self, aspace):
        cap, res = aspace.mmap(PAGE_BYTES * 2)
        with pytest.raises(VMError):
            aspace.munmap(res, cap.base + 8, PAGE_BYTES)

    def test_munmap_outside_reservation_rejected(self, aspace):
        cap, res = aspace.mmap(PAGE_BYTES)
        with pytest.raises(VMError):
            aspace.munmap(res, cap.base + PAGE_BYTES, PAGE_BYTES)

    def test_munmap_clears_tags(self, aspace, machine):
        cap, res = aspace.mmap(PAGE_BYTES)
        machine.cores[0].store_cap(cap, cap)
        aspace.munmap(res, cap.base, PAGE_BYTES)
        assert machine.memory.page_tag_count(res.start_vpn) == 0

    def test_munmap_reduces_rss(self, aspace):
        cap, res = aspace.mmap(PAGE_BYTES * 4)
        before = aspace.mapped_pages
        aspace.munmap(res, cap.base, PAGE_BYTES * 2)
        assert aspace.mapped_pages == before - 2

    def test_recycle_requires_quarantined(self, aspace):
        cap, res = aspace.mmap(PAGE_BYTES)
        with pytest.raises(VMError):
            aspace.recycle(res)

    def test_recycle_unmaps_ptes(self, aspace, machine):
        cap, res = aspace.mmap(PAGE_BYTES)
        aspace.munmap(res, cap.base, PAGE_BYTES)
        aspace.recycle(res)
        assert res.start_vpn not in machine.pagetable
        assert res.state is ReservationState.RECYCLED
