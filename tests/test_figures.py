"""Tests for the figure-data builders."""

from __future__ import annotations

import pytest

from repro.analysis.figures import (
    METRIC_BUS,
    METRIC_WALL,
    OverheadPoint,
    PauseSummary,
    build_latency_grid,
    build_overhead_series,
    build_phase_boxes,
    build_table2_row,
)
from repro.core.config import RevokerKind, SimulationConfig
from repro.core.experiment import compare_strategies
from repro.core.metrics import LatencySample, RunResult
from repro.kernel.revoker.base import EpochRecord, PhaseSample
from repro.workloads.microbench import PingPongAllocator


def fake_result(kind, wall=100, cpu=None, bus=10, latencies=(), pauses=(),
                records=()):
    r = RunResult("w", kind, wall_cycles=wall)
    r.cpu_cycles_by_core = {"core3": cpu if cpu is not None else wall}
    r.bus_by_source = {"core3": bus}
    r.latencies = [LatencySample("x", 0, c) for c in latencies]
    r.stw_pauses = list(pauses)
    r.epoch_records = list(records)
    return r


class TestOverheadSeries:
    def test_overhead_math(self):
        p = OverheadPoint("b", RevokerKind.RELOADED, baseline=100, test=125)
        assert p.overhead == pytest.approx(0.25)
        assert p.ratio == pytest.approx(1.25)

    def test_builder_grid(self):
        results = {
            "alpha": {
                RevokerKind.NONE: fake_result(RevokerKind.NONE, wall=100),
                RevokerKind.RELOADED: fake_result(RevokerKind.RELOADED, wall=110),
            },
            "beta": {
                RevokerKind.NONE: fake_result(RevokerKind.NONE, wall=200),
                RevokerKind.RELOADED: fake_result(RevokerKind.RELOADED, wall=300),
            },
        }
        series = build_overhead_series(
            results, METRIC_WALL, "wall", (RevokerKind.RELOADED,)
        )
        assert series.overhead("alpha", RevokerKind.RELOADED) == pytest.approx(0.10)
        assert series.overhead("beta", RevokerKind.RELOADED) == pytest.approx(0.50)
        assert series.benchmarks() == ["alpha", "beta"]
        assert len(series.strategy_overheads(RevokerKind.RELOADED)) == 2

    def test_missing_point_raises(self):
        series = build_overhead_series({}, METRIC_BUS, "bus", ())
        with pytest.raises(KeyError):
            series.overhead("nope", RevokerKind.RELOADED)


class TestLatencyGrid:
    def test_grid_and_normalization(self):
        base = fake_result(RevokerKind.NONE, latencies=[2_500_000] * 99 + [25_000_000])
        test = fake_result(RevokerKind.RELOADED, latencies=[2_500_000] * 99 + [50_000_000])
        grid = build_latency_grid(
            {RevokerKind.NONE: base, RevokerKind.RELOADED: test},
            percentiles=(50, 99.9),
        )
        assert grid.value(RevokerKind.NONE, 50) == pytest.approx(1.0)  # 1 ms
        norm = grid.normalized_to(RevokerKind.NONE)
        assert norm.value(RevokerKind.RELOADED, 50) == pytest.approx(1.0)
        assert norm.value(RevokerKind.RELOADED, 99.9) > 1.5


class TestPhaseBoxes:
    def test_extracts_phases_and_faults(self):
        rec = EpochRecord(epoch=1)
        rec.phases.append(PhaseSample(1, "stw", "stw", 0, 250_000))
        rec.phases.append(PhaseSample(1, "conc", "concurrent", 250_000, 1_000_000))
        rec.fault_cycles = 50_000
        result = fake_result(RevokerKind.RELOADED, records=[rec])
        boxes = build_phase_boxes("bench", {RevokerKind.RELOADED: result})
        kinds = {(b.strategy, b.phase) for b in boxes}
        assert (RevokerKind.RELOADED, "stw") in kinds
        assert (RevokerKind.RELOADED, "concurrent") in kinds
        assert (RevokerKind.RELOADED, "fault-sum") in kinds
        stw = next(b for b in boxes if b.phase == "stw")
        assert stw.stats.median == pytest.approx(100.0)  # 250k cycles = 100 us


class TestSummaries:
    def test_table2_row(self):
        r = fake_result(RevokerKind.RELOADED, wall=2_500_000_000)
        r.mean_alloc_bytes = float(1 << 20)
        r.sum_freed_bytes = 10 << 20
        r.revocations = 5
        row = build_table2_row("x", r)
        assert row.freed_to_alloc == pytest.approx(10.0)
        assert row.rev_per_sec == pytest.approx(5.0)
        assert row.rev_per_freed_mib == pytest.approx(0.5)

    def test_pause_summary_empty(self):
        s = PauseSummary.of(fake_result(RevokerKind.NONE))
        assert s.count == 0 and s.max_ms == 0.0

    def test_pause_summary_values(self):
        r = fake_result(RevokerKind.CHERIVOKE, pauses=[2_500_000, 7_500_000])
        s = PauseSummary.of(r)
        assert s.count == 2
        assert s.max_ms == pytest.approx(3.0)

    def test_end_to_end_with_real_runs(self):
        results = compare_strategies(
            lambda: PingPongAllocator(iterations=300),
            (RevokerKind.NONE, RevokerKind.RELOADED),
        )
        series = build_overhead_series(
            {"pingpong": results}, METRIC_WALL, "wall", (RevokerKind.RELOADED,)
        )
        assert series.overhead("pingpong", RevokerKind.RELOADED) >= 0.0
