"""Integration tests for the Simulation orchestrator and AppContext."""

from __future__ import annotations

from typing import Generator

import pytest

from repro.alloc.quarantine import QuarantinePolicy
from repro.core.config import MachineConfig, RevokerKind, SimulationConfig
from repro.core.simulation import AppContext, Simulation
from repro.errors import ConfigError, SimulationError
from repro.workloads.base import Workload


class MiniWorkload(Workload):
    name = "mini"
    quarantine_policy = QuarantinePolicy(min_bytes=4096)

    def __init__(self, churn: int = 50) -> None:
        self.churn = churn

    def run(self, ctx: AppContext) -> Generator:
        caps = []
        for i in range(self.churn):
            cap = yield from ctx.malloc(512)
            yield from ctx.store_cap(cap.with_address(cap.base), cap)
            caps.append(cap)
            if len(caps) > 8:
                yield from ctx.free(caps.pop(0))
            loaded = yield from ctx.load_cap(caps[-1].with_address(caps[-1].base))
            if loaded is not None and loaded.tag:
                yield from ctx.load_data(loaded, 64)
            yield from ctx.compute(1000)


class TwoThreadWorkload(Workload):
    name = "two-threads"

    def thread_bodies(self):
        return [("t0", self._body), ("t1", self._body)]

    def _body(self, ctx: AppContext) -> Generator:
        cap = yield from ctx.malloc(256)
        yield from ctx.compute(5000)
        yield from ctx.free(cap)


class TestSimulationLifecycle:
    def test_run_returns_result(self):
        result = Simulation(MiniWorkload()).run()
        assert result.wall_cycles > 0
        assert result.workload == "mini"
        assert result.revoker is RevokerKind.RELOADED

    def test_simulation_runs_once(self):
        sim = Simulation(MiniWorkload())
        sim.run()
        with pytest.raises(SimulationError):
            sim.run()

    def test_every_strategy_completes(self):
        for kind in RevokerKind:
            result = Simulation(
                MiniWorkload(), SimulationConfig(revoker=kind)
            ).run()
            assert result.wall_cycles > 0

    def test_epoch_drained_at_exit(self):
        sim = Simulation(MiniWorkload(200))
        sim.run()
        assert not sim.kernel.epoch.revoking

    def test_multi_thread_placement(self):
        sim = Simulation(TwoThreadWorkload())
        result = sim.run()
        names = {t.name: t.core.index for t in sim.machine.scheduler.threads}
        assert names["t0"] == 3
        assert names["t1"] == 2

    def test_too_many_threads_rejected(self):
        class Many(Workload):
            name = "many"

            def thread_bodies(self):
                return [(f"t{i}", self._b) for i in range(9)]

            def _b(self, ctx):
                yield 1

        with pytest.raises(SimulationError):
            Simulation(Many()).run()

    def test_invalid_config_rejected(self):
        cfg = SimulationConfig(app_core=7)
        with pytest.raises(ConfigError):
            Simulation(MiniWorkload(), cfg)

    def test_controller_core_respected(self):
        cfg = SimulationConfig(revoker_core=1)
        sim = Simulation(MiniWorkload(), cfg)
        sim.run()
        names = {t.name: t.core.index for t in sim.machine.scheduler.threads}
        assert names["mrs-controller"] == 1


class TestMetricsCollection:
    def test_cpu_cycles_by_core_covers_app_and_controller(self):
        sim = Simulation(MiniWorkload(200))
        result = sim.run()
        assert result.cpu_cycles_by_core.get("core3", 0) > 0  # app
        assert result.cpu_cycles_by_core.get("core2", 0) > 0  # controller
        assert result.app_cpu_cycles <= result.total_cpu_cycles

    def test_wall_at_least_app_cpu(self):
        result = Simulation(MiniWorkload()).run()
        assert result.wall_cycles >= result.app_cpu_cycles

    def test_bus_by_source(self):
        result = Simulation(MiniWorkload(200)).run()
        assert result.total_bus_transactions > 0
        assert "core3" in result.bus_by_source

    def test_revocation_statistics(self):
        result = Simulation(MiniWorkload(300)).run()
        assert result.revocations >= 1
        assert result.sum_freed_bytes > 0
        assert result.mean_alloc_bytes > 0
        assert result.epoch_records
        assert result.pages_swept >= 1

    def test_stw_pauses_recorded_for_reloaded(self):
        result = Simulation(MiniWorkload(300)).run()
        assert len(result.stw_pauses) == result.revocations

    def test_peak_rss_positive(self):
        result = Simulation(MiniWorkload()).run()
        assert result.peak_rss_bytes > 0

    def test_baseline_has_no_revocation_metrics(self):
        result = Simulation(
            MiniWorkload(), SimulationConfig(revoker=RevokerKind.NONE)
        ).run()
        assert result.revocations == 0
        assert result.epoch_records == []
        assert result.stw_pauses == []

    def test_summary_is_one_line(self):
        result = Simulation(MiniWorkload()).run()
        assert "\n" not in result.summary()
        assert "mini" in result.summary()


class TestAppContext:
    def test_latency_recording(self):
        class Latency(Workload):
            name = "lat"

            def run(self, ctx):
                begin = ctx.now()
                yield from ctx.compute(500)
                ctx.record_latency("op", begin, ctx.now())

        sim = Simulation(Latency(), SimulationConfig(revoker=RevokerKind.NONE))
        result = sim.run()
        assert len(result.latencies) == 1
        assert result.latencies[0].cycles >= 500

    def test_idle_advances_wall_not_cpu(self):
        class Idler(Workload):
            name = "idler"

            def run(self, ctx):
                yield from ctx.compute(100)
                yield from ctx.idle(10_000)

        result = Simulation(Idler(), SimulationConfig(revoker=RevokerKind.NONE)).run()
        assert result.wall_cycles >= 10_100
        assert result.app_cpu_cycles < 10_000

    def test_kernel_stash_roundtrip(self):
        class Stasher(Workload):
            name = "stash"
            out = {}

            def run(self, ctx):
                cap = yield from ctx.malloc(64)
                t = ctx.stash_in_kernel("aio", cap)
                Stasher.out["same"] = ctx.retrieve_from_kernel("aio", t) == cap

        Simulation(Stasher(), SimulationConfig(revoker=RevokerKind.NONE)).run()
        assert Stasher.out["same"]

    def test_machine_config_respected(self):
        cfg = SimulationConfig(
            revoker=RevokerKind.NONE,
            machine=MachineConfig(memory_bytes=8 << 20, num_cores=2, cache_bytes=1 << 16),
            app_core=1,
            revoker_core=0,
        )
        sim = Simulation(MiniWorkload(), cfg)
        assert sim.machine.num_cores == 2
        assert sim.machine.cores[0].cache.capacity_lines == (1 << 16) // 64
        sim.run()
