"""Unit tests for RunResult derived metrics and configuration validation."""

from __future__ import annotations

import pytest

from repro.core.config import MachineConfig, RevokerKind, SimulationConfig
from repro.core.metrics import LatencySample, RunResult
from repro.errors import ConfigError
from repro.kernel.revoker.base import EpochRecord
from repro.machine.costs import CYCLES_PER_SECOND


class TestLatencySample:
    def test_cycles_and_millis(self):
        s = LatencySample("tx", 1000, 1000 + CYCLES_PER_SECOND // 1000)
        assert s.cycles == CYCLES_PER_SECOND // 1000
        assert s.millis == pytest.approx(1.0)


class TestRunResultDerived:
    def make(self) -> RunResult:
        r = RunResult("w", RevokerKind.RELOADED)
        r.wall_cycles = CYCLES_PER_SECOND  # one second
        r.cpu_cycles_by_core = {"core3": 100, "core2": 50}
        r.bus_by_source = {"core3": 7, "core2": 3}
        return r

    def test_totals(self):
        r = self.make()
        assert r.total_cpu_cycles == 150
        assert r.total_bus_transactions == 10
        assert r.wall_seconds == pytest.approx(1.0)

    def test_freed_to_alloc_guards_zero(self):
        r = self.make()
        assert r.freed_to_alloc_ratio == 0.0
        r.mean_alloc_bytes = 100.0
        r.sum_freed_bytes = 1000
        assert r.freed_to_alloc_ratio == pytest.approx(10.0)

    def test_revocations_per_second(self):
        r = self.make()
        r.revocations = 4
        assert r.revocations_per_second == pytest.approx(4.0)
        r.wall_cycles = 0
        assert r.revocations_per_second == 0.0

    def test_fault_cycles_aggregation(self):
        r = self.make()
        a, b = EpochRecord(1), EpochRecord(3)
        a.fault_cycles, b.fault_cycles = 100, 250
        r.epoch_records = [a, b]
        assert r.total_fault_cycles == 350

    def test_max_pause_empty(self):
        assert self.make().max_stw_pause_ms() == 0.0

    def test_latency_cycles_list(self):
        r = self.make()
        r.latencies = [LatencySample("x", 0, 10), LatencySample("x", 5, 25)]
        assert r.latency_cycles() == [10, 20]

    def test_summary_contains_key_fields(self):
        text = self.make().summary()
        assert "w/reloaded" in text
        assert "wall=" in text and "revocations=" in text


class TestConfigValidation:
    def test_defaults_valid(self):
        SimulationConfig().validate()

    def test_app_core_bounds(self):
        with pytest.raises(ConfigError):
            SimulationConfig(app_core=4).validate()
        with pytest.raises(ConfigError):
            SimulationConfig(app_core=-1).validate()

    def test_revoker_core_bounds(self):
        with pytest.raises(ConfigError):
            SimulationConfig(revoker_core=9).validate()

    def test_machine_validation(self):
        with pytest.raises(ConfigError):
            MachineConfig(num_cores=0).validate()
        with pytest.raises(ConfigError):
            MachineConfig(memory_bytes=1024).validate()

    def test_fewer_cores_needs_adjusted_pins(self):
        cfg = SimulationConfig(machine=MachineConfig(num_cores=2))
        with pytest.raises(ConfigError):
            cfg.validate()  # default app_core=3 out of range
        cfg = SimulationConfig(
            machine=MachineConfig(num_cores=2), app_core=1, revoker_core=0
        )
        cfg.validate()

    def test_provides_safety_matrix(self):
        assert not RevokerKind.NONE.provides_safety
        assert not RevokerKind.PAINT_SYNC.provides_safety
        for kind in (RevokerKind.CHERIVOKE, RevokerKind.CORNUCOPIA,
                     RevokerKind.RELOADED):
            assert kind.provides_safety

    def test_kind_values_are_stable_strings(self):
        # The CLI and serialized results depend on these exact values.
        assert {k.value for k in RevokerKind} == {
            "none", "paint+sync", "cherivoke", "cornucopia", "reloaded",
        }
