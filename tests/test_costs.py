"""Unit tests for the cost model and cycle/time conversions."""

from __future__ import annotations

import pytest

from repro.machine.costs import (
    CYCLES_PER_SECOND,
    CostModel,
    GRANULES_PER_PAGE,
    GRANULE_BYTES,
    LINES_PER_PAGE,
    LINE_BYTES,
    PAGE_BYTES,
    cycles_to_micros,
    cycles_to_millis,
    cycles_to_seconds,
    default_cost_model,
)


class TestGeometry:
    def test_granules_per_page(self):
        assert GRANULES_PER_PAGE * GRANULE_BYTES == PAGE_BYTES
        assert GRANULES_PER_PAGE == 256

    def test_lines_per_page(self):
        assert LINES_PER_PAGE * LINE_BYTES == PAGE_BYTES
        assert LINES_PER_PAGE == 64

    def test_granule_matches_cheri_tag_density(self):
        # One tag per 16 bytes: the density of CHERI-128 tags (§2.2.2).
        assert GRANULE_BYTES == 16


class TestConversions:
    def test_one_second(self):
        assert cycles_to_seconds(CYCLES_PER_SECOND) == pytest.approx(1.0)

    def test_one_milli(self):
        assert cycles_to_millis(CYCLES_PER_SECOND // 1000) == pytest.approx(1.0)

    def test_one_micro(self):
        assert cycles_to_micros(CYCLES_PER_SECOND // 1_000_000) == pytest.approx(1.0)

    def test_morello_clock(self):
        assert CYCLES_PER_SECOND == 2_500_000_000  # 2.5 GHz (§2.1.1)


class TestDerivedCosts:
    def test_page_sweep_scales_with_tags(self):
        costs = default_cost_model()
        empty = costs.page_sweep_cycles(0, 0)
        tagged = costs.page_sweep_cycles(100, 0)
        revoked = costs.page_sweep_cycles(100, 50)
        assert empty < tagged < revoked

    def test_page_sweep_floor_covers_all_granules(self):
        costs = default_cost_model()
        assert costs.page_sweep_cycles(0, 0) >= GRANULES_PER_PAGE * costs.sweep_granule

    def test_stw_scales_with_threads(self):
        costs = default_cost_model()
        single = costs.stw_cycles(0, 0, 0)
        multi = costs.stw_cycles(1, 0, 0)
        assert multi - single == costs.stw_per_extra_thread

    def test_stw_single_thread_is_tens_of_microseconds(self):
        # §5.4: Reloaded's single-threaded STW is "tens of microseconds".
        costs = default_cost_model()
        us = cycles_to_micros(costs.stw_cycles(0, 32, 0))
        assert 5 < us < 100

    def test_stream_cheaper_than_random_miss(self):
        # Sweeps stream memory with prefetch (§5.6); random misses pay
        # full DRAM latency.
        costs = default_cost_model()
        assert costs.mem_stream < costs.mem_miss

    def test_model_is_mutable_for_ablation(self):
        costs = CostModel(mem_miss=500)
        assert costs.mem_miss == 500
        assert default_cost_model().mem_miss != 500 or True
        # fresh instances are independent
        assert default_cost_model() is not default_cost_model()
