"""Tests for the schedule-exploration engine and temporal-safety oracles.

Covers: policy semantics and determinism, bit-identity of the default
round-robin policy with the policy-free scheduler, the oracle suite on
clean runs, the sleeper-ordering bug being *caught* when deliberately
re-introduced (with a minimized, replayable artifact), artifact
round-trips, the epoch full-pass property under hypothesis, and the
``repro check`` CLI.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.check import (
    Explorer,
    OracleSuite,
    PCTPolicy,
    RandomPolicy,
    ReplayPolicy,
    RoundRobinPolicy,
    ViolationArtifact,
    build_artifact,
    default_oracles,
    make_policy,
    minimize_trace,
    replay_artifact,
    scenario,
)
from repro.check.explorer import memory_fingerprint
from repro.check.oracle import ClockStwOracle, QuarantineOracle, WakeOrderOracle
from repro.cli import main
from repro.core.config import RevokerKind
from repro.errors import ConfigError
from repro.kernel.epoch import EpochClock, release_epoch_for
from repro.machine.scheduler import Scheduler, ThreadState


class _Slot:
    """Bare candidate stand-in: policies only read ``.index``."""

    def __init__(self, index: int) -> None:
        self.index = index


SLOTS = [_Slot(i) for i in range(4)]


class TestPolicies:
    def test_round_robin_always_first(self):
        p = RoundRobinPolicy()
        assert [p.choose(SLOTS) for _ in range(5)] == [0] * 5
        assert p.journal == [0] * 5

    def test_random_policy_is_deterministic_per_seed(self):
        a = [RandomPolicy(7).choose(SLOTS) for _ in range(50)]
        b = [RandomPolicy(7).choose(SLOTS) for _ in range(50)]
        c = [RandomPolicy(8).choose(SLOTS) for _ in range(50)]
        assert a == b
        assert a != c  # astronomically unlikely to collide

    def test_pct_policy_deterministic_and_in_range(self):
        a = PCTPolicy(3, depth=2)
        b = PCTPolicy(3, depth=2)
        ca = [a.choose(SLOTS) for _ in range(64)]
        cb = [b.choose(SLOTS) for _ in range(64)]
        assert ca == cb
        assert all(0 <= i < len(SLOTS) for i in ca)

    def test_replay_policy_follows_trace_then_defaults(self):
        p = ReplayPolicy([2, 1, 9])
        assert p.choose(SLOTS) == 2
        assert p.choose(SLOTS) == 1
        assert p.choose(SLOTS) == 3  # 9 clamped to len-1
        assert p.choose(SLOTS) == 0  # past the end

    def test_journal_records_choices(self):
        p = RandomPolicy(1)
        picks = [p.choose(SLOTS) for _ in range(10)]
        assert p.journal == picks
        replay = ReplayPolicy(p.journal)
        assert [replay.choose(SLOTS) for _ in range(10)] == picks

    def test_make_policy_rejects_unknown_kind(self):
        with pytest.raises(ConfigError, match="unknown schedule policy"):
            make_policy("fifo")

    def test_negative_window_rejected(self):
        with pytest.raises(ConfigError, match="window"):
            RandomPolicy(0, window=-1)


class TestRoundRobinBitIdentity:
    """The default policy must reproduce the policy-free scheduler bit
    for bit — installing the checking machinery cannot move a single
    simulated cycle of the paper's results."""

    @pytest.mark.parametrize("kind", [RevokerKind.RELOADED, RevokerKind.CHERIVOKE])
    def test_round_robin_matches_no_policy(self, kind):
        scn = scenario("churn-tiny")

        def run(policy):
            sim = scn.build(0, kind)
            sim.machine.scheduler.policy = policy
            sim.alloc.trace_addresses = []
            result = sim.run()
            return (
                result.wall_cycles,
                [(r.begin, r.end) for r in sim.machine.scheduler.stw_records],
                sim.kernel.epoch.counter,
                memory_fingerprint(sim),
            )

        assert run(None) == run(RoundRobinPolicy())


class TestOracleUnits:
    def test_clock_stw_oracle_flags_overlap(self):
        o = ClockStwOracle()
        o.on_stw_begin(100, [])
        o.on_stw_end(200, [])
        o.on_stw_begin(150, [])  # begins before the previous pause ended
        assert any("overlaps" in v.message for v in o.violations)

    def test_wake_order_oracle_flags_unsorted_batch(self):
        class T:
            def __init__(self, name, floor):
                self.name = name
                self.wake_floor = floor

        o = WakeOrderOracle()
        o.on_promote(SLOTS[0], [T("late", 500), T("early", 100)])
        assert any("out of wake" in v.message for v in o.violations)
        o2 = WakeOrderOracle()
        o2.on_promote(SLOTS[0], [T("early", 100), T("late", 500)])
        assert not o2.violations

    def test_quarantine_oracle_flags_early_release(self):
        from repro.alloc.quarantine import SealedBatch

        o = QuarantineOracle()
        for counter in (1, 2):
            o.on_epoch_transition(counter)
        batch = SealedBatch([], 0, observed_epoch=2)
        o.on_quarantine_seal(batch)
        o.on_epoch_transition(3)  # a pass begins but never ends...
        o.on_quarantine_release(batch, 3)  # ...and the batch drains early
        messages = [v.message for v in o.violations]
        assert any("before its release epoch" in m for m in messages)
        assert any("no full begin->end" in m for m in messages)

    def test_quarantine_oracle_accepts_lawful_release(self):
        from repro.alloc.quarantine import SealedBatch

        o = QuarantineOracle()
        batch = SealedBatch([], 0, observed_epoch=0)
        o.on_quarantine_seal(batch)
        o.on_epoch_transition(1)
        o.on_epoch_transition(2)
        o.on_quarantine_release(batch, 2)
        assert not o.violations


class TestExplorer:
    def test_clean_sweep_has_no_violations(self):
        ex = Explorer("sleepers", policy_kind="random")
        report = ex.explore(range(3), differential=False)
        assert report.ok
        assert len(report.results) == 3
        # Random scheduling genuinely perturbed something at least once.
        assert any(r.journal for r in report.results)

    def test_pct_policy_sweep_is_clean(self):
        ex = Explorer("sleepers", policy_kind="pct")
        assert ex.explore(range(3), differential=False).ok

    def test_differential_is_clean(self):
        ex = Explorer("churn-tiny")
        assert ex.run_differential() == []

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ConfigError, match="unknown scenario"):
            Explorer("spectre")


def _buggy_promote(self):
    """The pre-fix `_promote_due_sleepers`: insertion order, no sort."""
    if not self._sleeping:
        return
    still = []
    promoted = []
    for thread in self._sleeping:
        slot = thread.core
        if slot.runq and thread.wake_floor > slot.time:
            still.append(thread)
            continue
        promoted.append(thread)
    self._sleeping[:] = still
    if not promoted:
        return
    batches = {}
    for thread in promoted:
        thread.state = ThreadState.RUNNABLE
        thread.core.runq.append(thread)
        batches.setdefault(thread.core.index, []).append(thread)
    if self.probe is not None:
        for index, batch in batches.items():
            self.probe.on_promote(self.cores[index], batch)


class TestExplorerCatchesReintroducedBug:
    """Acceptance: deliberately re-introduce the sleeper-ordering bug and
    the explorer must catch it, minimize it, and hand back an artifact
    that replays red under the bug and green once it is fixed again."""

    def test_sleeper_bug_caught_minimized_and_replayable(self, tmp_path):
        ex = Explorer("sleepers", policy_kind="random")
        with pytest.MonkeyPatch.context() as mp:
            mp.setattr(Scheduler, "_promote_due_sleepers", _buggy_promote)
            report = ex.explore(range(3), differential=False)
            assert report.failures, "explorer failed to catch the bug"
            fail = report.failures[0]
            assert any(v.oracle == "wake-order" for v in fail.violations)
            artifact = build_artifact(
                fail, "sleepers", RevokerKind.RELOADED, ex.workload_seed
            )
            assert len(artifact.trace) <= len(fail.journal)
            path = tmp_path / "violation.json"
            artifact.save(path)
            replayed = replay_artifact(path)
            assert not replayed.ok  # still red while the bug is in
        # Bug fixed again (monkeypatch context exited): same artifact
        # replays clean.
        assert replay_artifact(path).ok


class TestArtifacts:
    def test_roundtrip(self, tmp_path):
        art = ViolationArtifact(
            scenario="sleepers",
            revoker="reloaded",
            workload_seed=3,
            window=0,
            trace=[0, 2, 1],
            policy={"kind": "random", "seed": 9, "window": 0},
            violations=[{"oracle": "wake-order", "message": "m", "step": 1, "wall": 2}],
        )
        path = tmp_path / "a.json"
        art.save(path)
        loaded = ViolationArtifact.load(path)
        assert loaded == art

    def test_load_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(ConfigError, match="cannot read"):
            ViolationArtifact.load(path)

    def test_load_rejects_wrong_version(self, tmp_path):
        path = tmp_path / "v9.json"
        path.write_text('{"version": 9}')
        with pytest.raises(ConfigError, match="version"):
            ViolationArtifact.load(path)

    def test_build_artifact_requires_failure(self):
        from repro.check.explorer import SeedResult

        ok = SeedResult(0, {}, [], 0, 0, [])
        with pytest.raises(ConfigError, match="passing run"):
            build_artifact(ok, "sleepers", RevokerKind.RELOADED, 0)

    def test_minimize_trace_prefix_and_zeroing(self):
        # A synthetic predicate: the "bug" fires iff trace[2] == 5.
        def violates(trace):
            return len(trace) > 2 and trace[2] == 5

        out = minimize_trace([3, 1, 5, 2, 4, 7], violates)
        assert violates(out)
        assert len(out) == 3  # shortest violating prefix
        assert out == [0, 0, 5]  # everything else zeroed


class TestEpochFullPassProperty:
    """§2.2.3: release_epoch_for must guarantee a *full* revocation pass
    (a begin transition and its matching end, both after the paint's
    epoch read) before quarantined memory is released."""

    @given(observed=st.integers(min_value=0, max_value=10_000))
    def test_release_threshold_contains_full_pass(self, observed):
        clock = EpochClock()
        clock.counter = observed
        transitions = []
        clock.on_transition = transitions.append
        release = release_epoch_for(observed)
        while clock.counter < release:
            if clock.revoking:
                clock.end_revocation()
            else:
                clock.begin_revocation()
        assert any(
            b % 2 == 1 and b > observed and b + 1 in transitions
            for b in transitions
        )
        # And the threshold is tight: one transition fewer never contains
        # a full pass begun after the observation.
        short = [t for t in transitions if t < release]
        assert not any(
            b % 2 == 1 and b > observed and b + 1 in short for b in short
        )

    @settings(
        max_examples=6,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(seed=st.integers(min_value=0, max_value=2**31 - 1))
    def test_quarantine_discipline_holds_under_random_schedules(self, seed):
        ex = Explorer(
            "churn-tiny",
            policy_kind="random",
            oracle_factory=lambda: [QuarantineOracle()],
        )
        result = ex.run_seed(seed)
        assert result.ok, [str(v) for v in result.violations]


class TestCheckCli:
    def test_explore_clean_exits_zero(self, capsys):
        rc = main([
            "check", "--seed-range", "0:2", "--scenario", "sleepers", "--quiet",
        ])
        assert rc == 0
        assert "0 violations" in capsys.readouterr().out

    def test_explore_writes_artifact_on_failure(self, tmp_path, capsys):
        with pytest.MonkeyPatch.context() as mp:
            mp.setattr(Scheduler, "_promote_due_sleepers", _buggy_promote)
            rc = main([
                "check", "--seed-range", "0:1", "--scenario", "sleepers",
                "--quiet", "--no-differential", "--no-minimize",
                "--artifact-dir", str(tmp_path),
                "--timeline", str(tmp_path / "timeline.json"),
            ])
        out = capsys.readouterr().out
        assert rc == 1
        artifacts = list(tmp_path.glob("violation-*.json"))
        assert artifacts, out
        assert (tmp_path / "timeline.json").exists()
        # And the replay subcommand reads what explore wrote: the bug is
        # fixed here, so the replay reports clean and exits 0.
        rc = main(["check", "replay", str(artifacts[0])])
        assert rc == 0
        assert "no violation" in capsys.readouterr().out

    def test_replay_requires_artifact(self, capsys):
        assert main(["check", "replay"]) == 2
        assert "requires an artifact" in capsys.readouterr().err

    def test_bad_seed_range(self, capsys):
        rc = main(["check", "--seed-range", "nope", "--scenario", "sleepers"])
        assert rc == 2
        assert "start:end" in capsys.readouterr().err


class TestOracleSuiteWiring:
    def test_suite_installs_every_hook(self):
        scn = scenario("churn-tiny")
        sim = scn.build(0, RevokerKind.RELOADED)
        suite = OracleSuite(default_oracles())
        suite.bind(sim)
        assert sim.machine.scheduler.probe is suite
        assert sim.kernel.epoch.on_transition is not None
        assert sim.mrs.quarantine.on_seal is not None
        assert sim.mrs.quarantine.on_release is not None
        sim.run()
        suite.finish()
        assert suite.steps > 0
        assert suite.violations == []
