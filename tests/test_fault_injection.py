"""Fault injection: prove the safety oracle actually detects breakage.

A test suite asserting "no violations" is only as good as its oracle.
These tests deliberately break each piece of a revoker — skip the
register scan, skip the kernel-hoard scan, skip pages during the sweep,
release quarantine too early — and assert that the invariant checker
(and/or the adversarial workload) *catches* the breakage. If one of
these tests ever passes silently, the oracle has gone blind.
"""

from __future__ import annotations

from typing import Generator

import pytest

from repro.alloc.quarantine import QuarantinePolicy
from repro.core.config import RevokerKind, SimulationConfig
from repro.core.simulation import Simulation
from repro.core.validate import check_invariants
from repro.kernel.revoker.base import EpochRecord
from repro.kernel.revoker.reloaded import ReloadedRevoker
from repro.machine.cpu import Core
from repro.machine.scheduler import CoreSlot
from repro.workloads.adversarial import UafAttacker
from repro.workloads.churn import ChurnProfile, ChurnWorkload, SizeMix


class NoRootScanRevoker(ReloadedRevoker):
    """Reloaded with the STW capability-root scan disabled (§3.2's 'little
    subtlety' ignored): register files and kernel hoards keep revoked
    capabilities."""

    name = "broken-no-roots"

    def scan_roots(self, record: EpochRecord):
        from repro.kernel.hoards import ScanOutcome

        return 0, ScanOutcome()


class SkipsPagesRevoker(ReloadedRevoker):
    """Reloaded whose background sweep skips every other dirty page."""

    name = "broken-skips-pages"

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._flip = False

    def sweep_page(self, core, pte, record, *, warm_cache=False):
        self._flip = not self._flip
        if self._flip:
            # Pretend we swept: update bookkeeping without clearing tags.
            pte.swept_this_epoch = True
            pte.redirtied = False
            record.pages_swept += 1
            return 100
        return super().sweep_page(core, pte, record, warm_cache=warm_cache)


def run_attack(revoker_cls) -> tuple[UafAttacker, Simulation]:
    w = UafAttacker(rounds=12, churn_objects=80)
    cfg = SimulationConfig(revoker=RevokerKind.RELOADED, custom_revoker=revoker_cls)
    sim = Simulation(w, cfg)
    sim.run()
    return w, sim


def run_churn(revoker_cls) -> Simulation:
    profile = ChurnProfile(
        name="fi",
        heap_bytes=64 << 10,
        churn_bytes=384 << 10,
        size_mix=SizeMix((64, 256, 1024), (0.5, 0.3, 0.2)),
        pointer_slots=2,
        seed=5,
    )
    w = ChurnWorkload(profile, QuarantinePolicy(min_bytes=16 << 10))
    cfg = SimulationConfig(revoker=RevokerKind.RELOADED, custom_revoker=revoker_cls)
    sim = Simulation(w, cfg)
    sim.run()
    return sim


class TestOracleSensitivity:
    def test_intact_revoker_passes_checker(self):
        sim = run_churn(None)
        check_invariants(sim).raise_if_failed()

    def test_intact_revoker_defeats_attacker(self):
        w, sim = run_attack(None)
        assert w.report.uar_hits == 0
        check_invariants(sim).raise_if_failed()

    def test_skipping_root_scan_is_detected(self):
        """Without the STW root scan, revoked capabilities survive in
        registers and kernel hoards — the checker must see them."""
        w, sim = run_attack(NoRootScanRevoker)
        report = check_invariants(sim)
        assert not report.ok
        assert any(v.invariant == "revocation-guarantee" for v in report.violations)
        assert any("register" in v.detail or "hoard" in v.detail
                   for v in report.violations)

    def test_skipping_root_scan_enables_uar(self):
        """The attacker's register/hoard copies become live UAR."""
        w, _ = run_attack(NoRootScanRevoker)
        assert w.report.uar_hits > 0
        assert set(w.report.stale_sources) <= {"register", "kernel-hoard"}

    def test_skipping_pages_is_detected(self):
        sim = run_churn(SkipsPagesRevoker)
        report = check_invariants(sim)
        assert not report.ok
        assert any(v.invariant == "revocation-guarantee" for v in report.violations)

    def test_skipping_pages_enables_uar(self):
        w, _ = run_attack(SkipsPagesRevoker)
        assert w.report.uar_hits > 0
        assert "heap" in w.report.stale_sources


class TestCheckerUnits:
    def test_detects_painted_live_allocation(self):
        sim = run_churn(None)
        # Corrupt the state: paint a live allocation.
        addr = next(iter(sim.alloc._live))
        sim.kernel.shadow.paint(addr, 16)
        report = check_invariants(sim)
        assert any(v.invariant == "live-unpainted" for v in report.violations)

    def test_detects_epoch_desync(self):
        sim = run_churn(None)
        # Corrupt the completion count (the counter itself cannot be made
        # inconsistent in isolation: parity *defines* the in-flight flag).
        sim.kernel.epoch.completed += 1
        report = check_invariants(sim)
        assert any(v.invariant == "epoch-discipline" for v in report.violations)

    def test_detects_quarantine_desync(self):
        sim = run_churn(None)
        if sim.mrs.quarantine.pending:
            sim.mrs.quarantine.pending_bytes += 16  # corrupt
            report = check_invariants(sim)
            assert any(
                v.invariant == "quarantine-accounting" for v in report.violations
            )

    def test_raise_if_failed(self):
        sim = run_churn(None)
        sim.kernel.epoch.completed += 1
        with pytest.raises(AssertionError, match="epoch-discipline"):
            check_invariants(sim).raise_if_failed()
