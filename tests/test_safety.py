"""End-to-end temporal-safety tests: the property the system exists for.

Runs the adversarial workload (and churn workloads with an invariant
checker) under every strategy and asserts the paper's guarantee: no
use-after-reallocation under any safety-providing revoker, and successful
attacks under the baseline — plus the global revocation invariant that no
tagged capability to painted memory survives an epoch.
"""

from __future__ import annotations

import pytest

from repro.alloc.quarantine import QuarantinePolicy
from repro.core.config import RevokerKind, SimulationConfig
from repro.core.experiment import SAFETY_KINDS
from repro.core.simulation import Simulation
from repro.workloads.adversarial import UafAttacker
from repro.workloads.churn import ChurnProfile, ChurnWorkload, SizeMix


def attack(kind: RevokerKind) -> UafAttacker:
    w = UafAttacker(rounds=12, churn_objects=80)
    Simulation(w, SimulationConfig(revoker=kind)).run()
    return w


class TestUseAfterReallocation:
    @pytest.mark.parametrize("kind", SAFETY_KINDS)
    def test_no_uar_under_safety_revokers(self, kind):
        w = attack(kind)
        assert w.report.uar_hits == 0
        assert w.report.revoked_probes > 0  # revocation actually acted

    def test_baseline_is_attackable(self):
        w = attack(RevokerKind.NONE)
        assert w.report.uar_hits > 0
        # Stale pointers survive everywhere without revocation.
        assert set(w.report.stale_sources) == {"heap", "register", "kernel-hoard"}

    def test_paint_sync_is_attackable(self):
        """Paint+sync manages quarantine but never sweeps (§5): reuse
        eventually happens with stale capabilities still live."""
        w = attack(RevokerKind.PAINT_SYNC)
        assert w.report.uar_hits > 0

    @pytest.mark.parametrize("kind", SAFETY_KINDS)
    def test_uaf_window_exists(self, kind):
        """§2.2.2: plain use-after-free before revocation is tolerated —
        the object's lifetime is effectively extended to the next epoch."""
        w = attack(kind)
        assert w.report.uaf_reads > 0


def small_churn(seed: int = 5) -> ChurnWorkload:
    profile = ChurnProfile(
        name="churn-test",
        heap_bytes=96 << 10,
        churn_bytes=512 << 10,
        size_mix=SizeMix((64, 256, 1024), (0.5, 0.3, 0.2)),
        pointer_slots=2,
        seed=seed,
    )
    return ChurnWorkload(profile, QuarantinePolicy(min_bytes=16 << 10))


class TestRevocationInvariant:
    """DESIGN.md invariant 2: after the run (all epochs complete), no
    tagged capability anywhere points to still-painted memory."""

    @pytest.mark.parametrize("kind", SAFETY_KINDS)
    def test_no_tagged_cap_to_quarantined_memory_after_run(self, kind):
        sim = Simulation(small_churn(), SimulationConfig(revoker=kind))
        sim.run()
        assert sim.kernel.epoch.completed >= 2
        shadow = sim.kernel.shadow
        # Memory painted *before* the last completed epoch must hold no
        # tagged capabilities anywhere. Since the run ends with the epoch
        # drained, anything still painted now is pending (painted after
        # the last epoch began) — every older paint was either revoked or
        # released. Verify: tagged caps may only target pending regions.
        pending = {r.addr for r in sim.mrs.quarantine.pending}
        sealed = {r.addr for b in sim.mrs.quarantine.sealed for r in b.regions}
        for granule, cap in sim.machine.memory.iter_tagged():
            if shadow.is_revoked(cap):
                assert cap.base in pending or cap.base in sealed, (
                    f"tagged capability to painted region {cap.base:#x} "
                    f"survived a completed epoch"
                )

    @pytest.mark.parametrize("kind", SAFETY_KINDS)
    def test_live_heap_never_painted(self, kind):
        sim = Simulation(small_churn(), SimulationConfig(revoker=kind))
        sim.run()
        for addr in list(sim.alloc._live):
            assert not sim.kernel.shadow.is_painted_addr(addr)

    @pytest.mark.parametrize("kind", SAFETY_KINDS)
    def test_workload_trace_identical_across_strategies(self, kind):
        """The same seeded workload performs the same allocation sequence
        under every condition (the paper's same-binary methodology)."""
        w = small_churn(seed=11)
        sim = Simulation(w, SimulationConfig(revoker=kind))
        sim.run()
        baseline = small_churn(seed=11)
        bsim = Simulation(baseline, SimulationConfig(revoker=RevokerKind.NONE))
        bsim.run()
        assert w.iterations_run == baseline.iterations_run
        assert sim.alloc.malloc_calls == bsim.alloc.malloc_calls
        assert sim.alloc.free_calls == bsim.alloc.free_calls
