"""Unit and property tests for the revocation (shadow) bitmap."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.errors import VMError
from repro.kernel.shadow import RevocationBitmap
from repro.machine.capability import Capability


@pytest.fixture
def shadow() -> RevocationBitmap:
    return RevocationBitmap(1 << 20)


class TestPainting:
    def test_paint_marks_whole_region(self, shadow):
        shadow.paint(0x1000, 256)
        for off in range(0, 256, 16):
            assert shadow.is_painted_addr(0x1000 + off)

    def test_neighbours_unpainted(self, shadow):
        shadow.paint(0x1000, 256)
        assert not shadow.is_painted_addr(0x1000 - 16)
        assert not shadow.is_painted_addr(0x1100)

    def test_unpaint_clears(self, shadow):
        shadow.paint(0x1000, 256)
        shadow.unpaint(0x1000, 256)
        assert not shadow.any_painted

    def test_painted_granules_counter(self, shadow):
        shadow.paint(0x1000, 256)
        assert shadow.painted_granules == 16
        shadow.paint(0x1000, 256)  # repaint is idempotent
        assert shadow.painted_granules == 16
        shadow.unpaint(0x1000, 256)
        assert shadow.painted_granules == 0

    def test_unaligned_paint_rejected(self, shadow):
        with pytest.raises(VMError):
            shadow.paint(0x1001, 16)
        with pytest.raises(VMError):
            shadow.paint(0x1000, 17)

    def test_out_of_range_rejected(self, shadow):
        with pytest.raises(VMError):
            shadow.paint(shadow.size_bytes - 16, 64)


class TestProbing:
    def test_probes_base_not_cursor(self, shadow):
        """§2.2.2 fn. 9: revocation tests the capability *base*, so a
        cursor pointing elsewhere cannot dodge it."""
        shadow.paint(0x1000, 256)
        inside = Capability.root(0x1000, 256)
        assert shadow.is_revoked(inside)
        assert shadow.is_revoked(inside.with_address(0x10F0))
        # A capability whose base is outside the painted region but whose
        # cursor points into it is NOT revoked (it's a different object).
        neighbour = Capability.root(0x2000, 0x100).with_address(0x2040)
        assert not shadow.is_revoked(neighbour)

    def test_derived_capability_caught(self, shadow):
        """Any capability derived from a painted allocation has its base
        inside the allocation, hence is revoked."""
        shadow.paint(0x1000, 256)
        parent = Capability.root(0x1000, 256)
        child = parent.derive(0x1050, 32)
        assert shadow.is_revoked(child)

    @given(
        start_g=st.integers(0, 1000),
        len_g=st.integers(1, 64),
        probe_g=st.integers(0, 1100),
    )
    def test_revoked_iff_base_painted(self, start_g, len_g, probe_g):
        shadow = RevocationBitmap(1 << 20)
        shadow.paint(start_g * 16, len_g * 16)
        probe = Capability.root(probe_g * 16, 16)
        expected = start_g <= probe_g < start_g + len_g
        assert shadow.is_revoked(probe) == expected


class TestShadowAddressing:
    def test_shadow_span_maps_16_pages_per_line(self, shadow):
        start, length = shadow.shadow_span(0, 4096)
        assert start == shadow.shadow_base
        assert length == 32  # one page -> 32 shadow bytes

    def test_shadow_addresses_beyond_memory(self, shadow):
        assert shadow.shadow_addr_of_granule(0) >= shadow.size_bytes


class TestVectorProbe:
    """probe_bases must agree with is_revoked element for element."""

    def test_matches_scalar_probe(self, shadow):
        import numpy as np

        shadow.paint(0x1000, 256)
        bases = np.array([0x0, 0x1000, 0x1050, 0x1100, 0x2000])
        got = shadow.probe_bases(bases)
        want = [shadow.is_revoked(Capability.root(int(b), 16)) for b in bases]
        assert got.tolist() == want

    def test_out_of_range_bases_read_unpainted(self, shadow):
        import numpy as np

        shadow.paint(0, shadow.size_bytes)
        bases = np.array([0, shadow.size_bytes, shadow.size_bytes * 4])
        assert shadow.probe_bases(bases).tolist() == [True, False, False]

    @given(
        start_g=st.integers(0, 1000),
        len_g=st.integers(1, 64),
        probes=st.lists(st.integers(0, 1100), min_size=1, max_size=16),
    )
    def test_property_matches_scalar(self, start_g, len_g, probes):
        import numpy as np

        shadow = RevocationBitmap(1 << 20)
        shadow.paint(start_g * 16, len_g * 16)
        bases = np.array([g * 16 for g in probes])
        got = shadow.probe_bases(bases)
        want = [shadow.is_revoked(Capability.root(g * 16, 16)) for g in probes]
        assert got.tolist() == want

    def test_unpaint_many_clears_all_regions(self, shadow):
        shadow.paint(0x1000, 256)
        shadow.paint(0x4000, 128)
        cleared = shadow.unpaint_many([(0x1000, 256), (0x4000, 128)])
        assert cleared == (256 + 128) // 16
        assert not shadow.any_painted
