"""Edge-case and property tests across the machine layer that the
per-module suites don't cover: cross-page accesses, scheduler programs
under hypothesis, capability derivation chains, VM layout properties."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SimulationError
from repro.kernel.vm import AddressSpace
from repro.machine.capability import Capability
from repro.machine.costs import PAGE_BYTES
from repro.machine.machine import Machine
from repro.machine.scheduler import Sleep
from repro.machine.trap import PageFault


class TestCrossPageAccesses:
    @pytest.fixture
    def machine(self):
        m = Machine(memory_bytes=1 << 20)
        m.pagetable.map_page(1)
        m.pagetable.map_page(2)
        m.pagetable.map_page(3, guard=True)
        return m

    def test_access_spanning_two_mapped_pages_ok(self, machine):
        cap = Capability.root(0x1000, 0x2000).with_address(0x1FC0)
        machine.cores[0].load_data(cap, 128)  # 0x1FC0..0x2040

    def test_access_creeping_into_guard_faults(self, machine):
        cap = Capability.root(0x1000, 0x3000).with_address(0x2FC0)
        with pytest.raises(PageFault):
            machine.cores[0].load_data(cap, 128)  # crosses into guard page 3

    def test_store_creeping_into_unmapped_faults(self, machine):
        cap = Capability.root(0x1000, 0x4000).with_address(0x2FF0)
        with pytest.raises(PageFault):
            machine.cores[0].store_data(cap, 4096 + 32)

    def test_exactly_page_sized_access(self, machine):
        cap = Capability.root(0x1000, 0x2000)
        machine.cores[0].load_data(cap, PAGE_BYTES)


class TestDerivationChains:
    @given(
        cuts=st.lists(
            st.tuples(st.floats(0, 1), st.floats(0.05, 1)), min_size=1, max_size=6
        )
    )
    def test_nested_derivations_stay_in_root(self, cuts):
        """Repeatedly deriving sub-capabilities never escapes the root."""
        root = Capability.root(0x10000, 0x10000)
        cap = root
        for frac_base, frac_len in cuts:
            if cap.length < 32:
                break
            base = cap.base + int(frac_base * (cap.length - 16))
            base &= ~15
            length = max(16, int(frac_len * (cap.top - base)))
            length = min(length, cap.top - base)
            cap = cap.derive(base, length)
            assert root.base <= cap.base
            assert cap.top <= root.top
            assert cap.tag


class TestSchedulerPrograms:
    @settings(max_examples=25, deadline=None)
    @given(
        programs=st.lists(
            st.lists(st.integers(1, 500), min_size=1, max_size=10),
            min_size=1,
            max_size=6,
        ),
        cores=st.integers(1, 4),
    )
    def test_random_thread_programs_conserve_time(self, programs, cores):
        """For arbitrary straight-line thread programs: every thread's
        busy time equals the sum of its yields, and the wall clock is at
        least the per-core busy maximum."""
        machine = Machine(memory_bytes=1 << 20, num_cores=cores)
        sched = machine.scheduler
        threads = []
        for i, program in enumerate(programs):
            body = (c for c in list(program))
            threads.append((sched.spawn(f"t{i}", body, i % cores), sum(program)))
        wall = sched.run()
        per_core: dict[int, int] = {}
        for thread, expected in threads:
            assert thread.busy_cycles == expected
            per_core[thread.core.index] = per_core.get(thread.core.index, 0) + expected
        assert wall == max(per_core.values())

    @settings(max_examples=15, deadline=None)
    @given(
        busy=st.integers(1, 1000),
        sleep=st.integers(1, 10_000),
    )
    def test_sleep_time_is_not_busy_time(self, busy, sleep):
        machine = Machine(memory_bytes=1 << 20)
        sched = machine.scheduler

        def body():
            yield busy
            yield Sleep(sleep)

        t = sched.spawn("t", body(), 0)
        wall = sched.run()
        assert t.busy_cycles == busy
        assert wall == busy + sleep

    def test_run_until_condition(self):
        machine = Machine(memory_bytes=1 << 20)
        sched = machine.scheduler
        state = {"ticks": 0}

        def daemon():
            while True:
                yield 100
                state["ticks"] += 1

        sched.spawn("d", daemon(), 0, stops_for_stw=False)
        sched.run_until_condition(lambda: state["ticks"] >= 5)
        assert state["ticks"] >= 5

    def test_run_until_condition_deadlock_detected(self):
        machine = Machine(memory_bytes=1 << 20)
        with pytest.raises(SimulationError):
            machine.scheduler.run_until_condition(lambda: False)

    def test_spawn_during_stw_defers_user_thread(self):
        from repro.machine.scheduler import ResumeWorld, StopWorld, ThreadState

        machine = Machine(memory_bytes=1 << 20)
        sched = machine.scheduler
        spawned = {}

        def app():
            yield 1000

        def revoker():
            yield StopWorld()
            spawned["t"] = sched.spawn("late", (x for x in [10]), 0)
            state_during = spawned["t"].state
            spawned["during"] = state_during
            yield 500
            yield ResumeWorld()

        a = sched.spawn("app", app(), 0)
        sched.spawn("rev", revoker(), 1, stops_for_stw=False)
        sched.run()  # every thread, including the late spawn
        assert spawned["during"] is ThreadState.STOPPED
        assert spawned["t"].state is ThreadState.FINISHED


class TestVmLayoutProperties:
    @settings(max_examples=20, deadline=None)
    @given(sizes=st.lists(st.integers(1, 1 << 16), min_size=1, max_size=30))
    def test_mmap_sequence_never_overlaps(self, sizes):
        aspace = AddressSpace(Machine(memory_bytes=64 << 20))
        spans = []
        for size in sizes:
            cap, res = aspace.mmap(size)
            spans.append((cap.base, cap.top))
        spans.sort()
        for (b1, t1), (b2, _) in zip(spans, spans[1:]):
            assert t1 <= b2

    @settings(max_examples=20, deadline=None)
    @given(sizes=st.lists(st.integers(1, 1 << 16), min_size=1, max_size=30))
    def test_rss_equals_sum_of_reservations(self, sizes):
        aspace = AddressSpace(Machine(memory_bytes=64 << 20))
        for size in sizes:
            aspace.mmap(size)
        expected = sum(r.num_pages for r in aspace.reservations)
        assert aspace.mapped_pages == expected
