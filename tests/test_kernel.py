"""Unit tests for the Kernel aggregate and fault dispatch."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.kernel.hoards import RegisterFile
from repro.kernel.kernel import Kernel
from repro.kernel.revoker import CornucopiaRevoker, ReloadedRevoker
from repro.machine.machine import Machine
from repro.machine.trap import LoadGenerationFault


@pytest.fixture
def kernel() -> Kernel:
    return Kernel(Machine(memory_bytes=8 << 20))


class TestKernelAssembly:
    def test_shadow_covers_memory(self, kernel):
        assert kernel.shadow.size_bytes == kernel.machine.memory.size_bytes

    def test_install_revoker_once(self, kernel):
        kernel.install_revoker(ReloadedRevoker)
        with pytest.raises(SimulationError):
            kernel.install_revoker(CornucopiaRevoker)

    def test_register_thread_reaches_revoker(self, kernel):
        revoker = kernel.install_revoker(ReloadedRevoker)
        rf = RegisterFile()
        kernel.register_thread(rf)
        assert rf in revoker.register_files

    def test_register_thread_without_revoker_is_noop(self, kernel):
        kernel.register_thread(RegisterFile())  # baseline config: fine

    def test_fault_without_revoker_rejected(self, kernel):
        fault = LoadGenerationFault(5, 5 * 4096)
        with pytest.raises(SimulationError):
            kernel.handle_lg_fault(kernel.machine.cores[0], fault)

    def test_fault_dispatch_reaches_reloaded(self, kernel):
        revoker = kernel.install_revoker(ReloadedRevoker)
        heap, _ = kernel.address_space.mmap(4096)
        core = kernel.machine.cores[0]
        core.store_cap(heap, heap)
        # Manufacture the epoch state in which faults occur.
        revoker._open_epoch(kernel.machine.scheduler.cores[0])
        core.flip_clg()
        revoker.current_lg = 1
        fault = LoadGenerationFault(heap.base // 4096, heap.base)
        cycles = kernel.handle_lg_fault(core, fault)
        assert cycles > 0
        assert revoker.foreground_faults == 1
