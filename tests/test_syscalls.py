"""Unit tests for the syscall ABI layer."""

from __future__ import annotations

import pytest

from repro.errors import VMError
from repro.kernel.kernel import Kernel
from repro.kernel.revoker import ReloadedRevoker
from repro.kernel.syscalls import ShadowGrant, SyscallInterface
from repro.machine.costs import PAGE_BYTES
from repro.machine.machine import Machine


@pytest.fixture
def sys() -> SyscallInterface:
    return SyscallInterface(Kernel(Machine(memory_bytes=8 << 20)))


class TestMapping:
    def test_mmap_returns_capability(self, sys):
        cap, res = sys.sys_mmap(PAGE_BYTES)
        assert cap.tag and cap.length >= PAGE_BYTES

    def test_munmap_guards(self, sys):
        cap, res = sys.sys_mmap(PAGE_BYTES * 2)
        sys.sys_munmap(res, cap.base, PAGE_BYTES)
        assert sys.kernel.machine.pagetable.require(res.start_vpn).guard


class TestShadowAccessControl:
    def test_paint_within_grant(self, sys):
        heap, _ = sys.sys_mmap(PAGE_BYTES)
        grant = sys.grant_shadow(heap)
        painted = sys.sys_paint(grant, heap.base, 64)
        assert painted == 4
        assert sys.kernel.shadow.is_painted_addr(heap.base)

    def test_paint_outside_grant_refused(self, sys):
        heap, _ = sys.sys_mmap(PAGE_BYTES)
        other, _ = sys.sys_mmap(PAGE_BYTES)
        grant = sys.grant_shadow(heap)
        with pytest.raises(VMError):
            sys.sys_paint(grant, other.base, 64)
        assert not sys.kernel.shadow.is_painted_addr(other.base)

    def test_forged_grant_refused(self, sys):
        heap, _ = sys.sys_mmap(PAGE_BYTES)
        forged = ShadowGrant(heap.base, heap.length)  # never granted
        with pytest.raises(VMError):
            sys.sys_paint(forged, heap.base, 64)

    def test_grant_requires_valid_capability(self, sys):
        heap, _ = sys.sys_mmap(PAGE_BYTES)
        with pytest.raises(VMError):
            sys.grant_shadow(heap.cleared())

    def test_unpaint_symmetry(self, sys):
        heap, _ = sys.sys_mmap(PAGE_BYTES)
        grant = sys.grant_shadow(heap)
        sys.sys_paint(grant, heap.base, 64)
        sys.sys_unpaint(grant, heap.base, 64)
        assert not sys.kernel.shadow.is_painted_addr(heap.base)
        with pytest.raises(VMError):
            sys.sys_unpaint(grant, heap.base - PAGE_BYTES, 64)


class TestEpochAndRevoke:
    def test_epoch_read(self, sys):
        assert sys.sys_epoch_read() == 0

    def test_revoke_without_revoker_refused(self, sys):
        core = sys.kernel.machine.cores[0]
        slot = sys.kernel.machine.scheduler.cores[0]
        with pytest.raises(VMError):
            list(sys.sys_revoke(core, slot))

    def test_revoke_runs_full_epoch(self, sys):
        sys.kernel.install_revoker(ReloadedRevoker)
        heap, _ = sys.sys_mmap(PAGE_BYTES)
        core = sys.kernel.machine.cores[0]
        core.store_cap(heap, heap)
        sched = sys.kernel.machine.scheduler
        t = sched.spawn(
            "rev", sys.sys_revoke(core, sched.cores[0]), 0, stops_for_stw=False
        )
        sched.run(until=[t])
        assert sys.sys_epoch_read() == 2
