"""Multi-node sharded campaigns (repro.dist, docs/DIST.md).

Ring determinism and minimal disruption; node-list parsing; and the
coordinator end-to-end against real in-process serve daemons:
bit-identical results vs local execution, batch dedup, local-cache
affinity, rehash failover off a crashing node, DistError when no node
answers, deterministic job errors surfacing as CampaignJobError only
after the batch settles, the prefix-fetch/prefix-put wire verbs, and the
lifted warm-start gate replicating one captured prefix across the ring.
"""

from __future__ import annotations

import os
import socket
import threading

import pytest

from repro.core.config import RevokerKind
from repro.dist import (
    DEFAULT_REPLICAS,
    DistError,
    DistributedExecutor,
    HashRing,
    NodeSpec,
    parse_nodes,
)
from repro.runner.cache import ResultCache, job_fingerprint
from repro.runner.campaign import Job, WorkloadSpec, execute_job
from repro.runner.pool import CampaignJobError
from repro.runner.progress import CampaignProgress
from repro.runner.serialize import dumps_result
from repro.serve.client import ServeClient
from repro.serve.protocol import decode, encode
from repro.serve.server import ServeConfig, SimulationServer
from repro.settings import MANAGED_VARS
from repro.snapshot.prefix import PrefixStore, prefix_key


@pytest.fixture(autouse=True)
def _restore_repro_env():
    """A daemon exports its snapshot/prefix dirs into os.environ before
    forking workers (pre-fork settings ship). With daemons running in
    threads of this process, that export must not leak into later tests
    — ServeConfig.__post_init__ and the pool read those vars."""
    saved = {var: os.environ.get(var) for var in MANAGED_VARS}
    yield
    for var, value in saved.items():
        if value is None:
            os.environ.pop(var, None)
        else:
            os.environ[var] = value


# --- The hash ring ----------------------------------------------------------


class TestHashRing:
    def test_routes_deterministically(self):
        ring = HashRing(["a", "b", "c"])
        again = HashRing(["c", "a", "b"])  # order-independent
        for i in range(200):
            key = f"fingerprint-{i}"
            assert ring.route(key) == again.route(key)

    def test_spreads_keys(self):
        ring = HashRing(["a", "b"])
        owners = {ring.route(f"key-{i}") for i in range(100)}
        assert owners == {"a", "b"}

    def test_removal_moves_only_the_dead_nodes_keys(self):
        ring = HashRing(["a", "b", "c"])
        keys = [f"fingerprint-{i}" for i in range(300)]
        before = {k: ring.route(k) for k in keys}
        ring.remove("b")
        for k in keys:
            if before[k] != "b":
                assert ring.route(k) == before[k]
            else:
                assert ring.route(k) in ("a", "c")

    def test_readd_restores_exact_assignment(self):
        ring = HashRing(["a", "b", "c"])
        keys = [f"fingerprint-{i}" for i in range(100)]
        before = {k: ring.route(k) for k in keys}
        ring.remove("b")
        ring.add("b")
        assert {k: ring.route(k) for k in keys} == before

    def test_membership_helpers(self):
        ring = HashRing(["a"])
        assert len(ring) == 1 and "a" in ring and ring.nodes == ["a"]
        ring.add("a")  # idempotent
        assert len(ring) == 1
        ring.remove("missing")  # idempotent
        assert DEFAULT_REPLICAS == 64

    def test_empty_ring_cannot_route(self):
        with pytest.raises(DistError, match="no live nodes"):
            HashRing().route("anything")

    def test_rejects_bad_replicas(self):
        with pytest.raises(DistError, match="replicas"):
            HashRing(replicas=0)


# --- Node parsing -----------------------------------------------------------


class TestParseNodes:
    def test_unix_and_tcp(self):
        specs = parse_nodes("/tmp/a.sock,host1:7341,rel.sock")
        assert specs[0].socket_path == "/tmp/a.sock"
        assert (specs[1].host, specs[1].port) == ("host1", 7341)
        assert specs[2].socket_path == "rel.sock"

    def test_iterable_input(self):
        assert len(parse_nodes(["/tmp/a.sock", "h:1"])) == 2

    @pytest.mark.parametrize("bad", ["", ",,", "justahost", "h:notaport",
                                     "h:0", "h:70000", ":7341"])
    def test_rejects_malformed(self, bad):
        with pytest.raises(DistError):
            parse_nodes(bad)

    def test_rejects_duplicates(self):
        with pytest.raises(DistError, match="duplicate"):
            parse_nodes("/tmp/a.sock,/tmp/a.sock")

    def test_executor_validates(self):
        with pytest.raises(DistError, match="max_attempts"):
            DistributedExecutor([NodeSpec.parse("/tmp/a.sock")], max_attempts=0)
        with pytest.raises(DistError, match="empty"):
            DistributedExecutor([])


# --- End-to-end against real daemons ----------------------------------------


def _spec_job(bench="hmmer", inp="retro", scale=1024, seed=1,
              kind=RevokerKind.RELOADED):
    return Job(
        WorkloadSpec("spec", {"benchmark": bench, "input": inp,
                              "scale": scale, "seed": seed}),
        kind,
    )


def _start_daemon(tmp_path, name, **overrides):
    sock = os.path.join(str(tmp_path), f"{name}.sock")
    settings = {"workers": 2, "no_cache": True}
    settings.update(overrides)
    server = SimulationServer(ServeConfig(socket_path=sock, **settings))
    thread = threading.Thread(target=server.run, daemon=True)
    thread.start()
    with ServeClient(socket_path=sock) as client:
        client.wait_ready(timeout=30.0)
    return server, thread, sock


def _stop_daemon(server, thread):
    server.shutdown_threadsafe()
    thread.join(timeout=30.0)
    assert not thread.is_alive()


@pytest.fixture(scope="module")
def pair(tmp_path_factory):
    """Two cache-less daemons on unix sockets."""
    tmp = tmp_path_factory.mktemp("dist")
    s0, t0, sock0 = _start_daemon(tmp, "n0")
    s1, t1, sock1 = _start_daemon(tmp, "n1")
    yield sock0, sock1
    _stop_daemon(s0, t0)
    _stop_daemon(s1, t1)


class TestCoordinator:
    JOBS = [
        _spec_job(kind=k)
        for k in (RevokerKind.NONE, RevokerKind.CHERIVOKE,
                  RevokerKind.CORNUCOPIA, RevokerKind.RELOADED)
    ]

    def test_bit_identical_to_local(self, pair):
        ex = DistributedExecutor(parse_nodes(",".join(pair)))
        progress = CampaignProgress(len(self.JOBS))
        results = ex.run(self.JOBS, progress=progress)
        for job, remote in zip(self.JOBS, results):
            assert dumps_result(remote) == dumps_result(execute_job(job))
        assert progress.done == len(self.JOBS)
        assert ex.metrics.counter("dist.dispatched").value == len(self.JOBS)
        # Both nodes answered the post-run stats sweep.
        assert set(ex.node_stats) == set(pair)

    def test_routing_is_sticky(self, pair):
        """The same fingerprint routes to the same node, run after run —
        what makes per-node caches accumulate."""
        ex = DistributedExecutor(parse_nodes(",".join(pair)))
        ring = HashRing(list(pair))
        for job in self.JOBS:
            assert ring.route(job_fingerprint(job)) in pair
        again = HashRing(list(pair))
        for job in self.JOBS:
            assert ring.route(job_fingerprint(job)) == again.route(
                job_fingerprint(job)
            )
        del ex

    def test_batch_dedup(self, pair):
        jobs = [self.JOBS[0], self.JOBS[1], self.JOBS[0]]
        ex = DistributedExecutor(parse_nodes(",".join(pair)))
        progress = CampaignProgress(len(jobs))
        results = ex.run(jobs, progress=progress)
        assert progress.deduped == 1
        assert dumps_result(results[0]) == dumps_result(results[2])
        assert ex.metrics.counter("dist.dispatched").value == 2

    def test_local_cache_short_circuits(self, pair, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        ex = DistributedExecutor(parse_nodes(",".join(pair)))
        ex.run(self.JOBS, cache=cache)
        again = DistributedExecutor(parse_nodes(",".join(pair)))
        progress = CampaignProgress(len(self.JOBS))
        rerun = again.run(self.JOBS, cache=cache, progress=progress)
        assert progress.cache_hits == len(self.JOBS)
        assert again.metrics.counter("dist.dispatched").value == 0
        for job, result in zip(self.JOBS, rerun):
            assert dumps_result(result) == dumps_result(execute_job(job))

    def test_dead_node_at_startup_is_routed_around(self, pair, tmp_path):
        ghost = str(tmp_path / "ghost.sock")
        ex = DistributedExecutor(parse_nodes(f"{pair[0]},{ghost}"))
        results = ex.run(self.JOBS)
        for job, remote in zip(self.JOBS, results):
            assert dumps_result(remote) == dumps_result(execute_job(job))

    def test_all_nodes_dead_raises_disterror(self, tmp_path):
        ex = DistributedExecutor(
            parse_nodes(str(tmp_path / "a.sock") + "," + str(tmp_path / "b.sock")),
            connect_timeout_s=0.5,
        )
        with pytest.raises(DistError, match="no node answered"):
            ex.run(self.JOBS)

    def test_deterministic_job_error_is_terminal(self, pair):
        """An invalid job fails once — no retries — and surfaces as
        CampaignJobError only after every other job settles."""
        bad = Job(WorkloadSpec("spec", {"benchmark": "nope", "input": "x"}),
                  RevokerKind.RELOADED)
        jobs = [self.JOBS[0], bad, self.JOBS[3]]
        ex = DistributedExecutor(parse_nodes(",".join(pair)))
        progress = CampaignProgress(len(jobs))
        with pytest.raises(CampaignJobError, match="1 of 3 jobs"):
            ex.run(jobs, progress=progress)
        assert progress.done == 3  # the whole batch settled first
        assert progress.failures == 1
        assert ex.metrics.counter("dist.terminal_failures").value == 1
        assert ex.metrics.counter("dist.retries").value == 0

    def test_ping_all(self, pair, tmp_path):
        ghost = str(tmp_path / "ghost.sock")
        ex = DistributedExecutor(parse_nodes(f"{pair[0]},{ghost}"))
        alive = ex.ping_all(timeout=1.0)
        assert alive == {pair[0]: True, ghost: False}


# --- Mid-run failover -------------------------------------------------------


class _CrashingNode:
    """A fake daemon that answers pings but hangs up on every run
    request — a deterministic stand-in for a node crashing mid-batch."""

    def __init__(self, sock_path: str) -> None:
        self.sock_path = sock_path
        self.runs_refused = 0
        self._server = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self._server.bind(sock_path)
        self._server.listen(8)
        self._alive = True
        self._thread = threading.Thread(target=self._loop, daemon=True)
        self._thread.start()

    def _loop(self) -> None:
        while self._alive:
            try:
                conn, _ = self._server.accept()
            except OSError:
                return
            try:
                self._serve_one(conn)
            except (OSError, ValueError):
                pass
            finally:
                # shutdown (not just close) so the peer sees EOF at once
                # instead of blocking out its full request timeout.
                try:
                    conn.shutdown(socket.SHUT_RDWR)
                except OSError:
                    pass
                conn.close()

    def _serve_one(self, conn: socket.socket) -> None:
        buf = b""
        while True:
            chunk = conn.recv(65536)
            if not chunk:
                return
            buf += chunk
            while b"\n" in buf:
                line, buf = buf.split(b"\n", 1)
                request = decode(line)
                if request.get("verb") != "ping":
                    self.runs_refused += 1
                    return  # hang up mid-request
                conn.sendall(encode(
                    {"id": request.get("id"), "ok": True, "verb": "ping"}
                ))

    def close(self) -> None:
        self._alive = False
        try:
            self._server.close()
        except OSError:
            pass


class TestFailover:
    def test_crash_mid_run_rehashes_to_survivor(self, pair, tmp_path):
        crasher = _CrashingNode(str(tmp_path / "crash.sock"))
        try:
            # Socket paths (and so ring points) vary per run; pick jobs
            # the ring provably routes to the crasher so the failure
            # path is exercised deterministically.
            ring = HashRing([pair[0], crasher.sock_path])
            candidates = [
                _spec_job(seed=s, kind=k)
                for s in range(1, 9)
                for k in (RevokerKind.NONE, RevokerKind.RELOADED)
            ]
            owned = {True: [], False: []}
            for job in candidates:
                hits_crasher = (
                    ring.route(job_fingerprint(job)) == crasher.sock_path
                )
                owned[hits_crasher].append(job)
            assert owned[True], "no candidate routed to the crasher"
            jobs = owned[True][:3] + owned[False][:2]
            ex = DistributedExecutor(
                parse_nodes(f"{pair[0]},{crasher.sock_path}"),
                rejoin_interval_s=30.0,  # keep the crasher out once down
            )
            progress = CampaignProgress(len(jobs))
            results = ex.run(jobs, progress=progress)
            assert progress.done == len(jobs)
            assert progress.failures == 0
            for job, remote in zip(jobs, results):
                assert dumps_result(remote) == dumps_result(execute_job(job))
            # The fake answered startup pings, so it joined the ring and
            # took at least one dispatch before being marked dead.
            assert crasher.runs_refused >= 1
            assert ex.metrics.counter("dist.node_failures").value == 1
            assert ex.metrics.counter("dist.failovers").value >= 1
            assert ex.metrics.counter("dist.retries").value >= 1
        finally:
            crasher.close()


# --- Prefix transfer and the lifted warm-start gate -------------------------


class TestPrefixWire:
    def test_put_fetch_round_trip(self, tmp_path):
        server, thread, sock = _start_daemon(
            tmp_path, "pfx", prefix_dir=str(tmp_path / "store")
        )
        try:
            with ServeClient(socket_path=sock) as client:
                assert client.prefix_fetch("missing-key") is None
                blob = b"RPRSNAP not-a-real-checkpoint \x00\xff payload"
                assert client.prefix_put("k1", blob) is True
                assert client.prefix_put("k1", b"other") is False  # first wins
                assert client.prefix_fetch("k1") == blob
            assert PrefixStore(tmp_path / "store").get("k1") == blob
        finally:
            _stop_daemon(server, thread)

    def test_daemon_without_store_rejects(self, pair):
        from repro.serve.client import RequestFailed

        with ServeClient(socket_path=pair[0]) as client:
            with pytest.raises(RequestFailed, match="no prefix store"):
                client.request("prefix-fetch", {"key": "k"})


class TestDistributedWarmStart:
    def test_one_capture_replicated_across_the_ring(self, tmp_path):
        """Exactly one node pays the warmup; the coordinator pulls the
        captured prefix and pushes it to the peer before releasing the
        group — both stores end up with the same single entry, and the
        results stay bit-identical to cold runs."""
        jobs = [
            _spec_job(scale=2048, kind=k)
            for k in (RevokerKind.CHERIVOKE, RevokerKind.CORNUCOPIA,
                      RevokerKind.RELOADED)
        ]
        cold = [dumps_result(execute_job(j)) for j in jobs]
        stores = (tmp_path / "store0", tmp_path / "store1")
        s0, t0, sock0 = _start_daemon(tmp_path, "w0", prefix_dir=str(stores[0]))
        s1, t1, sock1 = _start_daemon(tmp_path, "w1", prefix_dir=str(stores[1]))
        try:
            ex = DistributedExecutor(
                parse_nodes(f"{sock0},{sock1}"), warm_start=True
            )
            results = ex.run(jobs)
            assert [dumps_result(r) for r in results] == cold
            key = prefix_key(jobs[0])
            captured = [PrefixStore(s).get(key) is not None for s in stores]
            # The gate leader's node captured; replication reached the
            # peer unless the capture window never opened (then both
            # miss and everyone ran cold — still correct, but this
            # scale is known to capture at epoch 0).
            assert all(captured), captured
            assert ex.metrics.counter("dist.prefix_transfers").value == 1
        finally:
            _stop_daemon(s0, t0)
            _stop_daemon(s1, t1)
