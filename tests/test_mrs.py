"""Integration tests for the mrs shim: painting, triggering, epochs,
back-pressure, and dequarantine — run on the full simulation stack so the
controller thread and revoker behave as in a real run."""

from __future__ import annotations

from typing import Generator

import pytest

from repro.alloc.quarantine import QuarantinePolicy
from repro.core.config import RevokerKind, SimulationConfig
from repro.core.simulation import AppContext, Simulation
from repro.workloads.base import Workload


class ScriptedWorkload(Workload):
    """Runs a caller-provided generator function as the app thread."""

    name = "scripted"

    def __init__(self, fn, policy: QuarantinePolicy | None = None) -> None:
        self._fn = fn
        self.quarantine_policy = policy
        self.result: dict = {}

    def run(self, ctx: AppContext) -> Generator:
        yield from self._fn(ctx, self.result)


def run_scripted(fn, kind=RevokerKind.RELOADED, policy=None) -> tuple[Simulation, dict]:
    w = ScriptedWorkload(fn, policy)
    sim = Simulation(w, SimulationConfig(revoker=kind))
    sim.run()
    return sim, w.result


SMALL_POLICY = QuarantinePolicy(min_bytes=4096)


class TestPaintingAndQuarantine:
    def test_free_paints_shadow(self):
        def body(ctx, out):
            cap = yield from ctx.malloc(256)
            yield from ctx.free(cap)
            out["painted"] = ctx.sim.kernel.shadow.is_painted_addr(cap.base)

        sim, out = run_scripted(body, policy=SMALL_POLICY)
        assert out["painted"]

    def test_freed_memory_not_immediately_reusable(self):
        def body(ctx, out):
            cap = yield from ctx.malloc(256)
            yield from ctx.free(cap)
            again = yield from ctx.malloc(256)
            out["same"] = again.base == cap.base

        _, out = run_scripted(body, policy=SMALL_POLICY)
        assert not out["same"]

    def test_reuse_happens_after_revocation(self):
        def body(ctx, out):
            first = yield from ctx.malloc(2048)
            yield from ctx.free(first)
            # Drive enough churn that the trigger fires and the controller
            # completes at least one epoch; then keep allocating until the
            # address recycles.
            out["reused"] = False
            for _ in range(300):
                cap = yield from ctx.malloc(2048)
                if cap.base == first.base:
                    out["reused"] = True
                    break
                yield from ctx.free(cap)

        sim, out = run_scripted(body, policy=SMALL_POLICY)
        assert sim.kernel.epoch.completed >= 1
        assert out["reused"]

    def test_unpaint_on_release(self):
        def body(ctx, out):
            first = yield from ctx.malloc(2048)
            yield from ctx.free(first)
            for _ in range(300):
                cap = yield from ctx.malloc(2048)
                if cap.base == first.base:
                    break
                yield from ctx.free(cap)
            out["still_painted"] = ctx.sim.kernel.shadow.is_painted_addr(first.base)

        _, out = run_scripted(body, policy=SMALL_POLICY)
        assert not out["still_painted"]


class TestTriggerPolicy:
    def test_no_trigger_below_floor(self):
        def body(ctx, out):
            for _ in range(10):
                cap = yield from ctx.malloc(64)
                yield from ctx.free(cap)

        sim, _ = run_scripted(body, policy=QuarantinePolicy(min_bytes=1 << 20))
        assert sim.kernel.epoch.completed == 0
        assert sim.mrs.revocations_triggered == 0

    def test_trigger_above_floor(self):
        def body(ctx, out):
            for _ in range(40):
                cap = yield from ctx.malloc(512)
                yield from ctx.free(cap)

        sim, _ = run_scripted(body, policy=SMALL_POLICY)
        assert sim.mrs.revocations_triggered >= 1
        assert sim.kernel.epoch.completed >= 1

    def test_epoch_counter_public_and_even_when_idle(self):
        def body(ctx, out):
            for _ in range(40):
                cap = yield from ctx.malloc(512)
                yield from ctx.free(cap)
            out["epoch"] = ctx.sim.kernel.epoch.read()

        sim, out = run_scripted(body, policy=SMALL_POLICY)
        assert sim.kernel.epoch.read() % 2 == 0

    def test_quarantine_samples_recorded(self):
        def body(ctx, out):
            for _ in range(40):
                cap = yield from ctx.malloc(512)
                yield from ctx.free(cap)

        sim, _ = run_scripted(body, policy=SMALL_POLICY)
        assert len(sim.mrs.sampled_alloc_bytes) == sim.mrs.revocations_triggered
        assert len(sim.mrs.quarantine.sampled_bytes) == sim.mrs.revocations_triggered


class TestBackPressure:
    def test_blocking_when_quarantine_overfull(self):
        """§5.3: mrs blocks malloc/free when quarantine is over twice the
        limit while a revocation is in flight."""
        policy = QuarantinePolicy(min_bytes=4096, block_multiplier=0.01)

        def body(ctx, out):
            for _ in range(60):
                cap = yield from ctx.malloc(4096)
                yield from ctx.free(cap)

        sim, _ = run_scripted(body, policy=policy)
        assert sim.mrs.blocked_operations >= 1
        # And the run completed: blocking always resolves.
        assert sim.kernel.epoch.completed >= 1


class TestBaselineShim:
    def test_baseline_reuses_immediately(self):
        def body(ctx, out):
            cap = yield from ctx.malloc(256)
            yield from ctx.free(cap)
            again = yield from ctx.malloc(256)
            out["same"] = again.base == cap.base

        _, out = run_scripted(body, kind=RevokerKind.NONE)
        assert out["same"]

    def test_baseline_never_revokes(self):
        def body(ctx, out):
            for _ in range(50):
                cap = yield from ctx.malloc(4096)
                yield from ctx.free(cap)

        sim, _ = run_scripted(body, kind=RevokerKind.NONE)
        assert sim.kernel.epoch.completed == 0
        assert sim.kernel.revoker is None
