"""Edge cases of Reloaded's foreground load-generation fault handler.

`handle_lg_fault` has three outcomes (§4.3): the real foreground sweep,
the *spurious* fault (the page was already processed and only the local
TLB is stale — first pmap check), and the invariant-violation error when
a stale page faults with no epoch in flight. The happy path is covered
by the revoker integration tests; these pin the other two plus the
counter/cycle accounting that fig. 9 reads.
"""

from __future__ import annotations

import pytest

from repro.kernel.revoker.base import EpochRecord
from repro.kernel.revoker.reloaded import ReloadedRevoker
from repro.machine.costs import PAGE_BYTES

from tests.test_revokers import Rig


@pytest.fixture
def rig() -> Rig:
    return Rig(ReloadedRevoker)


class TestSpuriousFault:
    def test_spurious_when_pte_generation_current(self, rig):
        """pte.lg == core.clg: another core already healed the page; the
        handler only refills the TLB and charges the short path."""
        vpn = rig.heap.base // PAGE_BYTES
        costs = rig.revoker.costs
        cycles = rig.revoker.handle_lg_fault(rig.core_app, vpn)
        assert cycles == costs.trap_roundtrip + costs.pmap_lock + costs.tlb_refill
        assert rig.revoker.spurious_faults == 1
        assert rig.revoker.foreground_faults == 0

    def test_spurious_fault_refills_tlb(self, rig):
        rig.plant(0, rig.heap.base + 0x1000)
        vpn = rig.heap.base // PAGE_BYTES
        rig.revoker.handle_lg_fault(rig.core_app, vpn)
        # The refill must leave the page loadable without another trap.
        src = rig.heap.with_address(rig.heap.base)
        assert rig.core_app.load_cap(src).value is not None

    def test_stale_tlb_after_epoch_is_spurious(self, rig):
        """End-to-end: after an epoch the background pass has healed every
        PTE, but the app core's TLB still holds the old generation — its
        next capability load traps and must resolve as spurious."""
        rig.plant(0, rig.heap.base + 0x1000)
        assert rig.loaded(0) is not None  # populate the TLB pre-epoch
        rig.run_epoch()
        assert rig.loaded(0) is not None
        assert rig.revoker.spurious_faults == 1
        assert rig.revoker.foreground_faults == 0


class TestForegroundFault:
    def test_real_fault_sweeps_and_heals(self, rig):
        """A genuinely stale page mid-epoch: the handler sweeps it on the
        faulting core, heals the PTE, and books the fault on the record."""
        victim = rig.plant(0, rig.heap.base + 0x1000)
        rig.condemn(victim.base)
        record = EpochRecord(epoch=1)
        rig.revoker._current_record = record
        rig.core_app.flip_clg()
        vpn = rig.heap.base // PAGE_BYTES
        cycles = rig.revoker.handle_lg_fault(rig.core_app, vpn)
        pte = rig.machine.pagetable.require(vpn)
        assert pte.lg == rig.core_app.clg
        assert rig.revoker.foreground_faults == 1
        assert rig.revoker.spurious_faults == 0
        assert record.fault_count == 1
        assert record.fault_cycles == cycles
        assert record.caps_revoked == 1
        # The condemned capability is gone from the swept page.
        src = rig.heap.with_address(rig.heap.base)
        assert rig.core_app.load_cap(src).value is None


class TestNoEpochInFlight:
    def test_stale_page_outside_epoch_raises(self, rig):
        """A stale-generation fault with no epoch open is an invariant
        violation, not a recoverable condition."""
        rig.core_app.flip_clg()  # pte.lg != core.clg, no record open
        vpn = rig.heap.base // PAGE_BYTES
        assert rig.revoker._current_record is None
        with pytest.raises(RuntimeError, match="no epoch in flight"):
            rig.revoker.handle_lg_fault(rig.core_app, vpn)
        # Nothing was booked for the failed fault.
        assert rig.revoker.foreground_faults == 0
        assert rig.revoker.spurious_faults == 0
