"""Campaign spec expansion, workload registry, and config overrides."""

from __future__ import annotations

import pytest

from repro.core.config import RevokerKind
from repro.errors import ConfigError
from repro.runner.campaign import (
    CampaignSpec,
    Job,
    WorkloadSpec,
    build_config,
    execute_job,
    register_workload,
    registered_workloads,
    stable_seed,
)
from repro.workloads.pgbench import PgBenchWorkload


class TestWorkloadSpec:
    def test_builds_registered_kinds(self):
        w = WorkloadSpec("pgbench", {"transactions": 5}).build()
        assert isinstance(w, PgBenchWorkload)
        assert w.transactions == 5

    def test_each_build_is_fresh(self):
        spec = WorkloadSpec("pgbench", {"transactions": 5})
        assert spec.build() is not spec.build()

    def test_unknown_kind_lists_registry(self):
        with pytest.raises(ConfigError, match="unknown workload kind"):
            WorkloadSpec("nope", {}).build()
        for kind in ("spec", "pgbench", "grpc"):
            assert kind in registered_workloads()

    def test_bad_params_are_config_errors(self):
        with pytest.raises(ConfigError, match="bad parameters"):
            WorkloadSpec("pgbench", {"warp_factor": 9}).build()

    def test_with_params_merges(self):
        spec = WorkloadSpec("pgbench", {"transactions": 5})
        seeded = spec.with_params(seed=3)
        assert seeded.params == {"transactions": 5, "seed": 3}
        assert spec.params == {"transactions": 5}

    def test_runtime_registration(self):
        marker = object()
        register_workload("test-kind-xyz", lambda: marker)
        try:
            assert WorkloadSpec("test-kind-xyz", {}).build() is marker
        finally:
            from repro.runner import campaign

            del campaign._BUILDERS["test-kind-xyz"]


class TestBuildConfig:
    def test_defaults(self):
        cfg = build_config(Job(WorkloadSpec("pgbench"), RevokerKind.RELOADED))
        assert cfg.revoker is RevokerKind.RELOADED
        assert cfg.revoker_core == 2

    def test_scalar_and_nested_overrides(self):
        job = Job(
            WorkloadSpec("pgbench"),
            RevokerKind.NONE,
            config={
                "app_core": 1,
                "revoker_core": 0,
                "machine": {"num_cores": 2, "cache_bytes": 2 << 20},
                "policy": {"min_bytes": 4096},
            },
        )
        cfg = build_config(job)
        assert cfg.app_core == 1
        assert cfg.machine.num_cores == 2
        assert cfg.machine.cache_bytes == 2 << 20
        assert cfg.policy.min_bytes == 4096

    def test_unknown_overrides_rejected(self):
        with pytest.raises(ConfigError, match="unknown config override"):
            build_config(
                Job(WorkloadSpec("pgbench"), RevokerKind.NONE, config={"bogus": 1})
            )
        with pytest.raises(ConfigError, match="unknown machine override"):
            build_config(
                Job(
                    WorkloadSpec("pgbench"),
                    RevokerKind.NONE,
                    config={"machine": {"warp": 1}},
                )
            )

    def test_invalid_values_fail_validation(self):
        with pytest.raises(ConfigError):
            build_config(
                Job(WorkloadSpec("pgbench"), RevokerKind.NONE, config={"app_core": 9})
            )


class TestStableSeed:
    def test_deterministic_and_distinct(self):
        assert stable_seed("a", 1) == stable_seed("a", 1)
        assert stable_seed("a", 1) != stable_seed("a", 2)
        assert stable_seed("a", 1) != stable_seed("b", 1)

    def test_pythonhashseed_independent_value(self):
        # Pinned value: must not drift across sessions or processes.
        assert stable_seed("campaign", 0) == stable_seed("campaign", 0)
        assert 0 <= stable_seed("campaign", 0) < 2**48


class TestCampaignSpec:
    def _spec(self, **overrides):
        fields = {
            "name": "t",
            "workloads": [
                WorkloadSpec("pgbench", {"transactions": 5}),
                WorkloadSpec("grpc", {"duration_seconds": 0.1}),
            ],
            "revokers": [RevokerKind.NONE, RevokerKind.RELOADED],
        }
        fields.update(overrides)
        return CampaignSpec(**fields)

    def test_matrix_expansion(self):
        jobs = self._spec(seeds=[1, 2, 3]).expand()
        assert len(jobs) == 2 * 2 * 3
        # Deterministic order and key identity.
        assert jobs[0].key == (0, RevokerKind.NONE, 1)
        assert jobs[-1].key == (1, RevokerKind.RELOADED, 3)
        assert all(j.workload.params.get("seed") in (1, 2, 3) for j in jobs)

    def test_default_seeds_keep_workload_defaults(self):
        jobs = self._spec().expand()
        assert len(jobs) == 4
        assert all("seed" not in j.workload.params for j in jobs)

    def test_replicates_derive_stable_seeds(self):
        jobs_a = self._spec(replicates=3).expand()
        jobs_b = self._spec(replicates=3).expand()
        assert [j.workload.params["seed"] for j in jobs_a] == [
            j.workload.params["seed"] for j in jobs_b
        ]
        seeds = {j.workload.params["seed"] for j in jobs_a}
        assert len(seeds) == len(jobs_a), "per-job seeds must be distinct"

    def test_seeds_and_replicates_conflict(self):
        with pytest.raises(ConfigError):
            self._spec(seeds=[1], replicates=2)

    def test_empty_axes_rejected(self):
        with pytest.raises(ConfigError):
            self._spec(workloads=[])
        with pytest.raises(ConfigError):
            self._spec(revokers=[])

    def test_from_dict_round(self):
        spec = CampaignSpec.from_dict({
            "name": "json",
            "workloads": [{"kind": "pgbench", "params": {"transactions": 7}}],
            "revokers": ["none", "reloaded"],
            "seeds": [4],
            "config": {"revoker_core": 2},
        })
        jobs = spec.expand()
        assert len(jobs) == 2
        assert jobs[0].workload.params == {"transactions": 7, "seed": 4}
        assert jobs[0].config == {"revoker_core": 2}

    def test_from_dict_rejects_unknowns(self):
        with pytest.raises(ConfigError, match="unknown fields"):
            CampaignSpec.from_dict({
                "workloads": [{"kind": "pgbench"}],
                "revokers": ["none"],
                "typo": True,
            })
        with pytest.raises(ConfigError):
            CampaignSpec.from_dict({
                "workloads": [{"kind": "pgbench"}],
                "revokers": ["warp-drive"],
            })


class TestExecuteJob:
    def test_runs_and_reports(self):
        job = Job(
            WorkloadSpec(
                "spec", {"benchmark": "hmmer", "input": "retro", "scale": 2048}
            ),
            RevokerKind.RELOADED,
        )
        result = execute_job(job)
        assert result.workload == "hmmer.retro"
        assert result.revoker is RevokerKind.RELOADED
        assert result.wall_cycles > 0
