"""Worker-pool behavior: determinism across the process boundary, cache
integration, crash retry, timeouts, and the in-process fallback.

The crash/timeout fixtures register throwaway workload kinds at runtime,
which only reach pool workers under the ``fork`` start method — the
whole module is skipped where fork is unavailable (the pool itself falls
back gracefully there).
"""

from __future__ import annotations

import os
import time

import pytest

from repro.core.config import RevokerKind
from repro.runner import (
    CampaignProgress,
    CampaignSpec,
    Job,
    ResultCache,
    WorkloadSpec,
    execute_job,
    run_campaign,
    run_jobs,
)
from repro.runner.campaign import register_workload
from repro.runner.pool import (
    CampaignJobError,
    default_max_workers,
    default_timeout_s,
)
from repro.runner.serialize import dumps_result
from repro.workloads.base import Workload

pytestmark = pytest.mark.skipif(
    not hasattr(os, "fork"), reason="pool tests need the fork start method"
)

_SPEC_JOB = Job(
    WorkloadSpec("spec", {"benchmark": "hmmer", "input": "retro", "scale": 2048}),
    RevokerKind.RELOADED,
)


class _TinyWorkload(Workload):
    name = "tiny"

    def run(self, ctx):
        cap = yield from ctx.malloc(64)
        yield from ctx.free(cap)
        yield 100


@pytest.fixture
def scratch_kind():
    """Register a throwaway workload kind; yields a setter for its
    builder and cleans the registry up afterwards."""
    from repro.runner import campaign

    kind = "pool-test-kind"

    def install(builder):
        register_workload(kind, builder)
        return kind

    yield install
    campaign._BUILDERS.pop(kind, None)


class TestDeterminism:
    def test_pool_worker_matches_in_process(self):
        """A seeded run serializes identically whether it ran here or in
        a pool worker (the satellite determinism criterion)."""
        in_process = dumps_result(execute_job(_SPEC_JOB))
        pooled = run_jobs([_SPEC_JOB, _SPEC_JOB], max_workers=2)
        assert dumps_result(pooled[0]) == in_process
        assert dumps_result(pooled[1]) == in_process

    def test_pool_and_serial_campaigns_agree(self, tmp_path):
        spec = CampaignSpec(
            "det",
            [WorkloadSpec("spec", {"benchmark": "gobmk", "input": "13x13", "scale": 2048})],
            [RevokerKind.NONE, RevokerKind.RELOADED],
            seeds=[1, 2],
        )
        serial = run_campaign(spec, max_workers=1)
        pooled = run_campaign(spec, max_workers=2)
        assert [dumps_result(r) for r in serial.results] == [
            dumps_result(r) for r in pooled.results
        ]

    def test_cached_result_equals_fresh(self, tmp_path):
        cache = ResultCache(tmp_path)
        fresh = run_jobs([_SPEC_JOB], cache=cache, max_workers=1)[0]
        cached = run_jobs([_SPEC_JOB], cache=cache, max_workers=1)[0]
        assert dumps_result(cached) == dumps_result(fresh)


class TestPoolCacheIntegration:
    def test_pooled_results_are_cached(self, tmp_path):
        cache = ResultCache(tmp_path)
        progress = CampaignProgress(2)
        run_jobs([_SPEC_JOB, _SPEC_JOB], cache=cache, max_workers=2, progress=progress)
        # Both jobs share one fingerprint; at least the second pass must
        # be pure hits.
        progress2 = CampaignProgress(2)
        run_jobs([_SPEC_JOB, _SPEC_JOB], cache=cache, max_workers=2, progress=progress2)
        assert progress2.cache_hits == 2
        assert progress2.fresh == 0


class TestFaultTolerance:
    def test_crash_once_is_retried(self, scratch_kind, tmp_path):
        flag = tmp_path / "crashed-once"

        def crash_once():
            if not flag.exists():
                flag.touch()
                os._exit(42)
            return _TinyWorkload()

        kind = scratch_kind(crash_once)
        progress = CampaignProgress(1)
        results = run_jobs(
            [Job(WorkloadSpec(kind), RevokerKind.NONE)],
            max_workers=2,
            progress=progress,
        )
        assert results[0].wall_cycles > 0
        assert progress.retries == 1
        assert progress.failures == 0

    def test_persistent_crash_fails_after_retry(self, scratch_kind):
        def always_crash():
            os._exit(13)

        kind = scratch_kind(always_crash)
        progress = CampaignProgress(1)
        with pytest.raises(CampaignJobError, match="failed twice"):
            run_jobs(
                [Job(WorkloadSpec(kind), RevokerKind.NONE)],
                max_workers=2,
                progress=progress,
            )
        assert progress.retries == 1
        assert progress.failures == 1

    def test_timeout_terminates_and_fails(self, scratch_kind):
        def sleepy():
            time.sleep(60)
            return _TinyWorkload()  # pragma: no cover

        kind = scratch_kind(sleepy)
        began = time.monotonic()
        with pytest.raises(CampaignJobError, match="timeout"):
            run_jobs(
                [Job(WorkloadSpec(kind), RevokerKind.NONE)],
                max_workers=2,
                timeout_s=0.3,
            )
        # Two attempts at ~0.3s each, not 60s.
        assert time.monotonic() - began < 20

    def test_deterministic_exception_not_retried(self, scratch_kind):
        def boom():
            raise RuntimeError("deterministic boom")

        kind = scratch_kind(boom)
        progress = CampaignProgress(1)
        with pytest.raises(CampaignJobError, match="deterministic boom"):
            run_jobs(
                [Job(WorkloadSpec(kind), RevokerKind.NONE)],
                max_workers=2,
                progress=progress,
            )
        assert progress.retries == 0


class TestInterruptCleanup:
    def test_keyboard_interrupt_reaps_workers(self, scratch_kind, monkeypatch):
        """^C mid-campaign must terminate every live worker before the
        interrupt propagates — no orphans grinding on for 60 more
        seconds (the satellite regression)."""
        import multiprocessing

        from repro.runner import pool

        def sleepy():
            time.sleep(60)
            return _TinyWorkload()  # pragma: no cover

        kind = scratch_kind(sleepy)
        real_wait = pool.connection_wait

        def interrupting_wait(conns, timeout=None):
            # Let the workers actually start their jobs, then interrupt
            # the coordinator exactly where it spends its life waiting.
            real_wait(conns, timeout=0.3)
            raise KeyboardInterrupt

        monkeypatch.setattr(pool, "connection_wait", interrupting_wait)
        began = time.monotonic()
        with pytest.raises(KeyboardInterrupt):
            run_jobs(
                [
                    Job(WorkloadSpec(kind), RevokerKind.NONE),
                    Job(WorkloadSpec(kind), RevokerKind.RELOADED),
                ],
                max_workers=2,
            )
        deadline = time.monotonic() + 10
        while multiprocessing.active_children() and time.monotonic() < deadline:
            time.sleep(0.05)
        assert multiprocessing.active_children() == []
        assert time.monotonic() - began < 30  # reaped, not waited out


class TestDedup:
    def test_in_process_duplicates_run_once(self, scratch_kind):
        calls = []

        def counting():
            calls.append(1)
            return _TinyWorkload()

        kind = scratch_kind(counting)
        job_a = Job(WorkloadSpec(kind), RevokerKind.NONE)
        job_b = Job(WorkloadSpec(kind), RevokerKind.RELOADED)
        progress = CampaignProgress(3)
        results = run_jobs([job_a, job_a, job_b], max_workers=1, progress=progress)
        assert len(calls) == 2  # one per distinct fingerprint
        assert progress.fresh == 2
        assert progress.deduped == 1
        assert dumps_result(results[0]) == dumps_result(results[1])
        assert results[0] is not results[1]  # own copy, not shared state

    def test_pooled_duplicates_run_once(self, scratch_kind, tmp_path):
        log = tmp_path / "executions"

        def logging_builder():
            with open(log, "a") as fh:
                fh.write("x")
            return _TinyWorkload()

        kind = scratch_kind(logging_builder)
        jobs = [Job(WorkloadSpec(kind), RevokerKind.NONE)] * 4
        progress = CampaignProgress(4)
        results = run_jobs(jobs, max_workers=2, progress=progress)
        assert log.read_text() == "x"  # exactly one worker execution
        assert progress.fresh == 1
        assert progress.deduped == 3
        assert len({dumps_result(r) for r in results}) == 1

    def test_duplicates_hit_cache_next_run(self, tmp_path):
        cache = ResultCache(tmp_path)
        progress = CampaignProgress(2)
        run_jobs([_SPEC_JOB, _SPEC_JOB], cache=cache, max_workers=2,
                 progress=progress)
        assert progress.fresh == 1
        assert progress.deduped == 1
        progress2 = CampaignProgress(2)
        run_jobs([_SPEC_JOB, _SPEC_JOB], cache=cache, max_workers=2,
                 progress=progress2)
        assert progress2.cache_hits == 2
        assert progress2.deduped == 0


class TestInProcessFallback:
    def test_single_worker_never_forks(self, scratch_kind, monkeypatch):
        """max_workers=1 must not touch multiprocessing at all."""
        from repro.runner import pool

        def no_pool(*args, **kwargs):  # pragma: no cover
            raise AssertionError("pool path used with max_workers=1")

        monkeypatch.setattr(pool, "_run_pooled", no_pool)
        results = run_jobs([_SPEC_JOB], max_workers=1)
        assert results[0].wall_cycles > 0

    def test_env_default_worker_count(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "3")
        assert default_max_workers() == 3
        monkeypatch.setenv("REPRO_JOBS", "0")
        assert default_max_workers() == (os.cpu_count() or 1)
        monkeypatch.setenv("REPRO_JOBS", "nope")
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            default_max_workers()


class TestProgress:
    def test_summary_counts_and_parseable_tail(self):
        progress = CampaignProgress(3)
        progress.job_finished("a", cached=True, elapsed=0.0)
        progress.job_finished("b", cached=False, elapsed=0.5)
        progress.job_finished("c", cached=False, elapsed=0.7)
        assert progress.hit_ratio() == pytest.approx(1 / 3)
        assert progress.eta_seconds() == 0.0  # nothing remaining
        summary = progress.summary()
        assert "cache-hits=1 fresh=2" in summary

    def test_terminal_failures_count_toward_done(self):
        # Regression: job_failed used to leave `done` short, so a
        # campaign with failures reported N/total forever and the ETA
        # never converged to zero.
        progress = CampaignProgress(3)
        progress.job_finished("a", cached=False, elapsed=1.0)
        progress.job_failed("b", "worker exited twice")
        assert progress.done == 2
        assert progress.failures == 1
        assert progress.eta_seconds() == pytest.approx(1.0)
        progress.job_failed("c", "RuntimeError: boom")
        assert progress.done == 3
        assert progress.eta_seconds() == 0.0
        summary = progress.summary()
        assert summary.startswith("3/3 jobs")
        assert "2 failed" in summary

    def test_retry_does_not_advance_done(self):
        # A retried job is still pending; only its terminal outcome
        # (finished or failed) settles it.
        progress = CampaignProgress(1)
        progress.job_retried("a", "timeout after 1.0s")
        assert progress.done == 0
        assert progress.retries == 1

    def test_summary_mentions_dedup_only_when_present(self):
        progress = CampaignProgress(2)
        progress.job_finished("a", cached=False, elapsed=0.1)
        assert "deduped" not in progress.summary()
        progress.job_deduped("b")
        summary = progress.summary()
        assert "cache-hits=0 fresh=1" in summary  # CI greps this shape
        assert "deduped=1" in summary
        assert progress.as_dict()["deduped"] == 1

    def test_eta_uses_fresh_jobs_only(self):
        progress = CampaignProgress(4)
        progress.job_finished("a", cached=True, elapsed=0.0)
        assert progress.eta_seconds() is None  # no fresh sample yet
        progress.job_finished("b", cached=False, elapsed=2.0)
        assert progress.eta_seconds() == pytest.approx(4.0)

    def test_echo_lines(self):
        lines = []
        progress = CampaignProgress(2, echo=lines.append)
        progress.job_finished("job-a", cached=True, elapsed=0.0)
        progress.job_retried("job-b", "worker exited")
        progress.job_finished("job-b", cached=False, elapsed=1.0)
        assert any("job-a" in line and "cache" in line for line in lines)
        assert any("retry" in line for line in lines)

    def test_eta_accounts_for_workers(self):
        # 16 remaining jobs at 2s each across 8 workers drain in two
        # waves, not 32 serial seconds.
        progress = CampaignProgress(17, workers=8)
        progress.job_finished("a", cached=False, elapsed=2.0)
        assert progress.eta_seconds() == pytest.approx(4.0)

    def test_eta_rounds_partial_wave_up(self):
        # 3 jobs on 2 workers is two waves (2 + 1), not 1.5.
        progress = CampaignProgress(4, workers=2)
        progress.job_finished("a", cached=False, elapsed=2.0)
        assert progress.eta_seconds() == pytest.approx(4.0)

    def test_run_jobs_fills_worker_count(self):
        progress = CampaignProgress(1)
        assert progress.workers is None
        run_jobs([_SPEC_JOB], max_workers=4, progress=progress)
        assert progress.workers == 4


class TestTimeoutKnob:
    def test_unset_means_no_timeout(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOB_TIMEOUT", raising=False)
        assert default_timeout_s() is None

    def test_positive_value_parsed(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOB_TIMEOUT", "2.5")
        assert default_timeout_s() == pytest.approx(2.5)

    @pytest.mark.parametrize("raw", ["0", "-1", "-0.5"])
    def test_non_positive_rejected(self, monkeypatch, raw):
        # <= 0 used to silently disable the timeout; it must be loud
        # like every other bad knob value.
        from repro.errors import ConfigError

        monkeypatch.setenv("REPRO_JOB_TIMEOUT", raw)
        with pytest.raises(ConfigError, match="REPRO_JOB_TIMEOUT"):
            default_timeout_s()

    def test_garbage_rejected(self, monkeypatch):
        from repro.errors import ConfigError

        monkeypatch.setenv("REPRO_JOB_TIMEOUT", "soon")
        with pytest.raises(ConfigError):
            default_timeout_s()
