"""Tests for the experiment drivers and overhead arithmetic."""

from __future__ import annotations

import pytest

from repro.alloc.quarantine import QuarantinePolicy
from repro.core.config import RevokerKind, SimulationConfig
from repro.core.experiment import (
    ALL_KINDS,
    SAFETY_KINDS,
    bus_overhead,
    compare_strategies,
    cpu_overhead,
    overhead,
    rss_ratio,
    run_experiment,
    wall_overhead,
)
from repro.core.metrics import RunResult
from repro.workloads.churn import ChurnProfile, ChurnWorkload, SizeMix


def tiny_factory():
    profile = ChurnProfile(
        name="tiny",
        heap_bytes=32 << 10,
        churn_bytes=128 << 10,
        size_mix=SizeMix((64, 512), (0.7, 0.3)),
        seed=4,
    )
    return ChurnWorkload(profile, QuarantinePolicy(min_bytes=8 << 10))


class TestOverheadMath:
    def test_overhead_fraction(self):
        assert overhead(110, 100) == pytest.approx(0.10)
        assert overhead(90, 100) == pytest.approx(-0.10)

    def test_zero_baseline(self):
        assert overhead(5, 0) == 0.0

    def test_result_helpers(self):
        base = RunResult("w", RevokerKind.NONE, wall_cycles=100)
        base.cpu_cycles_by_core = {"core3": 100}
        base.bus_by_source = {"core3": 50}
        base.peak_rss_bytes = 1000
        test = RunResult("w", RevokerKind.RELOADED, wall_cycles=120)
        test.cpu_cycles_by_core = {"core3": 110, "core2": 30}
        test.bus_by_source = {"core3": 60, "core2": 40}
        test.peak_rss_bytes = 1400
        assert wall_overhead(test, base) == pytest.approx(0.20)
        assert cpu_overhead(test, base) == pytest.approx(0.40)
        assert bus_overhead(test, base) == pytest.approx(1.00)
        assert rss_ratio(test, base) == pytest.approx(1.4)


class TestDrivers:
    def test_run_experiment_accepts_factory(self):
        result = run_experiment(tiny_factory, RevokerKind.RELOADED)
        assert result.revoker is RevokerKind.RELOADED

    def test_run_experiment_accepts_instance(self):
        result = run_experiment(tiny_factory(), RevokerKind.NONE)
        assert result.revoker is RevokerKind.NONE

    def test_run_experiment_overrides_config_kind(self):
        cfg = SimulationConfig(revoker=RevokerKind.NONE)
        result = run_experiment(tiny_factory, RevokerKind.CHERIVOKE, cfg)
        assert result.revoker is RevokerKind.CHERIVOKE

    def test_compare_strategies_runs_all(self):
        results = compare_strategies(tiny_factory, ALL_KINDS)
        assert set(results) == set(ALL_KINDS)

    def test_safety_kinds_subset(self):
        assert set(SAFETY_KINDS) < set(ALL_KINDS)
        assert all(k.provides_safety for k in SAFETY_KINDS)
        assert not RevokerKind.PAINT_SYNC.provides_safety

    def test_identical_trace_across_conditions(self):
        results = compare_strategies(tiny_factory, (RevokerKind.NONE, RevokerKind.RELOADED))
        none, rel = results[RevokerKind.NONE], results[RevokerKind.RELOADED]
        # Same trace: the test condition can only be slower, never faster.
        assert rel.wall_cycles >= none.wall_cycles
        assert rel.total_bus_transactions >= none.total_bus_transactions


class TestStrategyOrderings:
    """The headline shape of the paper, on a small workload: pause-time
    ordering CHERIvoke >> Cornucopia > Reloaded."""

    @pytest.fixture(scope="class")
    def results(self):
        def factory():
            profile = ChurnProfile(
                name="order",
                heap_bytes=512 << 10,
                churn_bytes=4 << 20,
                size_mix=SizeMix((64, 256, 2048), (0.4, 0.4, 0.2)),
                pointer_slots=2,
                cap_loads_per_iter=3,
                seed=2,
            )
            return ChurnWorkload(profile, QuarantinePolicy(min_bytes=64 << 10))

        return compare_strategies(factory, ALL_KINDS)

    def test_max_pause_ordering(self, results):
        cv = max(results[RevokerKind.CHERIVOKE].stw_pauses)
        co = max(results[RevokerKind.CORNUCOPIA].stw_pauses)
        rl = max(results[RevokerKind.RELOADED].stw_pauses)
        assert rl < co < cv

    def test_reloaded_pause_orders_of_magnitude_below_cherivoke(self, results):
        cv = max(results[RevokerKind.CHERIVOKE].stw_pauses)
        rl = max(results[RevokerKind.RELOADED].stw_pauses)
        assert rl * 10 < cv

    def test_only_reloaded_takes_faults(self, results):
        assert results[RevokerKind.RELOADED].foreground_faults > 0
        for kind in (RevokerKind.CHERIVOKE, RevokerKind.CORNUCOPIA):
            assert results[kind].foreground_faults == 0

    def test_reloaded_bus_at_most_cornucopia(self, results):
        rl = results[RevokerKind.RELOADED].total_bus_transactions
        co = results[RevokerKind.CORNUCOPIA].total_bus_transactions
        assert rl <= co

    def test_paint_sync_cheapest_overhead(self, results):
        base = results[RevokerKind.NONE]
        ps = wall_overhead(results[RevokerKind.PAINT_SYNC], base)
        for kind in SAFETY_KINDS:
            assert ps <= wall_overhead(results[kind], base) + 1e-9

    def test_quarantine_inflates_rss(self, results):
        base = results[RevokerKind.NONE]
        for kind in SAFETY_KINDS:
            assert rss_ratio(results[kind], base) > 1.0


class TestBatches:
    def test_aggregates_across_seeds(self):
        from repro.core.experiment import run_batches

        def factory(seed):
            profile = ChurnProfile(
                name="batch",
                heap_bytes=32 << 10,
                churn_bytes=96 << 10,
                size_mix=SizeMix((64, 512), (0.7, 0.3)),
                seed=seed,
            )
            return ChurnWorkload(profile, QuarantinePolicy(min_bytes=16 << 10))

        batch = run_batches(factory, RevokerKind.RELOADED, seeds=(1, 2, 3))
        assert len(batch.runs) == 3
        wall_mean, wall_std = batch.mean_pm_std(lambda r: float(r.wall_cycles))
        assert wall_mean > 0
        assert wall_std >= 0
        # Different seeds give different traces, so there is real spread.
        walls = {r.wall_cycles for r in batch.runs}
        assert len(walls) > 1

    def test_single_seed_zero_std(self):
        from repro.core.experiment import run_batches

        batch = run_batches(lambda s: tiny_factory(), RevokerKind.NONE, seeds=(7,))
        assert batch.stddev(lambda r: float(r.wall_cycles)) == 0.0

    def test_empty_seeds_rejected(self):
        from repro.core.experiment import run_batches

        with pytest.raises(ValueError):
            run_batches(lambda s: tiny_factory(), RevokerKind.NONE, seeds=())
