"""Tests for the paper-expectations data module, plus fast end-to-end
checks of claims it encodes."""

from __future__ import annotations

import pytest

from repro.analysis import paper
from repro.analysis.paper import Direction, Expectation, check_ordering, compare


class TestExpectationMechanics:
    def test_at_most(self):
        e = Expectation("k", "s", 0.5, Direction.AT_MOST)
        assert e.check(0.4) and e.check(0.5) and not e.check(0.6)

    def test_at_least(self):
        e = Expectation("k", "s", 2.0, Direction.AT_LEAST)
        assert e.check(3.0) and not e.check(1.0)

    def test_approx_band(self):
        e = Expectation("k", "s", 10.0, Direction.APPROX, tolerance=0.5)
        assert e.check(5.0) and e.check(20.0)
        assert not e.check(4.9) and not e.check(21.0)

    def test_compare_describes(self):
        e = Expectation("fig1.x", "§5.1", 0.3, Direction.APPROX, 0.5)
        result = compare(e, 0.25)
        assert result.ok
        assert "fig1.x" in result.describe()
        assert "OK" in result.describe()
        assert "OFF" in compare(e, 10.0).describe()

    def test_check_ordering(self):
        assert check_ordering({"a": 3.0, "b": 2.0, "c": 1.0}, ["a", "b", "c"])
        assert not check_ordering({"a": 1.0, "b": 2.0, "c": 3.0}, ["a", "b", "c"])


class TestPaperData:
    def test_table2_rows_complete(self):
        assert set(paper.TABLE2) >= {
            "xalancbmk", "omnetpp", "pgbench", "gRPC QPS", "gobmk trevord",
        }
        for row in paper.TABLE2.values():
            assert row.mean_alloc_mib > 0
            assert row.revocations > 0

    def test_table2_fa_consistency(self):
        """The F:A column is (approximately) sum-freed over mean-alloc."""
        for row in paper.TABLE2.values():
            derived = (row.sum_freed_gib * 1024) / row.mean_alloc_mib
            assert derived == pytest.approx(row.freed_to_alloc, rel=0.15)

    def test_table1_tail_falls_with_lower_rate(self):
        """§5.2.1: the 99.9th percentile decreases at lower throughput."""
        assert paper.TABLE1[100][-1] < paper.TABLE1[150][-1] < paper.TABLE1[250][-1]

    def test_fig7_spread_ordering(self):
        spreads = {k: e.value for k, e in paper.FIG7_TAIL_SPREAD_MS.items()}
        assert check_ordering(spreads, ["cherivoke", "cornucopia", "reloaded"])

    def test_fig4_worst_cases_favor_reloaded(self):
        for bench in ("omnetpp", "xalancbmk"):
            assert (
                paper.FIG4_WORST_CASES[(bench, "reloaded")]
                < paper.FIG4_WORST_CASES[(bench, "cornucopia")]
            )

    def test_nonrevoking_set(self):
        assert set(paper.NON_REVOKING_BENCHMARKS) == {"bzip2", "sjeng"}


class TestClaimsAgainstSimulation:
    """Fast simulation checks of selected encoded claims (full-size
    comparisons live in the benchmark harness)."""

    def test_reloaded_single_thread_stw_is_tens_of_us(self):
        from repro.core.config import RevokerKind
        from repro.core.experiment import run_experiment
        from repro.machine.costs import cycles_to_micros
        from repro.workloads import spec

        r = run_experiment(spec.workload("gobmk", "13x13", scale=1024),
                           RevokerKind.RELOADED)
        med = sorted(r.stw_pauses)[len(r.stw_pauses) // 2]
        assert paper.FIG9_RELOADED_STW_US.check(cycles_to_micros(med))

    def test_pause_ordering_claim(self):
        from repro.core.config import RevokerKind
        from repro.core.experiment import compare_strategies
        from repro.workloads import spec

        results = compare_strategies(
            lambda: spec.workload("hmmer", "retro", scale=512),
            (RevokerKind.CHERIVOKE, RevokerKind.CORNUCOPIA, RevokerKind.RELOADED),
        )
        pauses = {
            kind.value: float(max(r.stw_pauses)) for kind, r in results.items()
        }
        assert check_ordering(pauses, ["cherivoke", "cornucopia", "reloaded"])
