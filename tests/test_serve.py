"""The serving layer: wire protocol, daemon behavior, client library.

Protocol and config tests run anywhere; the end-to-end tests fork warm
workers (runtime-registered scratch kinds only cross the fork boundary
under the ``fork`` start method, same as the pool tests) and drive a
real daemon on a Unix socket from a background thread.

The load-bearing guarantees:

- a served result is byte-identical to the same job run in-process;
- cache hits and in-flight duplicates never touch a worker;
- overload is a structured rejection, not a hang or a crash;
- worker crashes, timeouts, and deadlines kill + respawn + (where the
  fault policy says so) retry once — the daemon itself never dies;
- malformed input of every shape leaves the daemon serving.
"""

from __future__ import annotations

import json
import os
import socket
import threading
import time

import pytest

from repro.core.config import RevokerKind
from repro.errors import ConfigError
from repro.runner import Job, WorkloadSpec, execute_job
from repro.runner.campaign import register_workload
from repro.runner.serialize import dumps_result
from repro.serve import protocol
from repro.serve.client import (
    Overloaded,
    RequestFailed,
    ServeClient,
    ServeError,
    ServerUnavailable,
)
from repro.serve.protocol import ProtocolError
from repro.serve.server import (
    ServeConfig,
    SimulationServer,
    default_queue_bound,
    default_serve_job_timeout,
    default_serve_workers,
)
from repro.workloads.base import Workload

needs_fork = pytest.mark.skipif(
    not hasattr(os, "fork"), reason="serve workers need the fork start method"
)


class TestProtocol:
    def test_encode_decode_roundtrip(self):
        frame = protocol.encode({"verb": "ping", "id": 7})
        assert frame.endswith(b"\n")
        assert protocol.decode(frame) == {"verb": "ping", "id": 7}

    def test_decode_rejects_non_utf8(self):
        with pytest.raises(ProtocolError, match="UTF-8"):
            protocol.decode(b"\xff\xfe{}\n")

    def test_decode_rejects_non_json(self):
        with pytest.raises(ProtocolError, match="JSON"):
            protocol.decode(b"{nope\n")

    def test_decode_rejects_non_object(self):
        with pytest.raises(ProtocolError, match="object"):
            protocol.decode(b"[1, 2]\n")

    def test_parse_request_splits_payload(self):
        request = protocol.parse_request(
            b'{"verb": "run", "id": "abc", "job": {"x": 1}, "deadline_s": 2}\n'
        )
        assert request.verb == "run"
        assert request.id == "abc"
        assert request.payload == {"job": {"x": 1}, "deadline_s": 2}

    @pytest.mark.parametrize(
        "line", [b"{}", b'{"verb": 5}', b'{"verb": ""}', b'{"verb": null}']
    )
    def test_parse_request_needs_string_verb(self, line):
        with pytest.raises(ProtocolError, match="verb"):
            protocol.parse_request(line)

    def test_response_shapes(self):
        ok = protocol.ok_response(3, value=1)
        assert ok == {"id": 3, "ok": True, "value": 1}
        err = protocol.error_response(3, "overloaded", "full", retry_after_s=0.5)
        assert err["ok"] is False
        assert err["error"] == {"code": "overloaded", "message": "full"}
        assert err["retry_after_s"] == 0.5


class TestServeConfig:
    def test_needs_exactly_one_endpoint(self, tmp_path):
        with pytest.raises(ConfigError, match="not both"):
            ServeConfig(socket_path=str(tmp_path / "s"), host="127.0.0.1")
        with pytest.raises(ConfigError, match="required"):
            ServeConfig()

    def test_rejects_bad_sizes(self, tmp_path):
        sock = str(tmp_path / "s")
        with pytest.raises(ConfigError, match="workers"):
            ServeConfig(socket_path=sock, workers=0)
        with pytest.raises(ConfigError, match="queue"):
            ServeConfig(socket_path=sock, queue_bound=0)
        with pytest.raises(ConfigError, match="timeout"):
            ServeConfig(socket_path=sock, job_timeout_s=-1.0)

    def test_env_knobs(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_SERVE_WORKERS", "3")
        monkeypatch.setenv("REPRO_SERVE_QUEUE", "7")
        monkeypatch.setenv("REPRO_SERVE_JOB_TIMEOUT", "1.5")
        config = ServeConfig(socket_path=str(tmp_path / "s"))
        assert config.workers == 3
        assert config.queue_bound == 7
        assert config.job_timeout_s == 1.5

    @pytest.mark.parametrize(
        ("name", "fn", "raw"),
        [
            ("REPRO_SERVE_WORKERS", default_serve_workers, "zero"),
            ("REPRO_SERVE_WORKERS", default_serve_workers, "0"),
            ("REPRO_SERVE_QUEUE", default_queue_bound, "-3"),
            ("REPRO_SERVE_QUEUE", default_queue_bound, "many"),
            ("REPRO_SERVE_JOB_TIMEOUT", default_serve_job_timeout, "0"),
            ("REPRO_SERVE_JOB_TIMEOUT", default_serve_job_timeout, "soon"),
        ],
    )
    def test_bad_env_knobs_are_loud(self, monkeypatch, name, fn, raw):
        monkeypatch.setenv(name, raw)
        with pytest.raises(ConfigError, match=name):
            fn()


class TestClientValidation:
    def test_needs_exactly_one_endpoint(self):
        with pytest.raises(ServeError):
            ServeClient()
        with pytest.raises(ServeError):
            ServeClient(socket_path="/tmp/x", host="h")
        with pytest.raises(ServeError, match="port"):
            ServeClient(host="h")

    def test_unreachable_daemon(self, tmp_path):
        client = ServeClient(
            socket_path=str(tmp_path / "nope.sock"),
            retries=1,
            retry_backoff_s=0.01,
        )
        with pytest.raises(ServerUnavailable):
            client.ping()
        with pytest.raises(ServerUnavailable):
            client.wait_ready(timeout=0.2, interval=0.05)


# --- End-to-end daemon tests ---------------------------------------------


class _Tiny(Workload):
    name = "serve-tiny"

    def run(self, ctx):
        cap = yield from ctx.malloc(64)
        yield from ctx.free(cap)
        yield 100


def _tiny(tag=0):
    return _Tiny()


def _sleepy(delay=1.0, tag=0):
    time.sleep(delay)
    return _Tiny()


def _crash_once(flag=""):
    if not os.path.exists(flag):
        open(flag, "w").close()
        os._exit(42)
    return _Tiny()


def _crash_always(tag=0):
    os._exit(13)


def _boom(tag=0):
    raise RuntimeError("deterministic serve boom")


_KINDS = {
    "serve-tiny": _tiny,
    "serve-sleepy": _sleepy,
    "serve-crash-once": _crash_once,
    "serve-crash-always": _crash_always,
    "serve-boom": _boom,
}


@pytest.fixture(scope="module", autouse=True)
def _scratch_kinds():
    from repro.runner import campaign

    for kind, builder in _KINDS.items():
        register_workload(kind, builder)
    yield
    for kind in _KINDS:
        campaign._BUILDERS.pop(kind, None)


def _start(tmp_path, **overrides) -> tuple[SimulationServer, threading.Thread, str]:
    """Boot a daemon on a Unix socket in a background thread and wait
    until it answers pings. Workers fork here, inheriting the scratch
    kinds registered above."""
    sock = os.path.join(str(tmp_path), "serve.sock")
    settings = {
        "workers": 2,
        "queue_bound": 8,
        "cache_dir": os.path.join(str(tmp_path), "cache"),
        "drain_timeout_s": 5.0,
    }
    settings.update(overrides)
    server = SimulationServer(ServeConfig(socket_path=sock, **settings))
    thread = threading.Thread(target=server.run, daemon=True)
    thread.start()
    with ServeClient(socket_path=sock) as client:
        client.wait_ready(timeout=30.0)
    return server, thread, sock


def _stop(server: SimulationServer, thread: threading.Thread) -> None:
    server.shutdown_threadsafe()
    thread.join(timeout=30.0)
    assert not thread.is_alive(), "daemon failed to drain"


@pytest.fixture(scope="module")
def served(tmp_path_factory):
    """One shared daemon for the happy-path tests (faulty-job tests get
    their own daemons so restart counters stay interpretable)."""
    tmp = tmp_path_factory.mktemp("serve")
    server, thread, sock = _start(tmp)
    yield server, sock
    _stop(server, thread)


def _client(sock: str, **kwargs) -> ServeClient:
    kwargs.setdefault("request_timeout", 60.0)
    return ServeClient(socket_path=sock, **kwargs)


@needs_fork
class TestVerbs:
    def test_ping(self, served):
        _, sock = served
        with _client(sock) as client:
            response = client.ping()
        assert response["ok"] is True
        assert response["protocol"] == protocol.PROTOCOL_VERSION

    def test_health(self, served):
        _, sock = served
        with _client(sock) as client:
            health = client.health()
        assert health["status"] == "ok"
        assert health["workers"]["configured"] == 2
        assert health["workers"]["alive"] == 2
        assert health["queue_bound"] == 8
        assert health["uptime_s"] >= 0

    def test_list_catalog(self, served):
        _, sock = served
        with _client(sock) as client:
            catalog = client.catalog()
        assert "pgbench" in catalog["workloads"]
        assert "spec" in catalog["workload_kinds"]
        assert "serve-tiny" in catalog["workload_kinds"]
        by_name = {s["name"]: s["provides_safety"] for s in catalog["strategies"]}
        assert by_name["reloaded"] is True
        assert by_name["none"] is False

    def test_unknown_verb_keeps_connection(self, served):
        _, sock = served
        with _client(sock) as client:
            with pytest.raises(RequestFailed) as excinfo:
                client.request("frobnicate")
            assert excinfo.value.code == "unknown-verb"
            assert "ping" in excinfo.value.message
            assert client.ping()["ok"] is True  # same connection still works


@needs_fork
class TestRun:
    def test_served_result_matches_in_process(self, served):
        _, sock = served
        params = {"benchmark": "hmmer", "input": "retro", "scale": 2048}
        expected = dumps_result(
            execute_job(Job(WorkloadSpec("spec", params), RevokerKind.RELOADED))
        )
        with _client(sock) as client:
            response = client.run("spec", params, revoker="reloaded")
        assert dumps_result(response.result) == expected
        assert response.fingerprint

    def test_second_request_is_a_cache_hit(self, served):
        _, sock = served
        params = {"tag": 101}
        with _client(sock) as client:
            first = client.run("serve-tiny", params, revoker="none")
            second = client.run("serve-tiny", params, revoker="none")
            stats = client.stats()
        assert first.cached is False
        assert second.cached is True
        assert dumps_result(first.result) == dumps_result(second.result)
        assert stats["stats"]["counters"]["serve.cache_hits"] >= 1

    def test_identical_inflight_requests_collapse(self, served):
        _, sock = served
        job_params = {"delay": 0.6, "tag": 202}
        responses = {}

        def issue(name):
            with _client(sock) as client:
                responses[name] = client.run(
                    "serve-sleepy", job_params, revoker="none"
                )

        first = threading.Thread(target=issue, args=("a",))
        second = threading.Thread(target=issue, args=("b",))
        first.start()
        time.sleep(0.15)  # let "a" reach a worker before "b" arrives
        second.start()
        first.join(timeout=30)
        second.join(timeout=30)
        assert set(responses) == {"a", "b"}
        flags = {(r.cached, r.deduped) for r in responses.values()}
        # One executed fresh; the other either joined it in flight or (if
        # the leader finished first) hit the cache. Exactly one worker run.
        assert (False, False) in flags
        assert (False, True) in flags or (True, False) in flags
        assert (
            dumps_result(responses["a"].result)
            == dumps_result(responses["b"].result)
        )

    def test_invalid_jobs_are_structured_errors(self, served):
        _, sock = served
        with _client(sock) as client:
            with pytest.raises(RequestFailed) as excinfo:
                client.run("no-such-kind", {})
            assert excinfo.value.code == "invalid-job"
            with pytest.raises(RequestFailed) as excinfo:
                client.request("run", {"job": {"workload": "not-a-dict"}})
            assert excinfo.value.code == "invalid-job"
            with pytest.raises(RequestFailed) as excinfo:
                client.run("serve-tiny", {"tag": 1}, deadline_s=-2)
            assert excinfo.value.code == "bad-request"
            assert client.ping()["ok"] is True


@needs_fork
class TestBackpressure:
    def test_burst_past_bound_is_rejected_not_hung(self, tmp_path):
        server, thread, sock = _start(
            tmp_path, workers=1, queue_bound=2, no_cache=True
        )
        try:
            outcomes = []
            lock = threading.Lock()

            def issue(i):
                try:
                    with _client(sock) as client:
                        client.run(
                            "serve-sleepy", {"delay": 0.5, "tag": 300 + i},
                            revoker="none",
                        )
                    outcome = "ok"
                except Overloaded as exc:
                    assert exc.retry_after_s > 0
                    outcome = "overloaded"
                with lock:
                    outcomes.append(outcome)

            threads = [
                threading.Thread(target=issue, args=(i,)) for i in range(8)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=60)
            assert len(outcomes) == 8
            assert outcomes.count("overloaded") >= 1
            assert outcomes.count("ok") >= 1
            assert outcomes.count("ok") + outcomes.count("overloaded") == 8
            with _client(sock) as client:
                health = client.health()
                stats = client.stats()
            assert health["status"] == "ok"
            assert (
                stats["stats"]["counters"]["serve.overloaded"]
                == outcomes.count("overloaded")
            )
        finally:
            _stop(server, thread)

    def test_overloaded_client_can_retry_after(self, tmp_path):
        server, thread, sock = _start(
            tmp_path, workers=1, queue_bound=1, no_cache=True
        )
        try:
            blocker = threading.Thread(
                target=lambda: _client(sock).run(
                    "serve-sleepy", {"delay": 0.8, "tag": 400}, revoker="none"
                )
            )
            filler = threading.Thread(
                target=lambda: _client(sock).run(
                    "serve-sleepy", {"delay": 0.2, "tag": 401}, revoker="none"
                )
            )
            blocker.start()
            time.sleep(0.2)
            filler.start()
            time.sleep(0.1)
            # Queue holds the filler; the worker holds the blocker. A
            # patient client waits out the retry_after hint and lands.
            with _client(sock, retry_overloaded=True, retries=30) as client:
                response = client.run(
                    "serve-tiny", {"tag": 402}, revoker="none", timeout=30
                )
            assert response.cached is False
            blocker.join(timeout=30)
            filler.join(timeout=30)
        finally:
            _stop(server, thread)

    def test_retry_after_hint_reflects_job_timeout_under_load(self, tmp_path):
        # Wire-level: before any execution sample exists, the hint must
        # derive from the configured job timeout — not the old hardcoded
        # 0.5 s mean, which undershot badly for long jobs.
        server, thread, sock = _start(
            tmp_path, workers=1, queue_bound=1, no_cache=True,
            job_timeout_s=6.0,
        )
        try:
            blocker = threading.Thread(
                target=lambda: _client(sock).run(
                    "serve-sleepy", {"delay": 0.8, "tag": 500}, revoker="none"
                )
            )
            filler = threading.Thread(
                target=lambda: _client(sock).run(
                    "serve-sleepy", {"delay": 0.2, "tag": 501}, revoker="none"
                )
            )
            blocker.start()
            time.sleep(0.2)
            filler.start()
            time.sleep(0.1)
            with pytest.raises(Overloaded) as excinfo:
                with _client(sock) as client:
                    client.run("serve-tiny", {"tag": 502}, revoker="none")
            # Backlog 2 (one executing, one queued) x 3 s cold-start mean
            # (half the 6 s timeout) over 1 live worker. The old fallback
            # would have hinted 1.0 s.
            assert excinfo.value.retry_after_s >= 3.0
            blocker.join(timeout=30)
            filler.join(timeout=30)
        finally:
            _stop(server, thread)


@needs_fork
class TestFaultPolicy:
    def test_crash_once_is_retried_on_fresh_worker(self, tmp_path):
        server, thread, sock = _start(tmp_path, workers=1)
        try:
            flag = str(tmp_path / "crashed-once")
            with _client(sock) as client:
                response = client.run(
                    "serve-crash-once", {"flag": flag}, revoker="none"
                )
                stats = client.stats()
                health = client.health()
            assert response.result.wall_cycles > 0
            counters = stats["stats"]["counters"]
            assert counters["serve.retries"] == 1
            assert counters["serve.worker_crashes"] == 1
            assert counters["serve.worker_restarts"] >= 1
            assert health["workers"]["alive"] == 1
        finally:
            _stop(server, thread)

    def test_persistent_crash_fails_cleanly_after_retry(self, tmp_path):
        server, thread, sock = _start(tmp_path, workers=1)
        try:
            with _client(sock) as client:
                with pytest.raises(RequestFailed, match="failed twice") as excinfo:
                    client.run("serve-crash-always", {"tag": 1}, revoker="none")
                assert excinfo.value.code == "job-failed"
                # The daemon and its (respawned) worker live on.
                assert client.health()["workers"]["alive"] == 1
                follow_up = client.run("serve-tiny", {"tag": 500}, revoker="none")
            assert follow_up.result.wall_cycles > 0
        finally:
            _stop(server, thread)

    def test_deterministic_exception_is_not_retried(self, tmp_path):
        server, thread, sock = _start(tmp_path, workers=1)
        try:
            with _client(sock) as client:
                with pytest.raises(RequestFailed, match="boom") as excinfo:
                    client.run("serve-boom", {"tag": 1}, revoker="none")
                stats = client.stats()
            assert excinfo.value.code == "job-failed"
            counters = stats["stats"]["counters"]
            assert counters.get("serve.retries", 0) == 0
            assert counters["serve.job_failures"] == 1
        finally:
            _stop(server, thread)

    def test_deadline_kills_job_and_reclaims_worker(self, tmp_path):
        server, thread, sock = _start(tmp_path, workers=1, no_cache=True)
        try:
            began = time.monotonic()
            with _client(sock) as client:
                with pytest.raises(RequestFailed) as excinfo:
                    client.run(
                        "serve-sleepy", {"delay": 30.0, "tag": 600},
                        revoker="none", deadline_s=0.4,
                    )
                assert excinfo.value.code == "deadline"
                assert time.monotonic() - began < 10  # not 30s
                follow_up = client.run("serve-tiny", {"tag": 601}, revoker="none")
                stats = client.stats()
            assert follow_up.result.wall_cycles > 0
            counters = stats["stats"]["counters"]
            assert counters["serve.deadline_misses"] == 1
            assert counters.get("serve.retries", 0) == 0  # deadlines never retry
        finally:
            _stop(server, thread)

    def test_job_timeout_knob_retries_once(self, tmp_path):
        server, thread, sock = _start(
            tmp_path, workers=1, job_timeout_s=0.3, no_cache=True
        )
        try:
            with _client(sock) as client:
                with pytest.raises(RequestFailed, match="failed twice") as excinfo:
                    client.run(
                        "serve-sleepy", {"delay": 30.0, "tag": 700}, revoker="none"
                    )
                stats = client.stats()
            assert excinfo.value.code == "job-failed"
            counters = stats["stats"]["counters"]
            assert counters["serve.worker_timeouts"] == 2
            assert counters["serve.retries"] == 1
        finally:
            _stop(server, thread)


@needs_fork
class TestWireRobustness:
    """Satellite: hostile/broken input must never take the daemon down."""

    def _raw(self, sock_path: str) -> socket.socket:
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(10.0)
        sock.connect(sock_path)
        return sock

    def test_malformed_json_then_valid_request(self, served):
        _, sock_path = served
        with self._raw(sock_path) as sock:
            reader = sock.makefile("rb")
            sock.sendall(b"{this is not json\n")
            response = json.loads(reader.readline())
            assert response["ok"] is False
            assert response["error"]["code"] == "bad-request"
            sock.sendall(b'{"verb": "ping", "id": 1}\n')
            response = json.loads(reader.readline())
            assert response["ok"] is True

    def test_oversized_line_answers_then_closes(self, tmp_path):
        server, thread, sock_path = _start(tmp_path, max_line_bytes=1024)
        try:
            with self._raw(sock_path) as sock:
                reader = sock.makefile("rb")
                sock.sendall(b'{"verb": "ping", "pad": "' + b"x" * 4096 + b'"}\n')
                response = json.loads(reader.readline())
                assert response["ok"] is False
                assert response["error"]["code"] == "oversized"
                assert reader.readline() == b""  # connection closed
            # The daemon itself is fine.
            with _client(sock_path) as client:
                assert client.ping()["ok"] is True
        finally:
            _stop(server, thread)

    def test_disconnect_mid_request_leaves_daemon_alive(self, served):
        _, sock_path = served
        with self._raw(sock_path) as sock:
            sock.sendall(b'{"verb": "ping"')  # no newline, then vanish
        time.sleep(0.1)
        with _client(sock_path) as client:
            assert client.ping()["ok"] is True

    def test_disconnect_while_job_runs_leaves_daemon_alive(self, served):
        _, sock_path = served
        with self._raw(sock_path) as sock:
            frame = protocol.encode({
                "verb": "run",
                "job": {
                    "workload": {
                        "kind": "serve-sleepy",
                        "params": {"delay": 0.4, "tag": 800},
                    },
                    "revoker": "none",
                },
            })
            sock.sendall(frame)
        # Client gone before the answer; the daemon writes into the void
        # and shrugs.
        time.sleep(0.8)
        with _client(sock_path) as client:
            assert client.health()["status"] == "ok"

    def test_blank_lines_are_ignored(self, served):
        _, sock_path = served
        with self._raw(sock_path) as sock:
            reader = sock.makefile("rb")
            sock.sendall(b"\n\n" + protocol.encode({"verb": "ping", "id": 9}))
            response = json.loads(reader.readline())
            assert response["id"] == 9
            assert response["ok"] is True


@needs_fork
class TestLifecycle:
    def test_shutdown_verb_drains_and_exits(self, tmp_path):
        server, thread, sock = _start(tmp_path)
        with _client(sock) as client:
            response = client.shutdown()
        assert response["draining"] is True
        thread.join(timeout=30.0)
        assert not thread.is_alive()
        assert not os.path.exists(sock)  # socket unlinked on exit

    def test_run_during_drain_is_rejected(self, tmp_path):
        server, thread, sock = _start(tmp_path, drain_timeout_s=2.0, no_cache=True)
        holder = threading.Thread(
            target=lambda: _client(sock).run(
                "serve-sleepy", {"delay": 1.0, "tag": 900}, revoker="none"
            )
        )
        holder.start()
        time.sleep(0.3)
        with _client(sock) as client:
            client.shutdown()
            with pytest.raises(RequestFailed) as excinfo:
                client.run("serve-tiny", {"tag": 901}, revoker="none")
            assert excinfo.value.code == "shutting-down"
        holder.join(timeout=30)  # the in-flight job still completed
        thread.join(timeout=30)
        assert not thread.is_alive()

    def test_stats_derivations(self, tmp_path):
        server, thread, sock = _start(tmp_path)
        try:
            with _client(sock) as client:
                client.run("serve-tiny", {"tag": 1000}, revoker="none")
                client.run("serve-tiny", {"tag": 1000}, revoker="none")
                stats = client.stats()
            derived = stats["derived"]
            assert derived["cache_hit_rate"] == pytest.approx(0.5)
            assert derived["service_p50_us"] is not None
            assert derived["service_p99_us"] >= derived["service_p50_us"]
        finally:
            _stop(server, thread)


class TestRetryAfterHint:
    """Unit coverage for the retry_after_s computation: the cold-start
    fallback derives from the configured job timeout, and an empty or
    respawning pool can never zero the divisor."""

    def _server(self, tmp_path, **overrides):
        settings = {"workers": 2, "queue_bound": 4}
        settings.update(overrides)
        server = SimulationServer(ServeConfig(
            socket_path=os.path.join(str(tmp_path), "unused.sock"),
            **settings,
        ))

        class _Queue:
            def qsize(self):
                return 3

        server._queue = _Queue()
        server._executing = 1
        return server

    def test_cold_start_derives_from_job_timeout(self, tmp_path):
        server = self._server(tmp_path, job_timeout_s=4.0)
        server.pool = None
        # mean 2 s (half the timeout) x backlog 4, worker floor of 1.
        assert server._retry_after() == pytest.approx(8.0)

    def test_cold_start_without_timeout_falls_back(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_SERVE_JOB_TIMEOUT", raising=False)
        server = self._server(tmp_path)
        server.pool = None
        assert server._retry_after() == pytest.approx(0.5 * 4)

    def test_dead_pool_does_not_zero_the_divisor(self, tmp_path):
        # During drain (or mid-respawn) every worker can be gone; the
        # old len(self.pool) division assumed a healthy pool.
        server = self._server(tmp_path, job_timeout_s=2.0)

        class _DeadPool:
            alive = 0

            def __len__(self):
                return 2

        server.pool = _DeadPool()
        assert server._retry_after() == pytest.approx(4.0)

    def test_live_workers_spread_the_backlog(self, tmp_path):
        server = self._server(tmp_path, job_timeout_s=2.0)

        class _Pool:
            alive = 2

            def __len__(self):
                return 2

        server.pool = _Pool()
        assert server._retry_after() == pytest.approx(2.0)
