"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.alloc.snmalloc import SnMalloc
from repro.kernel.kernel import Kernel
from repro.machine.machine import Machine


@pytest.fixture
def machine() -> Machine:
    """A small 4-core machine (16 MiB), enough for unit tests."""
    return Machine(memory_bytes=16 << 20)


@pytest.fixture
def kernel(machine: Machine) -> Kernel:
    return Kernel(machine)


@pytest.fixture
def alloc(kernel: Kernel) -> SnMalloc:
    return SnMalloc(kernel)
