"""Property tests for the checkpoint determinism contract.

For randomly drawn churn schedules (scale, seed) and every revoker:
checkpoint → restore → run must equal the straight-through run
bit-for-bit on the ``result_to_dict`` surface, and restoring the same
blob twice must give the same answer both times. This is the contract
the runner's resume path and the serve warm-start both lean on.

Warm-start prefix sharing (docs/WARMSTART.md) extends it: for an
arbitrary divergence epoch, a run forked from a stored prefix must be
bit-identical to the cold run — at epoch 0 for *all four* revoking
strategies off one blob — and two jobs sharing a prefix must never
double-capture it.
"""

from __future__ import annotations

import os
import tempfile

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.config import RevokerKind, SimulationConfig
from repro.core.simulation import Simulation
from repro.runner.serialize import result_to_dict
from repro.snapshot import (
    SnapshotPlan,
    SnapshotSession,
    fork_simulation,
    prefix_plan,
    restore_simulation,
)
from repro.workloads import spec

MEMORY_BYTES = 16 << 20

ALL_KINDS = (
    RevokerKind.NONE,
    RevokerKind.CHERIVOKE,
    RevokerKind.CORNUCOPIA,
    RevokerKind.RELOADED,
    RevokerKind.PAINT_SYNC,
)


def _build(kind: RevokerKind, scale: int, seed: int) -> Simulation:
    workload = spec.workload("hmmer", "retro", scale=scale, seed=seed)
    cfg = SimulationConfig(revoker=kind)
    cfg.machine.memory_bytes = MEMORY_BYTES
    return Simulation(workload, cfg)


def _plan(kind: RevokerKind) -> SnapshotPlan:
    # The NONE revoker has no epochs; use a check cadence well under the
    # smallest schedule length so at least one capture fires.
    if kind is RevokerKind.NONE:
        return SnapshotPlan(every_checks=8)
    return SnapshotPlan(every_epochs=1)


@pytest.mark.parametrize("kind", ALL_KINDS, ids=lambda k: k.value)
@settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    scale=st.integers(min_value=1024, max_value=8192),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_restore_resume_matches_straight_run(kind, scale, seed):
    straight_sim = _build(kind, scale, seed)
    straight = result_to_dict(straight_sim.run(snapshots=_plan(kind)))
    session = straight_sim._snapshots
    # Tiny schedules can finish before the first epoch closes; the
    # contract is then vacuous for this example.
    if not session.captured:
        return
    for blob in session.captured:
        once, _ = restore_simulation(blob)
        twice, _ = restore_simulation(blob)
        first = result_to_dict(once.resume())
        second = result_to_dict(twice.resume())
        assert first == straight
        assert second == first


@settings(max_examples=6, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(min_value=0, max_value=2**31 - 1))
def test_snapshots_never_perturb_the_result(seed):
    plain = result_to_dict(_build(RevokerKind.RELOADED, 4096, seed).run())
    snapped_sim = _build(RevokerKind.RELOADED, 4096, seed)
    snapped = result_to_dict(
        snapped_sim.run(snapshots=SnapshotPlan(every_epochs=1))
    )
    assert snapped == plain


REVOKING = tuple(k for k in ALL_KINDS if k is not RevokerKind.NONE)


@settings(
    max_examples=6,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    scale=st.integers(min_value=1024, max_value=8192),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    epoch=st.integers(min_value=0, max_value=2),
)
def test_warm_started_runs_match_cold_for_every_revoker(scale, seed, epoch):
    leader = _build(RevokerKind.PAINT_SYNC, scale, seed)
    session = SnapshotSession(leader, prefix_plan(epoch))
    leader_result = result_to_dict(leader.run(snapshots=session))
    # Prefix capture must not perturb the capturing run itself.
    assert leader_result == result_to_dict(
        _build(RevokerKind.PAINT_SYNC, scale, seed).run()
    )
    # The capture window can close before any quiescent poll (tiny
    # schedules, early triggers); the contract is then vacuous.
    if not session.captured:
        return
    blob = session.captured[-1]
    if epoch == 0:
        # One epoch-0 blob serves all four revoking strategies.
        for kind in REVOKING:
            cold = result_to_dict(_build(kind, scale, seed).run())
            forked, header = fork_simulation(blob, kind)
            assert header["epoch"] == 0
            assert result_to_dict(forked.resume()) == cold
    else:
        # Past epoch 0 the prefix is strategy-specific: same-strategy
        # forks resume bit-identically, cross-strategy forks refuse.
        forked, _ = fork_simulation(blob, RevokerKind.PAINT_SYNC)
        assert result_to_dict(forked.resume()) == leader_result
        from repro.errors import SnapshotError

        with pytest.raises(SnapshotError):
            fork_simulation(blob, RevokerKind.RELOADED)


@settings(
    max_examples=4,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    scale=st.integers(min_value=1024, max_value=8192),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_two_jobs_sharing_a_prefix_never_double_capture(scale, seed):
    from repro.runner.campaign import (
        Job,
        WorkloadSpec,
        execute_job,
        pop_warm_start_note,
    )
    from repro.snapshot.prefix import PrefixStore

    workload = WorkloadSpec(
        "spec",
        {"benchmark": "hmmer", "input": "retro", "scale": scale, "seed": seed},
    )
    config = {"machine": {"memory_bytes": MEMORY_BYTES}}
    with tempfile.TemporaryDirectory() as tmp:
        previous = os.environ.get("REPRO_PREFIX_DIR")
        os.environ["REPRO_PREFIX_DIR"] = tmp
        try:
            notes = []
            for kind in (RevokerKind.PAINT_SYNC, RevokerKind.RELOADED):
                execute_job(Job(workload, kind, config))
                notes.append(pop_warm_start_note())
        finally:
            if previous is None:
                del os.environ["REPRO_PREFIX_DIR"]
            else:
                os.environ["REPRO_PREFIX_DIR"] = previous
        store = PrefixStore(tmp)
        assert store.entries() <= 1
        assert notes.count("capture") <= 1
        if store.entries():
            assert notes == ["capture", "hit"]
