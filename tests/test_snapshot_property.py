"""Property test for the checkpoint determinism contract.

For randomly drawn churn schedules (scale, seed) and every revoker:
checkpoint → restore → run must equal the straight-through run
bit-for-bit on the ``result_to_dict`` surface, and restoring the same
blob twice must give the same answer both times. This is the contract
the runner's resume path and the serve warm-start both lean on.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.config import RevokerKind, SimulationConfig
from repro.core.simulation import Simulation
from repro.runner.serialize import result_to_dict
from repro.snapshot import SnapshotPlan, restore_simulation
from repro.workloads import spec

MEMORY_BYTES = 16 << 20

ALL_KINDS = (
    RevokerKind.NONE,
    RevokerKind.CHERIVOKE,
    RevokerKind.CORNUCOPIA,
    RevokerKind.RELOADED,
    RevokerKind.PAINT_SYNC,
)


def _build(kind: RevokerKind, scale: int, seed: int) -> Simulation:
    workload = spec.workload("hmmer", "retro", scale=scale, seed=seed)
    cfg = SimulationConfig(revoker=kind)
    cfg.machine.memory_bytes = MEMORY_BYTES
    return Simulation(workload, cfg)


def _plan(kind: RevokerKind) -> SnapshotPlan:
    # The NONE revoker has no epochs; use a check cadence well under the
    # smallest schedule length so at least one capture fires.
    if kind is RevokerKind.NONE:
        return SnapshotPlan(every_checks=8)
    return SnapshotPlan(every_epochs=1)


@pytest.mark.parametrize("kind", ALL_KINDS, ids=lambda k: k.value)
@settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    scale=st.integers(min_value=1024, max_value=8192),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_restore_resume_matches_straight_run(kind, scale, seed):
    straight_sim = _build(kind, scale, seed)
    straight = result_to_dict(straight_sim.run(snapshots=_plan(kind)))
    session = straight_sim._snapshots
    # Tiny schedules can finish before the first epoch closes; the
    # contract is then vacuous for this example.
    if not session.captured:
        return
    for blob in session.captured:
        once, _ = restore_simulation(blob)
        twice, _ = restore_simulation(blob)
        first = result_to_dict(once.resume())
        second = result_to_dict(twice.resume())
        assert first == straight
        assert second == first


@settings(max_examples=6, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(min_value=0, max_value=2**31 - 1))
def test_snapshots_never_perturb_the_result(seed):
    plain = result_to_dict(_build(RevokerKind.RELOADED, 4096, seed).run())
    snapped_sim = _build(RevokerKind.RELOADED, 4096, seed)
    snapped = result_to_dict(
        snapped_sim.run(snapshots=SnapshotPlan(every_epochs=1))
    )
    assert snapped == plain
