"""Unit tests for register files and kernel capability hoards (§4.4)."""

from __future__ import annotations

import pytest

from repro.kernel.hoards import KernelHoards, RegisterFile
from repro.kernel.shadow import RevocationBitmap
from repro.machine.capability import Capability


@pytest.fixture
def shadow() -> RevocationBitmap:
    return RevocationBitmap(1 << 20)


def cap(addr=0x1000) -> Capability:
    return Capability.root(addr, 64)


class TestRegisterFile:
    def test_set_get_clear(self):
        rf = RegisterFile()
        rf.set(3, cap())
        assert rf.get(3) == cap()
        rf.clear(3)
        assert rf.get(3) is None

    def test_capacity_enforced(self):
        rf = RegisterFile(capacity=4)
        with pytest.raises(IndexError):
            rf.set(4, cap())
        with pytest.raises(IndexError):
            rf.set(-1, cap())

    def test_live_caps_excludes_untagged(self):
        rf = RegisterFile()
        rf.set(0, cap())
        rf.set(1, cap().cleared())
        assert [i for i, _ in rf.live_caps()] == [0]

    def test_scan_clears_painted(self, shadow):
        rf = RegisterFile()
        rf.set(0, cap(0x1000))
        rf.set(1, cap(0x2000))
        shadow.paint(0x1000, 64)
        outcome = rf.scan(shadow)
        assert outcome.checked == 2
        assert outcome.revoked == 1
        assert not rf.get(0).tag
        assert rf.get(1).tag

    def test_scan_ignores_already_untagged(self, shadow):
        rf = RegisterFile()
        rf.set(0, cap().cleared())
        outcome = rf.scan(shadow)
        assert outcome.checked == 0

    def test_scan_is_idempotent(self, shadow):
        rf = RegisterFile()
        rf.set(0, cap(0x1000))
        shadow.paint(0x1000, 64)
        rf.scan(shadow)
        outcome = rf.scan(shadow)
        assert outcome.revoked == 0


class TestKernelHoards:
    def test_stash_retrieve(self):
        hoards = KernelHoards()
        t = hoards.stash("kqueue", cap())
        assert hoards.retrieve("kqueue", t) == cap()

    def test_total_caps_across_subsystems(self):
        hoards = KernelHoards()
        hoards.stash("kqueue", cap())
        hoards.stash("aio", cap(0x2000))
        hoards.stash("aio", cap(0x3000))
        assert hoards.total_caps() == 3

    def test_scan_clears_painted_everywhere(self, shadow):
        hoards = KernelHoards()
        t1 = hoards.stash("kqueue", cap(0x1000))
        t2 = hoards.stash("aio", cap(0x2000))
        shadow.paint(0x1000, 64)
        shadow.paint(0x2000, 64)
        outcome = hoards.scan(shadow)
        assert outcome.revoked == 2
        assert not hoards.retrieve("kqueue", t1).tag
        assert not hoards.retrieve("aio", t2).tag

    def test_scan_spares_unpainted(self, shadow):
        hoards = KernelHoards()
        t = hoards.stash("kqueue", cap(0x5000))
        shadow.paint(0x1000, 64)
        hoards.scan(shadow)
        assert hoards.retrieve("kqueue", t).tag
