"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        from repro.core.config import RevokerKind

        args = build_parser().parse_args(["run", "gobmk.13x13"])
        assert args.workload == "gobmk.13x13"
        # Strategy arguments are converted at parse time (so bad names
        # route through parser.error with usage text).
        assert args.revoker is RevokerKind.RELOADED
        assert args.scale == 256

    def test_unknown_strategy_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["run", "gobmk.13x13", "wat"])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "xalancbmk.ref" in out
        assert "reloaded" in out
        assert "pgbench" in out

    def test_list_json_round_trips(self, capsys):
        import json

        assert main(["list", "--json"]) == 0
        catalog = json.loads(capsys.readouterr().out)
        assert "pgbench" in catalog["workloads"]
        assert "gobmk.13x13" in catalog["workloads"]
        assert "spec" in catalog["workload_kinds"]
        by_name = {s["name"]: s["provides_safety"] for s in catalog["strategies"]}
        assert by_name["reloaded"] is True
        assert by_name["none"] is False

    def test_run_small(self, capsys):
        assert main(["run", "gobmk.13x13", "reloaded", "--scale", "1024"]) == 0
        out = capsys.readouterr().out
        assert "gobmk.13x13/reloaded" in out

    def test_run_unknown_workload(self, capsys):
        assert main(["run", "doom", "reloaded"]) == 2
        assert "error" in capsys.readouterr().err

    def test_attack_reports_safe(self, capsys):
        assert main(["attack", "--rounds", "6"]) == 0
        out = capsys.readouterr().out
        assert "VULNERABLE" in out  # baseline and paint+sync
        assert "safe" in out

    def test_pgbench_percentiles(self, capsys):
        assert main(["pgbench", "--transactions", "40"]) == 0
        out = capsys.readouterr().out
        assert "p99 ms" in out

    def test_trace_workflow(self, tmp_path, capsys):
        path = str(tmp_path / "trace.jsonl")
        assert main(["trace", "synth", path, "--objects", "30", "--churn", "100"]) == 0
        assert main(["trace", "stats", path]) == 0
        assert "well-formed" in capsys.readouterr().out
        assert main(["trace", "replay", path, "reloaded"]) == 0
        out = capsys.readouterr().out
        assert "replayed" in out

    def test_compare_small(self, capsys):
        assert main(["compare", "gobmk.13x13", "--scale", "2048"]) == 0
        out = capsys.readouterr().out
        assert "cherivoke" in out and "max pause" in out


class TestVerifyPaper:
    def test_verify_paper_passes(self, capsys):
        assert main(["verify-paper", "--scale", "1024"]) == 0
        out = capsys.readouterr().out
        assert "paper claims verified" in out
        assert "OFF" not in out


class TestArgparseErrorRouting:
    def test_unknown_strategy_exits_with_usage(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["run", "gobmk.13x13", "wat"])
        assert exc.value.code == 2
        err = capsys.readouterr().err
        assert "usage:" in err
        assert "choose from" in err

    def test_trace_replay_strategy_routed_too(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["trace", "replay", "whatever.jsonl", "wat"])
        assert exc.value.code == 2
        assert "choose from" in capsys.readouterr().err

    def test_unknown_workload_message_names_catalog(self, capsys):
        assert main(["run", "doom"]) == 2
        assert "repro list" in capsys.readouterr().err

    def test_unknown_spec_input_lists_inputs(self, capsys):
        assert main(["run", "gobmk.99x99"]) == 2
        err = capsys.readouterr().err
        assert "13x13" in err and "trevord" in err


class TestCampaignCommand:
    def _write_spec(self, tmp_path, **overrides):
        import json

        data = {
            "name": "cli-smoke",
            "workloads": [
                {"kind": "spec",
                 "params": {"benchmark": "hmmer", "input": "retro", "scale": 2048}},
            ],
            "revokers": ["none", "reloaded"],
        }
        data.update(overrides)
        path = tmp_path / "campaign.json"
        path.write_text(json.dumps(data))
        return str(path)

    def test_dry_run_lists_matrix(self, tmp_path, capsys):
        path = self._write_spec(tmp_path, seeds=[1, 2])
        assert main(["campaign", path, "--dry-run"]) == 0
        out = capsys.readouterr().out
        assert "4 jobs" in out
        assert "hmmer" in out

    def test_campaign_runs_and_caches(self, tmp_path, capsys):
        path = self._write_spec(tmp_path)
        cache_dir = str(tmp_path / "cache")
        assert main(["campaign", path, "--cache-dir", cache_dir, "--quiet"]) == 0
        first = capsys.readouterr().out
        assert "cache-hits=0 fresh=2" in first
        assert main(["campaign", path, "--cache-dir", cache_dir, "--quiet"]) == 0
        second = capsys.readouterr().out
        assert "cache-hits=2 fresh=0" in second

    def test_no_cache_flag(self, tmp_path, capsys):
        path = self._write_spec(tmp_path, revokers=["none"])
        assert main(["campaign", path, "--no-cache", "--quiet"]) == 0
        assert "cache-hits=0 fresh=1" in capsys.readouterr().out

    def test_missing_spec_file_is_an_error(self, tmp_path, capsys):
        assert main(["campaign", str(tmp_path / "nope.json")]) == 2
        assert "cannot read" in capsys.readouterr().err

    def test_invalid_json_is_an_error(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text("{nope")
        assert main(["campaign", str(path)]) == 2
        assert "not valid JSON" in capsys.readouterr().err

    def test_bad_matrix_is_an_error(self, tmp_path, capsys):
        path = self._write_spec(tmp_path, revokers=["warp-drive"])
        assert main(["campaign", path]) == 2
        assert "error" in capsys.readouterr().err


class TestServeBenchShim:
    """Both spellings forward to the load generator before the main
    parser runs; only the deprecated one warns, and only once."""

    @pytest.fixture()
    def bench_spy(self, monkeypatch):
        import repro.cli as cli
        import repro.serve.bench as bench

        calls = []
        monkeypatch.setattr(bench, "main", lambda argv: calls.append(argv) or 0)
        monkeypatch.setattr(cli, "_SERVE_BENCH_WARNED", False)
        return calls

    def test_serve_bench_forwards_silently(self, bench_spy, recwarn, capsys):
        assert main(["serve", "bench", "--requests", "3"]) == 0
        assert bench_spy == [["--requests", "3"]]
        assert not [w for w in recwarn if issubclass(w.category, DeprecationWarning)]
        assert "deprecated" not in capsys.readouterr().err

    def test_old_spelling_forwards_with_one_warning(self, bench_spy, capsys):
        with pytest.warns(DeprecationWarning, match="serve bench"):
            assert main(["serve-bench", "--requests", "3"]) == 0
        assert "deprecated" in capsys.readouterr().err
        # Second use in the same process stays quiet.
        assert main(["serve-bench", "--concurrency", "2"]) == 0
        assert "deprecated" not in capsys.readouterr().err
        assert bench_spy == [["--requests", "3"], ["--concurrency", "2"]]

    def test_leading_options_reach_the_load_generator(self, bench_spy):
        # bpo-17050: REMAINDER cannot capture a leading --option; the
        # pre-dispatch must, for both spellings.
        assert main(["serve", "bench", "--autostart", "--requests", "1"]) == 0
        assert bench_spy[-1] == ["--autostart", "--requests", "1"]
