"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "gobmk.13x13"])
        assert args.workload == "gobmk.13x13"
        assert args.revoker == "reloaded"
        assert args.scale == 256

    def test_unknown_strategy_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["run", "gobmk.13x13", "wat"])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "xalancbmk.ref" in out
        assert "reloaded" in out
        assert "pgbench" in out

    def test_run_small(self, capsys):
        assert main(["run", "gobmk.13x13", "reloaded", "--scale", "1024"]) == 0
        out = capsys.readouterr().out
        assert "gobmk.13x13/reloaded" in out

    def test_run_unknown_workload(self, capsys):
        assert main(["run", "doom", "reloaded"]) == 2
        assert "error" in capsys.readouterr().err

    def test_attack_reports_safe(self, capsys):
        assert main(["attack", "--rounds", "6"]) == 0
        out = capsys.readouterr().out
        assert "VULNERABLE" in out  # baseline and paint+sync
        assert "safe" in out

    def test_pgbench_percentiles(self, capsys):
        assert main(["pgbench", "--transactions", "40"]) == 0
        out = capsys.readouterr().out
        assert "p99 ms" in out

    def test_trace_workflow(self, tmp_path, capsys):
        path = str(tmp_path / "trace.jsonl")
        assert main(["trace", "synth", path, "--objects", "30", "--churn", "100"]) == 0
        assert main(["trace", "stats", path]) == 0
        assert "well-formed" in capsys.readouterr().out
        assert main(["trace", "replay", path, "reloaded"]) == 0
        out = capsys.readouterr().out
        assert "replayed" in out

    def test_compare_small(self, capsys):
        assert main(["compare", "gobmk.13x13", "--scale", "2048"]) == 0
        out = capsys.readouterr().out
        assert "cherivoke" in out and "max pause" in out


class TestVerifyPaper:
    def test_verify_paper_passes(self, capsys):
        assert main(["verify-paper", "--scale", "1024"]) == 0
        out = capsys.readouterr().out
        assert "paper claims verified" in out
        assert "OFF" not in out
