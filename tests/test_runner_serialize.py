"""Round-trip tests for the runner's result serialization.

The cache and the worker pool both depend on ``RunResult -> JSON ->
RunResult`` being lossless (deserialized results must compare equal,
including the nested EpochRecord/PhaseSample/LatencySample structures),
so that cached, pooled, and in-process execution are interchangeable.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.config import RevokerKind
from repro.core.experiment import run_experiment
from repro.core.metrics import LatencySample, RunResult
from repro.kernel.revoker.base import EpochRecord, PhaseSample
from repro.runner.serialize import (
    FORMAT_VERSION,
    SerializationError,
    config_to_dict,
    dumps_result,
    loads_result,
    result_from_dict,
    result_to_dict,
)
from repro.workloads import spec


# --- Hypothesis strategies over the full metrics schema --------------------

_cycles = st.integers(min_value=0, max_value=2**48)

# PhaseSample rejects end < begin, so build from begin + duration.
_phases = st.builds(
    lambda epoch, name, kind, begin, duration: PhaseSample(
        epoch=epoch, name=name, kind=kind, begin=begin, end=begin + duration
    ),
    epoch=st.integers(1, 100),
    name=st.sampled_from(["scan-roots", "sweep", "clg-flip", "re-sweep"]),
    kind=st.sampled_from(["stw", "concurrent"]),
    begin=_cycles,
    duration=_cycles,
)

_epochs = st.builds(
    EpochRecord,
    epoch=st.integers(1, 100),
    phases=st.lists(_phases, max_size=4),
    fault_cycles=_cycles,
    fault_count=st.integers(0, 10_000),
    pages_swept=st.integers(0, 10_000),
    pages_gen_only=st.integers(0, 10_000),
    caps_checked=st.integers(0, 10_000),
    caps_revoked=st.integers(0, 10_000),
    roots_checked=st.integers(0, 10_000),
    roots_revoked=st.integers(0, 10_000),
)

_latencies = st.builds(
    LatencySample,
    label=st.text(min_size=1, max_size=8),
    begin=_cycles,
    end=_cycles,
)

_core_names = st.sampled_from(["core0", "core1", "core2", "core3"])

_results = st.builds(
    RunResult,
    workload=st.text(min_size=1, max_size=16),
    revoker=st.sampled_from(list(RevokerKind)),
    wall_cycles=_cycles,
    cpu_cycles_by_core=st.dictionaries(_core_names, _cycles, max_size=4),
    app_cpu_cycles=_cycles,
    bus_by_source=st.dictionaries(_core_names, _cycles, max_size=4),
    peak_rss_bytes=st.integers(0, 2**40),
    stw_pauses=st.lists(_cycles, max_size=8),
    epoch_records=st.lists(_epochs, max_size=3),
    latencies=st.lists(_latencies, max_size=8),
    revocations=st.integers(0, 1000),
    mean_alloc_bytes=st.floats(0, 1e12, allow_nan=False),
    sum_freed_bytes=st.integers(0, 2**50),
    mean_quarantine_bytes=st.floats(0, 1e12, allow_nan=False),
    blocked_operations=st.integers(0, 1000),
    foreground_faults=st.integers(0, 100_000),
    spurious_faults=st.integers(0, 100_000),
    caps_revoked=st.integers(0, 10**9),
    pages_swept=st.integers(0, 10**9),
)


class TestRoundTrip:
    @given(_results)
    @settings(max_examples=60, suppress_health_check=[HealthCheck.too_slow])
    def test_dict_round_trip_is_lossless(self, result):
        assert result_from_dict(result_to_dict(result)) == result

    @given(_results)
    @settings(max_examples=30, suppress_health_check=[HealthCheck.too_slow])
    def test_json_round_trip_is_lossless(self, result):
        text = dumps_result(result)
        again = loads_result(text)
        assert again == result
        # Canonical form: serializing again yields identical bytes.
        assert dumps_result(again) == text

    def test_real_run_round_trips(self):
        result = run_experiment(
            spec.workload("hmmer", "retro", scale=2048), RevokerKind.RELOADED
        )
        assert result.epoch_records, "want nested records in this fixture"
        again = loads_result(dumps_result(result))
        assert again == result
        # Derived metrics survive the trip too.
        assert again.total_cpu_cycles == result.total_cpu_cycles
        assert again.max_stw_pause_ms() == result.max_stw_pause_ms()


class TestEnvelopeValidation:
    def test_rejects_wrong_format_version(self):
        envelope = result_to_dict(RunResult("w", RevokerKind.NONE))
        envelope["format"] = FORMAT_VERSION + 1
        with pytest.raises(SerializationError):
            result_from_dict(envelope)

    def test_rejects_unknown_fields(self):
        envelope = result_to_dict(RunResult("w", RevokerKind.NONE))
        envelope["result"]["not_a_field"] = 1
        with pytest.raises(SerializationError):
            result_from_dict(envelope)

    def test_rejects_bad_revoker(self):
        envelope = result_to_dict(RunResult("w", RevokerKind.NONE))
        envelope["result"]["revoker"] = "teleport"
        with pytest.raises(SerializationError):
            result_from_dict(envelope)

    def test_rejects_invalid_json(self):
        with pytest.raises(SerializationError):
            loads_result("{truncated")
        with pytest.raises(SerializationError):
            loads_result("[1, 2]")


class TestConfigToDict:
    def test_covers_every_field(self):
        import dataclasses
        import json

        from repro.core.config import SimulationConfig

        cfg = SimulationConfig()
        data = config_to_dict(cfg)
        for field in dataclasses.fields(SimulationConfig):
            assert field.name in data
        json.dumps(data)  # JSON-able all the way down

    def test_custom_revoker_named(self):
        from repro.core.config import SimulationConfig
        from repro.extensions.multithread_revoker import MultithreadReloadedRevoker

        cfg = SimulationConfig(custom_revoker=MultithreadReloadedRevoker)
        data = config_to_dict(cfg)
        assert "MultithreadReloadedRevoker" in data["custom_revoker"]
