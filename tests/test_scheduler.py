"""Unit tests for the discrete-event scheduler and stop-the-world."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.machine.machine import Machine
from repro.machine.scheduler import (
    Block,
    Event,
    ResumeWorld,
    Sleep,
    StopWorld,
    ThreadState,
)


@pytest.fixture
def machine() -> Machine:
    return Machine(memory_bytes=1 << 20)


@pytest.fixture
def sched(machine):
    return machine.scheduler


class TestBasicExecution:
    def test_single_thread_advances_clock(self, sched):
        def body():
            yield 100
            yield 250

        t = sched.spawn("t", body(), 0)
        wall = sched.run()
        assert wall == 350
        assert t.busy_cycles == 350
        assert t.state is ThreadState.FINISHED

    def test_threads_on_different_cores_run_in_parallel(self, sched):
        def body(n):
            def gen():
                yield n
            return gen()

        sched.spawn("a", body(1000)(), 0) if False else None
        a = sched.spawn("a", (x for x in [1000]), 0)
        b = sched.spawn("b", (x for x in [400]), 1)
        wall = sched.run()
        assert wall == 1000  # parallel, not 1400

    def test_threads_on_same_core_serialize(self, sched):
        a = sched.spawn("a", (x for x in [1000]), 0)
        b = sched.spawn("b", (x for x in [400]), 0)
        wall = sched.run()
        assert wall == 1400

    def test_negative_yield_rejected(self, sched):
        sched.spawn("bad", (x for x in [-5]), 0)
        with pytest.raises(SimulationError):
            sched.run()

    def test_unsupported_yield_rejected(self, sched):
        sched.spawn("bad", (x for x in ["nope"]), 0)
        with pytest.raises(SimulationError):
            sched.run()

    def test_run_until_subset(self, sched):
        def daemon():
            while True:
                yield 10

        def main():
            yield 100

        m = sched.spawn("main", main(), 0)
        sched.spawn("d", daemon(), 1, stops_for_stw=False)
        sched.run(until=[m])
        assert m.state is ThreadState.FINISHED


class TestSleepAndEvents:
    def test_sleep_advances_time_without_cpu(self, sched):
        def body():
            yield 100
            yield Sleep(1000)
            yield 50

        t = sched.spawn("t", body(), 0)
        wall = sched.run()
        assert wall == 1150
        assert t.busy_cycles == 150

    def test_sleeping_thread_lets_others_run(self, sched):
        order = []

        def sleeper():
            yield Sleep(1000)
            order.append(("sleeper", 1000))
            yield 1

        def worker():
            yield 300
            order.append(("worker", 300))

        sched.spawn("s", sleeper(), 0)
        sched.spawn("w", worker(), 0)
        sched.run()
        assert order == [("worker", 300), ("sleeper", 1000)]

    def test_block_until_signal(self, sched):
        ev = Event("e")
        result = []

        def waiter():
            yield Block(ev)
            result.append("woke")
            yield 1

        def signaler():
            yield 500
            sched.signal(ev, at_time=500)

        sched.spawn("w", waiter(), 0)
        sched.spawn("s", signaler(), 1)
        wall = sched.run()
        assert result == ["woke"]
        assert wall >= 501

    def test_signal_wakes_all_waiters(self, sched):
        ev = Event("e")
        woke = []

        def waiter(name):
            yield Block(ev)
            woke.append(name)
            yield 1

        sched.spawn("a", waiter("a"), 0)
        sched.spawn("b", waiter("b"), 1)

        def signaler():
            yield 10
            sched.signal(ev, at_time=10)

        sched.spawn("s", signaler(), 2)
        sched.run()
        assert sorted(woke) == ["a", "b"]

    def test_deadlock_detected(self, sched):
        ev = Event("never")
        sched.spawn("w", iter([Block(ev)]), 0)
        with pytest.raises(SimulationError, match="deadlock"):
            sched.run()


class TestStopTheWorld:
    def _spin(self, chunks):
        def body():
            for c in chunks:
                yield c
        return body()

    def test_stw_pauses_user_threads(self, sched):
        timeline = []

        def app():
            for _ in range(10):
                yield 100
            timeline.append(("app-done", sched.cores[0].time))

        def revoker():
            yield 150
            yield StopWorld()
            yield 5000
            yield ResumeWorld()

        a = sched.spawn("app", app(), 0)
        sched.spawn("rev", revoker(), 1, stops_for_stw=False)
        sched.run(until=[a])
        assert len(sched.stw_records) == 1
        rec = sched.stw_records[0]
        assert rec.duration >= 5000
        # The app lost at least the pause duration of wall time.
        assert timeline[0][1] >= 1000 + 5000

    def test_stw_does_not_stop_daemons(self, sched):
        progressed = []

        def daemon():
            while True:
                yield 100
                progressed.append(sched.cores[2].time)

        def revoker():
            yield StopWorld()
            yield 1000
            yield ResumeWorld()

        def app():
            for _ in range(50):
                yield 100

        a = sched.spawn("app", app(), 0)
        sched.spawn("rev", revoker(), 1, stops_for_stw=False)
        sched.spawn("d", daemon(), 2, stops_for_stw=False)
        sched.run(until=[a])
        assert progressed  # daemon ran during/after the pause

    def test_sleeping_thread_wake_deferred_past_stw(self, sched):
        wakes = []

        def sleeper():
            yield Sleep(100)
            wakes.append(sched.cores[0].time)

        def revoker():
            yield 50
            yield StopWorld()
            yield 10_000
            yield ResumeWorld()

        s = sched.spawn("s", sleeper(), 0)
        sched.spawn("rev", revoker(), 1, stops_for_stw=False)
        sched.run(until=[s])
        # Wanted to wake at 100, but the world was stopped until >=10050.
        assert wakes[0] >= 10_050

    def test_nested_stw_rejected(self, sched):
        def revoker():
            yield StopWorld()
            yield StopWorld()

        sched.spawn("rev", revoker(), 0, stops_for_stw=False)
        with pytest.raises(SimulationError):
            sched.run()

    def test_resume_without_stop_rejected(self, sched):
        sched.spawn("rev", iter([ResumeWorld()]), 0, stops_for_stw=False)
        with pytest.raises(SimulationError):
            sched.run()

    def test_signal_during_stw_defers_user_wake(self, sched):
        ev = Event("e")
        woke_at = []

        def waiter():
            yield Block(ev)
            woke_at.append(sched.cores[0].time)
            yield 1

        def revoker():
            yield 10
            yield StopWorld()
            sched.signal(ev, at_time=sched.cores[1].time)
            yield 5000
            yield ResumeWorld()

        w = sched.spawn("w", waiter(), 0)
        sched.spawn("rev", revoker(), 1, stops_for_stw=False)
        sched.run(until=[w])
        assert woke_at[0] >= 5010

    def test_on_stw_hook(self, sched):
        seen = []
        sched.on_stw = seen.append

        def revoker():
            yield StopWorld()
            yield 100
            yield ResumeWorld()

        def app():
            yield 10_000

        a = sched.spawn("app", app(), 0)
        sched.spawn("rev", revoker(), 1, stops_for_stw=False)
        sched.run(until=[a])
        assert len(seen) == 1 and seen[0].duration >= 100


class TestSleeperPromotionOrder:
    """Regression: sleepers co-promoted onto one core must enter the run
    queue in wake_floor order, not the order they went to sleep. An idle
    core fast-forwards to its queue head's wake time, so a later-waking
    sleeper queued first drags earlier sleepers past their own wakes."""

    def test_two_sleepers_wake_in_floor_order(self, sched):
        order = []

        def sleeper(name, delay):
            def body():
                yield Sleep(delay)
                order.append((name, sched.cores[0].time))
                yield 10

            return body()

        # Deliberately spawn (and hence sleep) the LATER-waking thread
        # first: insertion order disagrees with wake order.
        sched.spawn("late", sleeper("late", 2000), 0)
        sched.spawn("early", sleeper("early", 1000), 0)
        sched.run()
        assert [name for name, _ in order] == ["early", "late"]
        # And each woke at its own wake_floor, not dragged past it.
        assert order[0][1] == 1000
        assert order[1][1] == 2000

    def test_promotion_batch_reported_in_wake_order(self, sched):
        from repro.machine.scheduler import SchedulerProbe

        batches = []

        class Probe(SchedulerProbe):
            def on_promote(self, slot, batch):
                batches.append([t.name for t in batch])

        sched.probe = Probe()
        sched.spawn("late", iter([Sleep(5000), 1]), 0)
        sched.spawn("early", iter([Sleep(100), 1]), 0)
        sched.run()
        assert ["early", "late"] in batches


class TestStwCreditReset:
    """Regression: a thread's preemption credit must not leak across a
    stop-the-world — the requester would otherwise be preempted right
    after resume for cycles it spent *before* the pause."""

    def test_credit_resets_at_stw_boundary(self, machine):
        sched = machine.scheduler
        for slot in sched.cores:
            slot.quantum = 100
        log = []

        def requester():
            yield 90  # credit 90 of 100
            yield StopWorld()
            yield ResumeWorld()
            log.append("R-resumed")
            yield 90  # with a leak this hits 180 -> spurious rotate
            log.append("R-end")
            yield 5

        def daemon():
            log.append("D-ran")
            yield 5

        sched.spawn("R", requester(), 0, stops_for_stw=False)
        sched.spawn("D", daemon(), 0, stops_for_stw=False)
        sched.run()
        # With the credit reset, R is never preempted mid-sequence.
        assert log == ["R-resumed", "R-end", "D-ran"]


class TestStwBlockedFloor:
    """Regression: a thread held through a stop-the-world while BLOCKED
    must not run before the pause's end, even when a later signal()
    carries a stale (pre-pause) at_time from a lagging core."""

    def test_stale_signal_cannot_run_inside_recorded_pause(self, sched):
        woke = []
        ev = Event("stale")

        def waiter():
            yield Block(ev)
            woke.append(sched.cores[0].time)
            yield 1

        def revoker():
            yield 100
            yield StopWorld()
            yield 5000
            yield ResumeWorld()
            yield 1
            sched.signal(ev, at_time=10)  # stale: predates the pause
            yield 1

        w = sched.spawn("w", waiter(), 0)
        sched.spawn("rev", revoker(), 1, stops_for_stw=False)
        sched.run(until=[w])
        [begin_end] = sched.stw_records
        assert woke[0] >= begin_end.end


class TestQuantumPreemption:
    def test_round_robin_on_shared_core(self, machine):
        sched = machine.scheduler
        for slot in sched.cores:
            slot.quantum = 100
        progress = {"a": 0, "b": 0}

        def body(name):
            for _ in range(10):
                yield 60
                progress[name] += 60

        sched.spawn("a", body("a"), 0)
        sched.spawn("b", body("b"), 0)
        # Interleave: after a's quantum expires, b should run before a
        # finishes everything.
        for _ in range(8):
            t = sched._pick()
            sched._step(t)
        assert progress["a"] > 0 and progress["b"] > 0
