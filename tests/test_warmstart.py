"""Warm-start prefix sharing: key semantics, the store's first-writer
atomicity, cross-revoker forking, and the runner integration
(docs/WARMSTART.md)."""

from __future__ import annotations

import pytest

from repro.core.config import RevokerKind, SimulationConfig
from repro.core.simulation import Simulation
from repro.errors import SnapshotError
from repro.runner.campaign import (
    Job,
    WorkloadSpec,
    execute_job,
    pop_warm_start_note,
    prefix_eligible,
)
from repro.runner.pool import run_jobs
from repro.runner.progress import CampaignProgress
from repro.runner.serialize import dumps_result
from repro.snapshot import (
    SnapshotPlan,
    SnapshotSession,
    read_header,
)
from repro.snapshot.prefix import (
    PrefixStore,
    fork_simulation,
    prefix_key,
    prefix_plan,
    retarget_revoker,
)
from repro.workloads import spec

REVOKING = (
    RevokerKind.PAINT_SYNC,
    RevokerKind.CHERIVOKE,
    RevokerKind.CORNUCOPIA,
    RevokerKind.RELOADED,
)

CFG = {"machine": {"memory_bytes": 16 << 20}}


def _spec(scale=2048, seed=1):
    return WorkloadSpec(
        "spec", {"benchmark": "hmmer", "input": "retro", "scale": scale, "seed": seed}
    )


def _job(kind, scale=2048, seed=1):
    return Job(_spec(scale, seed), kind, CFG)


def _build(kind, scale=2048, seed=1):
    workload = spec.workload("hmmer", "retro", scale=scale, seed=seed)
    cfg = SimulationConfig(revoker=kind)
    cfg.machine.memory_bytes = 16 << 20
    return Simulation(workload, cfg)


class TestPrefixKey:
    def test_revokers_share_a_key_at_epoch_zero(self):
        keys = {prefix_key(_job(kind)) for kind in REVOKING}
        assert len(keys) == 1

    def test_revoker_splits_the_key_past_epoch_zero(self):
        keys = {prefix_key(_job(kind), divergence_epoch=2) for kind in REVOKING}
        assert len(keys) == len(REVOKING)

    def test_none_has_no_prefix(self):
        with pytest.raises(SnapshotError):
            prefix_key(_job(RevokerKind.NONE))

    def test_negative_epoch_rejected(self):
        with pytest.raises(SnapshotError):
            prefix_key(_job(RevokerKind.RELOADED), divergence_epoch=-1)

    def test_workload_seed_and_config_participate(self):
        base = prefix_key(_job(RevokerKind.RELOADED))
        assert prefix_key(_job(RevokerKind.RELOADED, scale=1024)) != base
        assert prefix_key(_job(RevokerKind.RELOADED, seed=2)) != base
        other_cfg = Job(_spec(), RevokerKind.RELOADED, {"machine": {"memory_bytes": 32 << 20}})
        assert prefix_key(other_cfg) != base

    def test_code_version_participates(self):
        a = prefix_key(_job(RevokerKind.RELOADED), code_version="aaaa")
        b = prefix_key(_job(RevokerKind.RELOADED), code_version="bbbb")
        assert a != b

    def test_eligibility(self):
        assert prefix_eligible(_job(RevokerKind.RELOADED))
        assert not prefix_eligible(_job(RevokerKind.NONE))
        assert not prefix_eligible(
            Job(WorkloadSpec("pgbench", {"transactions": 5}), RevokerKind.RELOADED, {})
        )


class TestPrefixStore:
    def test_miss_is_none(self, tmp_path):
        store = PrefixStore(tmp_path)
        assert store.get("0" * 64) is None
        assert store.entries() == 0

    def test_put_then_get(self, tmp_path):
        store = PrefixStore(tmp_path)
        assert store.put_if_absent("ab" * 32, b"blob") is True
        assert store.get("ab" * 32) == b"blob"
        assert "ab" * 32 in store
        assert store.entries() == 1

    def test_first_writer_wins(self, tmp_path):
        # The double-capture guard: the second writer is rejected and the
        # first blob survives untouched.
        store = PrefixStore(tmp_path)
        assert store.put_if_absent("cd" * 32, b"first") is True
        assert store.put_if_absent("cd" * 32, b"second") is False
        assert store.get("cd" * 32) == b"first"
        assert store.entries() == 1

    def test_paths_sorted(self, tmp_path):
        store = PrefixStore(tmp_path)
        store.put_if_absent("ff" * 32, b"z")
        store.put_if_absent("00" * 32, b"a")
        names = [p.stem for p in store.paths()]
        assert names == sorted(names)


class TestFork:
    def _prefix_blob(self, leader=RevokerKind.PAINT_SYNC):
        sim = _build(leader)
        session = SnapshotSession(sim, prefix_plan(0))
        result = sim.run(snapshots=session)
        assert session.captured, "prefix capture window missed"
        return session.captured[-1], dumps_result(result)

    def test_fork_is_bit_identical_for_every_revoker(self):
        blob, leader_cold = self._prefix_blob()
        assert dumps_result(_build(RevokerKind.PAINT_SYNC).run()) == leader_cold
        for kind in REVOKING:
            cold = dumps_result(_build(kind).run())
            forked, header = fork_simulation(blob, kind)
            assert header["epoch"] == 0
            assert dumps_result(forked.resume()) == cold

    def test_fork_to_none_rejected(self):
        blob, _ = self._prefix_blob()
        with pytest.raises(SnapshotError):
            fork_simulation(blob, RevokerKind.NONE)

    def test_retarget_past_epoch_zero_rejected(self):
        # An epoch-1 checkpoint carries strategy-specific state; only a
        # same-strategy resume is sound there.
        sim = _build(RevokerKind.RELOADED, scale=1024)
        session = SnapshotSession(
            sim, SnapshotPlan(every_epochs=1, max_captures=1)
        )
        result = sim.run(snapshots=session)
        if not session.captured:
            pytest.skip("run completed before the first epoch closed")
        same, _ = fork_simulation(session.captured[0], RevokerKind.RELOADED)
        assert dumps_result(same.resume()) == dumps_result(result)
        with pytest.raises(SnapshotError):
            fork_simulation(session.captured[0], RevokerKind.CORNUCOPIA)


class TestExecuteJobWarmStart:
    def test_capture_then_hits_bit_identical(self, tmp_path, monkeypatch):
        cold = {kind: dumps_result(execute_job(_job(kind))) for kind in REVOKING}
        assert pop_warm_start_note() is None

        monkeypatch.setenv("REPRO_PREFIX_DIR", str(tmp_path))
        store = PrefixStore(tmp_path)
        notes = []
        for kind in REVOKING:
            assert dumps_result(execute_job(_job(kind))) == cold[kind]
            notes.append(pop_warm_start_note())
        assert notes == ["capture", "hit", "hit", "hit"]
        assert store.entries() == 1
        header = read_header(store.paths()[0].read_bytes())
        assert header["epoch"] == 0
        assert header["prefix_key"] == prefix_key(_job(REVOKING[0]))

    def test_none_jobs_bypass_the_store(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_PREFIX_DIR", str(tmp_path))
        execute_job(_job(RevokerKind.NONE))
        assert pop_warm_start_note() is None
        assert PrefixStore(tmp_path).entries() == 0

    def test_corrupt_prefix_degrades_to_cold(self, tmp_path, monkeypatch):
        cold = dumps_result(execute_job(_job(RevokerKind.RELOADED)))
        monkeypatch.setenv("REPRO_PREFIX_DIR", str(tmp_path))
        store = PrefixStore(tmp_path)
        key = prefix_key(_job(RevokerKind.RELOADED))
        store.put_if_absent(key, b"RPRSNAP garbage that is not a checkpoint")
        assert dumps_result(execute_job(_job(RevokerKind.RELOADED))) == cold
        assert pop_warm_start_note() is None


class TestRunJobsWarmStart:
    def _jobs(self):
        return [_job(kind) for kind in REVOKING]

    def test_in_process_counts_and_results(self, tmp_path, monkeypatch):
        cold = [dumps_result(r) for r in run_jobs(self._jobs(), max_workers=1)]
        monkeypatch.setenv("REPRO_PREFIX_DIR", str(tmp_path))
        progress = CampaignProgress(len(REVOKING))
        warm = run_jobs(self._jobs(), max_workers=1, progress=progress)
        assert [dumps_result(r) for r in warm] == cold
        assert progress.prefix_captures == 1
        assert progress.prefix_hits == 3
        assert "prefix-hits=3 prefix-captures=1" in progress.summary()
        assert progress.as_dict()["prefix_hits"] == 3

    def test_pooled_gating_counts_and_results(self, tmp_path, monkeypatch):
        cold = [dumps_result(r) for r in run_jobs(self._jobs(), max_workers=1)]
        monkeypatch.setenv("REPRO_PREFIX_DIR", str(tmp_path))
        progress = CampaignProgress(len(REVOKING))
        warm = run_jobs(self._jobs(), max_workers=2, progress=progress)
        assert [dumps_result(r) for r in warm] == cold
        # The gate holds the three followers until the leader stores the
        # prefix, so exactly one capture happens even with two workers.
        assert progress.prefix_captures == 1
        assert progress.prefix_hits == 3
        assert PrefixStore(tmp_path).entries() == 1

    def test_prewarmed_store_is_all_hits(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_PREFIX_DIR", str(tmp_path))
        run_jobs([self._jobs()[0]], max_workers=1)
        progress = CampaignProgress(len(REVOKING))
        run_jobs(self._jobs(), max_workers=2, progress=progress)
        assert progress.prefix_captures == 0
        assert progress.prefix_hits == 4
