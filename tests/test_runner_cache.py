"""Cache hit/miss/invalidation behavior of the content-addressed store."""

from __future__ import annotations

import json

import pytest

from repro.core.config import RevokerKind
from repro.core.metrics import RunResult
from repro.runner.cache import ResultCache, code_fingerprint, job_fingerprint
from repro.runner.campaign import Job, WorkloadSpec


def _job(**overrides):
    fields = {
        "workload": WorkloadSpec(
            "spec", {"benchmark": "hmmer", "input": "retro", "scale": 2048}
        ),
        "revoker": RevokerKind.RELOADED,
        "config": {},
    }
    fields.update(overrides)
    return Job(**fields)


def _result(wall=123):
    return RunResult("hmmer.retro", RevokerKind.RELOADED, wall_cycles=wall)


class TestFingerprint:
    def test_stable_for_identical_jobs(self):
        assert job_fingerprint(_job()) == job_fingerprint(_job())

    def test_key_does_not_affect_identity(self):
        assert job_fingerprint(_job(key="a")) == job_fingerprint(_job(key="b"))

    def test_workload_param_changes_invalidate(self):
        base = job_fingerprint(_job())
        scaled = _job(
            workload=WorkloadSpec(
                "spec", {"benchmark": "hmmer", "input": "retro", "scale": 1024}
            )
        )
        assert job_fingerprint(scaled) != base

    def test_revoker_changes_invalidate(self):
        assert job_fingerprint(_job(revoker=RevokerKind.CORNUCOPIA)) != \
            job_fingerprint(_job())

    def test_config_changes_invalidate(self):
        base = job_fingerprint(_job())
        assert job_fingerprint(_job(config={"revoker_core": 1})) != base
        assert job_fingerprint(_job(config={"machine": {"cache_bytes": 2 << 20}})) != base

    def test_code_version_invalidates(self):
        a = job_fingerprint(_job(), code_version="aaaa")
        b = job_fingerprint(_job(), code_version="bbbb")
        assert a != b

    def test_default_code_version_is_simulation_sources(self):
        # Deterministic within a process...
        assert code_fingerprint() == code_fingerprint()
        # ...and the default fingerprint uses it.
        assert job_fingerprint(_job()) == job_fingerprint(
            _job(), code_version=code_fingerprint()
        )


class TestResultCache:
    def test_miss_on_empty(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.get("0" * 64) is None
        assert cache.entries() == 0

    def test_put_then_hit(self, tmp_path):
        cache = ResultCache(tmp_path)
        fp = job_fingerprint(_job())
        result = _result()
        cache.put(fp, result, job=_job())
        assert fp in cache
        assert cache.get(fp) == result
        assert cache.entries() == 1

    def test_distinct_fingerprints_are_distinct_entries(self, tmp_path):
        cache = ResultCache(tmp_path)
        a, b = job_fingerprint(_job()), job_fingerprint(_job(revoker=RevokerKind.NONE))
        cache.put(a, _result(1))
        cache.put(b, _result(2))
        assert cache.get(a).wall_cycles == 1
        assert cache.get(b).wall_cycles == 2

    def test_corrupt_entry_is_a_miss_and_removed(self, tmp_path):
        cache = ResultCache(tmp_path)
        fp = job_fingerprint(_job())
        path = cache.put(fp, _result())
        path.write_text("{torn write")
        assert cache.get(fp) is None
        assert not path.exists()

    def test_fingerprint_mismatch_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        fp = job_fingerprint(_job())
        path = cache.put(fp, _result())
        # A file renamed under the wrong address must not be served.
        envelope = json.loads(path.read_text())
        envelope["fingerprint"] = "f" * 64
        path.write_text(json.dumps(envelope))
        assert cache.get(fp) is None

    def test_write_is_atomic_no_tmp_residue(self, tmp_path):
        cache = ResultCache(tmp_path)
        fp = job_fingerprint(_job())
        path = cache.put(fp, _result())
        leftovers = [p for p in path.parent.iterdir() if p.suffix == ".tmp"]
        assert leftovers == []

    def test_cache_dir_env_default(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "envcache"))
        cache = ResultCache()
        assert cache.root == tmp_path / "envcache"


class TestEnvelopeAccess:
    """The serving layer reads/writes raw serialized envelopes so cache
    hits skip the decode/re-encode round-trip."""

    def test_envelope_roundtrip_preserves_serialization(self, tmp_path):
        from repro.runner.serialize import result_from_dict, result_to_dict

        cache = ResultCache(tmp_path)
        fp = job_fingerprint(_job())
        cache.put(fp, _result(), job=_job())
        envelope = cache.get_envelope(fp)
        assert envelope is not None
        assert envelope["fingerprint"] == fp
        decoded = result_from_dict(envelope)
        assert result_to_dict(decoded) == result_to_dict(_result())

    def test_put_envelope_then_get(self, tmp_path):
        from repro.runner.serialize import result_to_dict

        cache = ResultCache(tmp_path)
        fp = job_fingerprint(_job())
        cache.put_envelope(fp, result_to_dict(_result(wall=77)))
        hit = cache.get(fp)
        assert hit is not None
        assert hit.wall_cycles == 77

    def test_put_envelope_rejects_wrong_format(self, tmp_path):
        from repro.runner.serialize import SerializationError

        cache = ResultCache(tmp_path)
        with pytest.raises(SerializationError, match="format"):
            cache.put_envelope("f" * 64, {"format": 999})

    def test_get_envelope_discards_corrupt_entries(self, tmp_path):
        cache = ResultCache(tmp_path)
        fp = job_fingerprint(_job())
        path = cache._path_of(fp)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps({"format": 999, "fingerprint": fp}))
        assert cache.get_envelope(fp) is None
        assert not path.exists()  # poisoned entry removed


class TestEndToEndInvalidation:
    """Changing any knob re-simulates exactly the affected jobs."""

    def test_repeat_campaign_is_all_hits_and_equal(self, tmp_path):
        from repro.runner import run_jobs
        from repro.runner.progress import CampaignProgress

        cache = ResultCache(tmp_path)
        jobs = [
            _job(),
            _job(revoker=RevokerKind.NONE),
        ]
        first = run_jobs(jobs, cache=cache, max_workers=1)
        progress = CampaignProgress(len(jobs))
        second = run_jobs(jobs, cache=cache, max_workers=1, progress=progress)
        assert progress.cache_hits == len(jobs) and progress.fresh == 0
        assert first == second

    def test_changed_config_invalidates_only_affected_job(self, tmp_path):
        from repro.runner import run_jobs
        from repro.runner.progress import CampaignProgress

        cache = ResultCache(tmp_path)
        jobs = [_job(), _job(revoker=RevokerKind.NONE)]
        run_jobs(jobs, cache=cache, max_workers=1)
        # Perturb one job's config; the other stays cached.
        changed = [_job(config={"app_core": 2}), _job(revoker=RevokerKind.NONE)]
        progress = CampaignProgress(len(changed))
        run_jobs(changed, cache=cache, max_workers=1, progress=progress)
        assert progress.cache_hits == 1
        assert progress.fresh == 1


class TestCodeFingerprintScope:
    """Which sources feed the simulation code fingerprint. Tooling-only
    changes (runner, serve, perf, check, analysis, CLI) must keep every
    cached result warm; simulation and observability sources must
    invalidate."""

    def _tree(self, tmp_path):
        root = tmp_path / "repro"
        for sub in ("core", "obs", "runner", "analysis", "serve", "perf", "check"):
            (root / sub).mkdir(parents=True)
        (root / "__init__.py").write_text("")
        (root / "cli.py").write_text("CLI = 1\n")
        (root / "core" / "simulation.py").write_text("SIM = 1\n")
        (root / "obs" / "tracer.py").write_text("TRACE = 1\n")
        (root / "runner" / "pool.py").write_text("POOL = 1\n")
        (root / "analysis" / "tables.py").write_text("TABLE = 1\n")
        (root / "serve" / "server.py").write_text("SERVE = 1\n")
        (root / "perf" / "targets.py").write_text("BENCH = 1\n")
        (root / "check" / "oracles.py").write_text("CHECK = 1\n")
        return root

    def _fingerprint(self, root, monkeypatch):
        import repro
        import repro.runner.cache as cache_mod

        monkeypatch.setattr(repro, "__file__", str(root / "__init__.py"))
        monkeypatch.setattr(cache_mod, "_code_fingerprint_cache", None)
        fp = code_fingerprint()
        # Drop the per-process memo computed against the fake tree so the
        # next call (this test's or a later test's) recomputes.
        cache_mod._code_fingerprint_cache = None
        return fp

    def test_perf_only_touch_keeps_the_fingerprint(self, tmp_path, monkeypatch):
        # Regression: serve/, perf/, and check/ postdate the original
        # exclusion list, so touching a benchmark used to cold-start the
        # entire result cache.
        root = self._tree(tmp_path)
        base = self._fingerprint(root, monkeypatch)
        (root / "perf" / "targets.py").write_text("BENCH = 2\n")
        assert self._fingerprint(root, monkeypatch) == base

    def test_all_tooling_layers_are_excluded(self, tmp_path, monkeypatch):
        root = self._tree(tmp_path)
        base = self._fingerprint(root, monkeypatch)
        (root / "serve" / "server.py").write_text("SERVE = 2\n")
        (root / "check" / "oracles.py").write_text("CHECK = 2\n")
        (root / "runner" / "pool.py").write_text("POOL = 2\n")
        (root / "analysis" / "tables.py").write_text("TABLE = 2\n")
        (root / "cli.py").write_text("CLI = 2\n")
        (root / "perf" / "extra.py").write_text("NEW = 1\n")
        assert self._fingerprint(root, monkeypatch) == base

    def test_simulation_sources_still_invalidate(self, tmp_path, monkeypatch):
        root = self._tree(tmp_path)
        base = self._fingerprint(root, monkeypatch)
        (root / "core" / "simulation.py").write_text("SIM = 2\n")
        assert self._fingerprint(root, monkeypatch) != base

    def test_obs_sources_still_invalidate(self, tmp_path, monkeypatch):
        # obs/ feeds RunResult.metrics; it stays inside the fingerprint.
        root = self._tree(tmp_path)
        base = self._fingerprint(root, monkeypatch)
        (root / "obs" / "tracer.py").write_text("TRACE = 2\n")
        assert self._fingerprint(root, monkeypatch) != base
