"""Unit tests for the three revocation strategies (plus paint+sync).

Each test builds a small kernel, plants capabilities (live and
condemned), runs one revocation epoch on a controller thread, and checks
the paper's guarantee (§2.2.3): every capability whose base was painted
before the epoch began is gone from memory, register files, and kernel
hoards by the epoch's end — and nothing else was touched.
"""

from __future__ import annotations

import pytest

from repro.kernel.hoards import RegisterFile
from repro.kernel.kernel import Kernel
from repro.kernel.revoker import (
    CheriVokeRevoker,
    CornucopiaRevoker,
    PaintSyncRevoker,
    ReloadedRevoker,
)
from repro.machine.capability import Capability
from repro.machine.machine import Machine
from repro.machine.trap import LoadGenerationFault

SAFETY_REVOKERS = [CheriVokeRevoker, CornucopiaRevoker, ReloadedRevoker]
ALL_REVOKERS = SAFETY_REVOKERS + [PaintSyncRevoker]


class Rig:
    """A machine + kernel + one mapped region with planted capabilities."""

    def __init__(self, revoker_cls, heap_bytes: int = 64 << 10):
        self.machine = Machine(memory_bytes=8 << 20)
        self.kernel = Kernel(self.machine)
        self.revoker = self.kernel.install_revoker(revoker_cls)
        self.heap, _ = self.kernel.address_space.mmap(heap_bytes)
        self.core_app = self.machine.cores[3]
        self.core_rev = self.machine.cores[2]

    def plant(self, slot_off: int, target_base: int, target_len: int = 64) -> Capability:
        """Store a capability to [target_base, +len) at heap+slot_off."""
        target = self.heap.derive(target_base, target_len)
        dst = self.heap.with_address(self.heap.base + slot_off)
        self.core_app.store_cap(dst, target)
        return target

    def condemn(self, base: int, length: int = 64) -> None:
        self.kernel.shadow.paint(base, length)

    def run_epoch(self) -> None:
        sched = self.machine.scheduler
        slot = sched.cores[2]
        t = sched.spawn(
            "controller",
            self.revoker.revoke(self.core_rev, slot),
            2,
            stops_for_stw=False,
        )
        sched.run(until=[t])

    def loaded(self, slot_off: int) -> Capability | None:
        src = self.heap.with_address(self.heap.base + slot_off)
        while True:
            try:
                return self.core_app.load_cap(src).value
            except LoadGenerationFault as fault:
                self.kernel.handle_lg_fault(self.core_app, fault)


@pytest.mark.parametrize("revoker_cls", SAFETY_REVOKERS)
class TestRevocationGuarantee:
    def test_condemned_cap_removed_from_memory(self, revoker_cls):
        rig = Rig(revoker_cls)
        victim = rig.plant(0, rig.heap.base + 0x1000)
        rig.condemn(victim.base)
        rig.run_epoch()
        assert rig.loaded(0) is None

    def test_live_cap_survives(self, revoker_cls):
        rig = Rig(revoker_cls)
        rig.plant(0, rig.heap.base + 0x1000)
        rig.plant(16, rig.heap.base + 0x2000)
        rig.condemn(rig.heap.base + 0x1000)
        rig.run_epoch()
        assert rig.loaded(0) is None
        survivor = rig.loaded(16)
        assert survivor is not None and survivor.tag

    def test_register_file_scanned(self, revoker_cls):
        rig = Rig(revoker_cls)
        rf = RegisterFile()
        rig.revoker.register_files.append(rf)
        victim = rig.heap.derive(rig.heap.base + 0x1000, 64)
        rf.set(0, victim)
        rig.condemn(victim.base)
        rig.run_epoch()
        assert not rf.get(0).tag

    def test_kernel_hoard_scanned(self, revoker_cls):
        rig = Rig(revoker_cls)
        victim = rig.heap.derive(rig.heap.base + 0x1000, 64)
        ticket = rig.kernel.hoards.stash("aio", victim)
        rig.condemn(victim.base)
        rig.run_epoch()
        assert not rig.kernel.hoards.retrieve("aio", ticket).tag

    def test_derived_capability_revoked_with_parent(self, revoker_cls):
        rig = Rig(revoker_cls)
        parent_base = rig.heap.base + 0x1000
        child = rig.heap.derive(parent_base + 16, 32)
        dst = rig.heap.with_address(rig.heap.base + 64)
        rig.core_app.store_cap(dst, child)
        rig.condemn(parent_base, 64)
        rig.run_epoch()
        assert rig.loaded(64) is None

    def test_epoch_counter_advances_by_two(self, revoker_cls):
        rig = Rig(revoker_cls)
        before = rig.kernel.epoch.read()
        rig.run_epoch()
        assert rig.kernel.epoch.read() == before + 2
        assert not rig.kernel.epoch.revoking

    def test_epoch_record_collected(self, revoker_cls):
        rig = Rig(revoker_cls)
        victim = rig.plant(0, rig.heap.base + 0x1000)
        rig.condemn(victim.base)
        rig.run_epoch()
        assert len(rig.revoker.records) == 1
        record = rig.revoker.records[0]
        assert record.caps_revoked >= 1
        assert record.pages_swept >= 1
        assert record.phases

    def test_second_epoch_idempotent(self, revoker_cls):
        rig = Rig(revoker_cls)
        victim = rig.plant(0, rig.heap.base + 0x1000)
        rig.condemn(victim.base)
        rig.run_epoch()
        rig.run_epoch()
        assert rig.kernel.epoch.completed == 2
        assert rig.loaded(0) is None


class TestStrategySpecifics:
    def test_cherivoke_single_stw_phase(self):
        rig = Rig(CheriVokeRevoker)
        rig.plant(0, rig.heap.base + 0x1000)
        rig.run_epoch()
        kinds = [p.kind for p in rig.revoker.records[0].phases]
        assert kinds == ["stw"]

    def test_cornucopia_concurrent_then_stw(self):
        rig = Rig(CornucopiaRevoker)
        rig.plant(0, rig.heap.base + 0x1000)
        rig.run_epoch()
        kinds = [p.kind for p in rig.revoker.records[0].phases]
        assert kinds == ["concurrent", "stw"]

    def test_reloaded_stw_then_concurrent(self):
        rig = Rig(ReloadedRevoker)
        rig.plant(0, rig.heap.base + 0x1000)
        rig.run_epoch()
        kinds = [p.kind for p in rig.revoker.records[0].phases]
        assert kinds == ["stw", "concurrent"]

    def test_reloaded_stw_far_shorter_than_cherivoke(self):
        """The headline claim: Reloaded's pause does not scale with heap."""
        durations = {}
        for cls in (CheriVokeRevoker, ReloadedRevoker):
            rig = Rig(cls, heap_bytes=2 << 20)
            # A heap with many capability-dirty pages.
            for off in range(0, 2 << 20, 512):
                rig.plant(off, rig.heap.base + 0x1000)
            rig.run_epoch()
            durations[cls.name] = rig.machine.scheduler.stw_records[0].duration
        assert durations["reloaded"] * 5 < durations["cherivoke"]

    def test_reloaded_flips_all_core_generations(self):
        rig = Rig(ReloadedRevoker)
        rig.plant(0, rig.heap.base + 0x1000)
        rig.run_epoch()
        assert all(c.clg == 1 for c in rig.machine.cores)
        assert rig.kernel.address_space.current_lg == 1

    def test_reloaded_updates_all_ptes_by_epoch_end(self):
        rig = Rig(ReloadedRevoker)
        rig.plant(0, rig.heap.base + 0x1000)
        rig.run_epoch()
        for pte in rig.machine.pagetable.mapped_pages():
            assert pte.lg == 1

    def test_reloaded_foreground_fault_heals_page(self):
        rig = Rig(ReloadedRevoker)
        victim = rig.plant(0, rig.heap.base + 0x1000)
        rig.condemn(victim.base)
        # Manually enter the epoch's post-STW state: flip generations but
        # run no background work yet.
        rig.revoker._open_epoch(rig.machine.scheduler.cores[2])
        for c in rig.machine.cores:
            c.flip_clg()
        rig.revoker.current_lg = 1
        # The app load takes a fault; the handler sweeps and the retry
        # sees the revoked (untagged) slot.
        assert rig.loaded(0) is None
        assert rig.revoker.foreground_faults == 1
        vpn = rig.heap.base // 4096
        assert rig.machine.pagetable.require(vpn).lg == 1

    def test_reloaded_spurious_fault_resolved_by_tlb_refill(self):
        rig = Rig(ReloadedRevoker)
        rig.plant(0, rig.heap.base + 0x1000)
        rig.core_app.load_cap(rig.heap.with_address(rig.heap.base))  # warm TLB
        # Heal the PTE as the background pass would, leaving the TLB stale.
        pte = rig.machine.pagetable.require(rig.heap.base // 4096)
        for c in rig.machine.cores:
            c.flip_clg()
        pte.lg = 1
        assert rig.loaded(0) is not None
        assert rig.revoker.spurious_faults == 1

    def test_cornucopia_resweeps_redirtied_pages(self):
        rig = Rig(CornucopiaRevoker)
        rig.plant(0, rig.heap.base + 0x1000)
        rig.run_epoch()
        record = rig.revoker.records[0]
        # No stores happened during the epoch, so nothing was re-swept:
        # pages_swept equals the dirty-page count exactly once each.
        dirty = len(rig.machine.pagetable.cap_dirty_pages())
        assert record.pages_swept == dirty

    def test_paint_sync_provides_no_safety(self):
        rig = Rig(PaintSyncRevoker)
        victim = rig.plant(0, rig.heap.base + 0x1000)
        rig.condemn(victim.base)
        rig.run_epoch()
        # Epoch ticked, but the condemned capability is still loadable.
        assert rig.kernel.epoch.completed == 1
        assert rig.loaded(0) is not None
        assert not rig.revoker.provides_safety

    def test_non_reloaded_revokers_reject_lg_faults(self):
        rig = Rig(CornucopiaRevoker)
        with pytest.raises(NotImplementedError):
            rig.revoker.handle_lg_fault(rig.core_app, 1)

    def test_reloaded_gen_only_visit_for_clean_pages(self):
        rig = Rig(ReloadedRevoker)
        rig.plant(0, rig.heap.base + 0x1000)  # dirties one page
        rig.run_epoch()
        record = rig.revoker.records[0]
        # The heap spans multiple pages; only the dirty one needed a
        # content sweep, the rest got cheap generation-only visits.
        assert record.pages_gen_only > 0
        assert record.pages_swept >= 1
        assert record.pages_gen_only + record.pages_swept >= len(
            list(rig.machine.pagetable.mapped_pages())
        )


class TestReadOnlyPages:
    """§4.3: sweeps avoid converting read-only pages to read-write unless
    a capability on them must actually be revoked."""

    def _rig_with_ro_page(self):
        rig = Rig(ReloadedRevoker)
        # A read-only mapping holding one capability (e.g. a relocated
        # constant table): map writable, plant, then drop write access.
        ro_cap, res = rig.kernel.address_space.mmap(4096)
        rig.core_app.store_cap(ro_cap, rig.heap.derive(rig.heap.base + 0x1000, 64))
        pte = rig.machine.pagetable.require(res.start_vpn)
        pte.writable = False
        return rig, ro_cap, pte

    def test_clean_ro_page_stays_read_only(self):
        rig, ro_cap, pte = self._rig_with_ro_page()
        rig.run_epoch()  # nothing condemned: read-only scan suffices
        assert not pte.writable

    def test_ro_page_upgraded_only_to_revoke(self):
        rig, ro_cap, pte = self._rig_with_ro_page()
        rig.condemn(rig.heap.base + 0x1000)
        rig.run_epoch()
        assert pte.writable  # the page-fault machinery upgraded it
        assert rig.machine.memory.load_cap(ro_cap.base) is None

    def test_upgrade_costs_more(self):
        cheap, dear = [], []
        for condemn in (False, True):
            rig, ro_cap, pte = self._rig_with_ro_page()
            if condemn:
                rig.condemn(rig.heap.base + 0x1000)
            record = rig.revoker._open_epoch(rig.machine.scheduler.cores[2])
            cycles = rig.revoker.sweep_page(rig.core_rev, pte, record)
            (dear if condemn else cheap).append(cycles)
            rig.kernel.epoch.end_revocation()
        assert dear[0] > cheap[0]
