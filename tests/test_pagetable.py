"""Unit tests for PTEs, the page table, and the TLB."""

from __future__ import annotations

import pytest

from repro.errors import VMError
from repro.machine.pagetable import PTE, PageTable, TLB


@pytest.fixture
def pt() -> PageTable:
    return PageTable()


class TestPageTable:
    def test_map_and_get(self, pt):
        pte = pt.map_page(5)
        assert pt.get(5) is pte
        assert 5 in pt
        assert len(pt) == 1

    def test_double_map_rejected(self, pt):
        pt.map_page(5)
        with pytest.raises(VMError):
            pt.map_page(5)

    def test_unmap(self, pt):
        pt.map_page(5)
        pt.unmap_page(5)
        assert pt.get(5) is None

    def test_unmap_unmapped_rejected(self, pt):
        with pytest.raises(VMError):
            pt.unmap_page(5)

    def test_require_raises_on_missing(self, pt):
        with pytest.raises(VMError):
            pt.require(9)

    def test_mapped_pages_sorted(self, pt):
        for vpn in (9, 3, 7):
            pt.map_page(vpn)
        assert [p.vpn for p in pt.mapped_pages()] == [3, 7, 9]

    def test_defaults(self, pt):
        pte = pt.map_page(1)
        assert pte.writable and pte.cap_store and pte.cap_load
        assert not pte.cap_dirty and not pte.redirtied
        assert pte.lg == 0 and not pte.guard

    def test_map_with_generation(self, pt):
        assert pt.map_page(1, lg=1).lg == 1

    def test_cap_dirty_pages_filter(self, pt):
        clean = pt.map_page(1)
        dirty = pt.map_page(2)
        guard = pt.map_page(3, guard=True)
        dirty.cap_dirty = True
        guard.cap_dirty = True  # guard pages are never swept
        assert [p.vpn for p in pt.cap_dirty_pages()] == [2]

    def test_redirtied_pages_filter(self, pt):
        a = pt.map_page(1)
        b = pt.map_page(2)
        b.redirtied = True
        assert [p.vpn for p in pt.redirtied_pages()] == [2]


class TestTLB:
    def test_miss_then_fill(self, pt):
        tlb = TLB()
        assert tlb.lookup(4) is None
        entry = tlb.fill(4, pt.map_page(4, lg=1))
        assert tlb.lookup(4) is entry
        assert entry.lg == 1
        assert tlb.refills == 1

    def test_entry_snapshot_is_stale_after_pte_update(self, pt):
        """The TLB caches the PTE at fill time; later PTE updates are not
        visible until invalidation — the staleness §4.3 handles."""
        tlb = TLB()
        pte = pt.map_page(4, lg=0)
        entry = tlb.fill(4, pte)
        pte.lg = 1
        assert tlb.lookup(4).lg == 0
        tlb.fill(4, pte)
        assert tlb.lookup(4).lg == 1

    def test_invalidate_single(self, pt):
        tlb = TLB()
        tlb.fill(4, pt.map_page(4))
        tlb.invalidate(4)
        assert tlb.lookup(4) is None

    def test_invalidate_all_counts_shootdowns(self, pt):
        tlb = TLB()
        tlb.fill(1, pt.map_page(1))
        tlb.fill(2, pt.map_page(2))
        tlb.invalidate_all()
        assert tlb.lookup(1) is None and tlb.lookup(2) is None
        assert tlb.shootdowns == 1
