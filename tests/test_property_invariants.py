"""Property-based end-to-end invariants.

Hypothesis drives randomized churn workloads through every
safety-providing strategy and checks DESIGN.md's invariants on the final
machine state: the revocation guarantee, allocator/live-heap consistency,
epoch-counter discipline, and conservation of metrics. These are the
system-level analogue of the per-module property tests.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.alloc.quarantine import QuarantinePolicy
from repro.core.config import RevokerKind, SimulationConfig
from repro.core.simulation import Simulation
from repro.workloads.churn import ChurnProfile, ChurnWorkload, SizeMix

churn_params = st.fixed_dictionaries(
    {
        "seed": st.integers(0, 2**16),
        "heap_kib": st.sampled_from([32, 64, 128]),
        "churn_kib": st.sampled_from([128, 256]),
        "pointer_slots": st.integers(0, 3),
        "kind": st.sampled_from(
            [RevokerKind.CHERIVOKE, RevokerKind.CORNUCOPIA, RevokerKind.RELOADED]
        ),
    }
)


def run_random_churn(params) -> Simulation:
    profile = ChurnProfile(
        name="prop",
        heap_bytes=params["heap_kib"] << 10,
        churn_bytes=params["churn_kib"] << 10,
        size_mix=SizeMix((64, 256, 1024), (0.5, 0.3, 0.2)),
        pointer_slots=params["pointer_slots"],
        seed=params["seed"],
    )
    workload = ChurnWorkload(profile, QuarantinePolicy(min_bytes=16 << 10))
    sim = Simulation(workload, SimulationConfig(revoker=params["kind"]))
    sim.run()
    return sim


@settings(max_examples=12, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(params=churn_params)
def test_revocation_guarantee_end_state(params):
    """After the run (the in-flight epoch drained), every tagged
    capability to painted memory targets a region painted *after* the
    last epoch began — older paints were revoked or released."""
    sim = run_random_churn(params)
    shadow = sim.kernel.shadow
    pending = {r.addr for r in sim.mrs.quarantine.pending}
    sealed = {r.addr for b in sim.mrs.quarantine.sealed for r in b.regions}
    allowed = pending | sealed
    for _, cap in sim.machine.memory.iter_tagged():
        if shadow.is_revoked(cap):
            assert cap.base in allowed


@settings(max_examples=12, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(params=churn_params)
def test_live_heap_is_never_condemned(params):
    sim = run_random_churn(params)
    for addr in sim.alloc._live:
        assert not sim.kernel.shadow.is_painted_addr(addr)


@settings(max_examples=12, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(params=churn_params)
def test_epoch_counter_discipline(params):
    """The public counter ends even (no epoch in flight) and equals twice
    the completed-epoch count (§2.2.3's increment-before and -after)."""
    sim = run_random_churn(params)
    counter = sim.kernel.epoch.read()
    assert counter % 2 == 0
    assert counter == 2 * sim.kernel.epoch.completed


@settings(max_examples=12, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(params=churn_params)
def test_accounting_conservation(params):
    """Allocator and quarantine byte accounting balances: everything
    freed is either released back or still in quarantine."""
    sim = run_random_churn(params)
    quarantine = sim.mrs.quarantine
    released = quarantine.lifetime_bytes - quarantine.total_bytes
    assert released >= 0
    assert quarantine.total_bytes == quarantine.pending_bytes + quarantine.sealed_bytes
    assert sim.alloc.total_freed_bytes == quarantine.lifetime_bytes


@settings(max_examples=8, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(params=churn_params)
def test_time_accounting_sane(params):
    """Wall clock bounds every thread's busy time; pauses are positive
    and the revoker's records agree with the scheduler's."""
    sim = run_random_churn(params)
    wall = sim.machine.scheduler.current_time()
    for thread in sim.machine.scheduler.threads:
        assert thread.busy_cycles <= wall
    records = sim.kernel.revoker.records
    stw_from_records = sum(r.stw_cycles() for r in records)
    stw_from_sched = sum(r.duration for r in sim.machine.scheduler.stw_records)
    # Scheduler pauses and phase records measure the same episodes.
    assert stw_from_records == stw_from_sched
    for rec in sim.machine.scheduler.stw_records:
        assert rec.duration > 0


@settings(max_examples=8, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    seed=st.integers(0, 2**16),
    kind=st.sampled_from(
        [RevokerKind.CHERIVOKE, RevokerKind.CORNUCOPIA, RevokerKind.RELOADED]
    ),
)
def test_safety_strategies_equivalent_end_memory(seed, kind):
    """All three revokers execute the same trace to the same allocator
    end state: identical live-allocation counts and size multisets.
    (Addresses may differ — dequarantine timing changes which free-list
    entry a reuse picks — but what lives and dies is trace-determined.)"""
    def run(k):
        profile = ChurnProfile(
            name="equiv",
            heap_bytes=48 << 10,
            churn_bytes=160 << 10,
            size_mix=SizeMix((64, 512), (0.6, 0.4)),
            pointer_slots=2,
            seed=seed,
        )
        w = ChurnWorkload(profile, QuarantinePolicy(min_bytes=16 << 10))
        sim = Simulation(w, SimulationConfig(revoker=k))
        sim.run()
        return sim

    sim_a = run(kind)
    sim_b = run(RevokerKind.RELOADED)
    assert sim_a.alloc.live_allocations == sim_b.alloc.live_allocations
    sizes_a = sorted(size for size, _ in sim_a.alloc._live.values())
    sizes_b = sorted(size for size, _ in sim_b.alloc._live.values())
    assert sizes_a == sizes_b
    assert sim_a.alloc.total_freed_bytes == sim_b.alloc.total_freed_bytes
