"""Unit tests for the cache and bus traffic accounting."""

from __future__ import annotations

import pytest

from repro.machine.cache import Bus, Cache
from repro.machine.costs import LINES_PER_PAGE


@pytest.fixture
def bus() -> Bus:
    return Bus()


@pytest.fixture
def cache(bus: Bus) -> Cache:
    return Cache(bus, "core0", capacity_bytes=1024)  # 16 lines


class TestCacheBasics:
    def test_first_access_misses(self, cache):
        assert cache.access(0x1000) is True
        assert cache.misses == 1

    def test_second_access_hits(self, cache):
        cache.access(0x1000)
        assert cache.access(0x1000) is False
        assert cache.hits == 1

    def test_same_line_different_bytes_hit(self, cache):
        cache.access(0x1000)
        assert cache.access(0x103F) is False

    def test_adjacent_line_misses(self, cache):
        cache.access(0x1000)
        assert cache.access(0x1040) is True

    def test_miss_counts_bus_read(self, cache, bus):
        cache.access(0x1000)
        assert bus.transactions("core0") == 1

    def test_too_small_capacity_rejected(self, bus):
        with pytest.raises(ValueError):
            Cache(bus, "x", capacity_bytes=32)


class TestEviction:
    def test_lru_evicts_oldest(self, cache):
        for i in range(16):
            cache.access(i * 64)
        cache.access(16 * 64)  # evicts line 0
        assert cache.access(0) is True  # line 0 gone
        assert cache.resident_lines == 16

    def test_touch_refreshes_lru_position(self, cache):
        for i in range(16):
            cache.access(i * 64)
        cache.access(0)  # refresh line 0
        cache.access(16 * 64)  # evicts line 1, not 0
        assert cache.access(0) is False
        assert cache.access(64) is True

    def test_dirty_eviction_writes_back(self, cache, bus):
        cache.access(0, write=True)
        for i in range(1, 17):
            cache.access(i * 64)
        assert bus.counters["core0"].writes == 1

    def test_clean_eviction_no_writeback(self, cache, bus):
        for i in range(17):
            cache.access(i * 64)
        assert bus.counters["core0"].writes == 0


class TestRangeAndPage:
    def test_access_range_counts_lines(self, cache):
        misses = cache.access_range(0x1000, 256)
        assert misses == 4

    def test_access_range_partial_lines(self, cache):
        # 2 bytes straddling a line boundary touch two lines.
        assert cache.access_range(0x103F, 2) == 2

    def test_access_range_zero_noop(self, cache):
        assert cache.access_range(0x1000, 0) == 0

    def test_access_page_streams_all_lines(self, bus):
        cache = Cache(bus, "c", capacity_bytes=1 << 20)
        assert cache.access_page(5) == LINES_PER_PAGE
        assert cache.access_page(5) == 0  # now resident

    def test_invalidate_page(self, bus):
        cache = Cache(bus, "c", capacity_bytes=1 << 20)
        cache.access_page(5)
        cache.invalidate_page(5)
        assert cache.access_page(5) == LINES_PER_PAGE

    def test_miss_rate(self, cache):
        cache.access(0)
        cache.access(0)
        assert cache.miss_rate == pytest.approx(0.5)


class TestBus:
    def test_per_source_accounting(self, bus):
        bus.read("a", 3)
        bus.write("b", 2)
        assert bus.transactions("a") == 3
        assert bus.transactions("b") == 2
        assert bus.total_transactions() == 5
        assert bus.snapshot() == {"a": 3, "b": 2}

    def test_sweep_flag_nesting(self, bus):
        assert not bus.sweep_active
        bus.sweep_begin()
        bus.sweep_begin()
        bus.sweep_end()
        assert bus.sweep_active
        bus.sweep_end()
        assert not bus.sweep_active
