"""Unit tests for the cache and bus traffic accounting."""

from __future__ import annotations

import random

import pytest

from repro.errors import SimulationError
from repro.machine.cache import Bus, Cache
from repro.machine.costs import LINES_PER_PAGE


@pytest.fixture
def bus() -> Bus:
    return Bus()


@pytest.fixture
def cache(bus: Bus) -> Cache:
    return Cache(bus, "core0", capacity_bytes=1024)  # 16 lines


class TestCacheBasics:
    def test_first_access_misses(self, cache):
        assert cache.access(0x1000) is True
        assert cache.misses == 1

    def test_second_access_hits(self, cache):
        cache.access(0x1000)
        assert cache.access(0x1000) is False
        assert cache.hits == 1

    def test_same_line_different_bytes_hit(self, cache):
        cache.access(0x1000)
        assert cache.access(0x103F) is False

    def test_adjacent_line_misses(self, cache):
        cache.access(0x1000)
        assert cache.access(0x1040) is True

    def test_miss_counts_bus_read(self, cache, bus):
        cache.access(0x1000)
        assert bus.transactions("core0") == 1

    def test_too_small_capacity_rejected(self, bus):
        with pytest.raises(ValueError):
            Cache(bus, "x", capacity_bytes=32)


class TestEviction:
    def test_lru_evicts_oldest(self, cache):
        for i in range(16):
            cache.access(i * 64)
        cache.access(16 * 64)  # evicts line 0
        assert cache.access(0) is True  # line 0 gone
        assert cache.resident_lines == 16

    def test_touch_refreshes_lru_position(self, cache):
        for i in range(16):
            cache.access(i * 64)
        cache.access(0)  # refresh line 0
        cache.access(16 * 64)  # evicts line 1, not 0
        assert cache.access(0) is False
        assert cache.access(64) is True

    def test_dirty_eviction_writes_back(self, cache, bus):
        cache.access(0, write=True)
        for i in range(1, 17):
            cache.access(i * 64)
        assert bus.counters["core0"].writes == 1

    def test_clean_eviction_no_writeback(self, cache, bus):
        for i in range(17):
            cache.access(i * 64)
        assert bus.counters["core0"].writes == 0


class TestRangeAndPage:
    def test_access_range_counts_lines(self, cache):
        misses = cache.access_range(0x1000, 256)
        assert misses == 4

    def test_access_range_partial_lines(self, cache):
        # 2 bytes straddling a line boundary touch two lines.
        assert cache.access_range(0x103F, 2) == 2

    def test_access_range_zero_noop(self, cache):
        assert cache.access_range(0x1000, 0) == 0

    def test_access_page_streams_all_lines(self, bus):
        cache = Cache(bus, "c", capacity_bytes=1 << 20)
        assert cache.access_page(5) == LINES_PER_PAGE
        assert cache.access_page(5) == 0  # now resident

    def test_invalidate_page(self, bus):
        cache = Cache(bus, "c", capacity_bytes=1 << 20)
        cache.access_page(5)
        cache.invalidate_page(5)
        assert cache.access_page(5) == LINES_PER_PAGE

    def test_miss_rate(self, cache):
        cache.access(0)
        cache.access(0)
        assert cache.miss_rate == pytest.approx(0.5)


class TestBus:
    def test_per_source_accounting(self, bus):
        bus.read("a", 3)
        bus.write("b", 2)
        assert bus.transactions("a") == 3
        assert bus.transactions("b") == 2
        assert bus.total_transactions() == 5
        assert bus.snapshot() == {"a": 3, "b": 2}

    def test_sweep_flag_nesting(self, bus):
        assert not bus.sweep_active
        bus.sweep_begin()
        bus.sweep_begin()
        bus.sweep_end()
        assert bus.sweep_active
        bus.sweep_end()
        assert not bus.sweep_active

    def test_transactions_query_does_not_mutate(self, bus):
        """Querying an unknown source must not create a zero counter that
        pollutes snapshot()/total_transactions()."""
        assert bus.transactions("ghost") == 0
        assert bus.snapshot() == {}
        assert bus.total_transactions() == 0
        assert "ghost" not in bus.counters

    def test_unbalanced_sweep_end_raises(self, bus):
        with pytest.raises(SimulationError):
            bus.sweep_end()
        bus.sweep_begin()
        bus.sweep_end()
        with pytest.raises(SimulationError):
            bus.sweep_end()


def _mirror_states(a: Cache, b: Cache) -> tuple:
    return (
        (list(a._lines.items()), a.hits, a.misses,
         {k: (v.reads, v.writes) for k, v in a.bus.counters.items()}),
        (list(b._lines.items()), b.hits, b.misses,
         {k: (v.reads, v.writes) for k, v in b.bus.counters.items()}),
    )


class TestBatchedEquivalence:
    """The batched span path must be bit-identical to the per-line loop:
    same miss counts, same bus traffic, same hit/miss counters, and the
    same final LRU order and dirty bits."""

    @pytest.mark.parametrize("capacity", [64, 128, 1024, 4096, 1 << 20])
    def test_random_mixes_match_scalar(self, capacity):
        rng = random.Random(capacity)
        fast, ref = Cache(Bus(), "c", capacity), Cache(Bus(), "c", capacity)
        for _ in range(120):
            write = rng.random() < 0.5
            if rng.random() < 0.5:
                addr = rng.randrange(0, 1 << 16)
                nbytes = rng.randrange(1, 700)
                first = addr // 64
                last = (addr + nbytes - 1) // 64
                got = fast.access_range(addr, nbytes, write)
            else:
                vpn = rng.randrange(0, 20)
                first = vpn * LINES_PER_PAGE
                last = first + LINES_PER_PAGE - 1
                got = fast.access_page(vpn, write)
            want = ref._touch_loop(first, last, write)
            assert got == want
            state_fast, state_ref = _mirror_states(fast, ref)
            assert state_fast == state_ref

    def test_page_stream_smaller_than_cache_footprint(self):
        # Capacity below one page: the span must self-evict exactly as
        # the scalar loop does (the batched path punts to it).
        fast, ref = Cache(Bus(), "c", 1024), Cache(Bus(), "c", 1024)
        assert fast.access_page(0) == ref._touch_loop(0, LINES_PER_PAGE - 1, False)
        assert fast.access_page(0, write=True) == ref._touch_loop(
            0, LINES_PER_PAGE - 1, True
        )
        state_fast, state_ref = _mirror_states(fast, ref)
        assert state_fast == state_ref

    def test_lru_front_hit_inside_span(self):
        # A span line sitting at the LRU front while the span also evicts:
        # the interleaving-sensitive case the fast path must replay.
        fast, ref = Cache(Bus(), "c", 1024), Cache(Bus(), "c", 1024)  # 16 lines
        for cache in (fast, ref):
            cache.access(5 * 64, write=True)  # page-0 line, oldest, dirty
            for i in range(15):
                cache.access((100 + i) * 64)  # fill the rest
        got = fast.access_range(0, 8 * 64)  # spans lines 0-7 incl. line 5
        want = ref._touch_loop(0, 7, False)
        assert got == want
        state_fast, state_ref = _mirror_states(fast, ref)
        assert state_fast == state_ref

    def test_scalar_env_forces_reference_path(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALAR", "1")
        cache = Cache(Bus(), "c", 1 << 20)
        assert cache.access_page(3) == LINES_PER_PAGE
        assert cache.access_page(3) == 0
