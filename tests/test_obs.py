"""The observability subsystem: tracer ring buffer, metrics, schema,
exporters, summaries, and the end-to-end record path.

The load-bearing guarantees:

- disabled tracing is a no-op (hook sites pay one attribute check and
  emit nothing — the perf-smoke benchmark pins the cycle cost, these
  tests pin the semantics);
- the ring buffer bounds memory: overflow overwrites oldest, counts
  dropped, and keeps the survivors in order;
- a recorded simulation trace validates against the event schema and
  round-trips through the JSONL exporter to equal events;
- the metrics fold survives the campaign cache's JSON round-trip.
"""

from __future__ import annotations

import json

import pytest

from repro.core.config import RevokerKind
from repro.core.experiment import run_experiment
from repro.errors import SimulationError
from repro.kernel.revoker.base import PhaseSample
from repro.machine.scheduler import StwRecord
from repro.obs import (
    EVENT_SCHEMA,
    MetricsRegistry,
    TraceEvent,
    TraceFormatError,
    TraceSchemaError,
    TraceSummary,
    diff_summaries,
    read_jsonl,
    to_chrome_trace,
    tracing,
    validate_event,
    validate_events,
    write_jsonl,
)
from repro.obs.metrics import Histogram
from repro.obs.tracer import TRACER, Tracer
from repro.workloads.pgbench import PgBenchWorkload


# --- Tracer core ------------------------------------------------------------


def test_tracer_disabled_is_noop():
    t = Tracer()
    assert not t.enabled
    t.emit("epoch.open", ts=5, epoch=1)
    assert len(t) == 0
    assert t.emitted == 0
    assert t.events() == []


def test_module_tracer_disabled_by_default():
    # Hook sites bind this singleton at import; outside `tracing()` it
    # must be off or every test in the suite would start recording.
    assert not TRACER.enabled


def test_tracer_records_in_order():
    t = Tracer()
    t.start(capacity=16)
    for i in range(5):
        t.emit("epoch.open", ts=i, epoch=i)
    t.stop()
    assert [e.ts for e in t.events()] == [0, 1, 2, 3, 4]
    assert t.dropped == 0
    assert not t.enabled
    # Stopping keeps the buffer readable.
    assert len(t.events()) == 5


def test_ring_overflow_overwrites_oldest():
    t = Tracer()
    t.start(capacity=4)
    for i in range(10):
        t.emit("epoch.open", ts=i, epoch=i)
    events = t.events()
    assert len(events) == 4
    assert [e.ts for e in events] == [6, 7, 8, 9]
    assert t.emitted == 10
    assert t.dropped == 6


def test_ring_capacity_one():
    t = Tracer()
    t.start(capacity=1)
    for i in range(3):
        t.emit("epoch.open", ts=i, epoch=i)
    assert [e.ts for e in t.events()] == [2]
    assert t.dropped == 2


def test_tracer_rejects_bad_capacity():
    with pytest.raises(ValueError):
        Tracer().start(capacity=0)


def test_tracer_clock_default_and_explicit_ts():
    t = Tracer()
    t.start(capacity=8, clock=lambda: 42)
    t.emit("epoch.open", epoch=1)
    t.emit("epoch.open", ts=7, epoch=2)
    assert [e.ts for e in t.events()] == [42, 7]


def test_tracer_start_resets_previous_recording():
    t = Tracer()
    t.start(capacity=4)
    t.emit("epoch.open", ts=1, epoch=1)
    t.start(capacity=4)
    assert t.events() == []
    assert t.emitted == 0
    assert t.dropped == 0


def test_tracing_context_manager_restores_disabled():
    with tracing(capacity=8) as t:
        assert t is TRACER
        assert TRACER.enabled
        TRACER.emit("epoch.open", ts=0, epoch=1)
    assert not TRACER.enabled
    assert len(TRACER.events()) == 1


def test_tracer_counts_events_in_metrics():
    with tracing(capacity=8):
        TRACER.emit("epoch.open", ts=0, epoch=1)
        TRACER.emit("epoch.open", ts=1, epoch=2)
        snapshot = TRACER.metrics.to_dict()
    assert snapshot["counters"]["events/epoch.open"] == 2


# --- Metrics ----------------------------------------------------------------


def test_histogram_buckets_are_powers_of_two():
    h = Histogram()
    for v in (0, 1, 2, 3, 4, 1000):
        h.observe(v)
    d = h.to_dict()
    # k = bit_length: 0 -> bucket 0, 1 -> 1, 2/3 -> 2, 4 -> 3, 1000 -> 10.
    assert d["buckets"] == {"0": 1, "1": 1, "2": 2, "3": 1, "10": 1}
    assert d["count"] == 6
    assert d["min"] == 0
    assert d["max"] == 1000
    assert d["mean"] == pytest.approx(1010 / 6)


def test_histogram_quantile_tails_are_exact():
    h = Histogram()
    for v in (3, 17, 100, 900):
        h.observe(v)
    assert h.quantile(0.0) == 3  # clamped to exact min
    assert h.quantile(1.0) == 900  # clamped to exact max


def test_histogram_quantile_within_bucket_factor():
    h = Histogram()
    values = [10, 20, 40, 80, 160, 320, 640]
    for v in values:
        h.observe(v)
    median = values[len(values) // 2]
    estimate = h.quantile(0.5)
    # Power-of-two buckets promise the midpoint is within 2x.
    assert median / 2 <= estimate <= median * 2


def test_histogram_quantile_single_value_is_exact():
    h = Histogram()
    h.observe(42)
    for q in (0.0, 0.5, 0.99, 1.0):
        assert h.quantile(q) == 42  # min/max clamp collapses the bucket


def test_histogram_quantile_rejects_bad_input():
    from repro.errors import StatsError

    with pytest.raises(StatsError, match="empty"):
        Histogram().quantile(0.5)
    h = Histogram()
    h.observe(1)
    for q in (-0.1, 1.1):
        with pytest.raises(StatsError, match="quantile"):
            h.quantile(q)


def test_histogram_rejects_negative():
    with pytest.raises(ValueError):
        Histogram().observe(-1)


def test_empty_histogram_serializes_finite():
    d = Histogram().to_dict()
    # min/max are null, NOT 0.0 — a restored empty histogram must stay
    # indistinguishable from a fresh one (regression: to_dict used to
    # rewrite the empty-state infinities to 0.0).
    assert d == {"count": 0, "sum": 0.0, "min": None, "max": None,
                 "mean": 0.0, "buckets": {}}
    # Must survive strict JSON (no Infinity literals).
    json.loads(json.dumps(d, allow_nan=False))


def test_histogram_quantile_interpolates_within_bucket():
    # Regression: every interior quantile landing in one power-of-two
    # bucket used to collapse to that bucket's midpoint, so serve stats
    # reported service_p50_us == service_p99_us for tight distributions.
    h = Histogram()
    for v in range(520, 1020, 5):  # 100 values, all in bucket [512, 1024)
        h.observe(v)
    p50, p90, p99 = h.quantile(0.5), h.quantile(0.9), h.quantile(0.99)
    assert p50 < p90 < p99
    # Estimates stay clamped inside the observed range.
    for p in (p50, p90, p99):
        assert h.min <= p <= h.max
    # Monotone in q across the full range.
    qs = [i / 20 for i in range(21)]
    estimates = [h.quantile(q) for q in qs]
    assert estimates == sorted(estimates)


def test_histogram_quantile_monotone_across_buckets():
    h = Histogram()
    for v in (1, 2, 4, 8, 700, 701, 702, 703):
        h.observe(v)
    qs = [i / 50 for i in range(51)]
    estimates = [h.quantile(q) for q in qs]
    assert estimates == sorted(estimates)
    assert estimates[0] == h.min and estimates[-1] == h.max


def test_empty_histogram_roundtrip_stays_empty():
    from repro.errors import StatsError

    # Regression: the old 0.0 min/max in to_dict meant a restored empty
    # histogram had min == 0.0, so a later observe(5) kept min at 0.
    restored = Histogram.from_dict(
        json.loads(json.dumps(Histogram().to_dict(), allow_nan=False)))
    with pytest.raises(StatsError, match="empty"):
        restored.quantile(0.5)
    restored.observe(5)
    assert restored.min == 5
    assert restored.max == 5


def test_histogram_roundtrip_preserves_quantiles():
    h = Histogram()
    for v in (3, 17, 100, 900, 900, 901):
        h.observe(v)
    restored = Histogram.from_dict(json.loads(json.dumps(h.to_dict())))
    for q in (0.0, 0.25, 0.5, 0.9, 1.0):
        assert restored.quantile(q) == h.quantile(q)
    assert restored.to_dict() == h.to_dict()


def test_registry_from_dict_roundtrip():
    r = MetricsRegistry()
    r.counter("jobs").inc(7)
    r.histogram("lat").observe(33)
    r.histogram("empty")  # created but never observed
    restored = MetricsRegistry.from_dict(json.loads(json.dumps(r.to_dict())))
    assert restored.to_dict() == r.to_dict()
    restored.histogram("empty").observe(2)
    assert restored.histogram("empty").min == 2


def test_registry_create_on_first_use_and_roundtrip():
    r = MetricsRegistry()
    r.counter("a").inc()
    r.counter("a").inc(2)
    r.histogram("h").observe(5)
    assert len(r) == 2
    snapshot = r.to_dict()
    assert snapshot["counters"]["a"] == 3
    assert json.loads(json.dumps(snapshot)) == snapshot


# --- Schema -----------------------------------------------------------------


def test_schema_accepts_catalogued_event():
    validate_event("stw.end", 10, {"duration": 3, "extra": "fine"})


def test_schema_rejects_unknown_name():
    with pytest.raises(TraceSchemaError):
        validate_event("nope.event", 0, {})


def test_schema_rejects_missing_fields():
    with pytest.raises(TraceSchemaError):
        validate_event("revoker.phase", 0, {"epoch": 1})


def test_schema_rejects_bad_timestamps():
    for ts in (-1, 1.5, True, "0"):
        with pytest.raises(TraceSchemaError):
            validate_event("epoch.open", ts, {"epoch": 1})


def test_validate_events_counts():
    events = [TraceEvent("epoch.open", 0, {"epoch": 1}),
              TraceEvent("epoch.close", 5, {"epoch": 1})]
    assert validate_events(events) == 2


# --- Exporters --------------------------------------------------------------


def _sample_events() -> list[TraceEvent]:
    return [
        TraceEvent("epoch.open", 10, {"epoch": 1, "revoker": "reloaded"}),
        TraceEvent("revoker.phase", 30,
                   {"epoch": 1, "phase": "sweep", "kind": "concurrent",
                    "begin": 10, "end": 30}),
        TraceEvent("stw.end", 35, {"duration": 5}),
        TraceEvent("epoch.close", 40, {"epoch": 1}),
    ]


def test_jsonl_roundtrip_equality(tmp_path):
    path = tmp_path / "t.jsonl"
    events = _sample_events()
    assert write_jsonl(path, events, {"workload": "x"}) == len(events)
    meta, loaded = read_jsonl(path)
    assert loaded == events
    assert meta["workload"] == "x"
    assert meta["version"] == 1


def test_jsonl_rejects_empty_and_headerless(tmp_path):
    empty = tmp_path / "e.jsonl"
    empty.write_text("")
    with pytest.raises(TraceFormatError):
        read_jsonl(empty)
    headerless = tmp_path / "h.jsonl"
    headerless.write_text('{"type": "event", "name": "x", "ts": 0}\n')
    with pytest.raises(TraceFormatError):
        read_jsonl(headerless)


def test_jsonl_rejects_wrong_version(tmp_path):
    path = tmp_path / "v.jsonl"
    path.write_text('{"type": "meta", "version": 99}\n')
    with pytest.raises(TraceFormatError):
        read_jsonl(path)


def test_jsonl_rejects_bad_json(tmp_path):
    path = tmp_path / "b.jsonl"
    path.write_text('{"type": "meta", "version": 1}\nnot json\n')
    with pytest.raises(TraceFormatError):
        read_jsonl(path)


def test_chrome_export_shapes():
    doc = to_chrome_trace(_sample_events(), {"workload": "x"})
    phases = [r for r in doc["traceEvents"] if r["ph"] == "X"]
    instants = [r for r in doc["traceEvents"] if r["ph"] == "i"]
    assert len(phases) == 1
    assert phases[0]["name"] == "sweep"
    assert phases[0]["ts"] == 10
    assert phases[0]["dur"] == 20
    assert phases[0]["tid"] == "concurrent"
    assert len(instants) == 3
    assert doc["otherData"] == {"workload": "x"}
    json.dumps(doc)  # must be JSON-able


# --- Summary + diff ---------------------------------------------------------


def test_summary_per_epoch_accounting():
    events = [
        TraceEvent("epoch.open", 0, {"epoch": 1}),
        TraceEvent("revoker.phase", 10,
                   {"epoch": 1, "phase": "scan", "kind": "stw",
                    "begin": 0, "end": 10}),
        TraceEvent("revoker.phase", 40,
                   {"epoch": 1, "phase": "sweep", "kind": "concurrent",
                    "begin": 10, "end": 40}),
        TraceEvent("revoker.fault", 20, {"vpn": 7, "spurious": False, "cycles": 100}),
        TraceEvent("sweep.begin", 10, {"transactions": 1000}),
        TraceEvent("sweep.end", 40, {"transactions": 1600}),
        TraceEvent("stw.end", 10, {"duration": 10}),
        TraceEvent("epoch.close", 41, {"epoch": 1}),
        TraceEvent("quarantine.fill", 50, {"bytes": 64, "total": 64}),
        TraceEvent("tlb.shootdown", 55, {"vpn": 3, "cores": 4}),
    ]
    s = TraceSummary.from_events(events)
    assert len(s.epochs) == 1
    e = s.epochs[0]
    assert e.epoch == 1
    assert e.stw_cycles == 10
    assert e.concurrent_cycles == 30
    assert e.fault_count == 1
    assert e.fault_cycles == 100
    assert e.sweep_bus_transactions == 600
    assert s.stw_pauses == [10]
    assert s.quarantine_filled_bytes == 64
    assert s.tlb_shootdowns == 1
    assert s.total_stw_cycles == 10


def test_summary_tolerates_truncated_trace():
    # A ring-truncated trace may open with orphan events: they land in a
    # synthetic epoch-0 row instead of being dropped.
    events = [
        TraceEvent("revoker.fault", 5, {"vpn": 1, "spurious": True, "cycles": 9}),
        TraceEvent("epoch.open", 10, {"epoch": 3}),
        TraceEvent("epoch.close", 20, {"epoch": 3}),
    ]
    s = TraceSummary.from_events(events)
    assert [e.epoch for e in s.epochs] == [0, 3]
    assert s.epochs[0].spurious_faults == 1


def test_diff_summaries_rows():
    a = TraceSummary.from_events([
        TraceEvent("epoch.open", 0, {"epoch": 1}),
        TraceEvent("stw.end", 10, {"duration": 100}),
    ])
    b = TraceSummary.from_events([
        TraceEvent("epoch.open", 0, {"epoch": 1}),
        TraceEvent("stw.end", 10, {"duration": 50}),
    ])
    rows = diff_summaries(a, b)
    by_metric = {row[0]: row for row in rows}
    assert by_metric["max stw pause"][1:] == ["100", "50", "-50.0%"]
    assert by_metric["epochs"][3] == "+0.0%"


# --- Phase accounting guards (satellite) ------------------------------------


def test_phase_sample_rejects_negative_duration():
    with pytest.raises(SimulationError):
        PhaseSample(epoch=1, name="sweep", kind="concurrent", begin=10, end=9)


def test_stw_record_rejects_negative_duration():
    with pytest.raises(SimulationError):
        StwRecord(begin=10, end=9)


# --- End-to-end: recorded simulation traces ---------------------------------


def _record(kind: RevokerKind) -> tuple[list[TraceEvent], int]:
    with tracing() as t:
        run_experiment(PgBenchWorkload(transactions=40), kind)
        return t.events(), t.dropped


def test_recorded_reloaded_trace_validates_and_roundtrips(tmp_path):
    events, dropped = _record(RevokerKind.RELOADED)
    assert dropped == 0
    assert validate_events(events) == len(events) > 0
    names = {e.name for e in events}
    # The reloaded strategy's signature events must all be present.
    assert {"epoch.open", "epoch.close", "revoker.phase", "stw.begin",
            "stw.end", "sweep.begin", "sweep.end", "core.clg_flip",
            "quarantine.fill", "quarantine.seal", "quarantine.drain",
            "vm.mmap", "shadow.paint"} <= names
    path = tmp_path / "run.jsonl"
    write_jsonl(path, events, {"revoker": "reloaded"})
    _, loaded = read_jsonl(path)
    assert loaded == events
    summary = TraceSummary.from_events(loaded)
    assert summary.epochs
    assert summary.total_stw_cycles > 0


def test_recorded_cornucopia_trace_has_shootdowns():
    events, _ = _record(RevokerKind.CORNUCOPIA)
    names = {e.name for e in events}
    assert "tlb.shootdown" in names
    # Cornucopia has no load barrier: no foreground fault events.
    assert not any(
        e.name == "revoker.fault" and not e.args.get("spurious")
        for e in events
    )


def test_tracing_does_not_change_results():
    base = run_experiment(PgBenchWorkload(transactions=40), RevokerKind.RELOADED)
    with tracing():
        traced = run_experiment(
            PgBenchWorkload(transactions=40), RevokerKind.RELOADED
        )
    assert traced.wall_cycles == base.wall_cycles
    assert traced.stw_pauses == base.stw_pauses
    assert traced.revocations == base.revocations
    # The only allowed difference: the traced run carries the fold.
    assert base.metrics == {}
    assert traced.metrics["counters"]["epochs/faults"] >= 0


def test_campaign_trace_artifact(tmp_path, monkeypatch):
    from repro.runner.campaign import Job, WorkloadSpec, execute_job, job_trace_slug

    job = Job(
        workload=WorkloadSpec("pgbench", {"transactions": 40}),
        revoker=RevokerKind.RELOADED,
    )
    monkeypatch.setenv("REPRO_TRACE_DIR", str(tmp_path))
    result = execute_job(job)
    assert not TRACER.enabled  # tracer is released after the job
    artifact = tmp_path / f"{job_trace_slug(job)}.jsonl"
    assert artifact.exists()
    meta, events = read_jsonl(artifact)
    assert validate_events(events) > 0
    assert meta["revoker"] == "reloaded"
    assert meta["wall_cycles"] == result.wall_cycles


def test_campaign_trace_fingerprint_differs(monkeypatch):
    from repro.runner.cache import job_fingerprint
    from repro.runner.campaign import Job, WorkloadSpec

    job = Job(
        workload=WorkloadSpec("pgbench", {"transactions": 40}),
        revoker=RevokerKind.RELOADED,
    )
    monkeypatch.delenv("REPRO_TRACE_DIR", raising=False)
    plain = job_fingerprint(job, code_version="x")
    monkeypatch.setenv("REPRO_TRACE_DIR", "/tmp/anywhere")
    traced = job_fingerprint(job, code_version="x")
    assert plain != traced


def test_metrics_fold_survives_serializer_roundtrip():
    from repro.runner.serialize import dumps_result, loads_result

    with tracing():
        result = run_experiment(
            PgBenchWorkload(transactions=40), RevokerKind.RELOADED
        )
    assert result.metrics
    assert loads_result(dumps_result(result)) == result
