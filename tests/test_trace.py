"""Tests for allocation trace record/replay."""

from __future__ import annotations

import io

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.config import RevokerKind, SimulationConfig
from repro.core.simulation import Simulation
from repro.errors import ConfigError
from repro.workloads.trace import (
    AllocationTrace,
    TraceEvent,
    TraceWorkload,
    synthesize_trace,
)


def small_trace() -> AllocationTrace:
    t = AllocationTrace()
    t.malloc(0, 256)
    t.malloc(1, 64)
    t.store_cap(0, 0, 1)
    t.load_cap(0, 0)
    t.load_data(0, 64)
    t.store_data(1, 16)
    t.compute(1000)
    t.free(1)
    t.load_cap(0, 0)  # now a stale slot under revocation
    t.free(0)
    return t


class TestTraceBuilding:
    def test_event_counts(self):
        t = small_trace()
        assert len(t) == 10
        assert t.stats()["malloc"] == 2
        assert t.stats()["free"] == 2

    def test_validate_accepts_wellformed(self):
        small_trace().validate()

    def test_validate_rejects_double_free(self):
        t = AllocationTrace()
        t.malloc(0, 64)
        t.free(0)
        t.free(0)
        with pytest.raises(ConfigError):
            t.validate()

    def test_validate_rejects_use_of_dead_handle(self):
        t = AllocationTrace()
        t.malloc(0, 64)
        t.free(0)
        t.load_data(0, 8)
        with pytest.raises(ConfigError):
            t.validate()

    def test_validate_rejects_handle_reuse(self):
        t = AllocationTrace()
        t.malloc(0, 64)
        t.malloc(0, 64)
        with pytest.raises(ConfigError):
            t.validate()

    def test_validate_rejects_bad_size(self):
        t = AllocationTrace()
        t.malloc(0, 0)
        with pytest.raises(ConfigError):
            t.validate()


class TestSerialization:
    def test_jsonl_roundtrip(self):
        t = small_trace()
        buf = io.StringIO()
        t.to_jsonl(buf)
        again = AllocationTrace.from_jsonl(buf.getvalue().splitlines())
        assert again.events == t.events

    def test_file_roundtrip(self, tmp_path):
        t = small_trace()
        path = tmp_path / "t.jsonl"
        t.save(path)
        assert AllocationTrace.load(path).events == t.events

    def test_event_json(self):
        ev = TraceEvent("malloc", (3, 128))
        assert TraceEvent.from_json(ev.to_json()) == ev

    def test_blank_lines_ignored(self):
        t = AllocationTrace.from_jsonl(["", '{"op": "compute", "args": [5]}', " "])
        assert len(t) == 1


class TestReplay:
    def replay(self, trace, kind=RevokerKind.RELOADED):
        w = TraceWorkload(trace)
        sim = Simulation(w, SimulationConfig(revoker=kind))
        result = sim.run()
        return w, sim, result

    def test_replays_every_event(self):
        t = small_trace()
        w, _, _ = self.replay(t)
        assert w.replayed_events == len(t)

    def test_allocator_sees_trace(self):
        w, sim, _ = self.replay(small_trace(), RevokerKind.NONE)
        assert sim.alloc.malloc_calls == 2
        assert sim.alloc.free_calls == 2
        assert sim.alloc.live_allocations == 0

    def test_malformed_trace_rejected_at_construction(self):
        t = AllocationTrace()
        t.free(0)
        with pytest.raises(ConfigError):
            TraceWorkload(t)

    def test_synthesized_trace_replays_under_every_strategy(self):
        for kind in (RevokerKind.NONE, RevokerKind.CHERIVOKE, RevokerKind.RELOADED):
            trace = synthesize_trace(objects=60, churn=300, seed=5)
            w, sim, result = self.replay(trace, kind)
            assert w.replayed_events == len(trace)
            if kind.provides_safety:
                # The synthetic churn is enough to trigger revocation
                # under the small default policy? Only if quarantine
                # crosses the floor; don't require it, just consistency.
                assert sim.kernel.epoch.read() % 2 == 0

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 1000))
    def test_synthesized_traces_always_wellformed(self, seed):
        trace = synthesize_trace(objects=30, churn=120, seed=seed)
        trace.validate()

    def test_replay_is_deterministic(self):
        trace = synthesize_trace(objects=40, churn=200, seed=9)
        _, sim_a, result_a = self.replay(trace)
        _, sim_b, result_b = self.replay(trace)
        assert result_a.wall_cycles == result_b.wall_cycles
        assert result_a.total_bus_transactions == result_b.total_bus_transactions


class TestRecording:
    def test_record_then_replay_matches_allocator_footprint(self):
        from repro.alloc.quarantine import QuarantinePolicy
        from repro.workloads.base import Workload
        from repro.workloads.trace import AllocationTrace, RecordingWorkload

        class Scripted(Workload):
            name = "scripted"
            quarantine_policy = QuarantinePolicy(min_bytes=16 << 10)

            def run(self, ctx):
                caps = []
                for i in range(40):
                    cap = yield from ctx.malloc(128 + (i % 3) * 64)
                    yield from ctx.store_cap(cap.with_address(cap.base), cap)
                    caps.append(cap)
                    if len(caps) > 6:
                        yield from ctx.free(caps.pop(0))
                    yield from ctx.compute(500)

        trace = AllocationTrace()
        recorded = RecordingWorkload(Scripted(), trace)
        sim_rec = Simulation(recorded, SimulationConfig(revoker=RevokerKind.NONE))
        sim_rec.run()
        trace.validate()
        assert trace.stats()["malloc"] == 40
        assert trace.stats()["free"] == 40 - 7 + 1 or trace.stats()["free"] >= 30

        replayed = TraceWorkload(trace)
        sim_rep = Simulation(replayed, SimulationConfig(revoker=RevokerKind.NONE))
        sim_rep.run()
        assert sim_rep.alloc.malloc_calls == sim_rec.alloc.malloc_calls
        assert sim_rep.alloc.free_calls == sim_rec.alloc.free_calls

    def test_recorded_trace_replays_under_revocation(self):
        from repro.workloads.microbench import PingPongAllocator
        from repro.workloads.trace import AllocationTrace, RecordingWorkload

        trace = AllocationTrace()
        recorded = RecordingWorkload(PingPongAllocator(iterations=100), trace)
        Simulation(recorded, SimulationConfig(revoker=RevokerKind.NONE)).run()
        trace.validate()
        w = TraceWorkload(trace, quarantine_policy=recorded.quarantine_policy)
        result = Simulation(w, SimulationConfig(revoker=RevokerKind.RELOADED)).run()
        assert w.replayed_events == len(trace)
        assert result.revocations >= 1
