"""Unit and property tests for tagged memory."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.errors import VMError
from repro.machine.capability import Capability
from repro.machine.costs import GRANULE_BYTES, GRANULES_PER_PAGE, PAGE_BYTES
from repro.machine.memory import TaggedMemory


@pytest.fixture
def mem() -> TaggedMemory:
    return TaggedMemory(1 << 20)


def a_cap(addr=0x4000) -> Capability:
    return Capability.root(addr, 64)


class TestConstruction:
    def test_sizes(self, mem):
        assert mem.num_granules == (1 << 20) // 16
        assert mem.num_pages == (1 << 20) // 4096

    def test_rejects_non_page_multiple(self):
        with pytest.raises(VMError):
            TaggedMemory(4097)

    def test_rejects_zero(self):
        with pytest.raises(VMError):
            TaggedMemory(0)


class TestCapStorage:
    def test_store_load_roundtrip(self, mem):
        c = a_cap()
        mem.store_cap(0x1000, c)
        assert mem.load_cap(0x1000) == c

    def test_untagged_slot_loads_none(self, mem):
        assert mem.load_cap(0x1000) is None

    def test_storing_untagged_clears_slot(self, mem):
        mem.store_cap(0x1000, a_cap())
        mem.store_cap(0x1000, a_cap().cleared())
        assert mem.load_cap(0x1000) is None
        assert not mem.tags[0x1000 // GRANULE_BYTES]

    def test_unaligned_cap_access_rejected(self, mem):
        with pytest.raises(VMError):
            mem.store_cap(0x1001, a_cap())
        with pytest.raises(VMError):
            mem.load_cap(0x1008 + 4)

    def test_out_of_memory_rejected(self, mem):
        with pytest.raises(VMError):
            mem.load_cap(mem.size_bytes)

    def test_tag_bit_mirrors_dict(self, mem):
        mem.store_cap(0x2000, a_cap())
        g = 0x2000 // GRANULE_BYTES
        assert mem.tags[g]
        mem.clear_tag_at_granule(g)
        assert not mem.tags[g]
        assert mem.load_cap(0x2000) is None


class TestDataStoresClearTags:
    def test_exact_overwrite(self, mem):
        mem.store_cap(0x1000, a_cap())
        mem.store_data(0x1000, 16)
        assert mem.load_cap(0x1000) is None

    def test_partial_overwrite_kills_capability(self, mem):
        mem.store_cap(0x1000, a_cap())
        mem.store_data(0x1008, 4)  # inside the granule
        assert mem.load_cap(0x1000) is None

    def test_straddling_overwrite_kills_both(self, mem):
        mem.store_cap(0x1000, a_cap())
        mem.store_cap(0x1010, a_cap())
        mem.store_data(0x1008, 16)  # spans both granules
        assert mem.load_cap(0x1000) is None
        assert mem.load_cap(0x1010) is None

    def test_adjacent_store_leaves_cap(self, mem):
        mem.store_cap(0x1000, a_cap())
        mem.store_data(0x1010, 16)
        assert mem.load_cap(0x1000) is not None

    def test_large_store_uses_vector_path(self, mem):
        # > 64 granules exercises the numpy branch.
        for i in range(8):
            mem.store_cap(0x1000 + i * 256, a_cap())
        mem.store_data(0x1000, 8 * 256)
        assert mem.total_tags == 0

    def test_zero_length_store_is_noop(self, mem):
        mem.store_cap(0x1000, a_cap())
        mem.store_data(0x1000, 0)
        assert mem.load_cap(0x1000) is not None

    @given(
        cap_g=st.integers(0, 255),
        store_off=st.integers(0, 4080),
        nbytes=st.integers(1, 512),
    )
    def test_tag_cleared_iff_overlapped(self, cap_g, store_off, nbytes):
        mem = TaggedMemory(1 << 16)
        cap_addr = cap_g * GRANULE_BYTES
        mem.store_cap(cap_addr, Capability.root(cap_addr, 16))
        mem.store_data(store_off, nbytes)
        overlap = store_off < cap_addr + 16 and cap_addr < store_off + nbytes
        assert (mem.load_cap(cap_addr) is None) == overlap


class TestPageQueries:
    def test_tagged_granules_in_page(self, mem):
        mem.store_cap(0x1000, a_cap())
        mem.store_cap(0x1FF0, a_cap())
        vpn = 0x1000 // PAGE_BYTES
        granules = mem.tagged_granules_in_page(vpn)
        assert granules == [0x1000 // 16, 0x1FF0 // 16]
        assert mem.page_tag_count(vpn) == 2
        assert mem.page_has_tags(vpn)

    def test_other_pages_unaffected(self, mem):
        mem.store_cap(0x1000, a_cap())
        assert not mem.page_has_tags(0)
        assert mem.tagged_granules_in_page(2) == []

    def test_zero_page_clears_everything(self, mem):
        vpn = 3
        for i in range(GRANULES_PER_PAGE):
            mem.store_cap(vpn * PAGE_BYTES + i * 16, a_cap())
        assert mem.page_tag_count(vpn) == GRANULES_PER_PAGE
        mem.zero_page(vpn)
        assert mem.page_tag_count(vpn) == 0
        assert mem.total_tags == 0

    def test_iter_tagged_matches_queries(self, mem):
        addrs = [0x1000, 0x2000, 0x3010]
        for addr in addrs:
            mem.store_cap(addr, a_cap())
        seen = {g * GRANULE_BYTES for g, _ in mem.iter_tagged()}
        assert seen == set(addrs)


class TestVectorViews:
    """The per-page tag/base arrays feeding the vectorized sweep."""

    def test_cap_bases_track_stores(self, mem):
        cap = Capability.root(0x4000, 64)
        mem.store_cap(0x1000, cap)
        assert mem.cap_bases[0x1000 // GRANULE_BYTES] == 0x4000

    def test_page_tag_arrays_are_views(self, mem):
        mem.store_cap(0x1000, Capability.root(0x8000, 32))
        vpn = 0x1000 // PAGE_BYTES
        tags, bases = mem.page_tag_arrays(vpn)
        assert len(tags) == GRANULES_PER_PAGE and len(bases) == GRANULES_PER_PAGE
        off = (0x1000 % PAGE_BYTES) // GRANULE_BYTES
        assert tags[off] and bases[off] == 0x8000
        # Live views: a store through the memory shows up immediately.
        mem.store_cap(0x1010, Capability.root(0x9000, 32))
        assert tags[off + 1] and bases[off + 1] == 0x9000

    def test_bases_only_meaningful_under_tags(self, mem):
        mem.store_cap(0x1000, Capability.root(0x8000, 32))
        mem.store_data(0x1000, 16)  # clears the tag, base value is stale
        tags, bases = mem.page_tag_arrays(0x1000 // PAGE_BYTES)
        assert not tags[0]
        granules = mem.tagged_granules_in_page(0x1000 // PAGE_BYTES)
        assert granules == []

    def test_clear_granules_matches_scalar_clear(self, mem):
        import numpy as np

        for i in range(4):
            mem.store_cap(0x2000 + i * GRANULE_BYTES, a_cap())
        g0 = 0x2000 // GRANULE_BYTES
        mem.clear_granules(np.array([g0, g0 + 2]))
        assert mem.tagged_granules_in_page(0x2000 // PAGE_BYTES) == [g0 + 1, g0 + 3]
        assert mem.load_cap(0x2000) is None
        assert mem.load_cap(0x2020) is None
        assert mem.total_tags == 2
