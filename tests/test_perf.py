"""The continuous-benchmarking subsystem (``repro.perf``).

Covers the regression detector on synthetic distributions (the verdicts
the CI gate hangs off), bootstrap determinism under a fixed seed, the
PerfReport schema round-trip (property-based), the content-addressed
baseline store with its git-sha overwrite guard, the runner's
warmup/repetition semantics, the end-to-end gate exit codes (including
the documented ``REPRO_PERF_INJECT`` 2x-regression drill), and the
legacy report converters.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PerfError
from repro.perf.baselines import BaselineStore
from repro.perf.registry import DETERMINISTIC, WALL, BenchmarkDef, Probe
from repro.perf.regression import (
    IMPROVED,
    MIN_WALL_SAMPLES,
    MISSING,
    NEW,
    NOISY,
    OK,
    REGRESSED,
    Thresholds,
    bootstrap_ci_median,
    classify_deterministic,
    classify_wall,
    compare_reports,
    mad,
)
from repro.perf.report import (
    BenchmarkResult,
    MetricSeries,
    PerfReport,
    check_overwrite,
    convert_legacy,
)
from repro.perf.runner import Runner

THRESHOLDS = Thresholds()


# --- Regression detector on synthetic distributions --------------------------


class TestClassifyDeterministic:
    def test_identical_is_ok(self):
        verdict, _ = classify_deterministic([100.0] * 3, [100.0] * 3, THRESHOLDS)
        assert verdict == OK

    def test_within_tolerance_is_ok(self):
        # 1% above a 2% tolerance band.
        verdict, _ = classify_deterministic([100.0] * 3, [101.0] * 3, THRESHOLDS)
        assert verdict == OK

    def test_doubling_regresses(self):
        verdict, _ = classify_deterministic([100.0] * 3, [200.0] * 3, THRESHOLDS)
        assert verdict == REGRESSED

    def test_halving_improves(self):
        verdict, _ = classify_deterministic([100.0] * 3, [50.0] * 3, THRESHOLDS)
        assert verdict == IMPROVED

    def test_growth_from_zero_regresses(self):
        verdict, _ = classify_deterministic([0.0] * 3, [5.0] * 3, THRESHOLDS)
        assert verdict == REGRESSED


class TestClassifyWall:
    def test_same_distribution_is_ok(self):
        base = [1.00, 1.02, 0.98, 1.01, 0.99, 1.03, 0.97, 1.00]
        cur = [1.01, 0.99, 1.02, 1.00, 0.98, 1.01, 1.03, 0.99]
        verdict, _ = classify_wall(base, cur, THRESHOLDS)
        assert verdict == OK

    def test_clear_shift_regresses(self):
        # 2x shift, tight spread, enough samples: unambiguous.
        base = [1.00, 1.01, 0.99, 1.02, 0.98, 1.00, 1.01, 0.99]
        cur = [2.00, 2.02, 1.98, 2.01, 1.99, 2.03, 1.97, 2.00]
        verdict, _ = classify_wall(base, cur, THRESHOLDS)
        assert verdict == REGRESSED

    def test_clear_drop_improves(self):
        base = [2.00, 2.02, 1.98, 2.01, 1.99, 2.03, 1.97, 2.00]
        cur = [1.00, 1.01, 0.99, 1.02, 0.98, 1.00, 1.01, 0.99]
        verdict, _ = classify_wall(base, cur, THRESHOLDS)
        assert verdict == IMPROVED

    def test_wide_noise_is_not_a_regression(self):
        # The medians differ ~30% but spread swamps the shift: the MAD
        # guard or the overlapping bootstrap CIs must hold the verdict
        # at ok/noisy, never regressed.
        base = [1.0, 3.0, 0.5, 2.5, 1.5, 2.8, 0.7, 2.0]
        cur = [1.3, 3.8, 0.6, 3.2, 1.9, 3.5, 0.9, 2.6]
        verdict, _ = classify_wall(base, cur, THRESHOLDS)
        assert verdict in (OK, NOISY)

    def test_tiny_absolute_wobble_is_ok(self):
        # Microseconds-scale metric, zero MAD (identical samples), but
        # the shift is under the relative floor: never alarms.
        verdict, _ = classify_wall([1e-6] * 8, [1.05e-6] * 8, THRESHOLDS)
        assert verdict == OK

    def test_few_samples_cap_at_noisy(self):
        # A giant shift with fewer than MIN_WALL_SAMPLES per side cannot
        # establish significance: smoke suites run 3 reps.
        base = [1.0, 1.01, 0.99]
        cur = [5.0, 5.02, 4.98]
        assert len(base) < MIN_WALL_SAMPLES
        verdict, note = classify_wall(base, cur, THRESHOLDS)
        assert verdict == NOISY
        assert "samples" in note


class TestBootstrap:
    def test_deterministic_under_fixed_seed(self):
        values = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]
        first = bootstrap_ci_median(values, iters=500, seed=42)
        second = bootstrap_ci_median(values, iters=500, seed=42)
        assert first == second

    def test_interval_brackets_median(self):
        values = [1.0, 1.1, 0.9, 1.05, 0.95, 1.02, 0.98, 1.0]
        lo, hi = bootstrap_ci_median(values, iters=1000)
        assert lo <= 1.0 <= hi

    def test_singleton_degenerates(self):
        assert bootstrap_ci_median([3.0]) == (3.0, 3.0)

    def test_mad_of_constant_is_zero(self):
        assert mad([5.0, 5.0, 5.0]) == 0.0


# --- Report comparison (catalog drift + gating) ------------------------------


def _report(suite: str, benchmarks: dict[str, dict[str, MetricSeries]]) -> PerfReport:
    return PerfReport(
        suite=suite,
        env={"git_sha": None},
        benchmarks={
            name: BenchmarkResult(metrics=metrics)
            for name, metrics in benchmarks.items()
        },
    )


class TestCompareReports:
    def test_deterministic_regression_gates(self):
        base = _report("smoke", {"b": {"cycles": MetricSeries(DETERMINISTIC, [100])}})
        cur = _report("smoke", {"b": {"cycles": MetricSeries(DETERMINISTIC, [250])}})
        comparison = compare_reports(base, cur)
        assert [r.verdict for r in comparison] == [REGRESSED]
        assert comparison.gating_regressions
        assert comparison.exit_code() == 1
        assert "FAIL" in comparison.summary()

    def test_wall_regression_does_not_gate(self):
        base = _report(
            "smoke", {"b": {"wall_s": MetricSeries(WALL, [1.0, 1.01, 0.99, 1.0, 1.02])}}
        )
        cur = _report(
            "smoke", {"b": {"wall_s": MetricSeries(WALL, [3.0, 3.01, 2.99, 3.0, 3.02])}}
        )
        comparison = compare_reports(base, cur)
        assert [r.verdict for r in comparison] == [REGRESSED]
        assert not comparison.gating_regressions
        assert comparison.wall_regressions
        assert comparison.exit_code() == 0

    def test_catalog_drift_is_reported_not_gated(self):
        base = _report("smoke", {"old": {"c": MetricSeries(DETERMINISTIC, [1])}})
        cur = _report("smoke", {"new": {"c": MetricSeries(DETERMINISTIC, [1])}})
        verdicts = {r.benchmark: r.verdict for r in compare_reports(base, cur)}
        assert verdicts == {"new": NEW, "old": MISSING}
        assert compare_reports(base, cur).exit_code() == 0

    def test_kind_change_is_noisy(self):
        base = _report("smoke", {"b": {"m": MetricSeries(DETERMINISTIC, [1.0])}})
        cur = _report("smoke", {"b": {"m": MetricSeries(WALL, [1.0])}})
        (row,) = compare_reports(base, cur).rows
        assert row.verdict == NOISY


# --- PerfReport schema round-trip (property-based) ---------------------------

metric_names = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz._", min_size=1, max_size=12
)
finite_floats = st.floats(
    allow_nan=False, allow_infinity=False, width=32, min_value=-1e6, max_value=1e6
)
series_strategy = st.builds(
    MetricSeries,
    kind=st.sampled_from([DETERMINISTIC, WALL]),
    samples=st.lists(finite_floats, min_size=0, max_size=5),
)
report_strategy = st.builds(
    PerfReport,
    suite=st.sampled_from(["smoke", "full", "sweep"]),
    env=st.fixed_dictionaries({"git_sha": st.none() | st.text(max_size=40)}),
    config=st.dictionaries(metric_names, finite_floats, max_size=3),
    benchmarks=st.dictionaries(
        metric_names,
        st.builds(
            BenchmarkResult,
            metrics=st.dictionaries(metric_names, series_strategy, max_size=3),
            config=st.dictionaries(metric_names, finite_floats, max_size=2),
        ),
        max_size=4,
    ),
)


class TestPerfReport:
    @settings(max_examples=50, deadline=None)
    @given(report=report_strategy)
    def test_roundtrip(self, report):
        restored = PerfReport.loads(report.dumps())
        assert restored.to_dict() == report.to_dict()
        assert restored.digest() == report.digest()

    def test_unknown_schema_refused(self):
        data = _report("smoke", {}).to_dict()
        data["schema"] = 99
        with pytest.raises(PerfError, match="schema"):
            PerfReport.from_dict(data)

    def test_legacy_shape_refused_with_hint(self):
        with pytest.raises(PerfError, match="convert"):
            PerfReport.from_dict({"benchmark": "sweep_micro"})

    def test_unknown_metric_kind_refused(self):
        with pytest.raises(PerfError, match="kind"):
            MetricSeries(kind="cpu", samples=[1.0])


# --- Baseline store + git-sha overwrite guard --------------------------------


def _stamped(suite: str, sha: str | None, cycles: float = 100.0) -> PerfReport:
    return PerfReport(
        suite=suite,
        env={"git_sha": sha},
        benchmarks={
            "b": BenchmarkResult(
                metrics={"cycles": MetricSeries(DETERMINISTIC, [cycles])}
            )
        },
    )


class TestBaselineStore:
    def test_record_and_load(self, tmp_path):
        store = BaselineStore(tmp_path / "baselines")
        report = _stamped("smoke", "aaa")
        object_id = store.record(report)
        assert store.load("smoke").to_dict() == report.to_dict()
        assert store.ref("smoke")["object"] == object_id
        assert (tmp_path / "baselines" / "objects" / f"{object_id}.json").exists()

    def test_missing_suite_error_names_remedy(self, tmp_path):
        with pytest.raises(PerfError, match="--record"):
            BaselineStore(tmp_path).load("smoke")

    def test_same_sha_rerecord_allowed(self, tmp_path):
        store = BaselineStore(tmp_path)
        store.record(_stamped("smoke", "aaa", cycles=100.0))
        store.record(_stamped("smoke", "aaa", cycles=150.0))
        assert store.load("smoke").benchmarks["b"].metrics["cycles"].samples == [150.0]

    def test_cross_sha_overwrite_refused_then_forced(self, tmp_path):
        store = BaselineStore(tmp_path)
        store.record(_stamped("smoke", "aaa"))
        with pytest.raises(PerfError, match="refusing to overwrite"):
            store.record(_stamped("smoke", "bbb"))
        store.record(_stamped("smoke", "bbb"), force=True)
        assert store.ref("smoke")["git_sha"] == "bbb"

    def test_unknown_sha_never_refuses(self, tmp_path, monkeypatch):
        # Either side missing a sha (legacy report, tarball checkout):
        # nothing to compare, the write proceeds. A record without an env
        # sha falls back to the checkout's HEAD, so pin that to None too.
        import repro.perf.baselines as baselines_mod

        monkeypatch.setattr(baselines_mod, "git_sha", lambda: None)
        store = BaselineStore(tmp_path)
        store.record(_stamped("smoke", None))
        store.record(_stamped("smoke", "aaa"))
        store.record(_stamped("smoke", None, cycles=1.0))

    def test_objects_are_content_addressed(self, tmp_path):
        store = BaselineStore(tmp_path)
        report = _stamped("smoke", "aaa")
        assert store.record(report) == store.record(report) == report.digest()[:16]

    def test_check_overwrite_matrix(self):
        check_overwrite(None, "b", "x")
        check_overwrite("a", None, "x")
        check_overwrite("a", "a", "x")
        check_overwrite("a", "b", "x", force=True)
        with pytest.raises(PerfError):
            check_overwrite("a", "b", "x")


# --- Runner semantics --------------------------------------------------------


def _defs(fn, *, warmup=0, smoke_reps=3, name="t.bench") -> BenchmarkDef:
    return BenchmarkDef(
        name=name,
        fn=fn,
        suites=("smoke",),
        description="test target",
        smoke_reps=smoke_reps,
        warmup=warmup,
    )


class TestRunner:
    def test_warmup_repetitions_are_discarded(self):
        calls = []

        def target(probe: Probe) -> None:
            calls.append(1)
            probe.record("cycles", len(calls))

        report = Runner(mode="smoke").run(
            benchmarks=[_defs(target, warmup=2, smoke_reps=3)]
        )
        # 2 warmup + 3 measured calls; only the last 3 recorded.
        assert len(calls) == 5
        samples = report.benchmarks["t.bench"].metrics["cycles"].samples
        assert samples == [3.0, 4.0, 5.0]

    def test_wall_fallback_when_target_records_none(self):
        report = Runner(mode="smoke").run(
            benchmarks=[_defs(lambda probe: probe.record("cycles", 7))]
        )
        metrics = report.benchmarks["t.bench"].metrics
        assert metrics["wall_s"].kind == WALL
        assert len(metrics["wall_s"].samples) == 3

    def test_deterministic_drift_is_surfaced(self):
        counter = iter(range(100))

        def drifting(probe: Probe) -> None:
            probe.record("cycles", next(counter))

        report = Runner(mode="smoke").run(benchmarks=[_defs(drifting)])
        assert report.detail["nondeterministic"] == ["t.bench/cycles"]

    def test_inconsistent_metric_sets_refused(self):
        state = {"rep": 0}

        def flaky(probe: Probe) -> None:
            state["rep"] += 1
            if state["rep"] == 2:
                probe.record("extra", 1)
            probe.record("cycles", 1)

        with pytest.raises(PerfError, match="some repetitions"):
            Runner(mode="smoke").run(benchmarks=[_defs(flaky)])

    def test_duplicate_metric_in_one_rep_refused(self):
        def doubled(probe: Probe) -> None:
            probe.record("cycles", 1)
            probe.record("cycles", 2)

        with pytest.raises(PerfError, match="twice"):
            Runner(mode="smoke").run(benchmarks=[_defs(doubled)])


# --- The end-to-end gate (REPRO_PERF_INJECT drill) ---------------------------


class TestGateEndToEnd:
    def _target(self, probe: Probe) -> None:
        probe.record("cycles", 1000.0)
        with probe.time():
            pass

    def test_injected_regression_fails_gate(self, tmp_path, monkeypatch):
        store = BaselineStore(tmp_path)
        runner = Runner(mode="smoke")
        defs = [_defs(self._target)]
        store.record(runner.run(benchmarks=defs))
        # Clean re-run: gate passes.
        clean = compare_reports(store.load("smoke"), runner.run(benchmarks=defs))
        assert clean.exit_code() == 0
        # The documented drill: inject a 2x deterministic multiplier.
        monkeypatch.setenv("REPRO_PERF_INJECT", "2.0")
        injected = compare_reports(store.load("smoke"), runner.run(benchmarks=defs))
        assert injected.exit_code() == 1
        (gating,) = injected.gating_regressions
        assert gating.metric == "cycles" and gating.ratio == pytest.approx(2.0)

    def test_injected_report_cannot_become_baseline(self, monkeypatch):
        # The CLI refuses to record baselines produced with the inject
        # knob; the refusal keys off config["inject"], set by the runner.
        monkeypatch.setenv("REPRO_PERF_INJECT", "2.0")
        report = Runner(mode="smoke").run(benchmarks=[_defs(self._target)])
        assert report.config["inject"] == 2.0


# --- Legacy converters -------------------------------------------------------


class TestConvertLegacy:
    def test_sweep_micro_upgrades(self):
        legacy = {
            "benchmark": "sweep_micro",
            "config": {"pages": 64},
            "host": {"python": "3.11.0", "machine": "x86_64"},
            "scalar": {"scan_s": 2.0, "revoke_s": 3.0, "stream_s": 4.0},
            "vectorized": {"scan_s": 1.0, "revoke_s": 1.5, "stream_s": 2.0},
            "speedup": {"scan": 2.0, "revoke": 2.0, "stream": 2.0},
        }
        report = convert_legacy(legacy)
        assert report.suite == "sweep-micro"
        assert report.env["git_sha"] is None
        assert report.benchmarks["sweep.scan"].metrics["wall_s"].samples == [1.0]
        assert report.benchmarks["sweep.scan"].metrics["scalar_wall_s"].samples == [2.0]
        assert report.detail["legacy"] is True
        # And the upgraded report survives its own round-trip.
        assert PerfReport.loads(report.dumps()).to_dict() == report.to_dict()

    def test_serve_upgrades(self):
        legacy = {
            "benchmark": "serve",
            "config": {"requests": 60},
            "service": {
                "requests": 60, "ok": 60, "failures": 0,
                "throughput_rps": 280.0, "p50_ms": 0.5, "p99_ms": 100.0,
                "mean_ms": 10.0, "wall_s": 0.21,
            },
        }
        report = convert_legacy(legacy)
        assert report.suite == "serve"
        assert report.benchmarks["serve.service"].metrics["throughput_rps"].samples == [
            280.0
        ]
        assert report.detail["raw"]["service"]["ok"] == 60

    def test_v1_passes_through(self):
        report = _stamped("smoke", "aaa")
        assert convert_legacy(report.to_dict()).to_dict() == report.to_dict()

    def test_unrecognized_refused(self):
        with pytest.raises(PerfError, match="unrecognized"):
            convert_legacy({"benchmark": "mystery"})


# --- The committed baseline stays loadable -----------------------------------


class TestCommittedBaseline:
    def test_smoke_ref_resolves(self):
        # The repo commits perf/baselines/; CI's perf-gate compares
        # against it, so a corrupt store must fail here first.
        from pathlib import Path

        root = Path(__file__).resolve().parent.parent / "perf" / "baselines"
        store = BaselineStore(root)
        report = store.load("smoke")
        assert report.suite == "smoke"
        kinds = {
            s.kind
            for b in report.benchmarks.values()
            for s in b.metrics.values()
        }
        assert DETERMINISTIC in kinds
