"""Unit tests for the core: load barriers, store barriers, faults."""

from __future__ import annotations

import pytest

from repro.errors import CapabilityError
from repro.machine.capability import Capability, Perm
from repro.machine.machine import Machine
from repro.machine.trap import CapStoreFault, LoadGenerationFault, PageFault


@pytest.fixture
def machine() -> Machine:
    m = Machine(memory_bytes=1 << 20)
    for vpn in range(1, 9):
        m.pagetable.map_page(vpn)
    return m


@pytest.fixture
def core(machine):
    return machine.cores[0]


def rw_cap(addr=0x1000, length=0x1000) -> Capability:
    return Capability.root(addr, length)


class TestDataAccess:
    def test_load_data_charges_cycles(self, core):
        result = core.load_data(rw_cap(), 64)
        assert result.cycles > 0

    def test_store_data_clears_tags(self, core, machine):
        cap = rw_cap()
        core.store_cap(cap, rw_cap(0x2000, 16))
        core.store_data(cap, 16)
        assert machine.memory.load_cap(0x1000) is None

    def test_unmapped_page_faults(self, core):
        with pytest.raises(PageFault):
            core.load_data(rw_cap(0x9000, 0x1000), 8)

    def test_guard_page_faults(self, core, machine):
        machine.pagetable.map_page(0x20, guard=True)
        with pytest.raises(PageFault):
            core.load_data(rw_cap(0x20000, 0x100), 8)

    def test_miss_then_hit_cycle_difference(self, core):
        first = core.load_data(rw_cap(), 64).cycles
        second = core.load_data(rw_cap(), 64).cycles
        assert first > second


class TestCapStoreBarrier:
    def test_store_sets_cap_dirty(self, core, machine):
        core.store_cap(rw_cap(), rw_cap(0x2000, 16))
        assert machine.pagetable.require(1).cap_dirty

    def test_untagged_store_does_not_dirty(self, core, machine):
        core.store_cap(rw_cap(), rw_cap(0x2000, 16).cleared())
        assert not machine.pagetable.require(1).cap_dirty

    def test_store_after_sweep_sets_redirtied(self, core, machine):
        pte = machine.pagetable.require(1)
        pte.swept_this_epoch = True
        core.store_cap(rw_cap(), rw_cap(0x2000, 16))
        assert pte.redirtied

    def test_store_before_sweep_not_redirtied(self, core, machine):
        core.store_cap(rw_cap(), rw_cap(0x2000, 16))
        assert not machine.pagetable.require(1).redirtied

    def test_cap_store_forbidden_page_traps(self, core, machine):
        machine.pagetable.map_page(0x30, cap_store=False)
        dst = rw_cap(0x30000, 0x1000)
        with pytest.raises(CapStoreFault):
            core.store_cap(dst, rw_cap(0x2000, 16))
        # ...but untagged data through the same path is fine.
        core.store_cap(dst, rw_cap(0x2000, 16).cleared())

    def test_store_without_permission_is_capability_error(self, core):
        weak = rw_cap().derive(0x1000, 16, Perm.LOAD | Perm.LOAD_CAP)
        with pytest.raises(CapabilityError):
            core.store_cap(weak, rw_cap(0x2000, 16))


class TestCapLoadBarrier:
    def _store_then_flip(self, core, machine):
        cap = rw_cap()
        core.store_cap(cap, rw_cap(0x2000, 16))
        core.clg ^= 1  # epoch began: core generation moves ahead of PTEs
        return cap

    def test_tagged_load_with_stale_generation_faults(self, core, machine):
        cap = self._store_then_flip(core, machine)
        with pytest.raises(LoadGenerationFault):
            core.load_cap(cap)
        assert core.lg_faults == 1

    def test_untagged_load_never_faults(self, core, machine):
        self._store_then_flip(core, machine)
        empty = rw_cap().with_address(0x1800)
        assert core.load_cap(empty).value is None  # no trap, no tag

    def test_load_after_pte_update_with_stale_tlb_faults(self, core, machine):
        """The spurious-fault path of §4.3: PTE is current, TLB is not."""
        cap = self._store_then_flip(core, machine)
        pte = machine.pagetable.require(1)
        pte.lg = core.clg  # revoker healed the page...
        with pytest.raises(LoadGenerationFault):
            core.load_cap(cap)  # ...but our TLB snapshot is stale
        cycles = core.resolve_spurious_lg_fault(1)
        assert cycles > 0
        assert core.load_cap(cap).value is not None  # retry succeeds

    def test_matching_generation_no_fault(self, core, machine):
        cap = rw_cap()
        core.store_cap(cap, rw_cap(0x2000, 16))
        loaded = core.load_cap(cap)
        assert loaded.value is not None and loaded.value.tag

    def test_flip_clg_touches_no_pte(self, core, machine):
        before = [(p.vpn, p.lg) for p in machine.pagetable.mapped_pages()]
        core.flip_clg()
        after = [(p.vpn, p.lg) for p in machine.pagetable.mapped_pages()]
        assert before == after
        assert core.clg == 1

    def test_load_without_loadcap_permission_rejected(self, core):
        weak = rw_cap().derive(0x1000, 16, Perm.LOAD | Perm.STORE)
        with pytest.raises(CapabilityError):
            core.load_cap(weak)


class TestContention:
    def test_sweep_inflates_miss_penalty(self, machine):
        a, b = machine.cores[0], machine.cores[1]
        quiet = a.load_data(rw_cap(0x1000, 64), 64).cycles
        machine.bus.sweep_begin()
        loud = b.load_data(rw_cap(0x1000, 64), 64).cycles
        machine.bus.sweep_end()
        assert loud > quiet

    def test_tlb_shootdown_invalidates_all_cores(self, machine):
        for c in machine.cores:
            c.load_data(rw_cap(), 8)
        cost = machine.tlb_shootdown(1)
        assert cost > 0
        for c in machine.cores:
            assert c.tlb.lookup(1) is None
