"""Unit tests for quarantine buffers and the trigger policy."""

from __future__ import annotations

import pytest

from repro.alloc.quarantine import Quarantine, QuarantinePolicy, SealedBatch
from repro.alloc.snmalloc import FreedRegion


def region(addr=0x1000, size=256) -> FreedRegion:
    return FreedRegion(addr, size, 4)


class TestPolicy:
    def test_quarter_of_total_heap(self):
        policy = QuarantinePolicy(min_bytes=0)
        # 1/4 of total heap == 1/3 of allocated (the paper's equivalence).
        assert policy.limit_bytes(allocated_bytes=300, quarantined_bytes=100) == 100

    def test_minimum_floor_applies(self):
        policy = QuarantinePolicy(min_bytes=8 << 20)
        assert policy.limit_bytes(100, 0) == 8 << 20

    def test_trigger_above_limit(self):
        policy = QuarantinePolicy(min_bytes=1000)
        assert not policy.should_trigger(0, 1000)
        assert policy.should_trigger(0, 1001)

    def test_small_heaps_floor_dominated(self):
        """gobmk/hmmer behaviour (fig. 3): tiny heaps revoke on the floor,
        not the fraction."""
        policy = QuarantinePolicy()
        small_heap = 2 << 20
        assert policy.limit_bytes(small_heap, 0) == 8 << 20

    def test_block_at_twice_limit(self):
        policy = QuarantinePolicy(min_bytes=1000, block_multiplier=2.0)
        assert not policy.should_block(0, 2000)
        assert policy.should_block(0, 2001)


class TestQuarantineBuffers:
    def test_add_accumulates_pending(self):
        q = Quarantine()
        q.add(region(size=100))
        q.add(region(0x2000, 50))
        assert q.pending_bytes == 150
        assert q.total_bytes == 150
        assert q.lifetime_bytes == 150

    def test_seal_moves_pending_to_batch(self):
        q = Quarantine()
        q.add(region(size=100))
        batch = q.seal(observed_epoch=0)
        assert q.pending_bytes == 0
        assert q.sealed_bytes == 100
        assert batch.observed_epoch == 0
        assert batch.release_at == 2

    def test_seal_while_revoking_waits_longer(self):
        q = Quarantine()
        q.add(region())
        batch = q.seal(observed_epoch=3)
        assert batch.release_at == 6

    def test_releasable_respects_epoch(self):
        q = Quarantine()
        q.add(region())
        q.seal(0)
        assert q.releasable(1) == []
        ready = q.releasable(2)
        assert len(ready) == 1
        assert q.sealed == []

    def test_multiple_batches_release_independently(self):
        q = Quarantine()
        q.add(region(0x1000))
        q.seal(0)  # release at 2
        q.add(region(0x2000))
        q.seal(1)  # release at 4
        assert len(q.releasable(2)) == 1
        assert len(q.releasable(3)) == 0
        assert len(q.releasable(4)) == 1

    def test_peak_tracks_high_water(self):
        q = Quarantine()
        q.add(region(size=100))
        q.seal(0)
        q.add(region(0x2000, 300))
        assert q.peak_bytes == 400
        q.releasable(2)
        q.add(region(0x3000, 10))
        assert q.peak_bytes == 400
