"""Unit and property tests for the CHERI capability value type."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.errors import CapabilityError
from repro.machine.capability import (
    Capability,
    MANTISSA_BITS,
    Perm,
    representable_alignment,
    representable_length,
)


def cap(base=0x1000, length=0x100, perms=None) -> Capability:
    return Capability.root(base, length, perms)


class TestConstruction:
    def test_root_spans_requested_region(self):
        c = cap(0x4000, 0x200)
        assert c.base == 0x4000
        assert c.top == 0x4200
        assert c.address == 0x4000
        assert c.tag

    def test_root_defaults_to_all_permissions(self):
        assert cap().perms == Perm.all()

    def test_negative_base_rejected(self):
        with pytest.raises(CapabilityError):
            Capability(base=-1, length=16, address=0)

    def test_negative_length_rejected(self):
        with pytest.raises(CapabilityError):
            Capability(base=0, length=-16, address=0)


class TestMonotonicDerivation:
    def test_derive_narrows_bounds(self):
        c = cap(0x1000, 0x1000)
        d = c.derive(0x1100, 0x100)
        assert d.base == 0x1100
        assert d.top == 0x1200
        assert d.tag

    def test_derive_full_range_allowed(self):
        c = cap(0x1000, 0x100)
        d = c.derive(0x1000, 0x100)
        assert (d.base, d.length) == (c.base, c.length)

    def test_derive_cannot_widen_below(self):
        with pytest.raises(CapabilityError):
            cap(0x1000, 0x100).derive(0xF00, 0x100)

    def test_derive_cannot_widen_above(self):
        with pytest.raises(CapabilityError):
            cap(0x1000, 0x100).derive(0x1080, 0x100)

    def test_derive_cannot_add_permissions(self):
        c = cap(perms=Perm.LOAD)
        with pytest.raises(CapabilityError):
            c.derive(c.base, c.length, Perm.LOAD | Perm.STORE)

    def test_derive_can_drop_permissions(self):
        c = cap()
        d = c.derive(c.base, 16, Perm.LOAD)
        assert d.perms == Perm.LOAD

    def test_derive_from_untagged_rejected(self):
        dead = cap().cleared()
        with pytest.raises(CapabilityError):
            dead.derive(dead.base, 16)

    @given(
        base=st.integers(0, 1 << 30),
        length=st.integers(16, 1 << 20),
        off=st.integers(0, 1 << 20),
        sub=st.integers(1, 1 << 20),
    )
    def test_derivation_monotonicity_property(self, base, length, off, sub):
        """Any successful derivation's bounds lie within the parent's."""
        parent = Capability.root(base, length)
        try:
            child = parent.derive(base + off, sub)
        except CapabilityError:
            assert off + sub > length  # rejected exactly when it would widen
        else:
            assert child.base >= parent.base
            assert child.top <= parent.top


class TestCursorAndRepresentability:
    def test_with_address_in_bounds_keeps_tag(self):
        c = cap(0x1000, 0x100).with_address(0x1080)
        assert c.tag and c.address == 0x1080

    def test_with_address_at_top_keeps_tag(self):
        # One-past-the-end pointers are valid C and representable.
        assert cap(0x1000, 0x100).with_address(0x1100).tag

    def test_slightly_out_of_bounds_keeps_tag(self):
        # CHERI tolerates small out-of-bounds excursions (representable).
        assert cap(0x1000, 0x100).with_address(0x1140).tag

    def test_far_out_of_bounds_clears_tag(self):
        c = cap(0x100000, 0x100).with_address(0x500000)
        assert not c.tag

    def test_base_is_revocation_probe_target(self):
        c = cap(0x2000, 0x100).with_address(0x2050)
        assert c.revocation_probe_address == 0x2000

    @given(st.integers(0, 1 << 24))
    def test_cursor_moves_never_move_base(self, addr):
        c = cap(0x8000, 0x1000).with_address(addr)
        assert c.base == 0x8000

    def test_cleared_capability_stays_cleared_through_moves(self):
        dead = cap().cleared()
        assert not dead.with_address(dead.base).tag


class TestRepresentableLength:
    def test_small_lengths_exact(self):
        for length in (0, 1, 16, 4096, (1 << MANTISSA_BITS) - 1):
            assert representable_length(length) == length

    def test_large_lengths_rounded_up(self):
        length = (1 << MANTISSA_BITS) + 1
        assert representable_length(length) >= length

    def test_alignment_is_power_of_two(self):
        for length in (1 << 14, 1 << 20, (1 << 20) + 12345):
            align = representable_alignment(length)
            assert align & (align - 1) == 0

    @given(st.integers(0, 1 << 30))
    def test_representable_length_idempotent(self, length):
        r = representable_length(length)
        assert representable_length(r) == r
        assert r >= length

    def test_negative_length_rejected(self):
        with pytest.raises(CapabilityError):
            representable_alignment(-1)


class TestDereferenceChecks:
    def test_valid_access_passes(self):
        cap(0x1000, 0x100).check_dereference(16, Perm.LOAD)

    def test_untagged_rejected(self):
        with pytest.raises(CapabilityError):
            cap().cleared().check_dereference(1, Perm.LOAD)

    def test_out_of_bounds_rejected(self):
        c = cap(0x1000, 0x10)
        with pytest.raises(CapabilityError):
            c.with_address(0x100C).check_dereference(8, Perm.LOAD)

    def test_access_spanning_top_rejected(self):
        c = cap(0x1000, 0x100).with_address(0x10F8)
        with pytest.raises(CapabilityError):
            c.check_dereference(16, Perm.LOAD)

    def test_missing_permission_rejected(self):
        c = cap(perms=Perm.LOAD)
        with pytest.raises(CapabilityError):
            c.check_dereference(1, Perm.STORE)

    def test_int_permission_mask_accepted(self):
        cap().check_dereference(16, Perm.LOAD.value | Perm.LOAD_CAP.value)

    @given(
        length=st.integers(16, 4096),
        addr_off=st.integers(-64, 4160),
        nbytes=st.integers(1, 64),
    )
    def test_bounds_check_property(self, length, addr_off, nbytes):
        """check_dereference accepts exactly in-bounds accesses."""
        c = Capability.root(0x10000, length).with_address(0x10000 + addr_off)
        in_bounds = 0 <= addr_off and addr_off + nbytes <= length
        if in_bounds:
            c.check_dereference(nbytes, Perm.LOAD)
        else:
            with pytest.raises(CapabilityError):
                c.check_dereference(nbytes, Perm.LOAD)
