"""The vectorized/scalar equivalence suite.

The sweep engine exists twice: the numpy-vectorized fast path (default)
and the scalar reference model (``REPRO_SCALAR=1``). These tests pin the
contract that they are *bit-identical*, not merely close: a fixed-seed
run of every revocation strategy must produce the same
:class:`~repro.core.metrics.RunResult` down to individual bus counters,
wall cycles, pause lists, and per-epoch sweep statistics.

Any divergence here means the fast path changed simulated behaviour, not
just simulation speed — which would silently invalidate every figure.
"""

from __future__ import annotations

import pytest

from repro.core.config import RevokerKind, SimulationConfig
from repro.core.simulation import Simulation
from repro.workloads.churn import ChurnProfile, ChurnWorkload, SizeMix

ALL_FOUR = [
    RevokerKind.PAINT_SYNC,
    RevokerKind.CHERIVOKE,
    RevokerKind.CORNUCOPIA,
    RevokerKind.RELOADED,
]


def _profile(seed: int) -> ChurnProfile:
    """Small but non-trivial: enough churn for several revocation epochs,
    pointer-bearing pages for the sweeps to scan, and foreground faults
    for Reloaded's load barrier."""
    return ChurnProfile(
        name="equivalence",
        heap_bytes=96 << 10,
        churn_bytes=256 << 10,
        size_mix=SizeMix((64, 256, 1024), (4.0, 2.0, 1.0)),
        pointer_slots=2,
        seed=seed,
    )


def _run(kind: RevokerKind, seed: int):
    sim = Simulation(
        ChurnWorkload(_profile(seed)), SimulationConfig(revoker=kind)
    )
    return sim.run()


def _fingerprint(result) -> dict:
    """Every metric the paper's figures read, in comparable form."""
    return {
        "wall_cycles": result.wall_cycles,
        "app_cpu_cycles": result.app_cpu_cycles,
        "cpu_cycles_by_core": result.cpu_cycles_by_core,
        "bus_by_source": result.bus_by_source,
        "peak_rss_bytes": result.peak_rss_bytes,
        "stw_pauses": result.stw_pauses,
        "revocations": result.revocations,
        "caps_revoked": result.caps_revoked,
        "pages_swept": result.pages_swept,
        "foreground_faults": result.foreground_faults,
        "spurious_faults": result.spurious_faults,
        "epochs": [
            (
                r.epoch,
                r.pages_swept,
                r.pages_gen_only,
                r.caps_checked,
                r.caps_revoked,
                r.fault_cycles,
                r.fault_count,
                r.stw_cycles(),
                r.concurrent_cycles(),
            )
            for r in result.epoch_records
        ],
    }


@pytest.mark.parametrize("kind", ALL_FOUR, ids=[k.value for k in ALL_FOUR])
def test_vectorized_matches_scalar_reference(kind, monkeypatch):
    monkeypatch.setenv("REPRO_SCALAR", "1")
    scalar = _fingerprint(_run(kind, seed=7))
    monkeypatch.setenv("REPRO_SCALAR", "0")
    vector = _fingerprint(_run(kind, seed=7))
    assert vector == scalar


def test_vectorized_revocation_state_matches(monkeypatch):
    """Beyond the metrics: the surviving capability population after a
    run must be identical (same granules, same bases)."""

    def tagged_population(env: str):
        monkeypatch.setenv("REPRO_SCALAR", env)
        profile = _profile(seed=11)
        sim = Simulation(
            ChurnWorkload(profile),
            SimulationConfig(revoker=RevokerKind.RELOADED),
        )
        sim.run()
        return sorted(
            (g, cap.base, cap.length)
            for g, cap in sim.machine.memory.iter_tagged()
        )

    assert tagged_population("0") == tagged_population("1")
