"""Checkpoint/restore: format, cadence, and the determinism contract.

The load-bearing assertions here are the differential ones: a run with
snapshots enabled must be bit-identical to one without, and a run resumed
from any checkpoint must be bit-identical to the straight-through run —
per revoker, traced or untraced. ``result_to_dict`` is the comparison
surface because it is exactly what the campaign cache and the serve wire
protocol persist.
"""

from __future__ import annotations

import os
import pickle

import pytest

from repro.core.config import RevokerKind, SimulationConfig
from repro.core.simulation import Simulation
from repro.errors import SnapshotError
from repro.obs.tracer import TRACER, tracing
from repro.runner.serialize import result_to_dict
from repro.snapshot import (
    SnapshotPlan,
    SnapshotSession,
    pack_checkpoint,
    read_header,
    restore_simulation,
    unpack_checkpoint,
)
from repro.workloads import spec
from repro.workloads.base import Workload

#: Small machine: the tag/capability arrays span simulated physical
#: memory, so this is what keeps checkpoints and test runtimes small.
MEMORY_BYTES = 16 << 20

SAFETY_KINDS = (
    RevokerKind.CHERIVOKE,
    RevokerKind.CORNUCOPIA,
    RevokerKind.RELOADED,
    RevokerKind.PAINT_SYNC,
)


def build_sim(kind: RevokerKind, scale: int = 4096, seed: int = 3) -> Simulation:
    workload = spec.workload("hmmer", "retro", scale=scale, seed=seed)
    cfg = SimulationConfig(revoker=kind)
    cfg.machine.memory_bytes = MEMORY_BYTES
    return Simulation(workload, cfg)


def plan_for(kind: RevokerKind) -> SnapshotPlan:
    if kind is RevokerKind.NONE:
        return SnapshotPlan(every_checks=16)
    return SnapshotPlan(every_epochs=1)


# --- Container format --------------------------------------------------------


def test_format_roundtrip():
    header = {"format": "repro-checkpoint", "epoch": 3, "workload": "x"}
    payload = pickle.dumps({"hello": list(range(1000))})
    blob = pack_checkpoint(header, payload)
    assert read_header(blob) == header
    got_header, got_payload = unpack_checkpoint(blob)
    assert got_header == header
    assert got_payload == payload


def test_format_rejects_corruption():
    blob = pack_checkpoint({"a": 1}, b"payload")
    with pytest.raises(SnapshotError, match="magic"):
        unpack_checkpoint(b"NOTASNAP" + blob[8:])
    with pytest.raises(SnapshotError, match="truncated"):
        unpack_checkpoint(blob[:10])
    flipped = bytearray(blob)
    flipped[len(blob) // 2] ^= 0xFF
    with pytest.raises(SnapshotError, match="checksum"):
        unpack_checkpoint(bytes(flipped))


def test_format_rejects_future_version():
    blob = bytearray(pack_checkpoint({"a": 1}, b"p"))
    # Version lives right after the 8-byte magic (big-endian u16).
    blob[8:10] = (99).to_bytes(2, "big")
    import hashlib

    body = bytes(blob[:-32])
    fixed = body + hashlib.sha256(body).digest()
    with pytest.raises(SnapshotError, match="v99"):
        unpack_checkpoint(fixed)


# --- Refusals ----------------------------------------------------------------


def test_refuses_unsupported_workload():
    class Frames(Workload):
        name = "frames"

        def run(self, ctx):
            yield 1

    sim = Simulation(Frames(), SimulationConfig(revoker=RevokerKind.NONE))
    with pytest.raises(SnapshotError, match="does not support"):
        sim.run(snapshots=SnapshotPlan(every_checks=1))


def test_refuses_check_layer_hooks():
    sim = build_sim(RevokerKind.RELOADED)
    sim.kernel.epoch.on_transition = lambda *a: None
    with pytest.raises(SnapshotError, match="hooks"):
        sim.run(snapshots=SnapshotPlan(every_epochs=1))


def test_none_revoker_requires_check_cadence():
    sim = build_sim(RevokerKind.NONE)
    with pytest.raises(SnapshotError, match="every_checks"):
        sim.run(snapshots=SnapshotPlan(every_epochs=1))


def test_resume_requires_restored_simulation():
    sim = build_sim(RevokerKind.RELOADED)
    with pytest.raises(SnapshotError, match="restored"):
        sim.resume()


def test_refuses_tracer_state_mismatch():
    sim = build_sim(RevokerKind.RELOADED)
    sim.run(snapshots=plan_for(RevokerKind.RELOADED))
    blob = sim._snapshots.captured[0]
    assert not TRACER.enabled
    with tracing(capacity=64):
        with pytest.raises(SnapshotError, match="tracing disabled"):
            restore_simulation(blob)


# --- The determinism contract ------------------------------------------------


@pytest.mark.parametrize("kind", SAFETY_KINDS, ids=lambda k: k.value)
def test_snapshots_do_not_perturb_the_run(kind):
    """Enabling checkpoint capture must not change the RunResult: parking
    only happens when nothing else is runnable, so zero simulated cycles
    pass during a capture."""
    plain = build_sim(kind).run()
    sim = build_sim(kind)
    snapped = sim.run(snapshots=plan_for(kind))
    assert sim._snapshots.sequence >= 1
    assert result_to_dict(snapped) == result_to_dict(plain)


@pytest.mark.parametrize("kind", SAFETY_KINDS + (RevokerKind.NONE,),
                         ids=lambda k: k.value)
def test_resume_is_bit_identical(kind):
    sim = build_sim(kind)
    straight = sim.run(snapshots=plan_for(kind))
    session = sim._snapshots
    assert session.captured, "cadence never fired; shrink the plan"
    expected = result_to_dict(straight)
    for blob in session.captured:
        restored, header = restore_simulation(blob)
        assert header["workload"] == "hmmer.retro"
        assert result_to_dict(restored.resume()) == expected


def test_resume_twice_is_deterministic():
    sim = build_sim(RevokerKind.RELOADED)
    straight = sim.run(snapshots=plan_for(RevokerKind.RELOADED))
    blob = sim._snapshots.captured[-1]
    first = result_to_dict(restore_simulation(blob)[0].resume())
    second = result_to_dict(restore_simulation(blob)[0].resume())
    assert first == second == result_to_dict(straight)


def test_traced_roundtrip_preserves_metrics_and_trace():
    with tracing(capacity=1 << 14):
        sim = build_sim(RevokerKind.RELOADED)
        straight = sim.run(snapshots=plan_for(RevokerKind.RELOADED))
        blob = sim._snapshots.captured[0]
        straight_events = [
            (e.name, e.ts, e.args) for e in TRACER.events()
        ]
        straight_metrics = TRACER.metrics.to_dict()
        straight_dict = result_to_dict(straight)
    assert straight_events, "traced run should buffer events"
    with tracing(capacity=1 << 14):
        restored, _ = restore_simulation(blob)
        resumed = restored.resume()
        resumed_events = [
            (e.name, e.ts, e.args) for e in TRACER.events()
        ]
        resumed_metrics = TRACER.metrics.to_dict()
    assert result_to_dict(resumed) == straight_dict
    assert resumed_events == straight_events
    assert resumed_metrics == straight_metrics


def test_resumed_run_keeps_checkpointing():
    sim = build_sim(RevokerKind.RELOADED)
    sim.run(snapshots=plan_for(RevokerKind.RELOADED))
    session = sim._snapshots
    assert session.sequence >= 2
    first = session.captured[0]
    delivered = []
    restored, _ = restore_simulation(
        first, sink=lambda blob, header: delivered.append(header)
    )
    restored.resume()
    # The resumed run continues the capture sequence from where the
    # checkpoint left off (sequence numbers 2, 3, ... of the original).
    assert delivered
    assert [h["sequence"] for h in delivered] == list(
        range(2, 2 + len(delivered))
    )
    assert restored._snapshots.sequence == session.sequence


def test_checkpoint_does_not_nest_captures():
    sim = build_sim(RevokerKind.RELOADED)
    sim.run(snapshots=plan_for(RevokerKind.RELOADED))
    session = sim._snapshots
    restored, _ = restore_simulation(session.captured[-1])
    # In-memory blobs and the sink must not travel inside a checkpoint.
    assert restored._snapshots.captured == []
    assert restored._snapshots._sink is None


def test_simulation_cannot_run_twice_even_with_snapshots():
    from repro.errors import SimulationError

    sim = build_sim(RevokerKind.RELOADED)
    sim.run(snapshots=plan_for(RevokerKind.RELOADED))
    with pytest.raises(SimulationError, match="once"):
        sim.run()
    restored, _ = restore_simulation(sim._snapshots.captured[0])
    restored.resume()
    with pytest.raises(SimulationError, match="once"):
        restored.resume()


def test_max_captures_bounds_the_session():
    sim = build_sim(RevokerKind.RELOADED)
    plan = SnapshotPlan(every_epochs=1, max_captures=1)
    plain = build_sim(RevokerKind.RELOADED).run()
    snapped = sim.run(snapshots=plan)
    assert sim._snapshots.sequence == 1
    assert result_to_dict(snapped) == result_to_dict(plain)


# --- Runner wiring: the killed-job scenario ---------------------------------


def _runner_job(scale: int = 4096):
    from repro.runner.campaign import Job, WorkloadSpec

    return Job(
        workload=WorkloadSpec(
            "spec",
            {"benchmark": "hmmer", "input": "retro", "scale": scale, "seed": 3},
        ),
        revoker=RevokerKind.RELOADED,
        config={"machine": {"memory_bytes": MEMORY_BYTES}},
    )


def test_pool_job_resumes_from_checkpoint(tmp_path, monkeypatch):
    """The crashed-job scenario: a worker died after writing checkpoints;
    the retry (same job, same REPRO_SNAPSHOT_DIR) must resume from the
    last checkpoint — observably, via the restore path — and produce the
    exact full-run result without recomputing completed epochs."""
    import repro.runner.campaign as campaign_mod
    from repro.runner.campaign import execute_job, job_trace_slug

    job = _runner_job()
    snap_dir = tmp_path / "snaps"
    monkeypatch.setenv("REPRO_SNAPSHOT_DIR", str(snap_dir))

    # First execution: runs fresh, leaves its last checkpoint behind.
    full = result_to_dict(execute_job(job))
    ckpt = snap_dir / f"{job_trace_slug(job)}.ckpt"
    assert ckpt.exists()
    header = read_header(ckpt.read_bytes())
    from repro.runner.cache import job_fingerprint

    assert header["job_fingerprint"] == job_fingerprint(job)

    # Rerun the "retried after a crash" scenario and verify the restore
    # path was taken and completed epochs were skipped.
    calls = []
    import repro.snapshot.capture as capture_mod

    original = capture_mod.restore_simulation

    def spying_restore(data, sink=None):
        sim, header = original(data, sink=sink)
        calls.append(header["epoch"])
        return sim, header

    monkeypatch.setattr(capture_mod, "restore_simulation", spying_restore)
    # _run_job imports from repro.snapshot, whose name re-exports the
    # capture function; patch that binding too.
    import repro.snapshot as snapshot_pkg

    monkeypatch.setattr(snapshot_pkg, "restore_simulation", spying_restore)

    resumed = result_to_dict(execute_job(job))
    assert calls, "retry did not take the resume path"
    assert calls[0] >= 1, "resume started from epoch 0 (recomputed everything)"
    assert resumed == full


def test_stale_checkpoint_is_ignored(tmp_path, monkeypatch):
    from repro.runner.campaign import execute_job, job_trace_slug

    job = _runner_job()
    snap_dir = tmp_path / "snaps"
    snap_dir.mkdir()
    path = snap_dir / f"{job_trace_slug(job)}.ckpt"
    path.write_bytes(b"garbage that is not a checkpoint at all")
    monkeypatch.setenv("REPRO_SNAPSHOT_DIR", str(snap_dir))
    result = execute_job(job)  # must fall back to a fresh run
    assert result.wall_cycles > 0
    # ...and replace the garbage with a real checkpoint.
    read_header(path.read_bytes())


def test_snapshot_dir_off_means_no_files(tmp_path, monkeypatch):
    from repro.runner.campaign import execute_job

    monkeypatch.delenv("REPRO_SNAPSHOT_DIR", raising=False)
    execute_job(_runner_job())
    assert list(tmp_path.iterdir()) == []


# --- serve-bench seed-base regression ---------------------------------------


def test_fresh_jobs_default_seed_base_is_per_run_nonce():
    """Regression: fresh_jobs used a fixed seed base (7_000_000), so a
    second serve-bench run against a live daemon hit the result cache on
    every burst job and reported inflated overload throughput. The
    default must differ run to run."""
    from repro.serve.bench import fresh_jobs

    first = {j["workload"]["params"]["seed"] for j in fresh_jobs(5, 512)}
    second = {j["workload"]["params"]["seed"] for j in fresh_jobs(5, 512)}
    assert len(first) == len(second) == 5
    assert first.isdisjoint(second)


def test_fresh_jobs_explicit_seed_base_is_honored():
    from repro.serve.bench import fresh_jobs

    jobs = fresh_jobs(3, 512, seed_base=42)
    assert [j["workload"]["params"]["seed"] for j in jobs] == [42, 43, 44]


def test_serve_config_snapshot_dir_env_fallback(monkeypatch):
    from repro.serve.server import ServeConfig

    monkeypatch.setenv("REPRO_SNAPSHOT_DIR", "/tmp/snapdir")
    cfg = ServeConfig(socket_path="/tmp/s.sock")
    assert cfg.snapshot_dir == "/tmp/snapdir"
    monkeypatch.delenv("REPRO_SNAPSHOT_DIR")
    cfg = ServeConfig(socket_path="/tmp/s.sock")
    assert cfg.snapshot_dir is None
