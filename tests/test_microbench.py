"""Tests for the microbenchmark workloads."""

from __future__ import annotations

import pytest

from repro.core.config import RevokerKind, SimulationConfig
from repro.core.experiment import compare_strategies, run_experiment
from repro.core.simulation import Simulation
from repro.core.validate import check_invariants
from repro.workloads.microbench import (
    FragmentationStress,
    PingPongAllocator,
    PointerGraphTraversal,
)


class TestPingPong:
    def test_triggers_revocation(self):
        result = run_experiment(PingPongAllocator(iterations=500), RevokerKind.RELOADED)
        assert result.revocations >= 1
        assert result.sum_freed_bytes >= 500 * 256

    def test_baseline_reuses_one_slot(self):
        sim = Simulation(
            PingPongAllocator(iterations=200),
            SimulationConfig(revoker=RevokerKind.NONE),
        )
        sim.run()
        # One live slot's worth of address space: reuse is perfect.
        assert sim.kernel.address_space.mapped_pages <= 20

    def test_quarantine_inflates_address_space(self):
        # Large objects + a large quarantine floor: held slots force the
        # allocator into extra chunks the baseline never needs.
        def make():
            return PingPongAllocator(iterations=600, size=1024,
                                     min_quarantine=64 << 10)

        base = Simulation(make(), SimulationConfig(revoker=RevokerKind.NONE))
        base.run()
        safe = Simulation(make(), SimulationConfig(revoker=RevokerKind.RELOADED))
        safe.run()
        assert safe.kernel.address_space.peak_mapped_pages > base.kernel.address_space.peak_mapped_pages

    def test_invariants_hold(self):
        sim = Simulation(PingPongAllocator(iterations=300))
        sim.run()
        check_invariants(sim).raise_if_failed()


class TestPointerGraph:
    def test_reloaded_pays_faults_for_traversal(self):
        # A graph big enough that the background sweep cannot finish
        # before the traversal resumes: the barrier fires on the app
        # thread (either a real foreground sweep or a spurious TLB-stale
        # fault, both taken on the application core).
        results = compare_strategies(
            lambda: PointerGraphTraversal(nodes=2048, rounds=150),
            (RevokerKind.CORNUCOPIA, RevokerKind.RELOADED),
        )
        rel = results[RevokerKind.RELOADED]
        assert rel.foreground_faults + rel.spurious_faults > 0
        cor = results[RevokerKind.CORNUCOPIA]
        assert cor.foreground_faults == 0 and cor.spurious_faults == 0

    def test_loads_counted(self):
        w = PointerGraphTraversal(nodes=128, rounds=50)
        run_experiment(w, RevokerKind.RELOADED)
        assert w.loads >= 50  # at least one load per round

    def test_static_graph_survives_revocation(self):
        """Nothing in the graph is freed, so revocation must not break a
        single edge."""
        w = PointerGraphTraversal(nodes=128, rounds=80)
        sim = Simulation(w, SimulationConfig(revoker=RevokerKind.RELOADED))
        sim.run()
        assert sim.kernel.epoch.completed >= 1
        # Every node still holds a tagged successor pointer.
        tagged = sim.machine.memory.total_tags
        assert tagged >= 128


class TestFragmentation:
    def test_address_space_grows_more_under_quarantine(self):
        base = Simulation(
            FragmentationStress(iterations=400),
            SimulationConfig(revoker=RevokerKind.NONE),
        )
        base.run()
        safe = Simulation(
            FragmentationStress(iterations=400),
            SimulationConfig(revoker=RevokerKind.CORNUCOPIA),
        )
        safe.run()
        assert (
            safe.kernel.address_space.peak_mapped_pages
            >= base.kernel.address_space.peak_mapped_pages
        )

    def test_invariants_hold(self):
        sim = Simulation(FragmentationStress(iterations=300))
        sim.run()
        check_invariants(sim).raise_if_failed()
