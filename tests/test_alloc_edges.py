"""Edge cases across the allocation stack the main suites don't cover:
slab growth boundaries, size-class extremes, mrs sealing timing, shadow
traffic charging."""

from __future__ import annotations

from typing import Generator

import pytest

from repro.alloc.quarantine import QuarantinePolicy
from repro.alloc.snmalloc import CHUNK_BYTES, LARGE_THRESHOLD, SIZE_CLASSES, SnMalloc
from repro.core.config import RevokerKind, SimulationConfig
from repro.core.simulation import Simulation
from repro.kernel.kernel import Kernel
from repro.machine.machine import Machine
from repro.workloads.base import Workload


@pytest.fixture
def alloc() -> SnMalloc:
    return SnMalloc(Kernel(Machine(memory_bytes=64 << 20)))


class TestSlabBoundaries:
    def test_slab_exhaustion_grows_new_chunk(self, alloc):
        size = SIZE_CLASSES[-1]  # 32 KiB: two per chunk
        per_chunk = CHUNK_BYTES // size
        chunks_before = len(alloc._chunks)
        for _ in range(per_chunk + 1):
            alloc.malloc(size)
        assert len(alloc._chunks) > chunks_before

    def test_each_class_has_independent_slabs(self, alloc):
        a, _ = alloc.malloc(16)
        b, _ = alloc.malloc(32768)
        # Different classes bump from different slabs (different chunks
        # once the first class has claimed one).
        assert a.base != b.base

    def test_threshold_boundary(self, alloc):
        at, _ = alloc.malloc(LARGE_THRESHOLD)
        over, _ = alloc.malloc(LARGE_THRESHOLD + 1)
        assert at.length == SIZE_CLASSES[-1]
        assert over.length >= LARGE_THRESHOLD + 1

    def test_sixteen_byte_min(self, alloc):
        cap, _ = alloc.malloc(1)
        assert cap.length == 16

    def test_free_list_lifo_reuse(self, alloc):
        caps = [alloc.malloc(64)[0] for _ in range(3)]
        regions = [alloc.free(c)[0] for c in caps]
        for r in regions:
            alloc.release(r)
        # LIFO: the most recently released address comes back first.
        again, _ = alloc.malloc(64)
        assert again.base == regions[-1].addr


class ScriptedWorkload(Workload):
    name = "alloc-edges"

    def __init__(self, fn, policy=None):
        self._fn = fn
        self.quarantine_policy = policy
        self.out: dict = {}

    def run(self, ctx) -> Generator:
        yield from self._fn(ctx, self.out)


class TestMrsEdges:
    def test_seal_happens_at_idle_epoch(self):
        """The controller seals right before revoking, so every batch
        observes an even (idle) counter and releases after exactly one
        epoch — mrs's double-buffering never deadlocks."""
        def body(ctx, out):
            for _ in range(60):
                cap = yield from ctx.malloc(1024)
                yield from ctx.free(cap)

        w = ScriptedWorkload(body, QuarantinePolicy(min_bytes=8 << 10))
        sim = Simulation(w, SimulationConfig(revoker=RevokerKind.RELOADED))
        sim.run()
        assert sim.kernel.epoch.completed >= 2
        # Nothing sealed remains after the drain: every batch released.
        assert sim.mrs.quarantine.sealed == []

    def test_paint_charges_shadow_traffic(self):
        """Painting on free shows up as application-core bus traffic."""
        def body(ctx, out):
            caps = []
            for _ in range(32):
                caps.append((yield from ctx.malloc(4096)))
            out["before"] = ctx.sim.machine.bus.transactions("core3")
            for cap in caps:
                yield from ctx.free(cap)
            out["after"] = ctx.sim.machine.bus.transactions("core3")

        w = ScriptedWorkload(body, QuarantinePolicy(min_bytes=1 << 20))
        sim = Simulation(w, SimulationConfig(revoker=RevokerKind.RELOADED))
        sim.run()
        assert w.out["after"] > w.out["before"]

    def test_trigger_fires_once_per_batch(self):
        """A burst of frees far over the limit produces a single pending
        trigger, not one per free."""
        def body(ctx, out):
            caps = []
            for _ in range(50):
                caps.append((yield from ctx.malloc(2048)))
            for cap in caps:
                yield from ctx.free(cap)
            out["triggered"] = ctx.sim.mrs.revocations_triggered

        w = ScriptedWorkload(body, QuarantinePolicy(min_bytes=4 << 10))
        sim = Simulation(w, SimulationConfig(revoker=RevokerKind.RELOADED))
        sim.run()
        # Far fewer triggers than frees: the pending flag coalesces them.
        assert 1 <= w.out["triggered"] < 50

    def test_epoch_event_signaled_on_transitions(self):
        """Waiters on the epoch event observe both begin and end."""
        observed = []

        def body(ctx, out):
            from repro.machine.scheduler import Block

            epoch = ctx.sim.kernel.epoch
            for _ in range(40):
                cap = yield from ctx.malloc(2048)
                yield from ctx.free(cap)
            while epoch.completed < 1:
                observed.append(epoch.read())
                yield Block(epoch.changed)
            observed.append(epoch.read())

        w = ScriptedWorkload(body, QuarantinePolicy(min_bytes=8 << 10))
        sim = Simulation(w, SimulationConfig(revoker=RevokerKind.RELOADED))
        sim.run()
        assert observed[-1] >= 2
