"""Unit and property tests for the snmalloc-style allocator."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.alloc.snmalloc import (
    CHUNK_BYTES,
    LARGE_THRESHOLD,
    SIZE_CLASSES,
    SnMalloc,
    size_class_of,
)
from repro.errors import AllocatorError
from repro.kernel.kernel import Kernel
from repro.machine.capability import Capability
from repro.machine.machine import Machine


@pytest.fixture
def alloc() -> SnMalloc:
    return SnMalloc(Kernel(Machine(memory_bytes=64 << 20)))


class TestSizeClasses:
    def test_monotone_nondecreasing(self):
        assert list(SIZE_CLASSES) == sorted(SIZE_CLASSES)

    def test_all_granule_multiples(self):
        assert all(sc % 16 == 0 for sc in SIZE_CLASSES)

    def test_small_sizes_map_to_smallest_fit(self):
        assert SIZE_CLASSES[size_class_of(1)] >= 1
        assert SIZE_CLASSES[size_class_of(17)] >= 17
        assert size_class_of(16) == 0

    def test_large_sizes_get_minus_one(self):
        assert size_class_of(LARGE_THRESHOLD + 1) == -1

    @given(st.integers(1, LARGE_THRESHOLD))
    def test_class_always_fits(self, n):
        sc = size_class_of(n)
        assert sc >= 0
        assert SIZE_CLASSES[sc] >= n
        if sc > 0:
            assert SIZE_CLASSES[sc - 1] < n


class TestMallocFree:
    def test_malloc_returns_bounded_capability(self, alloc):
        cap, _ = alloc.malloc(100)
        assert cap.tag
        assert cap.length >= 100
        assert cap.length == SIZE_CLASSES[size_class_of(100)]

    def test_distinct_allocations_never_overlap(self, alloc):
        caps = [alloc.malloc(48)[0] for _ in range(100)]
        spans = sorted((c.base, c.top) for c in caps)
        for (b1, t1), (b2, _) in zip(spans, spans[1:]):
            assert t1 <= b2

    def test_zero_size_rejected(self, alloc):
        with pytest.raises(AllocatorError):
            alloc.malloc(0)

    def test_double_free_detected(self, alloc):
        cap, _ = alloc.malloc(100)
        alloc.free(cap)
        with pytest.raises(AllocatorError):
            alloc.free(cap)

    def test_foreign_pointer_free_detected(self, alloc):
        with pytest.raises(AllocatorError):
            alloc.free(Capability.root(0x123450, 16))

    def test_freed_region_reports_rounded_size(self, alloc):
        cap, _ = alloc.malloc(100)
        region, _ = alloc.free(cap)
        assert region.addr == cap.base
        assert region.size == SIZE_CLASSES[size_class_of(100)]

    def test_no_reuse_before_release(self, alloc):
        cap, _ = alloc.malloc(100)
        alloc.free(cap)
        other, _ = alloc.malloc(100)
        assert other.base != cap.base

    def test_reuse_after_release(self, alloc):
        cap, _ = alloc.malloc(100)
        region, _ = alloc.free(cap)
        alloc.release(region)
        again, _ = alloc.malloc(100)
        assert again.base == cap.base

    def test_reuse_zeroes_stale_tags(self, alloc):
        """§2.2.2 fn. 7: zeroing is deferred to reuse — then it happens."""
        cap, _ = alloc.malloc(256)
        mem = alloc.kernel.machine.memory
        mem.store_cap(cap.base, cap)  # a capability inside the object
        region, _ = alloc.free(cap)
        assert mem.load_cap(cap.base) is not None  # survives free itself
        alloc.release(region)
        alloc.malloc(256)
        assert mem.load_cap(cap.base) is None  # reuse zeroed it

    def test_accounting(self, alloc):
        a, _ = alloc.malloc(100)
        b, _ = alloc.malloc(3000)
        assert alloc.live_allocations == 2
        assert alloc.allocated_bytes == 128 + 3072
        alloc.free(a)
        assert alloc.allocated_bytes == 3072
        assert alloc.total_freed_bytes == 128

    def test_is_live(self, alloc):
        cap, _ = alloc.malloc(100)
        assert alloc.is_live(cap.base)
        alloc.free(cap)
        assert not alloc.is_live(cap.base)


class TestLargeAllocations:
    def test_large_gets_own_region(self, alloc):
        cap, _ = alloc.malloc(LARGE_THRESHOLD + 1)
        assert cap.length >= LARGE_THRESHOLD + 1

    def test_large_reuse_by_size(self, alloc):
        cap, _ = alloc.malloc(100_000)
        region, _ = alloc.free(cap)
        alloc.release(region)
        again, _ = alloc.malloc(100_000)
        assert again.base == cap.base

    def test_large_reuse_zeroes(self, alloc):
        cap, _ = alloc.malloc(100_000)
        mem = alloc.kernel.machine.memory
        mem.store_cap(cap.base + 64, cap)
        region, _ = alloc.free(cap)
        alloc.release(region)
        alloc.malloc(100_000)
        assert mem.load_cap(cap.base + 64) is None

    def test_mixed_sizes_do_not_interfere(self, alloc):
        small, _ = alloc.malloc(64)
        big, _ = alloc.malloc(200_000)
        assert small.top <= big.base or big.top <= small.base


class TestAddressSpaceBehaviour:
    def test_chunks_requested_on_demand(self, alloc):
        before = alloc.kernel.address_space.mapped_pages
        # Exhaust one chunk's worth of 4096-byte slots.
        for _ in range(CHUNK_BYTES // 4096 + 1):
            alloc.malloc(4096)
        assert alloc.kernel.address_space.mapped_pages > before

    def test_address_space_never_returned(self, alloc):
        caps = [alloc.malloc(1024)[0] for _ in range(64)]
        mapped = alloc.kernel.address_space.mapped_pages
        for cap in caps:
            alloc.release(alloc.free(cap)[0])
        assert alloc.kernel.address_space.mapped_pages == mapped


@settings(max_examples=30, deadline=None)
@given(
    st.lists(
        st.tuples(st.booleans(), st.integers(1, 8192)),
        min_size=1,
        max_size=200,
    )
)
def test_allocator_state_machine(ops):
    """Random malloc/free interleavings keep the allocator consistent:
    live allocations never overlap and accounting always balances."""
    alloc = SnMalloc(Kernel(Machine(memory_bytes=64 << 20)))
    live: list[Capability] = []
    for do_free, size in ops:
        if do_free and live:
            cap = live.pop()
            region, _ = alloc.free(cap)
            alloc.release(region)
        else:
            cap, _ = alloc.malloc(size)
            live.append(cap)
        spans = sorted((c.base, c.top) for c in live)
        for (b1, t1), (b2, _) in zip(spans, spans[1:]):
            assert t1 <= b2
        assert alloc.live_allocations == len(live)
