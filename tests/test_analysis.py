"""Unit and property tests for the statistics and rendering helpers."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, strategies as st

from repro.analysis.stats import (
    BoxStats,
    cdf,
    geomean,
    geomean_overhead,
    mean,
    median,
    percentile,
    percentiles,
    stddev,
)
from repro.analysis.tables import bar_chart, format_percent, format_series, format_table


class TestPercentile:
    def test_single_value(self):
        assert percentile([5.0], 99) == 5.0

    def test_median_odd(self):
        assert percentile([1, 3, 2], 50) == 2

    def test_median_even_interpolates(self):
        assert percentile([1, 2, 3, 4], 50) == 2.5

    def test_extremes(self):
        data = list(range(101))
        assert percentile(data, 0) == 0
        assert percentile(data, 100) == 100

    def test_matches_numpy_linear(self):
        import numpy as np

        data = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0]
        for p in (10, 25, 50, 75, 90, 99):
            assert percentile(data, p) == pytest.approx(np.percentile(data, p))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            percentile([1], 101)

    @given(st.lists(st.floats(0, 1e9), min_size=1, max_size=50))
    def test_bounded_by_min_max(self, data):
        for p in (0, 25, 50, 75, 100):
            v = percentile(data, p)
            assert min(data) <= v <= max(data)

    @given(st.lists(st.floats(0, 1e6), min_size=2, max_size=30))
    def test_monotone_in_p(self, data):
        ps = [0, 10, 50, 90, 100]
        values = [percentile(data, p) for p in ps]
        assert values == sorted(values)

    def test_percentiles_dict(self):
        out = percentiles([1, 2, 3], [50, 100])
        assert out == {50: 2, 100: 3}


class TestAggregates:
    def test_geomean_basic(self):
        assert geomean([1, 4]) == pytest.approx(2.0)

    def test_geomean_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geomean([1.0, 0.0])

    def test_geomean_overhead_roundtrip(self):
        # +10% and +10% overheads geomean to +10%.
        assert geomean_overhead([0.1, 0.1]) == pytest.approx(0.1)

    def test_mean_and_median(self):
        assert mean([1, 2, 3]) == 2
        assert median([1, 2, 100]) == 2

    def test_stddev(self):
        assert stddev([2, 4, 4, 4, 5, 5, 7, 9]) == pytest.approx(2.138, abs=1e-3)
        assert stddev([5]) == 0.0

    @given(st.lists(st.floats(0.1, 100), min_size=1, max_size=20))
    def test_geomean_between_min_max(self, data):
        g = geomean(data)
        assert min(data) - 1e-9 <= g <= max(data) + 1e-9


class TestCdf:
    def test_full_resolution_when_small(self):
        points = cdf([1, 2, 3])
        assert [p.value for p in points] == [1, 2, 3]
        assert points[-1].fraction == 1.0

    def test_downsampled_when_large(self):
        points = cdf(list(range(1000)), points=100)
        assert len(points) == 100
        assert points[-1].fraction == 1.0
        fractions = [p.fraction for p in points]
        assert fractions == sorted(fractions)

    def test_empty(self):
        assert cdf([]) == []


class TestBoxStats:
    def test_five_numbers(self):
        box = BoxStats.of([1, 2, 3, 4, 5])
        assert box.minimum == 1 and box.maximum == 5
        assert box.median == 3
        assert box.q1 == 2 and box.q3 == 4
        assert box.mean == 3


class TestRendering:
    def test_format_table_aligns(self):
        out = format_table(["name", "v"], [["a", 1.5], ["long-name", 22]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert len(set(len(l) for l in lines[1:])) >= 1
        assert "long-name" in out

    def test_format_table_title(self):
        assert format_table(["x"], [[1]], title="T").startswith("T\n")

    def test_format_percent(self):
        assert format_percent(0.294) == "+29.4%"
        assert format_percent(-0.05) == "-5.0%"

    def test_format_series(self):
        out = format_series("fig", [("a", 1.0), ("b", 2.0)], unit="x")
        assert out == "fig: a=1.000x  b=2.000x"

    def test_bar_chart(self):
        out = bar_chart([("a", 1.0), ("bb", 0.5)])
        lines = out.splitlines()
        assert len(lines) == 2
        assert lines[0].count("#") > lines[1].count("#")

    def test_bar_chart_empty(self):
        assert bar_chart([]) == "(empty)"


class TestStatsErrorHierarchy:
    """Empty/invalid stats input raises StatsError — a ReproError (so the
    CLI's one catch handles it) that is still a ValueError (so existing
    callers keep working)."""

    def test_empty_inputs_raise_repro_error(self):
        from repro.analysis.stats import BoxStats
        from repro.errors import ReproError, StatsError

        for fn in (lambda: geomean([]), lambda: percentile([], 50),
                   lambda: mean([]), lambda: BoxStats.of([])):
            with pytest.raises(StatsError):
                fn()
            with pytest.raises(ReproError):
                fn()
            with pytest.raises(ValueError):
                fn()

    def test_invalid_inputs_raise_repro_error(self):
        from repro.errors import StatsError

        with pytest.raises(StatsError):
            percentile([1.0], -3)
        with pytest.raises(StatsError):
            geomean([1.0, -2.0])
