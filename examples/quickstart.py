#!/usr/bin/env python3
"""Quickstart: run one workload under Cornucopia Reloaded and its rivals.

This is the five-minute tour of the library: build a workload, run it
under each revocation strategy on the simulated CHERI machine, and look
at the four overheads the paper measures (§5) — wall-clock, CPU, bus
traffic, memory — plus the stop-the-world pauses that are the whole point
of Reloaded.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import RevokerKind, run_experiment
from repro.analysis import bar_chart, format_table
from repro.core.experiment import ALL_KINDS, bus_overhead, rss_ratio, wall_overhead
from repro.machine.costs import cycles_to_micros
from repro.workloads import spec


def main() -> None:
    # A scaled-down surrogate of SPEC CPU2006's gobmk (scale=512 keeps
    # this interactive; see repro.workloads.spec for the full registry).
    print("Running gobmk.13x13 under all five conditions...\n")
    results = {}
    for kind in ALL_KINDS:
        workload = spec.workload("gobmk", "13x13", scale=512)
        results[kind] = run_experiment(workload, kind)

    base = results[RevokerKind.NONE]
    rows = []
    for kind in ALL_KINDS:
        r = results[kind]
        max_pause_us = cycles_to_micros(max(r.stw_pauses)) if r.stw_pauses else 0.0
        rows.append([
            kind.value,
            f"{wall_overhead(r, base) * 100:+.1f}%",
            f"{bus_overhead(r, base) * 100:+.0f}%",
            f"{rss_ratio(r, base):.2f}",
            r.revocations,
            f"{max_pause_us:.0f}us",
            r.foreground_faults,
        ])
    print(format_table(
        ["condition", "wall ovh", "bus ovh", "RSS ratio", "revocations",
         "max pause", "load faults"],
        rows,
        title="gobmk.13x13 across revocation strategies",
    ))

    print("\nMaximum stop-the-world pause (the paper's headline):\n")
    pause_rows = [
        (kind.value, cycles_to_micros(max(results[kind].stw_pauses)))
        for kind in (RevokerKind.CHERIVOKE, RevokerKind.CORNUCOPIA, RevokerKind.RELOADED)
    ]
    print(bar_chart(pause_rows, unit="us"))
    print(
        "\nReloaded's pause is register-scan sized — it does not grow with "
        "the heap,\nbecause the per-page capability load barrier (§4.1) "
        "moves the sweep out of\nthe stop-the-world phase entirely."
    )


if __name__ == "__main__":
    main()
