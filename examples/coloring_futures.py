#!/usr/bin/env python3
"""Future work, made runnable: CHERI + memory coloring (§7.3) and the
CHERIoT load filter (§6.3).

Two descendants of Reloaded's design space:

1. **Coloring**: put an MTE-style color under CHERI's integrity
   protection. free() recolors the memory, so stale capabilities die on
   their next use — no UAF window at all — and sweeping revocation is
   only needed when a slot exhausts its colors. We sweep the color count
   and watch revocation pressure fall.

2. **CHERIoT**: replace the trapping load barrier with a load *filter*
   that probes the revocation bitmap on every tagged load and silently
   clears condemned tags. Freed objects are inaccessible immediately, and
   there is no stop-the-world anywhere.

Run:  python examples/coloring_futures.py
"""

from __future__ import annotations

import random

from repro.analysis import format_table
from repro.errors import CapabilityError
from repro.extensions.cheriot import CheriotRevoker, LoadFilter
from repro.extensions.coloring import ColoredHeap
from repro.kernel.kernel import Kernel
from repro.machine.machine import Machine


def coloring_demo() -> None:
    print("1. CHERI + memory coloring (§7.3)\n")
    rows = []
    for colors in (2, 4, 16, 64):
        kernel = Kernel(Machine(memory_bytes=32 << 20))
        heap = ColoredHeap(kernel, num_colors=colors)
        rng = random.Random(5)
        live = []
        for _ in range(3000):
            if live and rng.random() < 0.5:
                heap.free(live.pop(rng.randrange(len(live))))
                if heap.quarantined:
                    heap.release_after_revocation()
            else:
                live.append(heap.malloc(rng.choice((64, 512))))
        rows.append([
            colors,
            heap.stats.frees_total,
            heap.stats.frees_quarantined,
            f"{heap.stats.quarantine_reduction * 100:.1f}%",
        ])
    print(format_table(
        ["colors", "frees", "needed revocation", "absorbed by recoloring"],
        rows,
    ))

    # And the immediacy: a freed capability is dead on first use.
    kernel = Kernel(Machine(memory_bytes=16 << 20))
    heap = ColoredHeap(kernel, num_colors=16)
    ccap = heap.malloc(128)
    heap.free(ccap)
    try:
        heap.check_access(ccap)
        print("\nBUG: stale colored capability survived!")
    except CapabilityError as e:
        print(f"\nStale access after free: refused on the spot ({e})")


def cheriot_demo() -> None:
    print("\n2. CHERIoT load filter (§6.3)\n")
    kernel = Kernel(Machine(memory_bytes=16 << 20))
    revoker = kernel.install_revoker(CheriotRevoker)
    heap, _ = kernel.address_space.mmap(64 << 10)
    core = kernel.machine.cores[0]
    filt = LoadFilter(core, kernel.shadow)

    victim = heap.derive(heap.base + 0x1000, 64)
    core.store_cap(heap, victim)

    print("Before free: load through the filter ->",
          "tagged" if filt.load_cap(heap).value.tag else "untagged")
    kernel.shadow.paint(victim.base, 64)  # the allocator's free()
    print("After free (no sweep has run!):      ->",
          "tagged" if filt.load_cap(heap).value.tag else "untagged")

    sched = kernel.machine.scheduler
    t = sched.spawn("sweep", revoker.revoke(core, sched.cores[0]), 0,
                    stops_for_stw=False)
    sched.run(until=[t])
    print(f"Background sweep ran: {revoker.records[0].pages_swept} pages, "
          f"{len(sched.stw_records)} stop-the-world pauses (always zero).")
    print("The UAF/UAR distinction is gone: freed means inaccessible, now.")


def main() -> None:
    coloring_demo()
    cheriot_demo()


if __name__ == "__main__":
    main()
