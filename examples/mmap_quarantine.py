#!/usr/bin/env python3
"""Closing the mmap gap: reservations and unmapped-memory quarantine (§6.2).

snmalloc never returns address space, but programs that mmap/munmap
directly (the paper's example: repeatedly mapping files to copy them)
can create UAF through the VM layer itself. The fix, demonstrated live:

1. partial munmap leaves *guard* mappings — the hole can never be
   refilled by a later mmap, so stale pointers into it fault instead of
   aliasing someone else's mapping;
2. fully-unmapped reservations are painted in the revocation bitmap; the
   ordinary sweep revokes every capability referencing them, and only
   then is the address space recycled.

Run:  python examples/mmap_quarantine.py
"""

from __future__ import annotations

from repro.errors import ArchitecturalTrap
from repro.extensions.reservations import ReservationQuarantine
from repro.kernel.kernel import Kernel
from repro.kernel.revoker import ReloadedRevoker
from repro.machine.costs import PAGE_BYTES
from repro.machine.machine import Machine


def main() -> None:
    kernel = Kernel(Machine(memory_bytes=32 << 20))
    revoker = kernel.install_revoker(ReloadedRevoker)
    rq = ReservationQuarantine(kernel)
    core = kernel.machine.cores[0]

    # A long-lived heap page where we'll stash a dangling pointer.
    heap, _ = kernel.address_space.mmap(PAGE_BYTES)

    print("mmap a 4-page file buffer, keep a pointer to it in the heap...")
    buf, reservation = kernel.address_space.mmap(4 * PAGE_BYTES)
    core.store_cap(heap, buf)

    print("munmap the middle: the hole becomes a guard, not free space.")
    kernel.address_space.munmap(reservation, buf.base + PAGE_BYTES, PAGE_BYTES)
    try:
        core.load_data(buf.with_address(buf.base + PAGE_BYTES), 8)
        print("BUG: read through the hole succeeded!")
    except ArchitecturalTrap as trap:
        print(f"  stale access into the hole -> {trap}")

    other, _ = kernel.address_space.mmap(2 * PAGE_BYTES)
    assert not reservation.contains(other.base)
    print("  a new mmap lands elsewhere — the hole is never refilled.")

    print("\nunmap the rest: the whole reservation enters quarantine...")
    rq.munmap_and_quarantine(reservation)
    stale = kernel.machine.memory.load_cap(heap.base)
    print(f"  dangling pointer in the heap is still tagged: {stale.tag}")

    print("run one revocation epoch (the ordinary sweep, §6.2)...")
    sched = kernel.machine.scheduler
    t = sched.spawn("rev", revoker.revoke(core, sched.cores[0]), 0,
                    stops_for_stw=False)
    sched.run(until=[t])
    recycled = rq.poll()
    stale = kernel.machine.memory.load_cap(heap.base)
    print(f"  dangling pointer after the epoch: {stale}")
    print(f"  reservations recycled: {len(recycled)} "
          f"(state={recycled[0].state.value})")
    print("\nAddress space flows back only after every reference is dead.")


if __name__ == "__main__":
    main()
