#!/usr/bin/env python3
"""Interactive-workload latency: why load barriers matter (fig. 7).

Runs the pgbench surrogate under CHERIvoke, Cornucopia, and Reloaded and
prints the per-transaction latency percentiles plus the stop-the-world
pause distributions. The story (§5.2): every strategy costs about the
same through the ~85th percentile — that's the price of quarantining —
but the tail is made of pauses. CHERIvoke's world-stopped sweep lands
whole milliseconds on unlucky transactions; Cornucopia's re-dirty pass
shrinks that; Reloaded's pause is microseconds and the 99th percentile
barely moves.

Run:  python examples/interactive_latency.py  [transactions]
"""

from __future__ import annotations

import sys

from repro import RevokerKind, run_experiment
from repro.analysis import format_table, percentile
from repro.machine.costs import cycles_to_millis
from repro.workloads.pgbench import PgBenchWorkload

STRATEGIES = (
    RevokerKind.NONE,
    RevokerKind.PAINT_SYNC,
    RevokerKind.CHERIVOKE,
    RevokerKind.CORNUCOPIA,
    RevokerKind.RELOADED,
)


def main() -> None:
    transactions = int(sys.argv[1]) if len(sys.argv) > 1 else 500
    print(f"Serving {transactions} pgbench transactions per condition...\n")
    rows = []
    for kind in STRATEGIES:
        result = run_experiment(PgBenchWorkload(transactions=transactions), kind)
        ms = [s.millis for s in result.latencies]
        pauses = [cycles_to_millis(p) for p in result.stw_pauses]
        rows.append([
            kind.value,
            f"{percentile(ms, 50):.2f}",
            f"{percentile(ms, 90):.2f}",
            f"{percentile(ms, 99):.2f}",
            f"{percentile(ms, 99) - percentile(ms, 50):.2f}",
            result.revocations,
            f"{max(pauses):.2f}" if pauses else "-",
        ])
    print(format_table(
        ["condition", "p50 ms", "p90 ms", "p99 ms", "p99-p50 ms",
         "revocations", "max pause ms"],
        rows,
        title="pgbench per-transaction latency by revocation strategy",
    ))
    print(
        "\nThe p99-p50 spread is the interactive cost of temporal safety: the\n"
        "median transaction never notices revocation, the unlucky one eats a\n"
        "pause. Reloaded moves the sweep behind a load barrier, so there is\n"
        "no pause left to eat — its spread matches just-quarantining."
    )


if __name__ == "__main__":
    main()
