#!/usr/bin/env python3
"""Allocation traces: record once, replay under every strategy.

The CHERIvoke line of work began as a trace-driven limit study; this
library keeps that methodology available. A trace is an ordered stream of
allocator and memory events with stable object handles — capture it from
any source (here: synthesized), validate it, serialize it to JSONL, and
replay the identical request sequence under each revocation strategy to
compare costs apples-to-apples.

Run:  python examples/trace_replay.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro import QuarantinePolicy, RevokerKind, run_experiment
from repro.analysis import format_table
from repro.core.experiment import ALL_KINDS
from repro.machine.costs import cycles_to_micros
from repro.workloads.trace import AllocationTrace, TraceWorkload, synthesize_trace


def main() -> None:
    # 1. Build (or capture) a trace and persist it.
    trace = synthesize_trace(objects=400, churn=4000, seed=11)
    trace.validate()
    path = Path(tempfile.gettempdir()) / "repro-demo-trace.jsonl"
    trace.save(path)
    print(f"trace: {len(trace)} events -> {path}")
    print(f"mix:   {trace.stats()}\n")

    # 2. Reload it (e.g. on another machine / another day) and replay.
    loaded = AllocationTrace.load(path)
    rows = []
    for kind in ALL_KINDS:
        workload = TraceWorkload(
            loaded, name="demo-trace",
            quarantine_policy=QuarantinePolicy(min_bytes=32 << 10),
        )
        result = run_experiment(workload, kind)
        pause = cycles_to_micros(max(result.stw_pauses)) if result.stw_pauses else 0.0
        rows.append([
            kind.value,
            result.wall_cycles,
            result.revocations,
            f"{pause:.1f}us",
            workload.stale_loads,
        ])
    print(format_table(
        ["strategy", "wall cycles", "revocations", "max pause", "revoked-slot loads"],
        rows,
        title="identical trace, five strategies",
    ))
    print(
        "\nEvery row replayed the same event stream; only the revocation\n"
        "machinery differs. 'Revoked-slot loads' counts capability loads\n"
        "that found their slot emptied — under the sweeping revokers these\n"
        "are dangling pointers that died before they could be misused."
    )


if __name__ == "__main__":
    main()
