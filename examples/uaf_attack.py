#!/usr/bin/env python3
"""Demonstrate the security property: use-after-reallocation is dead.

An attacker frees an object but hoards dangling capabilities to it in a
heap slot, a register, and a kernel subsystem (§4.4), then churns the
allocator until the memory is reused. Under a plain allocator the stale
capabilities alias the new allocation — the classic heap UAF exploit
primitive. Under any of the sweeping revokers, every one of those
capabilities is untagged before the memory is ever reused (§2.2.2's
guarantee); under paint+sync (quarantine without sweeping, §5) the
attack works again, showing it really is revocation doing the work.

Run:  python examples/uaf_attack.py
"""

from __future__ import annotations

from repro import RevokerKind, run_experiment
from repro.analysis import format_table
from repro.core.experiment import ALL_KINDS
from repro.workloads.adversarial import UafAttacker


def main() -> None:
    print("Attacking each configuration (20 rounds of hoard-free-churn-probe)...\n")
    rows = []
    for kind in ALL_KINDS:
        attacker = UafAttacker(rounds=20, churn_objects=100)
        run_experiment(attacker, kind)
        report = attacker.report
        verdict = "VULNERABLE" if report.uar_hits else "safe"
        where = ",".join(sorted(set(report.stale_sources))) or "-"
        rows.append([
            kind.value,
            report.uar_hits,
            report.uaf_reads,
            report.revoked_probes,
            where,
            verdict,
        ])
    print(format_table(
        ["condition", "UAR hits", "UAF reads", "revoked probes",
         "stale pointer sources", "verdict"],
        rows,
        title="Use-after-free attack outcomes per condition",
    ))
    print(
        "\nReading the table:\n"
        "- 'UAR hits' are dereferences of *reallocated* memory through a stale\n"
        "  capability: the exploitable condition. Zero under every sweeping\n"
        "  revoker, including from kernel hoards and register files.\n"
        "- 'UAF reads' touch memory that is freed but not yet reused: the\n"
        "  paper's tolerated window (§2.2.2) — the object's lifetime is\n"
        "  effectively extended to the next revocation epoch.\n"
        "- paint+sync quarantines but never sweeps: reuse is delayed, not\n"
        "  protected, and the attack lands.\n"
    )


if __name__ == "__main__":
    main()
