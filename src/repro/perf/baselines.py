"""The content-addressed baseline store (``perf/baselines/``).

Layout::

    perf/baselines/
      refs.json                 # suite name -> {"object", "git_sha", ...}
      objects/<sha256-16>.json  # immutable PerfReport blobs, content-addressed

Recording a baseline files the full report under its content digest
(objects are never rewritten — re-recording identical results is a
no-op) and moves the suite's *ref* to point at it, exactly like a git
ref over immutable objects. Moving a ref that was recorded at a
different commit requires ``force`` — that is the satellite fix for the
silent-clobber failure mode: a stale working tree can no longer
overwrite a baseline someone recorded at another sha without saying so.

CI compares against the committed refs; ``repro bench baseline record``
updates them (docs/BENCHMARKING.md walks the workflow).
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Any

from repro.errors import PerfError
from repro.perf.report import PerfReport, check_overwrite, git_sha

#: Default store root, relative to the repository root / CWD.
DEFAULT_ROOT = "perf/baselines"

#: hex digits of the sha256 digest used as the object name (64 bits of
#: collision resistance is plenty for a per-repo store of a few reports).
OBJECT_ID_LEN = 16


def _atomic_write(path: Path, text: str) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=path.name, suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(text)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


class BaselineStore:
    """record/compare semantics over the on-disk layout above."""

    def __init__(self, root: str | Path | None = None) -> None:
        self.root = Path(root) if root is not None else Path(DEFAULT_ROOT)

    @property
    def refs_path(self) -> Path:
        return self.root / "refs.json"

    def _object_path(self, object_id: str) -> Path:
        return self.root / "objects" / f"{object_id}.json"

    def refs(self) -> dict[str, dict[str, Any]]:
        try:
            data = json.loads(self.refs_path.read_text())
        except FileNotFoundError:
            return {}
        except (OSError, json.JSONDecodeError) as exc:
            raise PerfError(f"corrupt baseline refs {self.refs_path}: {exc}") from exc
        if not isinstance(data, dict):
            raise PerfError(f"corrupt baseline refs {self.refs_path}: not an object")
        return data

    def ref(self, suite: str) -> dict[str, Any] | None:
        return self.refs().get(suite)

    def record(self, report: PerfReport, force: bool = False) -> str:
        """File ``report`` and point its suite's ref at it.

        Returns the object id. Raises :class:`PerfError` when the suite's
        existing ref was recorded at a different git sha and ``force`` is
        false.
        """
        refs = self.refs()
        existing = refs.get(report.suite)
        check_overwrite(
            existing.get("git_sha") if existing else None,
            report.env.get("git_sha") or git_sha(),
            f"baseline for suite {report.suite!r}",
            force=force,
        )
        object_id = report.digest()[:OBJECT_ID_LEN]
        object_path = self._object_path(object_id)
        if not object_path.exists():
            _atomic_write(object_path, report.dumps())
        refs[report.suite] = {
            "object": object_id,
            "git_sha": report.env.get("git_sha"),
            "python": report.env.get("python"),
            "benchmarks": sorted(report.benchmarks),
        }
        _atomic_write(
            self.refs_path, json.dumps(refs, indent=2, sort_keys=True) + "\n"
        )
        return object_id

    def load(self, suite: str) -> PerfReport:
        """The report a suite's ref points at."""
        ref = self.ref(suite)
        if ref is None:
            known = ", ".join(sorted(self.refs())) or "none recorded"
            raise PerfError(
                f"no baseline for suite {suite!r} under {self.root} "
                f"(recorded: {known}; run `repro bench run --suite {suite} "
                "--record` to create one)"
            )
        object_path = self._object_path(ref["object"])
        report = PerfReport.load(object_path)
        if report.suite != suite:
            raise PerfError(
                f"baseline object {ref['object']} holds suite "
                f"{report.suite!r}, ref says {suite!r} (corrupt store)"
            )
        return report

    def list(self) -> dict[str, dict[str, Any]]:
        """Every recorded suite ref (for ``repro bench baseline show``)."""
        return self.refs()
