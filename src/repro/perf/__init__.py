"""Continuous benchmarking: registry, runner, baselines, regression gate.

The paper's argument is quantitative — load-barrier revocation wins only
while sweep/scan overheads stay inside tight bounds — so the repo's perf
trajectory is measured, stored, and enforced rather than hand-committed:

- :mod:`repro.perf.registry` — the ``@benchmark`` catalog and
  :class:`Probe` (deterministic vs wall-clock metric kinds);
- :mod:`repro.perf.targets` — built-in micro-targets (vector sweep scan,
  cache span streaming, scheduler step, serialize round-trip, snapshot
  save/restore) plus traced end-to-end runs;
- :mod:`repro.perf.runner` — warmup/repetition control, env pinning,
  :class:`~repro.perf.report.PerfReport` (schema v1) emission;
- :mod:`repro.perf.baselines` — the content-addressed store under
  ``perf/baselines/`` with record/compare semantics;
- :mod:`repro.perf.regression` — the MAD + bootstrap-CI detector
  classifying each metric ``improved``/``ok``/``noisy``/``regressed``.

``python -m repro bench run/compare/baseline/list/convert`` is the CLI;
the CI ``perf-gate`` job fails on regressed deterministic-cycle metrics
and only warns on wall-clock noise (docs/BENCHMARKING.md).
"""

from __future__ import annotations

from repro.perf.baselines import BaselineStore
from repro.perf.registry import (
    DETERMINISTIC,
    INJECT_ENV,
    WALL,
    BenchmarkDef,
    Probe,
    benchmark,
    catalog,
    select,
)
from repro.perf.regression import (
    IMPROVED,
    MISSING,
    NEW,
    NOISY,
    OK,
    REGRESSED,
    Comparison,
    MetricComparison,
    Thresholds,
    bootstrap_ci_median,
    compare_reports,
    mad,
)
from repro.perf.report import (
    SCHEMA_VERSION,
    BenchmarkResult,
    MetricSeries,
    PerfReport,
    check_overwrite,
    collect_env,
    convert_legacy,
    git_sha,
    recorded_sha,
)
from repro.perf.runner import Runner

__all__ = [
    "DETERMINISTIC",
    "IMPROVED",
    "INJECT_ENV",
    "MISSING",
    "NEW",
    "NOISY",
    "OK",
    "REGRESSED",
    "SCHEMA_VERSION",
    "WALL",
    "BaselineStore",
    "BenchmarkDef",
    "BenchmarkResult",
    "Comparison",
    "MetricComparison",
    "MetricSeries",
    "PerfReport",
    "Probe",
    "Runner",
    "Thresholds",
    "benchmark",
    "bootstrap_ci_median",
    "catalog",
    "check_overwrite",
    "collect_env",
    "compare_reports",
    "convert_legacy",
    "git_sha",
    "mad",
    "recorded_sha",
    "select",
]
