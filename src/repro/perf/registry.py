"""The benchmark catalog: ``@benchmark``-registered targets and probes.

Every continuously-tracked performance target registers itself here with
a dotted name (``sweep.scan``, ``snapshot.roundtrip``) and the suites it
belongs to (``smoke`` runs on every PR, ``full`` nightly, ``sweep`` is
the scalar-vs-vector microbenchmark's subset). A target is a plain
function taking a :class:`Probe`; the runner calls it once per
repetition and the probe collects what it measures:

- ``probe.time()`` — a context manager timing a **wall-clock** region
  (noisy; the regression gate only warns on these);
- ``probe.record(name, value)`` — a **deterministic** metric (simulated
  cycles, bus transactions, byte counts; bit-identical across hosts, so
  the gate fails hard on these).

Metric kinds matter downstream: the detector in
:mod:`repro.perf.regression` treats ``deterministic`` series exactly and
``wall`` series statistically (median/MAD + bootstrap CI).
"""

from __future__ import annotations

import fnmatch
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

from repro import settings
from repro.errors import PerfError

#: Metric kind for bit-identical simulated quantities (gated hard).
DETERMINISTIC = "deterministic"
#: Metric kind for host wall-clock timings (warn-only).
WALL = "wall"

#: The suites the CI workflows run (others are ad-hoc tags).
KNOWN_SUITES = ("smoke", "full", "sweep")

#: Environment knob: multiply every deterministic sample by this factor.
#: Exists so the regression gate itself can be exercised end-to-end
#: (``REPRO_PERF_INJECT=2.0 python -m repro bench run --suite smoke
#: --compare`` must exit non-zero); documented in docs/BENCHMARKING.md.
INJECT_ENV = "REPRO_PERF_INJECT"


class Probe:
    """Per-repetition metric collector handed to each target."""

    def __init__(self, mode: str = "smoke") -> None:
        #: ``smoke`` or ``full`` — targets pick working-set sizes off this.
        self.mode = mode
        #: metric name -> (kind, value) for this repetition.
        self.metrics: dict[str, tuple[str, float]] = {}
        self._inject = settings.perf_inject()

    def record(self, name: str, value: float, kind: str = DETERMINISTIC) -> None:
        """Record one metric value for this repetition."""
        if kind not in (DETERMINISTIC, WALL):
            raise PerfError(f"unknown metric kind {kind!r}")
        if kind == DETERMINISTIC and self._inject is not None:
            value = value * self._inject
        if name in self.metrics:
            raise PerfError(f"metric {name!r} recorded twice in one repetition")
        self.metrics[name] = (kind, float(value))

    @contextmanager
    def time(self, name: str = "wall_s") -> Iterator[None]:
        """Time a wall-clock region into metric ``name`` (kind ``wall``)."""
        began = time.perf_counter()
        try:
            yield
        finally:
            self.record(name, time.perf_counter() - began, kind=WALL)


@dataclass(frozen=True)
class BenchmarkDef:
    """One registered target."""

    name: str
    fn: Callable[[Probe], None]
    suites: tuple[str, ...]
    description: str
    #: Default repetition counts (overridable from the CLI).
    smoke_reps: int = 3
    full_reps: int = 10
    warmup: int = 1
    #: Free-form metadata recorded into the report.
    config: dict[str, Any] = field(default_factory=dict)

    def reps_for(self, mode: str) -> int:
        return self.smoke_reps if mode == "smoke" else self.full_reps


_REGISTRY: dict[str, BenchmarkDef] = {}


def benchmark(
    name: str,
    suites: tuple[str, ...] = ("full",),
    description: str = "",
    smoke_reps: int = 3,
    full_reps: int = 10,
    warmup: int = 1,
    **config: Any,
) -> Callable[[Callable[[Probe], None]], Callable[[Probe], None]]:
    """Register a benchmark target in the catalog (import-time)."""

    def register(fn: Callable[[Probe], None]) -> Callable[[Probe], None]:
        if name in _REGISTRY:
            raise PerfError(f"benchmark {name!r} registered twice")
        doc_lines = (fn.__doc__ or "").strip().splitlines()
        _REGISTRY[name] = BenchmarkDef(
            name=name,
            fn=fn,
            suites=tuple(suites),
            description=description or (doc_lines[0] if doc_lines else ""),
            smoke_reps=smoke_reps,
            full_reps=full_reps,
            warmup=warmup,
            config=dict(config),
        )
        return fn

    return register


def _ensure_loaded() -> None:
    # The built-in targets self-register on import; do it lazily so that
    # importing repro.perf does not drag the whole simulator in.
    from repro.perf import targets  # noqa: F401


def catalog() -> dict[str, BenchmarkDef]:
    """Every registered benchmark, by name (sorted)."""
    _ensure_loaded()
    return dict(sorted(_REGISTRY.items()))


def select(suite: str | None = None, pattern: str | None = None) -> list[BenchmarkDef]:
    """The targets of one suite, optionally filtered by a glob pattern."""
    _ensure_loaded()
    defs = [
        d
        for d in _REGISTRY.values()
        if suite is None or suite in d.suites
    ]
    if pattern is not None:
        defs = [d for d in defs if fnmatch.fnmatch(d.name, pattern)]
    if not defs:
        known = ", ".join(sorted(_REGISTRY)) or "none registered"
        raise PerfError(
            f"no benchmarks match suite={suite!r} pattern={pattern!r} "
            f"(catalog: {known})"
        )
    return sorted(defs, key=lambda d: d.name)
