"""The versioned perf-report envelope (schema v1) and legacy converters.

A :class:`PerfReport` is the one JSON shape every benchmark producer
emits — the ``repro bench`` runner, ``benchmarks/bench_sweep_micro.py``,
and the serve load generator all write it — and the one shape the
baseline store and regression detector consume. Schema::

    {
      "schema": 1,
      "kind": "perf-report",
      "suite": "smoke",
      "env": {"python": ..., "numpy": ..., "machine": ...,
              "cpu_count": ..., "git_sha": ...},
      "config": {"reps": ..., "warmup": ..., "inject": ...},
      "benchmarks": {
        "<name>": {
          "config": {...},
          "metrics": {
            "<metric>": {"kind": "deterministic"|"wall", "samples": [...]}
          }
        }
      },
      "detail": {...}        # free-form producer extras (speedups, raw
    }                        # serve sections); never gated on

``deterministic`` series are simulated quantities (cycles, bus
transactions, bytes) that must be bit-identical across hosts;
``wall`` series are host timings. The distinction drives the CI gate:
deterministic regressions fail, wall regressions warn
(docs/BENCHMARKING.md).

:func:`convert_legacy` upgrades the two retired ad-hoc formats (the
pre-v1 ``BENCH_sweep.json`` and ``BENCH_serve.json`` shapes) into this
envelope so old reports stay comparable.
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import subprocess
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping

from repro.errors import PerfError
from repro.perf.registry import DETERMINISTIC, WALL

#: Bump when the envelope changes shape; readers refuse unknown versions.
SCHEMA_VERSION = 1


def git_sha() -> str | None:
    """The current commit sha: ``$GITHUB_SHA`` in CI, ``git rev-parse``
    locally, ``None`` when neither is available (e.g. a tarball)."""
    sha = os.environ.get("GITHUB_SHA")
    if sha:
        return sha
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    out = proc.stdout.strip()
    return out if proc.returncode == 0 and out else None


def collect_env() -> dict[str, Any]:
    """Pinned environment metadata for a report (provenance, not gating)."""
    try:
        import numpy

        numpy_version = numpy.__version__
    except ImportError:  # pragma: no cover - numpy is a hard dependency
        numpy_version = None
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "system": platform.system(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "numpy": numpy_version,
        "git_sha": git_sha(),
    }


@dataclass
class MetricSeries:
    """One metric's repetition samples."""

    kind: str
    samples: list[float] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.kind not in (DETERMINISTIC, WALL):
            raise PerfError(f"unknown metric kind {self.kind!r}")
        self.samples = [float(v) for v in self.samples]

    def to_dict(self) -> dict[str, Any]:
        return {"kind": self.kind, "samples": list(self.samples)}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "MetricSeries":
        try:
            return cls(kind=data["kind"], samples=list(data["samples"]))
        except (KeyError, TypeError) as exc:
            raise PerfError(f"bad metric series: {exc}") from exc


@dataclass
class BenchmarkResult:
    """One benchmark's metrics plus its working-set configuration."""

    metrics: dict[str, MetricSeries] = field(default_factory=dict)
    config: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {
            "config": dict(self.config),
            "metrics": {
                name: series.to_dict()
                for name, series in sorted(self.metrics.items())
            },
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "BenchmarkResult":
        return cls(
            metrics={
                name: MetricSeries.from_dict(series)
                for name, series in data.get("metrics", {}).items()
            },
            config=dict(data.get("config", {})),
        )


@dataclass
class PerfReport:
    """The schema-v1 report envelope."""

    suite: str
    env: dict[str, Any] = field(default_factory=collect_env)
    config: dict[str, Any] = field(default_factory=dict)
    benchmarks: dict[str, BenchmarkResult] = field(default_factory=dict)
    detail: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {
            "schema": SCHEMA_VERSION,
            "kind": "perf-report",
            "suite": self.suite,
            "env": dict(self.env),
            "config": dict(self.config),
            "benchmarks": {
                name: b.to_dict() for name, b in sorted(self.benchmarks.items())
            },
            "detail": self.detail,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "PerfReport":
        if data.get("kind") != "perf-report":
            raise PerfError(
                "not a perf report (missing kind='perf-report'; legacy "
                "reports need `repro bench convert` first)"
            )
        version = data.get("schema")
        if version != SCHEMA_VERSION:
            raise PerfError(
                f"perf report schema {version!r} != supported {SCHEMA_VERSION}"
            )
        try:
            return cls(
                suite=data["suite"],
                env=dict(data.get("env", {})),
                config=dict(data.get("config", {})),
                benchmarks={
                    name: BenchmarkResult.from_dict(b)
                    for name, b in data.get("benchmarks", {}).items()
                },
                detail=dict(data.get("detail", {})),
            )
        except (KeyError, TypeError, AttributeError) as exc:
            raise PerfError(f"bad perf report: {exc}") from exc

    # --- Persistence -------------------------------------------------------

    def dumps(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"

    def digest(self) -> str:
        """Content address: sha256 of the canonical (compact, sorted)
        JSON encoding. The baseline store files objects under this."""
        canonical = json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(canonical.encode()).hexdigest()

    def save(self, path: str | Path) -> None:
        Path(path).write_text(self.dumps())

    @classmethod
    def load(cls, path: str | Path) -> "PerfReport":
        try:
            text = Path(path).read_text()
        except OSError as exc:
            raise PerfError(f"cannot read perf report: {exc}") from exc
        return cls.loads(text)

    @classmethod
    def loads(cls, text: str) -> "PerfReport":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise PerfError(f"perf report is not valid JSON: {exc}") from exc
        if not isinstance(data, dict):
            raise PerfError("perf report is not a JSON object")
        return cls.from_dict(data)


def recorded_sha(data: Mapping[str, Any]) -> str | None:
    """The git sha a report JSON (v1 or legacy) was recorded at, if any."""
    env = data.get("env")
    if isinstance(env, Mapping):
        sha = env.get("git_sha")
        return sha if isinstance(sha, str) else None
    return None


def check_overwrite(
    old_sha: str | None,
    current_sha: str | None,
    what: str,
    force: bool = False,
) -> None:
    """Refuse to clobber something recorded at a different commit unless
    ``force``.

    Only a *definite* mismatch refuses — when either side has no sha
    (legacy report, tarball checkout) there is nothing to compare and the
    write proceeds.
    """
    if force or current_sha is None:
        return
    if old_sha is not None and old_sha != current_sha:
        raise PerfError(
            f"{what} was recorded at commit {old_sha[:12]} but HEAD is "
            f"{current_sha[:12]}; refusing to overwrite it silently "
            "(pass --force / set REPRO_BENCH_FORCE=1 to re-record)"
        )


# --- Legacy converters ------------------------------------------------------


def _series(values: list[float], kind: str = WALL) -> MetricSeries:
    return MetricSeries(kind=kind, samples=values)


def _convert_legacy_sweep(data: Mapping[str, Any]) -> PerfReport:
    benchmarks: dict[str, BenchmarkResult] = {}
    for key in ("scan", "revoke", "stream"):
        metrics: dict[str, MetricSeries] = {}
        scalar = data.get("scalar", {}).get(f"{key}_s")
        vector = data.get("vectorized", {}).get(f"{key}_s")
        if vector is not None:
            metrics["wall_s"] = _series([float(vector)])
        if scalar is not None:
            metrics["scalar_wall_s"] = _series([float(scalar)])
        if metrics:
            benchmarks[f"sweep.{key}"] = BenchmarkResult(
                metrics=metrics, config=dict(data.get("config", {}))
            )
    host = data.get("host", {})
    env = collect_env()
    env.update(
        {
            "python": host.get("python", env["python"]),
            "machine": host.get("machine", env["machine"]),
            "git_sha": None,  # legacy reports never recorded one
        }
    )
    return PerfReport(
        suite="sweep-micro",
        env=env,
        config=dict(data.get("config", {})),
        benchmarks=benchmarks,
        detail={"speedup": dict(data.get("speedup", {})), "legacy": True},
    )


def _convert_legacy_serve(data: Mapping[str, Any]) -> PerfReport:
    benchmarks: dict[str, BenchmarkResult] = {}
    for section, name in (
        ("service", "serve.service"),
        ("overload", "serve.overload"),
        ("spawn_baseline", "serve.spawn"),
    ):
        stats = data.get(section)
        if not isinstance(stats, Mapping):
            continue
        metrics: dict[str, MetricSeries] = {}
        for key in ("throughput_rps", "p50_ms", "p99_ms", "mean_ms", "wall_s"):
            value = stats.get(key)
            if value is not None:
                metrics[key] = _series([float(value)])
        benchmarks[name] = BenchmarkResult(
            metrics=metrics,
            config={
                k: stats.get(k)
                for k in ("requests", "ok", "failures", "overloaded")
                if k in stats
            },
        )
    env = collect_env()
    env["git_sha"] = None
    return PerfReport(
        suite="serve",
        env=env,
        config=dict(data.get("config", {})),
        benchmarks=benchmarks,
        detail={"legacy": True, "raw": dict(data)},
    )


def convert_legacy(data: Mapping[str, Any]) -> PerfReport:
    """Upgrade a retired ad-hoc report (pre-v1 ``BENCH_sweep.json`` /
    ``BENCH_serve.json``) to the schema-v1 envelope."""
    if data.get("kind") == "perf-report":
        return PerfReport.from_dict(data)
    legacy_kind = data.get("benchmark")
    if legacy_kind == "sweep_micro":
        return _convert_legacy_sweep(data)
    if legacy_kind == "serve":
        return _convert_legacy_serve(data)
    raise PerfError(
        f"unrecognized legacy report (benchmark={legacy_kind!r}); "
        "expected the old sweep_micro or serve shapes"
    )
