"""The built-in benchmark catalog.

Micro-targets for every hot path the repo has optimized so far — the
vectorized sweep scan (PR 2's 7.5x), the batched cache span arithmetic,
the scheduler step loop, result serialization, snapshot save/restore —
plus traced end-to-end runs whose deterministic simulated-cycle metrics
(wall cycles, STW cycles, bus transactions, folded from the obs
:class:`~repro.obs.metrics.MetricsRegistry`) gate hard in CI while the
wall-clock series only warn.

``benchmarks/bench_sweep_micro.py`` reuses the sweep rig below for its
scalar-vs-vectorized comparison, so the standalone script and the
registry measure the identical loops.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import RevokerKind, SimulationConfig
from repro.core.experiment import run_experiment
from repro.core.metrics import LatencySample, RunResult
from repro.core.simulation import Simulation
from repro.errors import PerfError
from repro.kernel.kernel import Kernel
from repro.kernel.revoker import CheriVokeRevoker
from repro.kernel.revoker.base import EpochRecord
from repro.machine.cache import Bus, Cache
from repro.machine.costs import GRANULE_BYTES, PAGE_BYTES
from repro.machine.machine import Machine
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import tracing
from repro.perf.registry import Probe, benchmark
from repro.workloads import spec

# --- The sweep rig (shared with benchmarks/bench_sweep_micro.py) ------------


@dataclass
class SweepRig:
    """A kernel with a capability-dense heap ready to sweep."""

    machine: Machine
    kernel: Kernel
    revoker: CheriVokeRevoker
    heap: object
    core: object
    ptes: list
    pages: int
    caps_per_page: int


def build_sweep_rig(pages: int, caps_per_page: int) -> SweepRig:
    """A ``pages``-page heap with ``caps_per_page`` capabilities planted
    per page at even granule spacing."""
    machine = Machine(memory_bytes=max(8 << 20, 2 * pages * PAGE_BYTES))
    kernel = Kernel(machine)
    revoker = kernel.install_revoker(CheriVokeRevoker)
    heap, _ = kernel.address_space.mmap(pages * PAGE_BYTES)
    core = machine.cores[2]
    stride = PAGE_BYTES // caps_per_page
    if stride % GRANULE_BYTES:
        raise PerfError(
            f"caps_per_page {caps_per_page} does not granule-align "
            f"(stride {stride})"
        )
    for page in range(pages):
        for i in range(caps_per_page):
            addr = heap.base + page * PAGE_BYTES + i * stride
            target = heap.derive(addr, GRANULE_BYTES)
            core.store_cap(heap.with_address(addr), target)
    ptes = [
        machine.pagetable.require(heap.base // PAGE_BYTES + p)
        for p in range(pages)
    ]
    return SweepRig(
        machine, kernel, revoker, heap, core, ptes, pages, caps_per_page
    )


def sweep_scan(rig: SweepRig) -> EpochRecord:
    """One probe-everything sweep over the rig (nothing condemned)."""
    record = EpochRecord(epoch=0)
    for pte in rig.ptes:
        rig.revoker.sweep_page(rig.core, pte, record)
    return record


def sweep_victims(rig: SweepRig) -> list[tuple[int, int]]:
    """Every other planted capability, as (addr, nbytes) paint targets."""
    stride = PAGE_BYTES // rig.caps_per_page
    return [
        (rig.heap.base + page * PAGE_BYTES + i * stride, GRANULE_BYTES)
        for page in range(rig.pages)
        for i in range(0, rig.caps_per_page, 2)
    ]


def sweep_paint(rig: SweepRig, victims: list[tuple[int, int]]) -> None:
    for addr, nbytes in victims:
        rig.kernel.shadow.paint(addr, nbytes)


def sweep_unpaint(rig: SweepRig, victims: list[tuple[int, int]]) -> None:
    rig.kernel.shadow.unpaint_many(victims)


def sweep_replant(rig: SweepRig, victims: list[tuple[int, int]]) -> None:
    for addr, _ in victims:
        rig.core.store_cap(
            rig.heap.with_address(addr), rig.heap.derive(addr, GRANULE_BYTES)
        )


def _sweep_sizes(mode: str) -> tuple[int, int]:
    return (8, 64) if mode == "smoke" else (64, 128)


@benchmark(
    "sweep.scan",
    suites=("smoke", "full", "sweep"),
    description="probe-all-tagged-granules sweep over a cap-dense heap",
    smoke_reps=3,
    full_reps=7,
)
def bench_sweep_scan(probe: Probe) -> None:
    pages, caps = _sweep_sizes(probe.mode)
    rig = build_sweep_rig(pages, caps)
    before = rig.machine.bus.total_transactions()
    with probe.time():
        sweep_scan(rig)
    probe.record("bus_transactions", rig.machine.bus.total_transactions() - before)


@benchmark(
    "sweep.revoke",
    suites=("full", "sweep"),
    description="sweep with half the allocations painted (tag-clear path)",
    smoke_reps=2,
    full_reps=5,
)
def bench_sweep_revoke(probe: Probe) -> None:
    pages, caps = _sweep_sizes(probe.mode)
    rig = build_sweep_rig(pages, caps)
    victims = sweep_victims(rig)
    sweep_paint(rig, victims)
    before = rig.machine.bus.total_transactions()
    with probe.time():
        sweep_scan(rig)
    probe.record("bus_transactions", rig.machine.bus.total_transactions() - before)
    sweep_unpaint(rig, victims)


def cache_stream(cache: Cache, pages: int) -> int:
    """Stream ``pages`` whole pages through ``cache``; total lines missed."""
    missed = 0
    for vpn in range(pages):
        missed += cache.access_page(vpn)
    return missed


@benchmark(
    "cache.span",
    suites=("smoke", "full", "sweep"),
    description="batched cache span arithmetic under sweep-shaped streaming",
    smoke_reps=3,
    full_reps=7,
)
def bench_cache_span(probe: Probe) -> None:
    # A 16-page cache streaming a larger footprint: steady-state
    # evictions, the background sweep's memory traffic pattern.
    pages = 64 if probe.mode == "smoke" else 256
    cache = Cache(Bus(), "perf", capacity_bytes=16 * PAGE_BYTES)
    with probe.time():
        missed = cache_stream(cache, pages)
    probe.record("lines_missed", missed)


@benchmark(
    "sched.step",
    suites=("smoke", "full"),
    description="cooperative scheduler step loop (revocation-free run)",
    smoke_reps=3,
    full_reps=5,
)
def bench_sched_step(probe: Probe) -> None:
    # Under the NONE revoker every simulated cycle is scheduler + workload
    # stepping — the closest thing to a pure scheduler microbenchmark that
    # still exercises the real run loop.
    scale = 4096 if probe.mode == "smoke" else 1024
    workload = spec.workload("gobmk", "13x13", scale=scale, seed=1)
    with probe.time():
        result = run_experiment(workload, RevokerKind.NONE)
    probe.record("wall_cycles", result.wall_cycles)
    probe.record("cpu_cycles", result.total_cpu_cycles)


@benchmark(
    "serialize.roundtrip",
    suites=("smoke", "full"),
    description="RunResult JSON round-trip (campaign cache wire format)",
    smoke_reps=3,
    full_reps=7,
)
def bench_serialize_roundtrip(probe: Probe) -> None:
    from repro.runner.serialize import dumps_result, loads_result

    result = RunResult(workload="perf.synthetic", revoker=RevokerKind.RELOADED)
    result.wall_cycles = 123_456_789
    result.cpu_cycles_by_core = {f"core{i}": 10_000_000 + i for i in range(4)}
    result.bus_by_source = {f"core{i}": 50_000 + i for i in range(4)}
    result.stw_pauses = list(range(100, 4100, 40))
    result.latencies = [
        LatencySample(label=f"tx{i}", begin=i * 1000, end=i * 1000 + 777)
        for i in range(500)
    ]
    rounds = 20 if probe.mode == "smoke" else 100
    text = dumps_result(result)
    with probe.time():
        for _ in range(rounds):
            text = dumps_result(loads_result(text))
    probe.record("bytes", len(text))


@benchmark(
    "snapshot.roundtrip",
    suites=("smoke", "full"),
    description="checkpoint capture + restore/resume of a small run",
    smoke_reps=2,
    full_reps=3,
    warmup=0,
)
def bench_snapshot_roundtrip(probe: Probe) -> None:
    from repro.snapshot import SnapshotPlan, SnapshotSession, restore_simulation

    scale = 2048 if probe.mode == "smoke" else 1024
    workload = spec.workload("hmmer", "retro", scale=scale, seed=1)
    cfg = SimulationConfig(revoker=RevokerKind.RELOADED)
    cfg.machine.memory_bytes = 32 << 20
    sim = Simulation(workload, cfg)
    session = SnapshotSession(
        sim, SnapshotPlan(every_epochs=1, max_captures=1)
    )
    with probe.time("save_s"):
        sim.run(snapshots=session)
    if not session.captured:
        raise PerfError(
            "snapshot.roundtrip run completed before an epoch closed; "
            "lower the scale so at least one checkpoint lands"
        )
    blob = session.captured[0]
    probe.record("blob_bytes", len(blob))
    with probe.time("restore_s"):
        resumed, _ = restore_simulation(blob)
        result = resumed.resume()
    probe.record("resumed_wall_cycles", result.wall_cycles)


@benchmark(
    "campaign.warmstart",
    suites=("smoke", "full"),
    description="four-revoker sweep: warm-start prefix fork vs cold runs",
    smoke_reps=2,
    full_reps=3,
    warmup=0,
)
def bench_campaign_warmstart(probe: Probe) -> None:
    """The tentpole win, measured in deterministic simulated work: run
    the paper's four-revoker sweep cold, then once more forking the
    three siblings from the leader's epoch-0 prefix capture
    (docs/WARMSTART.md). Warm work = leader + sum(follower - prefix),
    since everything before the capture point is simulated exactly once.
    The quarantine floor is raised so the shared warmup dominates the
    run — the regime the warm start targets — while still completing
    revocation epochs under every strategy."""
    from repro.alloc.quarantine import QuarantinePolicy
    from repro.runner.serialize import dumps_result
    from repro.snapshot import SnapshotSession, fork_simulation, prefix_plan

    kinds = (
        RevokerKind.PAINT_SYNC,
        RevokerKind.CHERIVOKE,
        RevokerKind.CORNUCOPIA,
        RevokerKind.RELOADED,
    )

    def build(kind: RevokerKind) -> Simulation:
        workload = spec.workload("hmmer", "retro", scale=1024, seed=1)
        cfg = SimulationConfig(revoker=kind)
        cfg.machine.memory_bytes = 32 << 20
        cfg.policy = QuarantinePolicy(min_bytes=512 << 10)
        return Simulation(workload, cfg)

    cold: dict[RevokerKind, str] = {}
    cold_cycles = 0
    with probe.time("cold_s"):
        for kind in kinds:
            result = build(kind).run()
            if result.revocations < 1:
                raise PerfError(
                    f"campaign.warmstart {kind.value} run completed without "
                    "revoking; lower the quarantine floor"
                )
            cold[kind] = dumps_result(result)
            cold_cycles += result.wall_cycles

    with probe.time("warm_s"):
        leader = build(kinds[0])
        session = SnapshotSession(leader, prefix_plan(0))
        leader_result = leader.run(snapshots=session)
        if not session.captured:
            raise PerfError(
                "campaign.warmstart leader captured no prefix; the first "
                "trigger fired before any quiescent poll"
            )
        blob = session.captured[-1]
        capture_wall = session.headers[-1]["wall"]
        if dumps_result(leader_result) != cold[kinds[0]]:
            raise PerfError(
                "campaign.warmstart leader result diverged from its cold run"
            )
        warm_cycles = leader_result.wall_cycles
        for kind in kinds[1:]:
            forked, _ = fork_simulation(blob, kind)
            result = forked.resume()
            if dumps_result(result) != cold[kind]:
                raise PerfError(
                    f"campaign.warmstart {kind.value} warm result diverged "
                    "from its cold run"
                )
            warm_cycles += result.wall_cycles - capture_wall

    speedup = cold_cycles / warm_cycles
    if speedup < 1.8:
        raise PerfError(
            f"campaign.warmstart speedup {speedup:.3f}x below the 1.8x "
            "acceptance floor"
        )
    probe.record("cold_cycles", cold_cycles)
    probe.record("warm_cycles", warm_cycles)
    probe.record("speedup_milli", round(speedup * 1000))
    probe.record("prefix_blob_bytes", len(blob))


def _traced_run(probe: Probe, kind: RevokerKind) -> None:
    """End-to-end run under the tracer; fold the MetricsRegistry's
    simulated-cycle accounting in as deterministic metrics."""
    scale = 2048 if probe.mode == "smoke" else 512
    workload = spec.workload("hmmer", "retro", scale=scale, seed=1)
    with tracing():
        with probe.time():
            result = run_experiment(workload, kind)
    probe.record("wall_cycles", result.wall_cycles)
    probe.record("cpu_cycles", result.total_cpu_cycles)
    probe.record("bus_transactions", result.total_bus_transactions)
    probe.record("pages_swept", result.pages_swept)
    probe.record("faults", result.foreground_faults)
    folded = MetricsRegistry.flatten_dict(result.metrics)
    probe.record("stw_cycles", folded.get("epoch/stw_cycles.sum", 0.0))
    probe.record(
        "concurrent_cycles", folded.get("epoch/concurrent_cycles.sum", 0.0)
    )


@benchmark(
    "run.reloaded",
    suites=("smoke", "full"),
    description="traced end-to-end churn run under the Reloaded barrier",
    smoke_reps=3,
    full_reps=5,
)
def bench_run_reloaded(probe: Probe) -> None:
    _traced_run(probe, RevokerKind.RELOADED)


@benchmark(
    "run.cornucopia",
    suites=("full",),
    description="traced end-to-end churn run under Cornucopia",
    full_reps=5,
)
def bench_run_cornucopia(probe: Probe) -> None:
    _traced_run(probe, RevokerKind.CORNUCOPIA)


@benchmark(
    "run.cherivoke",
    suites=("full",),
    description="traced end-to-end churn run under CHERIvoke",
    full_reps=5,
)
def bench_run_cherivoke(probe: Probe) -> None:
    _traced_run(probe, RevokerKind.CHERIVOKE)
