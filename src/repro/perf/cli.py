"""``python -m repro bench`` — the continuous-benchmarking commands.

- ``run``       execute a suite (``--compare`` gates against the baseline
  store, ``--record`` moves the baseline ref to the fresh report);
- ``compare``   classify one report JSON against the store or another file;
- ``baseline``  ``record``/``show`` the content-addressed store;
- ``list``      the registered catalog;
- ``convert``   upgrade a retired legacy report to schema v1.

Exit codes are machine-readable: 0 clean, 1 at least one *deterministic*
metric regressed (wall-clock regressions only warn — as GitHub
``::warning::`` annotations when running under Actions), 2 usage or I/O
error (via the top-level CLI's :class:`~repro.errors.ReproError`
handler). docs/BENCHMARKING.md documents the workflow.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

from repro.errors import PerfError
from repro.perf.baselines import BaselineStore
from repro.perf.registry import INJECT_ENV, catalog
from repro.perf.regression import (
    NOISY,
    REGRESSED,
    Comparison,
    Thresholds,
    compare_reports,
)
from repro.perf.report import PerfReport, convert_legacy
from repro.perf.runner import Runner


def _print_comparison(comparison: Comparison, as_json: bool) -> None:
    if as_json:
        print(json.dumps(comparison.to_dict(), indent=2, sort_keys=True))
        return
    from repro.analysis import format_table

    rows = []
    for r in comparison.rows:
        rows.append([
            r.benchmark,
            r.metric,
            r.kind,
            "-" if r.baseline_median is None else f"{r.baseline_median:.6g}",
            "-" if r.current_median is None else f"{r.current_median:.6g}",
            "-" if r.ratio is None else f"{r.ratio:.3f}x",
            r.verdict + (" [gate]" if r.gates else ""),
        ])
    print(format_table(
        ["benchmark", "metric", "kind", "baseline", "current", "ratio", "verdict"],
        rows,
        title=f"perf comparison: {comparison.current_suite} vs baseline",
    ))
    print(comparison.summary())


def _annotate_ci(comparison: Comparison) -> None:
    """Surface wall-clock noise/regressions as Actions annotations
    (warnings, not failures) when running under GitHub Actions."""
    if not os.environ.get("GITHUB_ACTIONS"):
        return
    for r in comparison.rows:
        if r.gates or r.verdict not in (REGRESSED, NOISY):
            continue
        print(
            f"::warning title=perf {r.verdict}::{r.benchmark}/{r.metric} "
            f"{r.verdict}: baseline {r.baseline_median:.6g} -> current "
            f"{r.current_median:.6g} ({r.note or 'wall-clock; warn only'})"
        )


def _echo(name: str, took: float, metrics: int) -> None:
    print(f"  {name}: {took:.2f}s, {metrics} metrics", file=sys.stderr, flush=True)


def cmd_bench(args: argparse.Namespace) -> int:
    if args.bench_cmd == "list":
        defs = catalog()
        if args.json:
            print(json.dumps(
                {
                    name: {
                        "suites": list(d.suites),
                        "description": d.description,
                        "smoke_reps": d.smoke_reps,
                        "full_reps": d.full_reps,
                        "warmup": d.warmup,
                    }
                    for name, d in defs.items()
                },
                indent=2,
                sort_keys=True,
            ))
            return 0
        for name, d in defs.items():
            suites = ",".join(d.suites)
            print(f"  {name:22s} [{suites}] {d.description}")
        return 0

    if args.bench_cmd == "convert":
        try:
            data = json.loads(Path(args.path).read_text())
        except OSError as exc:
            raise PerfError(f"cannot read legacy report: {exc}") from exc
        except json.JSONDecodeError as exc:
            raise PerfError(f"legacy report is not valid JSON: {exc}") from exc
        report = convert_legacy(data)
        report.save(args.out)
        print(f"converted {args.path} (suite {report.suite!r}, "
              f"{len(report.benchmarks)} benchmarks) -> {args.out}")
        return 0

    store = BaselineStore(args.baseline_dir)

    if args.bench_cmd == "baseline":
        if args.baseline_cmd == "show":
            refs = store.list()
            if args.json:
                print(json.dumps(refs, indent=2, sort_keys=True))
                return 0
            if not refs:
                print(f"no baselines recorded under {store.root}")
                return 0
            for suite, ref in sorted(refs.items()):
                sha = (ref.get("git_sha") or "?")[:12]
                print(f"  {suite:12s} object {ref['object']} @ {sha} "
                      f"({len(ref.get('benchmarks', []))} benchmarks)")
            return 0
        # record
        report = PerfReport.load(args.report)
        if report.config.get("inject"):
            raise PerfError(
                f"refusing to record a baseline from a report produced "
                f"with {INJECT_ENV}={report.config['inject']} (the "
                "gate-test knob); re-run without injection"
            )
        object_id = store.record(report, force=args.force)
        print(f"baseline {report.suite!r} -> object {object_id} "
              f"({len(report.benchmarks)} benchmarks) under {store.root}")
        return 0

    thresholds = Thresholds(
        deterministic_rel=args.tolerance,
        bootstrap_seed=args.bootstrap_seed,
    )

    if args.bench_cmd == "compare":
        current = PerfReport.load(args.report)
        if args.against:
            baseline = PerfReport.load(args.against)
        else:
            baseline = store.load(current.suite)
        comparison = compare_reports(baseline, current, thresholds)
        _print_comparison(comparison, args.json)
        _annotate_ci(comparison)
        return comparison.exit_code()

    if args.bench_cmd == "run":
        mode = args.mode or ("smoke" if args.suite == "smoke" else "full")
        runner = Runner(mode=mode, reps=args.reps, warmup=args.warmup)
        progress = None if args.quiet else _echo
        report = runner.run(
            suite=args.suite, pattern=args.filter, progress=progress
        )
        if args.out:
            report.save(args.out)
            print(f"report written to {args.out}", file=sys.stderr)
        if args.record:
            if report.config.get("inject"):
                raise PerfError(
                    f"refusing to record a baseline with {INJECT_ENV} set "
                    "(the gate-test knob); unset it and re-run"
                )
            object_id = store.record(report, force=args.force)
            print(f"baseline {report.suite!r} -> object {object_id} "
                  f"under {store.root}")
        if args.compare:
            baseline = store.load(report.suite)
            comparison = compare_reports(baseline, report, thresholds)
            _print_comparison(comparison, args.json)
            _annotate_ci(comparison)
            return comparison.exit_code()
        if not args.record and not args.out:
            # A run nobody consumed: print the medians so it wasn't silent.
            for name, bench in sorted(report.benchmarks.items()):
                for metric, series in sorted(bench.metrics.items()):
                    mid = sorted(series.samples)[len(series.samples) // 2]
                    print(f"  {name}/{metric} [{series.kind}]: {mid:.6g}")
        return 0

    raise PerfError(f"unknown bench command {args.bench_cmd!r}")


def add_bench_parser(sub: argparse._SubParsersAction) -> None:
    """Wire the ``bench`` command tree into the top-level CLI."""
    p = sub.add_parser(
        "bench",
        help="continuous benchmarking: run suites, gate against baselines "
             "(docs/BENCHMARKING.md)",
    )
    bsub = p.add_subparsers(dest="bench_cmd", required=True)

    def common(pp: argparse.ArgumentParser) -> None:
        pp.add_argument("--baseline-dir", default=None,
                        help="baseline store root (default: perf/baselines)")
        pp.add_argument("--tolerance", type=float, default=0.02,
                        help="relative tolerance for deterministic metrics "
                             "(default: 0.02)")
        pp.add_argument("--bootstrap-seed", type=int, default=0,
                        help="seed for the bootstrap CI resampler")
        pp.add_argument("--json", action="store_true",
                        help="emit machine-readable JSON")

    pr = bsub.add_parser("run", help="execute a benchmark suite")
    pr.add_argument("--suite", default="smoke",
                    help="suite to run (smoke, full, sweep; default: smoke)")
    pr.add_argument("--filter", default=None,
                    help="glob over benchmark names (e.g. 'sweep.*')")
    pr.add_argument("--mode", choices=["smoke", "full"], default=None,
                    help="working-set sizing (default: follows --suite)")
    pr.add_argument("--reps", type=int, default=None,
                    help="override per-benchmark repetition counts")
    pr.add_argument("--warmup", type=int, default=None,
                    help="override per-benchmark warmup repetitions")
    pr.add_argument("--out", default=None,
                    help="write the PerfReport JSON here")
    pr.add_argument("--compare", action="store_true",
                    help="compare against the recorded baseline and gate "
                         "(exit 1 on a deterministic regression)")
    pr.add_argument("--record", action="store_true",
                    help="record this run as the suite's baseline")
    pr.add_argument("--force", action="store_true",
                    help="allow --record to move a baseline recorded at a "
                         "different git sha")
    pr.add_argument("--quiet", action="store_true",
                    help="suppress per-benchmark progress lines")
    common(pr)

    pc = bsub.add_parser("compare", help="classify a report against a baseline")
    pc.add_argument("report", help="current PerfReport JSON")
    pc.add_argument("--against", default=None,
                    help="explicit baseline report JSON (default: the "
                         "store's ref for the report's suite)")
    common(pc)

    pb = bsub.add_parser("baseline", help="manage the baseline store")
    bbsub = pb.add_subparsers(dest="baseline_cmd", required=True)
    pbr = bbsub.add_parser("record", help="record a report as its suite's baseline")
    pbr.add_argument("report", help="PerfReport JSON to record")
    pbr.add_argument("--force", action="store_true",
                     help="move a baseline recorded at a different git sha")
    common(pbr)
    pbs = bbsub.add_parser("show", help="list recorded baseline refs")
    common(pbs)

    pl = bsub.add_parser("list", help="the registered benchmark catalog")
    pl.add_argument("--json", action="store_true")

    pv = bsub.add_parser(
        "convert", help="upgrade a legacy BENCH_*.json report to schema v1"
    )
    pv.add_argument("path", help="legacy report JSON")
    pv.add_argument("out", help="schema-v1 output path")

    p.set_defaults(fn=cmd_bench)
