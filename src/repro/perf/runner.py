"""The benchmark runner: warmup/repetition control over the catalog.

``Runner.run`` executes a selection of registered targets, times each
repetition (targets that never open a ``probe.time()`` region get
whole-call wall timing), collects the probes' metric series, pins the
environment metadata (python, numpy, CPU, git sha) and emits a
:class:`~repro.perf.report.PerfReport`.

Deterministic series are sanity-checked: a "deterministic" metric whose
repetitions disagree is reported under ``detail["nondeterministic"]`` —
the gate still runs on its median, but the drift is visible rather than
silently averaged away.
"""

from __future__ import annotations

import time
from typing import Callable, Sequence

from repro import settings
from repro.errors import PerfError
from repro.perf.registry import (
    DETERMINISTIC,
    WALL,
    BenchmarkDef,
    Probe,
    select,
)
from repro.perf.report import BenchmarkResult, MetricSeries, PerfReport

#: Optional progress sink: (benchmark name, seconds, metric count).
Progress = Callable[[str, float, int], None]


class Runner:
    """Executes registered benchmarks into a versioned report."""

    def __init__(
        self,
        mode: str = "smoke",
        reps: int | None = None,
        warmup: int | None = None,
    ) -> None:
        if mode not in ("smoke", "full"):
            raise PerfError(f"runner mode must be smoke or full, got {mode!r}")
        if reps is not None and reps < 1:
            raise PerfError(f"reps must be >= 1, got {reps}")
        if warmup is not None and warmup < 0:
            raise PerfError(f"warmup must be >= 0, got {warmup}")
        self.mode = mode
        self.reps = reps
        self.warmup = warmup

    def run_one(self, bench: BenchmarkDef) -> BenchmarkResult:
        reps = self.reps if self.reps is not None else bench.reps_for(self.mode)
        warmup = self.warmup if self.warmup is not None else bench.warmup
        series: dict[str, MetricSeries] = {}
        for rep in range(warmup + reps):
            probe = Probe(mode=self.mode)
            began = time.perf_counter()
            bench.fn(probe)
            elapsed = time.perf_counter() - began
            if not any(kind == WALL for kind, _ in probe.metrics.values()):
                probe.metrics["wall_s"] = (WALL, elapsed)
            if rep < warmup:
                continue
            for name, (kind, value) in probe.metrics.items():
                found = series.get(name)
                if found is None:
                    found = series[name] = MetricSeries(kind=kind, samples=[])
                elif found.kind != kind:
                    raise PerfError(
                        f"{bench.name}/{name}: metric kind changed between "
                        f"repetitions ({found.kind} -> {kind})"
                    )
                found.samples.append(value)
        lengths = {name: len(s.samples) for name, s in series.items()}
        if len(set(lengths.values())) > 1:
            raise PerfError(
                f"{bench.name}: metrics recorded in some repetitions but "
                f"not others: {lengths}"
            )
        return BenchmarkResult(
            metrics=series,
            config={
                "mode": self.mode,
                "reps": reps,
                "warmup": warmup,
                **bench.config,
            },
        )

    def run(
        self,
        benchmarks: Sequence[BenchmarkDef] | None = None,
        suite: str = "smoke",
        pattern: str | None = None,
        progress: Progress | None = None,
    ) -> PerfReport:
        if benchmarks is None:
            benchmarks = select(suite=suite, pattern=pattern)
        inject = settings.perf_inject()
        report = PerfReport(
            suite=suite,
            config={
                "mode": self.mode,
                "reps_override": self.reps,
                "warmup_override": self.warmup,
                "pattern": pattern,
                "inject": inject,
            },
        )
        nondeterministic: list[str] = []
        for bench in benchmarks:
            began = time.perf_counter()
            result = self.run_one(bench)
            took = time.perf_counter() - began
            report.benchmarks[bench.name] = result
            for name, s in result.metrics.items():
                if s.kind == DETERMINISTIC and len(set(s.samples)) > 1:
                    nondeterministic.append(f"{bench.name}/{name}")
            if progress is not None:
                progress(bench.name, took, len(result.metrics))
        if nondeterministic:
            report.detail["nondeterministic"] = sorted(nondeterministic)
        return report
