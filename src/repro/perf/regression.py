"""Noise-aware regression detection between two perf reports.

The detector never compares raw means. Deterministic series (simulated
cycles, bus transactions, bytes — bit-identical by construction) compare
by median with a small relative tolerance and **gate hard**: a regressed
deterministic metric is a real algorithmic change, not noise. Wall-clock
series compare median-to-median with two noise guards before anything is
called a regression:

1. the shift must exceed ``mad_k`` pooled median-absolute-deviations
   *and* a relative floor (tiny absolute wobbles on a fast metric never
   alarm), otherwise the metric is ``ok``;
2. a seeded bootstrap confidence interval on each median must separate
   (no overlap), otherwise the metric is ``noisy``.

Only a shift that clears both guards classifies as ``improved`` /
``regressed`` — and wall regressions still only *warn* in CI; the
machine-readable exit code is driven by deterministic metrics alone
(docs/BENCHMARKING.md).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.analysis.stats import median, percentile
from repro.errors import PerfError
from repro.perf.registry import DETERMINISTIC
from repro.perf.report import MetricSeries, PerfReport

#: Classifications, from best to worst.
IMPROVED = "improved"
OK = "ok"
NOISY = "noisy"
REGRESSED = "regressed"
#: Catalog drift (not a perf verdict).
NEW = "new"
MISSING = "missing"

#: Below this many samples per side, a wall-clock shift can classify at
#: most ``noisy`` — three repetitions cannot establish significance, and
#: smoke-suite wall series are exactly that small.
MIN_WALL_SAMPLES = 4


@dataclass(frozen=True)
class Thresholds:
    """Detector knobs (defaults tuned for smoke-suite sample counts)."""

    #: Relative tolerance for deterministic medians (2% absorbs e.g.
    #: intentional small cost-model tweaks; a real pathology is far bigger).
    deterministic_rel: float = 0.02
    #: Wall shift must exceed this many pooled MADs...
    mad_k: float = 4.0
    #: ...and this fraction of the baseline median.
    wall_rel_floor: float = 0.10
    #: Bootstrap resamples and confidence for the median CI.
    bootstrap_iters: int = 2000
    confidence: float = 0.95
    bootstrap_seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 < self.confidence < 1.0:
            raise PerfError(f"confidence must be in (0,1), got {self.confidence}")
        if self.bootstrap_iters < 1:
            raise PerfError("bootstrap_iters must be >= 1")


def mad(values: Sequence[float]) -> float:
    """Median absolute deviation (a robust spread estimate)."""
    if not values:
        raise PerfError("MAD of empty sequence")
    med = median(values)
    return median([abs(v - med) for v in values])


def bootstrap_ci_median(
    values: Sequence[float],
    iters: int = 2000,
    confidence: float = 0.95,
    seed: int = 0,
) -> tuple[float, float]:
    """A percentile-bootstrap confidence interval on the median.

    Fully deterministic under a fixed ``seed`` (``random.Random`` is a
    seeded Mersenne twister, identical on every host and Python version),
    so the CI gate's verdicts are reproducible.
    """
    if not values:
        raise PerfError("bootstrap of empty sequence")
    if len(values) == 1:
        return (float(values[0]), float(values[0]))
    rng = random.Random(seed)
    n = len(values)
    medians = []
    for _ in range(iters):
        resample = [values[rng.randrange(n)] for _ in range(n)]
        medians.append(median(resample))
    alpha = (1.0 - confidence) / 2.0
    return (
        percentile(medians, alpha * 100.0),
        percentile(medians, (1.0 - alpha) * 100.0),
    )


@dataclass
class MetricComparison:
    """One metric's verdict."""

    benchmark: str
    metric: str
    kind: str
    verdict: str
    baseline_median: float | None = None
    current_median: float | None = None
    ratio: float | None = None
    #: True when this row alone can fail the gate (deterministic regressed).
    gates: bool = False
    note: str = ""

    def to_dict(self) -> dict[str, Any]:
        return {
            "benchmark": self.benchmark,
            "metric": self.metric,
            "kind": self.kind,
            "verdict": self.verdict,
            "baseline_median": self.baseline_median,
            "current_median": self.current_median,
            "ratio": self.ratio,
            "gates": self.gates,
            "note": self.note,
        }


def classify_deterministic(
    baseline: Sequence[float],
    current: Sequence[float],
    thresholds: Thresholds,
) -> tuple[str, str]:
    """Verdict + note for a deterministic series pair."""
    base_med, cur_med = median(baseline), median(current)
    if base_med == cur_med:
        return OK, ""
    if base_med == 0.0:
        return (REGRESSED if cur_med > 0 else IMPROVED), "baseline median is 0"
    ratio = cur_med / base_med
    if ratio > 1.0 + thresholds.deterministic_rel:
        return REGRESSED, f"{ratio:.3f}x > 1+{thresholds.deterministic_rel:g}"
    if ratio < 1.0 - thresholds.deterministic_rel:
        return IMPROVED, f"{ratio:.3f}x"
    return OK, "within deterministic tolerance"


def classify_wall(
    baseline: Sequence[float],
    current: Sequence[float],
    thresholds: Thresholds,
) -> tuple[str, str]:
    """Verdict + note for a wall-clock series pair (never gates)."""
    base_med, cur_med = median(baseline), median(current)
    shift = cur_med - base_med
    spread = max(mad(baseline), mad(current))
    floor = thresholds.wall_rel_floor * abs(base_med)
    if abs(shift) <= max(thresholds.mad_k * spread, floor):
        return OK, ""
    if min(len(baseline), len(current)) < MIN_WALL_SAMPLES:
        return NOISY, (
            f"shift {shift:+.3g} beyond the MAD guard, but fewer than "
            f"{MIN_WALL_SAMPLES} samples per side cannot establish it"
        )
    base_lo, base_hi = bootstrap_ci_median(
        baseline,
        thresholds.bootstrap_iters,
        thresholds.confidence,
        thresholds.bootstrap_seed,
    )
    cur_lo, cur_hi = bootstrap_ci_median(
        current,
        thresholds.bootstrap_iters,
        thresholds.confidence,
        # A distinct stream per side; still fixed, still deterministic.
        thresholds.bootstrap_seed + 1,
    )
    if cur_lo <= base_hi and base_lo <= cur_hi:
        return NOISY, (
            f"shift {shift:+.3g} beyond MAD guard but CIs overlap "
            f"[{base_lo:.3g},{base_hi:.3g}] vs [{cur_lo:.3g},{cur_hi:.3g}]"
        )
    if shift > 0:
        return REGRESSED, f"median {base_med:.3g} -> {cur_med:.3g}, CIs separate"
    return IMPROVED, f"median {base_med:.3g} -> {cur_med:.3g}, CIs separate"


def compare_series(
    benchmark: str,
    metric: str,
    baseline: MetricSeries,
    current: MetricSeries,
    thresholds: Thresholds,
) -> MetricComparison:
    if baseline.kind != current.kind:
        return MetricComparison(
            benchmark,
            metric,
            current.kind,
            NOISY,
            note=f"metric kind changed {baseline.kind} -> {current.kind}",
        )
    if not baseline.samples or not current.samples:
        return MetricComparison(
            benchmark, metric, current.kind, NOISY, note="empty sample set"
        )
    if current.kind == DETERMINISTIC:
        verdict, note = classify_deterministic(
            baseline.samples, current.samples, thresholds
        )
    else:
        verdict, note = classify_wall(baseline.samples, current.samples, thresholds)
    base_med, cur_med = median(baseline.samples), median(current.samples)
    return MetricComparison(
        benchmark=benchmark,
        metric=metric,
        kind=current.kind,
        verdict=verdict,
        baseline_median=base_med,
        current_median=cur_med,
        ratio=(cur_med / base_med) if base_med else None,
        gates=(current.kind == DETERMINISTIC and verdict == REGRESSED),
        note=note,
    )


@dataclass
class Comparison:
    """Every metric's verdict for a (baseline, current) report pair."""

    baseline_suite: str
    current_suite: str
    rows: list[MetricComparison] = field(default_factory=list)

    def __iter__(self):
        return iter(self.rows)

    @property
    def gating_regressions(self) -> list[MetricComparison]:
        return [r for r in self.rows if r.gates]

    @property
    def wall_regressions(self) -> list[MetricComparison]:
        return [r for r in self.rows if r.verdict == REGRESSED and not r.gates]

    @property
    def ok(self) -> bool:
        return not self.gating_regressions

    def exit_code(self) -> int:
        """The machine-readable gate: 0 clean, 1 deterministic regression
        (wall-clock regressions warn; errors exit 2 via the CLI)."""
        return 0 if self.ok else 1

    def counts(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for row in self.rows:
            out[row.verdict] = out.get(row.verdict, 0) + 1
        return out

    def to_dict(self) -> dict[str, Any]:
        return {
            "baseline_suite": self.baseline_suite,
            "current_suite": self.current_suite,
            "counts": self.counts(),
            "exit_code": self.exit_code(),
            "rows": [r.to_dict() for r in self.rows],
        }

    def summary(self) -> str:
        counts = self.counts()
        parts = [
            f"{counts[v]} {v}"
            for v in (REGRESSED, IMPROVED, NOISY, OK, NEW, MISSING)
            if counts.get(v)
        ]
        verdict = "PASS" if self.ok else "FAIL"
        gate = len(self.gating_regressions)
        return (
            f"{verdict}: {', '.join(parts) or 'no metrics'} "
            f"({gate} gating deterministic regression{'s' if gate != 1 else ''})"
        )


def compare_reports(
    baseline: PerfReport,
    current: PerfReport,
    thresholds: Thresholds | None = None,
) -> Comparison:
    """Compare every metric of ``current`` against ``baseline``."""
    thresholds = thresholds or Thresholds()
    comparison = Comparison(baseline.suite, current.suite)
    for bench_name, cur_bench in sorted(current.benchmarks.items()):
        base_bench = baseline.benchmarks.get(bench_name)
        for metric_name, cur_series in sorted(cur_bench.metrics.items()):
            base_series = (
                base_bench.metrics.get(metric_name) if base_bench else None
            )
            if base_series is None:
                comparison.rows.append(
                    MetricComparison(
                        bench_name,
                        metric_name,
                        cur_series.kind,
                        NEW,
                        current_median=(
                            median(cur_series.samples)
                            if cur_series.samples
                            else None
                        ),
                        note="no baseline series",
                    )
                )
                continue
            comparison.rows.append(
                compare_series(
                    bench_name, metric_name, base_series, cur_series, thresholds
                )
            )
    for bench_name, base_bench in sorted(baseline.benchmarks.items()):
        cur_bench = current.benchmarks.get(bench_name)
        for metric_name, base_series in sorted(base_bench.metrics.items()):
            if cur_bench is None or metric_name not in cur_bench.metrics:
                comparison.rows.append(
                    MetricComparison(
                        bench_name,
                        metric_name,
                        base_series.kind,
                        MISSING,
                        baseline_median=(
                            median(base_series.samples)
                            if base_series.samples
                            else None
                        ),
                        note="baseline metric absent from current run",
                    )
                )
    return comparison
