"""Load generator for the simulation service (``repro serve-bench``).

Three phases, each optional, one JSON report (``BENCH_serve.json``):

- **service** — closed-loop (``--mode closed``: N threads issue requests
  back-to-back) or open-loop (``--mode open``: requests fire on a fixed
  schedule at ``--rate`` rps regardless of completions) traffic over a
  workload x strategy mix, reporting throughput, client-side p50/p99,
  and the daemon's own stats snapshot;
- **burst** (``--burst N``) — N simultaneous *fresh* (unique-seed)
  requests, deliberately past the admission bound, demonstrating that
  overload produces structured ``overloaded`` rejections rather than
  hangs or crashes;
- **spawn baseline** (``--spawn-baseline N``) — the same requests issued
  the pre-serve way, one ``python -m repro run`` subprocess per request,
  quantifying what the warm worker pool saves (the acceptance criterion
  is >= 5x service throughput over this baseline).

``--autostart`` makes the run self-contained: it forks a daemon on a
temporary Unix socket, benches it, and drains it afterwards.

The report is a schema-v1 :class:`repro.perf.report.PerfReport`: the
headline per-phase stats land under ``benchmarks`` (wall metrics only —
serving throughput is host-dependent), the full raw phase sections under
``detail.raw``. An existing report recorded at a different git sha is
never silently clobbered — pass ``--force`` to re-record.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Sequence

import repro
from repro.analysis import percentile
from repro.errors import PerfError
from repro.perf.report import (
    check_overwrite,
    collect_env,
    convert_legacy,
    git_sha,
    recorded_sha,
)
from repro.serve.client import Overloaded, RequestFailed, ServeClient, ServeError


@dataclass
class Sample:
    """One request's client-side outcome."""

    ok: bool
    latency_s: float
    cached: bool = False
    deduped: bool = False
    error_code: str | None = None


def default_mix(scale: int) -> list[dict[str, Any]]:
    """The standard bench traffic: two SPEC surrogates x four strategies."""
    jobs = []
    for benchmark, inp in (("hmmer", "retro"), ("gobmk", "13x13")):
        for revoker in ("none", "cherivoke", "cornucopia", "reloaded"):
            jobs.append({
                "workload": {
                    "kind": "spec",
                    "params": {"benchmark": benchmark, "input": inp, "scale": scale},
                },
                "revoker": revoker,
                "config": {},
            })
    return jobs


def _issue(client: ServeClient, job: dict[str, Any], timeout: float) -> Sample:
    began = time.perf_counter()
    try:
        response = client.run_job_dict(job, timeout=timeout)
    except Overloaded:
        return Sample(False, time.perf_counter() - began, error_code="overloaded")
    except RequestFailed as exc:
        return Sample(False, time.perf_counter() - began, error_code=exc.code)
    except ServeError as exc:
        return Sample(
            False, time.perf_counter() - began,
            error_code=type(exc).__name__.lower(),
        )
    return Sample(
        True,
        time.perf_counter() - began,
        cached=response.cached,
        deduped=response.deduped,
    )


def closed_loop(
    make_client: Callable[[], ServeClient],
    mix: Sequence[dict[str, Any]],
    requests: int,
    concurrency: int,
    timeout: float,
) -> tuple[list[Sample], float]:
    """N threads, each its own connection, issuing back-to-back."""
    samples: list[Sample | None] = [None] * requests
    began = time.perf_counter()

    def worker(thread_index: int) -> None:
        with make_client() as client:
            for i in range(thread_index, requests, concurrency):
                samples[i] = _issue(client, mix[i % len(mix)], timeout)

    threads = [
        threading.Thread(target=worker, args=(t,), daemon=True)
        for t in range(min(concurrency, requests))
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - began
    return [s for s in samples if s is not None], wall


def open_loop(
    make_client: Callable[[], ServeClient],
    mix: Sequence[dict[str, Any]],
    requests: int,
    rate: float,
    concurrency: int,
    timeout: float,
) -> tuple[list[Sample], float]:
    """Fire on a fixed schedule (``rate`` rps) regardless of completions,
    so queueing delay shows up in the latency numbers."""
    samples: list[Sample | None] = [None] * requests
    began = time.perf_counter()
    counter = iter(range(requests))
    lock = threading.Lock()

    def worker() -> None:
        with make_client() as client:
            while True:
                with lock:
                    i = next(counter, None)
                if i is None:
                    return
                fire_at = began + i / rate
                delay = fire_at - time.perf_counter()
                if delay > 0:
                    time.sleep(delay)
                samples[i] = _issue(client, mix[i % len(mix)], timeout)

    threads = [
        threading.Thread(target=worker, daemon=True)
        for _ in range(min(concurrency, requests))
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - began
    return [s for s in samples if s is not None], wall


def burst(
    make_client: Callable[[], ServeClient],
    jobs: Sequence[dict[str, Any]],
    timeout: float,
) -> tuple[list[Sample], float]:
    """Every job fired simultaneously from its own connection — the
    overload demonstration."""
    samples: list[Sample | None] = [None] * len(jobs)
    gate = threading.Barrier(len(jobs))
    began = time.perf_counter()

    def worker(i: int) -> None:
        with make_client() as client:
            client.ping()
            gate.wait()
            samples[i] = _issue(client, jobs[i], timeout)

    threads = [
        threading.Thread(target=worker, args=(i,), daemon=True)
        for i in range(len(jobs))
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - began
    return [s for s in samples if s is not None], wall


def fresh_jobs(
    count: int, scale: int, seed_base: int | None = None
) -> list[dict[str, Any]]:
    """``count`` unique-fingerprint jobs (distinct seeds): nothing in the
    cache, nothing dedupable — every one needs a worker.

    ``seed_base`` defaults to a per-invocation random nonce. A fixed
    default would make the *second* bench run against a live daemon hit
    the result cache for every "fresh" burst job and report inflated
    overload throughput; pass an explicit base only when reproducing a
    specific run (and expect cache hits if the daemon has seen it).
    """
    if seed_base is None:
        # Keep clear of the deterministic seed ranges campaigns use.
        seed_base = 1_000_000_000 + int.from_bytes(os.urandom(4), "big")
    return [
        {
            "workload": {
                "kind": "spec",
                "params": {
                    "benchmark": "hmmer",
                    "input": "retro",
                    "scale": scale,
                    "seed": seed_base + i,
                },
            },
            "revoker": "reloaded",
            "config": {},
        }
        for i in range(count)
    ]


# --- The pre-serve baseline: one subprocess per request ------------------


def _spawn_env() -> dict[str, str]:
    src = str(Path(repro.__file__).resolve().parent.parent)
    env = dict(os.environ)
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return env


def _job_to_cli(job: dict[str, Any]) -> list[str]:
    workload = job["workload"]
    params = workload["params"]
    if workload["kind"] == "spec":
        name = f"{params['benchmark']}.{params['input']}"
        return [
            name, job["revoker"], "--scale", str(params.get("scale", 256)),
        ]
    if workload["kind"] == "pgbench":
        return [
            "pgbench", job["revoker"],
            "--transactions", str(params.get("transactions", 500)),
        ]
    if workload["kind"] == "grpc":
        return [
            "grpc", job["revoker"],
            "--seconds", str(params.get("duration_seconds", 0.5)),
        ]
    raise ValueError(f"no CLI equivalent for workload kind {workload['kind']!r}")


def spawn_baseline(
    mix: Sequence[dict[str, Any]], requests: int
) -> tuple[list[Sample], float]:
    """The old way: a fresh ``python -m repro run`` process per request
    (cold interpreter, cold imports, cold caches — sequentially, exactly
    like a shell loop would)."""
    env = _spawn_env()
    samples: list[Sample] = []
    began = time.perf_counter()
    for i in range(requests):
        args = _job_to_cli(mix[i % len(mix)])
        request_began = time.perf_counter()
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "run", *args],
            env=env, capture_output=True, text=True,
        )
        samples.append(
            Sample(
                ok=proc.returncode == 0,
                latency_s=time.perf_counter() - request_began,
                error_code=None if proc.returncode == 0 else "spawn-failed",
            )
        )
    return samples, time.perf_counter() - began


# --- Reporting ------------------------------------------------------------


def summarize(samples: Sequence[Sample], wall_s: float) -> dict[str, Any]:
    latencies_ms = [s.latency_s * 1e3 for s in samples if s.ok]
    oks = sum(1 for s in samples if s.ok)
    return {
        "requests": len(samples),
        "ok": oks,
        "failures": sum(1 for s in samples if not s.ok and s.error_code != "overloaded"),
        "overloaded": sum(1 for s in samples if s.error_code == "overloaded"),
        "cached": sum(1 for s in samples if s.cached),
        "deduped": sum(1 for s in samples if s.deduped),
        "fresh": sum(1 for s in samples if s.ok and not s.cached and not s.deduped),
        "wall_s": round(wall_s, 4),
        "throughput_rps": round(oks / wall_s, 2) if wall_s > 0 else 0.0,
        "p50_ms": round(percentile(latencies_ms, 50), 3) if latencies_ms else None,
        "p99_ms": round(percentile(latencies_ms, 99), 3) if latencies_ms else None,
        "mean_ms": (
            round(sum(latencies_ms) / len(latencies_ms), 3) if latencies_ms else None
        ),
    }


def _start_daemon(
    socket_path: str, workers: int, queue: int, log_path: Path
) -> subprocess.Popen:
    log = open(log_path, "w")
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--socket", socket_path,
            "--workers", str(workers),
            "--queue", str(queue),
        ],
        env=_spawn_env(), stdout=log, stderr=subprocess.STDOUT,
    )


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro serve-bench", description=__doc__.splitlines()[0]
    )
    parser.add_argument("--socket", default=None, help="daemon unix socket path")
    parser.add_argument("--host", default=None, help="daemon TCP host")
    parser.add_argument("--port", type=int, default=None, help="daemon TCP port")
    parser.add_argument("--autostart", action="store_true",
                        help="fork a daemon on a temp socket; drain it afterwards")
    parser.add_argument("--workers", type=int, default=2,
                        help="daemon workers (autostart only)")
    parser.add_argument("--queue", type=int, default=16,
                        help="daemon admission bound (autostart only)")
    parser.add_argument("--requests", type=int, default=50,
                        help="service-phase request count")
    parser.add_argument("--concurrency", type=int, default=4,
                        help="concurrent client connections")
    parser.add_argument("--mode", choices=["closed", "open"], default="closed")
    parser.add_argument("--rate", type=float, default=20.0,
                        help="open-loop arrival rate (requests/s)")
    parser.add_argument("--scale", type=int, default=2048,
                        help="mix workload scale divisor (bigger = faster jobs)")
    parser.add_argument("--timeout", type=float, default=120.0,
                        help="per-request client timeout")
    parser.add_argument("--spawn-baseline", type=int, default=0, metavar="N",
                        help="also run N process-spawn requests and report the speedup")
    parser.add_argument("--burst", type=int, default=0, metavar="N",
                        help="also fire N simultaneous fresh jobs (overload demo)")
    parser.add_argument("--burst-scale", type=int, default=512,
                        help="burst workload scale (smaller = slower jobs)")
    parser.add_argument("--seed-base", type=int, default=None,
                        help="first seed for burst jobs (default: a per-run "
                             "nonce, so repeat runs cannot hit the result "
                             "cache and inflate burst throughput)")
    parser.add_argument("--min-speedup", type=float, default=None,
                        help="fail unless service/spawn speedup reaches this")
    parser.add_argument("--out", type=Path, default=None,
                        help="write the JSON report here")
    parser.add_argument("--force", action="store_true",
                        help="overwrite a report recorded at a different git sha")
    args = parser.parse_args(argv)

    if args.socket and args.host:
        parser.error("give --socket or --host, not both")
    if not args.socket and not args.host and not args.autostart:
        parser.error("need --socket, --host/--port, or --autostart")

    # Check the overwrite guard up front, before the expensive run — a
    # refused report after minutes of load generation would be cruel.
    if args.out is not None and args.out.exists():
        try:
            existing = json.loads(args.out.read_text())
        except (OSError, json.JSONDecodeError):
            existing = None
        if isinstance(existing, dict):
            try:
                check_overwrite(
                    recorded_sha(existing), git_sha(), str(args.out), args.force
                )
            except PerfError as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 2

    daemon: subprocess.Popen | None = None
    tmp: tempfile.TemporaryDirectory | None = None
    socket_path = args.socket
    daemon_log: Path | None = None
    if args.autostart:
        tmp = tempfile.TemporaryDirectory(prefix="repro-serve-bench-")
        socket_path = os.path.join(tmp.name, "serve.sock")
        daemon_log = Path(tmp.name) / "daemon.log"
        daemon = _start_daemon(socket_path, args.workers, args.queue, daemon_log)

    def make_client(**overrides: Any) -> ServeClient:
        kwargs: dict[str, Any] = {"request_timeout": args.timeout, **overrides}
        if socket_path:
            return ServeClient(socket_path=socket_path, **kwargs)
        return ServeClient(host=args.host, port=args.port, **kwargs)

    report: dict[str, Any] = {
        "benchmark": "serve",
        "config": {
            "mode": args.mode,
            "requests": args.requests,
            "concurrency": args.concurrency,
            "scale": args.scale,
            "autostart": args.autostart,
            "workers": args.workers if args.autostart else None,
            "queue": args.queue if args.autostart else None,
        },
    }
    failed = False
    try:
        with make_client() as probe:
            probe.wait_ready(timeout=30.0)
            health = probe.health()
        report["health"] = {
            "workers": health["workers"], "queue_bound": health["queue_bound"],
        }

        mix = default_mix(args.scale)
        if args.mode == "closed":
            samples, wall = closed_loop(
                make_client, mix, args.requests, args.concurrency, args.timeout
            )
        else:
            samples, wall = open_loop(
                make_client, mix, args.requests, args.rate,
                args.concurrency, args.timeout,
            )
        service = summarize(samples, wall)
        report["service"] = service
        print(
            f"service: {service['ok']}/{service['requests']} ok "
            f"({service['cached']} cached, {service['deduped']} deduped, "
            f"{service['fresh']} fresh) "
            f"{service['throughput_rps']} rps "
            f"p50 {service['p50_ms']}ms p99 {service['p99_ms']}ms"
        )
        if service["failures"]:
            print(f"FAIL: {service['failures']} service requests failed",
                  file=sys.stderr)
            failed = True

        with make_client() as probe:
            stats = probe.stats()
        report["daemon_stats"] = {
            "counters": stats["stats"]["counters"],
            "derived": stats["derived"],
        }

        if args.burst:
            jobs = fresh_jobs(args.burst, args.burst_scale, args.seed_base)
            burst_samples, burst_wall = burst(make_client, jobs, args.timeout)
            burst_report = summarize(burst_samples, burst_wall)
            # Record the seed base actually used (nonce or explicit) so a
            # run can be reproduced and honest runs are distinguishable.
            burst_report["seed_base"] = jobs[0]["workload"]["params"]["seed"]
            report["overload"] = burst_report
            print(
                f"burst: {burst_report['ok']} completed, "
                f"{burst_report['overloaded']} rejected overloaded, "
                f"{burst_report['failures']} other failures "
                f"(queue bound {health['queue_bound']})"
            )
            if burst_report["failures"]:
                print("FAIL: burst produced non-overload failures", file=sys.stderr)
                failed = True
            if not burst_report["overloaded"]:
                print("FAIL: burst past the queue bound produced no "
                      "overloaded rejections", file=sys.stderr)
                failed = True
            if not burst_report["ok"]:
                print("FAIL: burst produced no completions", file=sys.stderr)
                failed = True
            with make_client() as probe:
                if probe.health()["status"] not in ("ok", "draining"):
                    failed = True  # pragma: no cover - health is ok/draining

        if args.spawn_baseline:
            base_samples, base_wall = spawn_baseline(mix, args.spawn_baseline)
            baseline = summarize(base_samples, base_wall)
            report["spawn_baseline"] = baseline
            if baseline["throughput_rps"]:
                speedup = round(
                    service["throughput_rps"] / baseline["throughput_rps"], 2
                )
            else:  # pragma: no cover - baseline too fast to measure
                speedup = None
            report["speedup_vs_spawn"] = speedup
            print(
                f"spawn baseline: {baseline['ok']}/{baseline['requests']} ok "
                f"{baseline['throughput_rps']} rps mean {baseline['mean_ms']}ms "
                f"-> service speedup {speedup}x"
            )
            if baseline["failures"]:
                print("FAIL: spawn baseline runs failed", file=sys.stderr)
                failed = True
            if args.min_speedup and (speedup or 0) < args.min_speedup:
                print(
                    f"FAIL: speedup {speedup}x < required {args.min_speedup}x",
                    file=sys.stderr,
                )
                failed = True
    finally:
        if daemon is not None:
            try:
                with make_client(retries=0) as probe:
                    probe.shutdown()
            except ServeError:
                daemon.terminate()
            try:
                daemon.wait(timeout=15)
            except subprocess.TimeoutExpired:  # pragma: no cover
                daemon.kill()
                daemon.wait(timeout=5)
            if daemon_log is not None and daemon_log.exists():
                report["daemon_log_tail"] = daemon_log.read_text().splitlines()[-10:]
        if tmp is not None:
            tmp.cleanup()

    if args.out is not None:
        # Wrap the raw phase sections in the schema-v1 envelope: the
        # converter maps headline stats into per-benchmark wall metrics;
        # the raw dict rides along verbatim under detail.raw.
        envelope = convert_legacy(report)
        envelope.env = collect_env()
        envelope.detail = {"raw": report}
        envelope.save(args.out)
        print(f"report written to {args.out}")
    return 1 if failed else 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
