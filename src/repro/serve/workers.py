"""Warm persistent simulation workers for the serving daemon.

Unlike :mod:`repro.runner.pool` — which runs one process per job so that
timeouts and crash detection stay trivial — the serving daemon keeps a
fixed pool of **long-lived** workers: each forks once at daemon startup
(inheriting the fully imported simulator, so nothing is re-imported per
request) and then loops ``recv job -> execute -> send envelope`` until
it is told to drain. A request on a warm worker costs only the pipe
round-trip and the simulation itself; the ~1s interpreter/numpy start-up
that dominates ``python -m repro run`` is paid once per worker lifetime.

Results cross the pipe as serialized envelopes
(:func:`repro.runner.serialize.result_to_dict`), the same representation
the result cache stores, so the daemon can persist and answer from them
without re-encoding.

Supervision is the daemon's job (:mod:`repro.serve.server`): a worker
that crashes or overruns a deadline is killed and respawned there, and
:func:`conn_recv` is the bridge that lets the asyncio event loop await a
worker pipe without blocking.
"""

from __future__ import annotations

import asyncio
import multiprocessing
import traceback
from multiprocessing.connection import Connection
from typing import Any

from repro.runner.campaign import execute_job, job_from_dict
from repro.runner.serialize import result_to_dict

#: Message sent to a worker to make it exit its loop cleanly.
_DRAIN = None


def _worker_main(conn: Connection) -> None:
    """Worker-process body: loop over jobs until drained or orphaned."""
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):  # daemon died or closed us: exit
            break
        if message is _DRAIN:
            break
        seq, job_data = message
        try:
            envelope = result_to_dict(execute_job(job_from_dict(job_data)))
            conn.send((seq, "ok", envelope))
        except BaseException as exc:  # report everything before dying
            try:
                conn.send(
                    (seq, "err", type(exc).__name__, str(exc), traceback.format_exc())
                )
            except (OSError, ValueError):
                break
            if not isinstance(exc, Exception):  # KeyboardInterrupt etc.
                break
    conn.close()


def _mp_context():
    """Fork keeps workers warm (they inherit every imported module and
    runtime-registered workload kind); fall back where unavailable."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context()


class Worker:
    """One supervised worker process plus its duplex pipe."""

    def __init__(self, wid: int) -> None:
        self.id = wid
        self.ctx = _mp_context()
        self.process: multiprocessing.process.BaseProcess | None = None
        self.conn: Connection | None = None
        self.jobs_done = 0
        self.restarts = -1  # first spawn() brings this to 0
        self.spawn()

    def spawn(self) -> None:
        parent_conn, child_conn = self.ctx.Pipe(duplex=True)
        process = self.ctx.Process(
            target=_worker_main,
            args=(child_conn,),
            daemon=True,
            name=f"repro-serve-worker-{self.id}",
        )
        process.start()
        child_conn.close()
        self.process = process
        self.conn = parent_conn
        self.restarts += 1

    @property
    def alive(self) -> bool:
        return self.process is not None and self.process.is_alive()

    def submit(self, seq: int, job_data: dict[str, Any]) -> None:
        """Ship one job down the pipe (raises OSError if the worker is
        gone — the supervisor treats that as a crash)."""
        assert self.conn is not None
        self.conn.send((seq, job_data))

    def kill(self) -> None:
        """Hard-stop the worker (timeout/crash recovery path)."""
        if self.conn is not None:
            try:
                self.conn.close()
            except OSError:  # pragma: no cover
                pass
            self.conn = None
        if self.process is not None:
            self.process.kill()
            self.process.join(timeout=5)
            self.process = None

    def respawn(self) -> None:
        self.kill()
        self.spawn()

    def stop(self, timeout: float = 5.0) -> None:
        """Graceful stop: send the drain sentinel, join, then escalate."""
        if self.conn is not None:
            try:
                self.conn.send(_DRAIN)
            except (OSError, ValueError):
                pass
            try:
                self.conn.close()
            except OSError:  # pragma: no cover
                pass
            self.conn = None
        if self.process is not None:
            self.process.join(timeout=timeout)
            if self.process.is_alive():  # pragma: no cover - stuck worker
                self.process.kill()
                self.process.join(timeout=5)
            self.process = None


class WorkerPool:
    """A fixed-size set of warm workers."""

    def __init__(self, size: int) -> None:
        if size < 1:
            from repro.errors import ConfigError

            raise ConfigError(f"serve needs at least 1 worker, got {size}")
        self.workers = [Worker(i) for i in range(size)]

    def __len__(self) -> int:
        return len(self.workers)

    @property
    def alive(self) -> int:
        return sum(1 for w in self.workers if w.alive)

    @property
    def restarts(self) -> int:
        return sum(w.restarts for w in self.workers)

    def stop(self, timeout: float = 5.0) -> None:
        # Two-phase like the campaign pool's abort: signal everyone
        # first so drains overlap, then join.
        for worker in self.workers:
            if worker.conn is not None:
                try:
                    worker.conn.send(_DRAIN)
                except (OSError, ValueError):
                    pass
        for worker in self.workers:
            worker.stop(timeout=timeout)


async def conn_recv(conn: Connection) -> Any:
    """Await one message from a worker pipe without blocking the loop.

    Registers the pipe fd with the running event loop and resolves on
    the first readable edge; a dead worker surfaces as ``EOFError``
    exactly like a blocking ``recv`` would.
    """
    loop = asyncio.get_running_loop()
    future: asyncio.Future[Any] = loop.create_future()
    fd = conn.fileno()

    def _ready() -> None:
        loop.remove_reader(fd)
        if future.done():  # pragma: no cover - cancelled racing readable
            return
        try:
            future.set_result(conn.recv())
        except BaseException as exc:  # EOFError when the worker died
            future.set_exception(exc)

    loop.add_reader(fd, _ready)
    try:
        return await future
    finally:
        loop.remove_reader(fd)
