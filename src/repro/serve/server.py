"""The simulation service daemon.

An asyncio event loop accepts newline-delimited JSON requests on a Unix
or TCP socket (:mod:`repro.serve.protocol`) and serves ``run`` requests
from a warm :class:`~repro.serve.workers.WorkerPool`:

- **cache first** — a request whose fingerprint is already in the
  content-addressed :class:`~repro.runner.cache.ResultCache` is answered
  straight from the stored envelope, touching no worker;
- **dedup** — identical fingerprints *in flight* collapse onto the one
  executing task; followers wait on its future and are answered with
  ``deduped: true`` when the leader's envelope lands;
- **admission control** — the run queue is bounded; a request arriving
  past the bound is rejected immediately with ``overloaded`` and a
  ``retry_after_s`` hint instead of queueing unboundedly;
- **deadlines** — a per-request ``deadline_s`` expires the request in
  queue (cheap) or kills the worker mid-run (reclaims it);
- **supervision** — a worker that crashes or overruns the job timeout is
  killed, respawned, and the job retried once (the same fault policy as
  :mod:`repro.runner.pool`); a second failure is an error response, not
  a dead daemon;
- **graceful drain** — SIGTERM/SIGINT (or the ``shutdown`` verb) stops
  accepting connections, finishes in-flight work within the drain
  timeout, answers everything still queued with ``shutting-down``, and
  exits 0.

Every decision increments a :class:`~repro.obs.MetricsRegistry` counter
or histogram; the ``health`` and ``stats`` verbs expose them live.

Environment knobs: ``REPRO_SERVE_WORKERS`` (warm workers, default 2),
``REPRO_SERVE_QUEUE`` (admission bound, default 64),
``REPRO_SERVE_JOB_TIMEOUT`` (seconds per job on a worker; default none).
CLI flags override each (see ``python -m repro serve --help``).
"""

from __future__ import annotations

import asyncio
import contextlib
import os
import signal
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro import settings
from repro.core.config import RevokerKind
from repro.errors import ConfigError
from repro.obs.metrics import MetricsRegistry
from repro.runner.cache import ResultCache, job_fingerprint
from repro.runner.campaign import job_from_dict, registered_workloads
from repro.runner.serialize import SerializationError
from repro.serve.protocol import (
    DEFAULT_MAX_LINE_BYTES,
    E_BAD_REQUEST,
    E_DEADLINE,
    E_INTERNAL,
    E_INVALID_JOB,
    E_JOB_FAILED,
    E_NOT_FOUND,
    E_OVERLOADED,
    E_OVERSIZED,
    E_SHUTTING_DOWN,
    E_UNKNOWN_VERB,
    KNOWN_VERBS,
    PROTOCOL_VERSION,
    ProtocolError,
    Request,
    encode,
    error_response,
    ok_response,
    parse_request,
)
from repro.serve.workers import WorkerPool, Worker, conn_recv


def default_serve_workers() -> int:
    return settings.serve_workers()


def default_queue_bound() -> int:
    return settings.serve_queue()


def default_serve_job_timeout() -> float | None:
    return settings.serve_job_timeout_s()


@dataclass
class ServeConfig:
    """Daemon configuration; ``None`` fields fall back to env knobs."""

    socket_path: str | None = None
    host: str | None = None
    port: int = 0
    workers: int | None = None
    queue_bound: int | None = None
    job_timeout_s: float | None = None
    drain_timeout_s: float = 10.0
    cache_dir: str | Path | None = None
    no_cache: bool = False
    max_line_bytes: int = DEFAULT_MAX_LINE_BYTES
    #: Directory for per-job checkpoints (``$REPRO_SNAPSHOT_DIR`` when
    #: unset). Snapshot-capable jobs then checkpoint at epoch closes, so
    #: a request retried after a worker crash or timeout resumes from the
    #: dead worker's last checkpoint, and repeated fresh executions of a
    #: fingerprint warm-start from the previous run's final checkpoint.
    snapshot_dir: str | Path | None = None
    #: Directory for the warm-start prefix store (``$REPRO_PREFIX_DIR``
    #: when unset; see docs/WARMSTART.md). Workers then pre-warm hot
    #: prefixes organically: the first fresh run of a sweep group
    #: captures the shared warmup checkpoint and every sibling request —
    #: same workload, different revoker — forks from it instead of
    #: cold-simulating.
    prefix_dir: str | Path | None = None

    def __post_init__(self) -> None:
        if self.snapshot_dir is None:
            env_snap = settings.snapshot_dir()
            self.snapshot_dir = str(env_snap) if env_snap is not None else None
        if self.prefix_dir is None:
            env_prefix = settings.prefix_dir()
            self.prefix_dir = str(env_prefix) if env_prefix is not None else None
        if self.socket_path and self.host:
            raise ConfigError("serve: give a unix socket path or host/port, not both")
        if not self.socket_path and not self.host:
            raise ConfigError("serve: a unix socket path or a host/port is required")
        if self.workers is None:
            self.workers = default_serve_workers()
        if self.queue_bound is None:
            self.queue_bound = default_queue_bound()
        if self.job_timeout_s is None:
            self.job_timeout_s = default_serve_job_timeout()
        if self.workers < 1:
            raise ConfigError(f"serve: workers must be >= 1, got {self.workers}")
        if self.queue_bound < 1:
            raise ConfigError(
                f"serve: queue bound must be >= 1, got {self.queue_bound}"
            )
        if self.job_timeout_s is not None and self.job_timeout_s <= 0:
            raise ConfigError(
                f"serve: job timeout must be > 0, got {self.job_timeout_s}"
            )


@dataclass
class _Task:
    """One admitted fresh execution; followers share its futures list."""

    fingerprint: str
    job_data: dict[str, Any]
    describe: str
    deadline: float | None
    enqueued: float
    futures: list[asyncio.Future] = field(default_factory=list)


#: Queue sentinel that makes a worker supervisor loop exit.
_STOP = object()


class SimulationServer:
    """The serving daemon (one instance per process)."""

    def __init__(self, config: ServeConfig) -> None:
        self.cfg = config
        self.metrics = MetricsRegistry()
        self.cache: ResultCache | None = (
            None if config.no_cache else ResultCache(config.cache_dir)
        )
        self.pool: WorkerPool | None = None
        self.bound_port: int | None = None
        self._queue: asyncio.Queue = None  # type: ignore[assignment]
        self._inflight: dict[str, _Task] = {}
        self._executing = 0
        self._seq = 0
        self._draining = False
        self._connections: set[asyncio.StreamWriter] = set()
        self._handlers: set[asyncio.Task] = set()
        self._loop: asyncio.AbstractEventLoop | None = None
        self._shutdown: asyncio.Event | None = None
        self._started = 0.0

    # --- Lifecycle --------------------------------------------------------

    def run(self) -> int:
        """Blocking entry point: serve until drained. Returns 0."""
        try:
            asyncio.run(self._main())
        except KeyboardInterrupt:  # no signal handler (non-main thread)
            pass
        return 0

    def request_shutdown(self) -> None:
        """Begin the graceful drain (call from the event-loop thread)."""
        if self._shutdown is not None and not self._shutdown.is_set():
            self._shutdown.set()

    def shutdown_threadsafe(self) -> None:
        """Begin the drain from any thread (tests drive this)."""
        if self._loop is not None:
            self._loop.call_soon_threadsafe(self.request_shutdown)

    async def _main(self) -> None:
        loop = asyncio.get_running_loop()
        self._loop = loop
        self._shutdown = asyncio.Event()
        self._queue = asyncio.Queue()
        self._started = loop.time()
        if self.cfg.snapshot_dir is not None:
            # Must land in the environment before the pool forks so every
            # worker inherits it (campaign.execute_job reads it per job).
            settings.set_env("snapshot_dir", str(self.cfg.snapshot_dir))
        if self.cfg.prefix_dir is not None:
            # Same pre-fork rule: workers read it per job to warm-start.
            settings.set_env("prefix_dir", str(self.cfg.prefix_dir))
        self.pool = WorkerPool(self.cfg.workers)
        supervisors = [
            asyncio.ensure_future(self._worker_loop(worker))
            for worker in self.pool.workers
        ]

        if self.cfg.socket_path:
            with contextlib.suppress(OSError):
                os.unlink(self.cfg.socket_path)
            server = await asyncio.start_unix_server(
                self._handle_client,
                path=self.cfg.socket_path,
                limit=self.cfg.max_line_bytes,
            )
            where = self.cfg.socket_path
        else:
            server = await asyncio.start_server(
                self._handle_client,
                host=self.cfg.host,
                port=self.cfg.port,
                limit=self.cfg.max_line_bytes,
            )
            self.bound_port = server.sockets[0].getsockname()[1]
            where = f"{self.cfg.host}:{self.bound_port}"
        with contextlib.suppress(NotImplementedError, RuntimeError, ValueError):
            # Signals bind only from the main thread; the threaded test
            # harness drives shutdown_threadsafe() instead.
            loop.add_signal_handler(signal.SIGTERM, self.request_shutdown)
            loop.add_signal_handler(signal.SIGINT, self.request_shutdown)

        self._log(
            f"listening on {where} "
            f"(pid {os.getpid()}, {len(self.pool)} warm workers, "
            f"queue bound {self.cfg.queue_bound}, "
            f"cache {'off' if self.cache is None else self.cache.root})"
        )
        await self._shutdown.wait()
        self._draining = True
        self._log(
            f"draining: queue {self._queue.qsize()}, "
            f"in-flight {self._executing}"
        )
        server.close()
        await server.wait_closed()

        deadline = loop.time() + self.cfg.drain_timeout_s
        while (self._queue.qsize() or self._executing) and loop.time() < deadline:
            await asyncio.sleep(0.02)
        # Whatever is still queued past the drain window gets a clean
        # rejection rather than silence.
        abandoned = 0
        while True:
            try:
                task = self._queue.get_nowait()
            except asyncio.QueueEmpty:
                break
            if task is not _STOP:
                abandoned += 1
                self._resolve(
                    task,
                    ("error", E_SHUTTING_DOWN, "daemon drained before this job ran"),
                )
        for _ in supervisors:
            self._queue.put_nowait(_STOP)
        # A worker stuck past the drain window must not hang the exit:
        # give supervisors a bounded grace period, then cancel.
        _, stuck = await asyncio.wait(
            supervisors, timeout=self.cfg.drain_timeout_s + 5.0
        )
        for supervisor in stuck:  # pragma: no cover - wedged worker
            supervisor.cancel()
        if stuck:  # pragma: no cover - wedged worker
            await asyncio.wait(stuck, timeout=2.0)
        for task in list(self._inflight.values()):
            abandoned += 1
            self._resolve(
                task, ("error", E_SHUTTING_DOWN, "daemon drained mid-job")
            )
        self.pool.stop()
        # Let handlers flush final responses, then close their streams
        # and wait for them to finish — leaving them to be cancelled by
        # asyncio.run() would log spurious CancelledError tracebacks.
        await asyncio.sleep(0.05)
        for writer in list(self._connections):
            writer.close()
        handlers = [t for t in self._handlers if not t.done()]
        if handlers:
            _, late = await asyncio.wait(handlers, timeout=2.0)
            for handler in late:  # pragma: no cover - stuck handler
                handler.cancel()
            if late:  # pragma: no cover - stuck handler
                await asyncio.wait(late, timeout=1.0)
        if self.cfg.socket_path:
            with contextlib.suppress(OSError):
                os.unlink(self.cfg.socket_path)
        served = self.metrics.counter("serve.requests").value
        self._log(
            f"drained: {served} requests served"
            + (f", {abandoned} abandoned" if abandoned else "")
        )

    def _log(self, message: str) -> None:
        stamp = time.strftime("%H:%M:%S")
        print(f"[serve {stamp}] {message}", file=sys.stderr, flush=True)

    # --- Connection handling ---------------------------------------------

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.metrics.counter("serve.connections").inc()
        self._connections.add(writer)
        current = asyncio.current_task()
        if current is not None:
            self._handlers.add(current)
        try:
            while True:
                try:
                    line = await reader.readline()
                except ValueError:
                    # Line exceeded the stream limit. The frame boundary
                    # is lost, so answer and close this connection.
                    self.metrics.counter("serve.oversized").inc()
                    await self._send(
                        writer,
                        error_response(
                            None,
                            E_OVERSIZED,
                            f"request line over {self.cfg.max_line_bytes} "
                            "bytes; closing connection",
                        ),
                    )
                    break
                if not line:
                    break  # EOF: client closed cleanly
                if not line.endswith(b"\n"):
                    break  # client vanished mid-frame: clean close
                if not line.strip():
                    continue
                response = await self._dispatch(line)
                if not await self._send(writer, response):
                    break
        except (ConnectionResetError, BrokenPipeError):
            pass  # client went away; nothing to clean up beyond finally
        except asyncio.CancelledError:
            raise
        except Exception as exc:  # never let one connection kill the daemon
            self.metrics.counter("serve.internal_errors").inc()
            self._log(f"connection handler error: {exc!r}")
            with contextlib.suppress(Exception):
                await self._send(
                    writer, error_response(None, E_INTERNAL, repr(exc))
                )
        finally:
            if current is not None:
                self._handlers.discard(current)
            self._connections.discard(writer)
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    async def _send(
        self, writer: asyncio.StreamWriter, response: dict[str, Any]
    ) -> bool:
        try:
            writer.write(encode(response))
            await writer.drain()
            return True
        except (ConnectionResetError, BrokenPipeError, RuntimeError):
            return False

    async def _dispatch(self, line: bytes) -> dict[str, Any]:
        self.metrics.counter("serve.requests").inc()
        try:
            request = parse_request(line)
        except ProtocolError as exc:
            self.metrics.counter("serve.protocol_errors").inc()
            return error_response(None, E_BAD_REQUEST, str(exc))
        if request.verb == "ping":
            return ok_response(request.id, verb="ping", protocol=PROTOCOL_VERSION)
        if request.verb == "run":
            return await self._handle_run(request)
        if request.verb == "health":
            return self._handle_health(request.id)
        if request.verb == "stats":
            return self._handle_stats(request.id)
        if request.verb == "list":
            return self._handle_list(request.id)
        if request.verb == "prefix-fetch":
            return await self._handle_prefix_fetch(request)
        if request.verb == "prefix-put":
            return await self._handle_prefix_put(request)
        if request.verb == "shutdown":
            self.request_shutdown()
            return ok_response(request.id, verb="shutdown", draining=True)
        self.metrics.counter("serve.unknown_verbs").inc()
        return error_response(
            request.id,
            E_UNKNOWN_VERB,
            f"unknown verb {request.verb!r}; known: {', '.join(KNOWN_VERBS)}",
        )

    # --- The run verb -----------------------------------------------------

    async def _handle_run(self, request: Request) -> dict[str, Any]:
        loop = self._loop
        assert loop is not None
        began = loop.time()
        if self._draining:
            return error_response(
                request.id, E_SHUTTING_DOWN, "daemon is draining"
            )
        deadline_s = request.payload.get("deadline_s")
        if deadline_s is not None and (
            not isinstance(deadline_s, (int, float))
            or isinstance(deadline_s, bool)
            or deadline_s <= 0
        ):
            return error_response(
                request.id,
                E_BAD_REQUEST,
                f"deadline_s must be a positive number, got {deadline_s!r}",
            )
        try:
            job = job_from_dict(request.payload.get("job"))
        except ConfigError as exc:
            self.metrics.counter("serve.invalid_jobs").inc()
            return error_response(request.id, E_INVALID_JOB, str(exc))
        if job.workload.kind not in registered_workloads():
            self.metrics.counter("serve.invalid_jobs").inc()
            return error_response(
                request.id,
                E_INVALID_JOB,
                f"unknown workload kind {job.workload.kind!r}; registered: "
                f"{', '.join(registered_workloads())}",
            )
        fingerprint = job_fingerprint(job)

        if self.cache is not None:
            envelope = self.cache.get_envelope(fingerprint)
            if envelope is not None:
                envelope.pop("job", None)
                self.metrics.counter("serve.cache_hits").inc()
                return self._run_ok(
                    request.id, envelope, began, fingerprint,
                    cached=True, deduped=False,
                )

        leader = self._inflight.get(fingerprint)
        if leader is not None:
            future: asyncio.Future = loop.create_future()
            leader.futures.append(future)
            self.metrics.counter("serve.dedup_hits").inc()
            outcome = await future
            return self._run_outcome(
                request.id, outcome, began, fingerprint, deduped=True
            )

        if self._queue.qsize() >= self.cfg.queue_bound:
            self.metrics.counter("serve.overloaded").inc()
            return error_response(
                request.id,
                E_OVERLOADED,
                f"admission queue full ({self.cfg.queue_bound} queued)",
                retry_after_s=self._retry_after(),
            )

        future = loop.create_future()
        task = _Task(
            fingerprint=fingerprint,
            job_data=job.to_dict(),
            describe=job.describe(),
            deadline=(began + deadline_s) if deadline_s is not None else None,
            enqueued=began,
            futures=[future],
        )
        self._inflight[fingerprint] = task
        self._queue.put_nowait(task)
        outcome = await future
        return self._run_outcome(
            request.id, outcome, began, fingerprint, deduped=False
        )

    def _run_outcome(
        self,
        request_id: Any,
        outcome: tuple,
        began: float,
        fingerprint: str,
        *,
        deduped: bool,
    ) -> dict[str, Any]:
        if outcome[0] == "ok":
            return self._run_ok(
                request_id, outcome[1], began, fingerprint,
                cached=False, deduped=deduped,
            )
        _, code, message = outcome
        self.metrics.counter("serve.run_errors").inc()
        return error_response(request_id, code, message, fingerprint=fingerprint)

    def _run_ok(
        self,
        request_id: Any,
        envelope: dict[str, Any],
        began: float,
        fingerprint: str,
        *,
        cached: bool,
        deduped: bool,
    ) -> dict[str, Any]:
        assert self._loop is not None
        service_s = self._loop.time() - began
        self.metrics.counter("serve.run_ok").inc()
        if not cached and not deduped:
            self.metrics.counter("serve.fresh_results").inc()
        self.metrics.histogram("serve.service_us").observe(
            max(0.0, service_s * 1e6)
        )
        return ok_response(
            request_id,
            verb="run",
            result=envelope,
            cached=cached,
            deduped=deduped,
            fingerprint=fingerprint,
            service_s=round(service_s, 6),
        )

    def _resolve(self, task: _Task, outcome: tuple) -> None:
        self._inflight.pop(task.fingerprint, None)
        for future in task.futures:
            if not future.done():
                future.set_result(outcome)

    def _retry_after(self) -> float:
        """How long an over-admission client should back off.

        Estimate: backlog x mean execution time, spread over the workers
        *currently alive* — a worker mid-respawn (or a pool already torn
        down during drain) must not zero the divisor. Before any sample
        exists the mean falls back to half the configured job timeout (a
        job is admitted expecting to finish within it), or 0.5 s when no
        timeout is configured.
        """
        exec_hist = self.metrics.histogram("serve.exec_us")
        if exec_hist.count:
            mean_s = exec_hist.mean / 1e6
        elif self.cfg.job_timeout_s is not None:
            mean_s = self.cfg.job_timeout_s / 2
        else:
            mean_s = 0.5
        backlog = self._queue.qsize() + self._executing
        workers = max(1, self.pool.alive if self.pool is not None else 0)
        return round(max(0.05, mean_s * backlog / workers), 3)

    # --- Worker supervision ----------------------------------------------

    async def _worker_loop(self, worker: Worker) -> None:
        assert self._loop is not None
        while True:
            task = await self._queue.get()
            if task is _STOP:
                break
            now = self._loop.time()
            if task.deadline is not None and now >= task.deadline:
                self.metrics.counter("serve.deadline_misses").inc()
                self._resolve(
                    task,
                    (
                        "error",
                        E_DEADLINE,
                        f"deadline expired after {now - task.enqueued:.3f}s in queue",
                    ),
                )
                continue
            self.metrics.histogram("serve.queue_us").observe(
                max(0.0, (now - task.enqueued) * 1e6)
            )
            self._executing += 1
            try:
                await self._execute(worker, task, attempt=0)
            finally:
                self._executing -= 1

    async def _execute(self, worker: Worker, task: _Task, attempt: int) -> None:
        assert self._loop is not None
        self._seq += 1
        seq = self._seq
        now = self._loop.time()
        job_timeout = self.cfg.job_timeout_s
        deadline_left = (
            task.deadline - now if task.deadline is not None else None
        )
        timeout = job_timeout
        deadline_is_binding = False
        if deadline_left is not None and (
            timeout is None or deadline_left <= timeout
        ):
            timeout = deadline_left
            deadline_is_binding = True
        try:
            worker.submit(seq, task.job_data)
        except (OSError, ValueError):
            await self._recover(worker, task, attempt, "crash", "worker pipe closed")
            return
        began = self._loop.time()
        try:
            assert worker.conn is not None
            message = await asyncio.wait_for(conn_recv(worker.conn), timeout=timeout)
        except asyncio.TimeoutError:
            elapsed = self._loop.time() - began
            kind = "deadline" if deadline_is_binding else "timeout"
            await self._recover(
                worker, task, attempt, kind,
                f"{'deadline expired' if deadline_is_binding else 'timed out'} "
                f"after {elapsed:.3f}s on worker {worker.id}",
            )
            return
        except (EOFError, OSError):
            exitcode = worker.process.exitcode if worker.process else None
            await self._recover(
                worker, task, attempt, "crash",
                f"worker {worker.id} exited (code {exitcode})",
            )
            return
        if message[0] != seq:  # pragma: no cover - defensive desync guard
            await self._recover(
                worker, task, attempt, "crash",
                f"worker {worker.id} answered out of sequence",
            )
            return
        worker.jobs_done += 1
        self.metrics.histogram("serve.exec_us").observe(
            max(0.0, (self._loop.time() - began) * 1e6)
        )
        if message[1] == "ok":
            envelope = message[2]
            if self.cache is not None:
                try:
                    self.cache.put_envelope(task.fingerprint, envelope)
                except (OSError, SerializationError) as exc:
                    self._log(f"cache write failed for {task.describe}: {exc}")
            self._resolve(task, ("ok", envelope))
        else:
            _, _, name, text, trace = message
            self.metrics.counter("serve.job_failures").inc()
            code = E_INVALID_JOB if name == "ConfigError" else E_JOB_FAILED
            self._log(f"job {task.describe} raised {name}: {text}")
            self._resolve(task, ("error", code, f"{name}: {text}"))

    async def _recover(
        self, worker: Worker, task: _Task, attempt: int, kind: str, detail: str
    ) -> None:
        """Crash/timeout/deadline recovery: kill, respawn, maybe retry."""
        worker.respawn()
        self.metrics.counter("serve.worker_restarts").inc()
        if kind == "deadline":
            self.metrics.counter("serve.deadline_misses").inc()
            self._resolve(task, ("error", E_DEADLINE, detail))
            return
        self.metrics.counter(
            "serve.worker_crashes" if kind == "crash" else "serve.worker_timeouts"
        ).inc()
        if attempt == 0:
            self.metrics.counter("serve.retries").inc()
            self._log(f"retrying {task.describe}: {detail}")
            await self._execute(worker, task, attempt=1)
        else:
            self._log(f"job {task.describe} failed twice: {detail}")
            self._resolve(
                task, ("error", E_JOB_FAILED, f"job failed twice: {detail}")
            )

    # --- Introspection verbs ---------------------------------------------

    def _handle_health(self, request_id: Any) -> dict[str, Any]:
        assert self._loop is not None and self.pool is not None
        return ok_response(
            request_id,
            verb="health",
            status="draining" if self._draining else "ok",
            protocol=PROTOCOL_VERSION,
            pid=os.getpid(),
            workers={
                "configured": len(self.pool),
                "alive": self.pool.alive,
                "restarts": self.pool.restarts,
            },
            queue_depth=self._queue.qsize(),
            queue_bound=self.cfg.queue_bound,
            in_flight=self._executing,
            uptime_s=round(self._loop.time() - self._started, 3),
        )

    def _handle_stats(self, request_id: Any) -> dict[str, Any]:
        assert self._loop is not None
        snapshot = self.metrics.to_dict()
        counters = snapshot["counters"]
        hits = counters.get("serve.cache_hits", 0)
        dedup = counters.get("serve.dedup_hits", 0)
        fresh = counters.get("serve.fresh_results", 0)
        answered = hits + dedup + fresh
        service = self.metrics.histogram("serve.service_us")
        derived: dict[str, Any] = {
            "cache_hit_rate": round(hits / answered, 4) if answered else 0.0,
            "dedup_rate": round(dedup / answered, 4) if answered else 0.0,
            "service_p50_us": (
                round(service.quantile(0.5), 1) if service.count else None
            ),
            "service_p99_us": (
                round(service.quantile(0.99), 1) if service.count else None
            ),
        }
        if self.cfg.prefix_dir is not None:
            from repro.snapshot.prefix import PrefixStore

            derived["warm_prefixes"] = PrefixStore(self.cfg.prefix_dir).entries()
        return ok_response(
            request_id,
            verb="stats",
            stats=snapshot,
            derived=derived,
            queue_depth=self._queue.qsize(),
            in_flight=self._executing,
            uptime_s=round(self._loop.time() - self._started, 3),
        )

    def _handle_list(self, request_id: Any) -> dict[str, Any]:
        from repro.cli import _workload_names

        return ok_response(
            request_id,
            verb="list",
            workload_kinds=list(registered_workloads()),
            workloads=_workload_names(),
            strategies=[
                {"name": kind.value, "provides_safety": kind.provides_safety}
                for kind in RevokerKind
            ],
        )

    # --- The prefix transfer verbs (the dist coordinator's channel) -------

    def _prefix_request_key(self, request: Request) -> str | dict[str, Any]:
        if self.cfg.prefix_dir is None:
            return error_response(
                request.id,
                E_BAD_REQUEST,
                "daemon has no prefix store (start it with --prefix-dir)",
            )
        key = request.payload.get("key")
        if not isinstance(key, str) or not key:
            return error_response(
                request.id, E_BAD_REQUEST, "prefix verbs need a string 'key'"
            )
        return key

    async def _handle_prefix_fetch(self, request: Request) -> dict[str, Any]:
        import base64

        from repro.snapshot.prefix import PrefixStore

        key = self._prefix_request_key(request)
        if isinstance(key, dict):
            return key
        store = PrefixStore(self.cfg.prefix_dir)
        assert self._loop is not None
        blob = await self._loop.run_in_executor(None, store.get, key)
        if blob is None:
            self.metrics.counter("serve.prefix_misses").inc()
            return error_response(
                request.id, E_NOT_FOUND, f"no prefix {key} in the store"
            )
        self.metrics.counter("serve.prefix_fetches").inc()
        return ok_response(
            request.id,
            verb="prefix-fetch",
            key=key,
            blob=base64.b64encode(blob).decode("ascii"),
        )

    async def _handle_prefix_put(self, request: Request) -> dict[str, Any]:
        import base64
        import binascii

        from repro.snapshot.prefix import PrefixStore

        key = self._prefix_request_key(request)
        if isinstance(key, dict):
            return key
        encoded = request.payload.get("blob")
        if not isinstance(encoded, str) or not encoded:
            return error_response(
                request.id, E_BAD_REQUEST, "prefix-put needs a base64 'blob'"
            )
        try:
            blob = base64.b64decode(encoded, validate=True)
        except (binascii.Error, ValueError) as exc:
            return error_response(
                request.id, E_BAD_REQUEST, f"blob is not valid base64: {exc}"
            )
        store = PrefixStore(self.cfg.prefix_dir)
        assert self._loop is not None
        stored = await self._loop.run_in_executor(
            None, store.put_if_absent, key, blob
        )
        self.metrics.counter("serve.prefix_puts").inc()
        return ok_response(
            request.id, verb="prefix-put", key=key, stored=stored
        )
