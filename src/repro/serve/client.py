"""Blocking client for the simulation service.

One :class:`ServeClient` wraps one socket connection (Unix or TCP) and
issues one request at a time; open several clients (the load generator
does, one per thread) to keep many requests in flight. Connection-level
failures — refused, reset, broken pipe — are retried with backoff up to
``retries`` times; *response timeouts are not retried* (the job keeps
running server-side; the caller decides), and ``overloaded`` rejections
are surfaced as :class:`Overloaded` unless ``retry_overloaded`` asks the
client to honor the server's ``retry_after_s`` hint.

Typical use::

    with ServeClient(socket_path="/tmp/repro.sock") as client:
        client.wait_ready(timeout=10.0)
        response = client.run("spec", {"benchmark": "hmmer", "input": "retro"},
                              revoker="reloaded")
        print(response.result.summary(), response.cached)
"""

from __future__ import annotations

import itertools
import socket
import time
from dataclasses import dataclass
from typing import Any, Mapping

from repro.core.metrics import RunResult
from repro.errors import ReproError
from repro.runner.serialize import result_from_dict
from repro.serve.protocol import ProtocolError, decode, encode


class ServeError(ReproError):
    """Base class for client-side service errors."""


class ServerUnavailable(ServeError):
    """Could not connect (after retries) or the daemon closed on us."""


class ServeTimeout(ServeError):
    """No response within the request timeout (the job may still be
    running server-side; the connection is closed to resynchronize)."""


class RequestFailed(ServeError):
    """The daemon answered with a structured error response."""

    def __init__(self, code: str, message: str, response: dict[str, Any]):
        super().__init__(f"{code}: {message}")
        self.code = code
        self.message = message
        self.response = response


class Overloaded(RequestFailed):
    """Admission control rejected the request; honor ``retry_after_s``."""

    @property
    def retry_after_s(self) -> float:
        return float(self.response.get("retry_after_s", 0.1))


@dataclass
class RunResponse:
    """A decoded ``run`` response."""

    result: RunResult
    cached: bool
    deduped: bool
    fingerprint: str
    service_s: float


class ServeClient:
    """A blocking connection to the serving daemon."""

    def __init__(
        self,
        socket_path: str | None = None,
        host: str | None = None,
        port: int | None = None,
        *,
        connect_timeout: float = 5.0,
        request_timeout: float = 120.0,
        retries: int = 2,
        retry_backoff_s: float = 0.1,
        retry_overloaded: bool = False,
    ) -> None:
        if bool(socket_path) == bool(host):
            raise ServeError("give a unix socket path or a host, not both/neither")
        if host and port is None:
            raise ServeError("a TCP client needs a port")
        self.socket_path = socket_path
        self.host = host
        self.port = port
        self.connect_timeout = connect_timeout
        self.request_timeout = request_timeout
        self.retries = retries
        self.retry_backoff_s = retry_backoff_s
        self.retry_overloaded = retry_overloaded
        self._sock: socket.socket | None = None
        self._file: Any = None
        self._ids = itertools.count(1)

    # --- Connection management -------------------------------------------

    def _connect(self) -> None:
        if self.socket_path:
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            target: Any = self.socket_path
        else:
            sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            target = (self.host, self.port)
        sock.settimeout(self.connect_timeout)
        sock.connect(target)
        self._sock = sock
        self._file = sock.makefile("rb")

    def close(self) -> None:
        if self._file is not None:
            try:
                self._file.close()
            except OSError:
                pass
            self._file = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    # --- Requests ---------------------------------------------------------

    def request(
        self,
        verb: str,
        payload: Mapping[str, Any] | None = None,
        timeout: float | None = None,
    ) -> dict[str, Any]:
        """Issue one request; returns the ``ok`` response dict or raises.

        Connection failures reconnect and retry (requests are idempotent:
        runs are content-addressed and collapse server-side); timeouts
        and structured errors raise without retrying.
        """
        request_id = next(self._ids)
        frame = encode({"id": request_id, "verb": verb, **(payload or {})})
        timeout = self.request_timeout if timeout is None else timeout
        connect_attempts = 0
        overload_attempts = 0
        last_error: Exception | None = None
        while True:
            try:
                if self._sock is None:
                    self._connect()
                assert self._sock is not None
                self._sock.settimeout(timeout)
                self._sock.sendall(frame)
                line = self._file.readline()
                if not line:
                    # Daemon closed the connection (drain, oversized...).
                    raise ConnectionResetError("daemon closed the connection")
            except socket.timeout:
                # The response will still arrive eventually and desync
                # the stream: drop the connection instead of retrying.
                self.close()
                raise ServeTimeout(
                    f"no response to {verb!r} within {timeout}s"
                ) from None
            except (OSError, ValueError) as exc:
                self.close()
                last_error = exc
                connect_attempts += 1
                if connect_attempts > self.retries:
                    raise ServerUnavailable(
                        f"cannot reach daemon after {connect_attempts} "
                        f"attempts: {last_error}"
                    ) from exc
                time.sleep(self.retry_backoff_s * (2 ** (connect_attempts - 1)))
                continue
            try:
                response = decode(line)
            except ProtocolError as exc:
                self.close()
                raise ServeError(f"bad response frame: {exc}") from exc
            if response.get("id") not in (request_id, None):
                self.close()
                raise ServeError(
                    f"response id {response.get('id')!r} != request {request_id}"
                )
            if response.get("ok"):
                return response
            error = response.get("error") or {}
            code = str(error.get("code", "unknown"))
            message = str(error.get("message", "unknown error"))
            if code == "overloaded":
                exc = Overloaded(code, message, response)
                if self.retry_overloaded and overload_attempts < self.retries:
                    overload_attempts += 1
                    time.sleep(exc.retry_after_s)
                    continue
                raise exc
            raise RequestFailed(code, message, response)

    # --- Verb helpers -----------------------------------------------------

    def ping(self, timeout: float | None = None) -> dict[str, Any]:
        return self.request("ping", timeout=timeout or 5.0)

    def wait_ready(self, timeout: float = 10.0, interval: float = 0.05) -> None:
        """Poll until the daemon answers a ping (daemon start-up)."""
        deadline = time.monotonic() + timeout
        while True:
            try:
                self.ping(timeout=min(1.0, timeout))
                return
            except (ServeError, OSError):
                if time.monotonic() >= deadline:
                    raise ServerUnavailable(
                        f"daemon not ready within {timeout}s"
                    ) from None
                self.close()
                time.sleep(interval)

    def run(
        self,
        kind: str,
        params: Mapping[str, Any] | None = None,
        revoker: str = "reloaded",
        config: Mapping[str, Any] | None = None,
        deadline_s: float | None = None,
        timeout: float | None = None,
    ) -> RunResponse:
        """Run one simulation job and decode the result."""
        job = {
            "workload": {"kind": kind, "params": dict(params or {})},
            "revoker": revoker,
            "config": dict(config or {}),
        }
        return self.run_job_dict(job, deadline_s=deadline_s, timeout=timeout)

    def run_job_dict(
        self,
        job: Mapping[str, Any],
        deadline_s: float | None = None,
        timeout: float | None = None,
    ) -> RunResponse:
        payload: dict[str, Any] = {"job": dict(job)}
        if deadline_s is not None:
            payload["deadline_s"] = deadline_s
        response = self.request("run", payload, timeout=timeout)
        return RunResponse(
            result=result_from_dict(response["result"]),
            cached=bool(response.get("cached")),
            deduped=bool(response.get("deduped")),
            fingerprint=str(response.get("fingerprint", "")),
            service_s=float(response.get("service_s", 0.0)),
        )

    def prefix_fetch(
        self, key: str, timeout: float | None = None
    ) -> bytes | None:
        """Pull one warm-start prefix blob from the daemon's store.

        Returns None on a miss (the ``not-found`` error code) so the
        dist coordinator can degrade to a cold run without exception
        plumbing; every other failure raises as usual.
        """
        import base64

        try:
            response = self.request(
                "prefix-fetch", {"key": key}, timeout=timeout or 30.0
            )
        except RequestFailed as exc:
            if exc.code == "not-found":
                return None
            raise
        return base64.b64decode(response["blob"])

    def prefix_put(
        self, key: str, blob: bytes, timeout: float | None = None
    ) -> bool:
        """Push one prefix blob into the daemon's store (first-writer-
        wins). Returns True iff this call stored it."""
        import base64

        response = self.request(
            "prefix-put",
            {"key": key, "blob": base64.b64encode(blob).decode("ascii")},
            timeout=timeout or 30.0,
        )
        return bool(response.get("stored"))

    def health(self) -> dict[str, Any]:
        return self.request("health", timeout=5.0)

    def stats(self) -> dict[str, Any]:
        return self.request("stats", timeout=5.0)

    def catalog(self) -> dict[str, Any]:
        return self.request("list", timeout=5.0)

    def shutdown(self) -> dict[str, Any]:
        return self.request("shutdown", timeout=5.0)
