"""The serve wire protocol: newline-delimited JSON over a stream socket.

One request per line, one response per line, strictly in order per
connection (open several connections to pipeline — the blocking client
and the load generator both do). Every request is a JSON object with a
``verb`` and an optional caller-chosen ``id`` that is echoed back
verbatim, so a client can match responses without trusting ordering.

Verbs:

- ``ping``     liveness probe; answers immediately from the event loop;
- ``run``      execute one simulation job (``{"job": {workload, revoker,
  config}, "deadline_s": <float?>}``); the response carries the
  serialized result envelope (decode with
  :func:`repro.runner.serialize.result_from_dict`) plus ``cached`` /
  ``deduped`` origin flags and the service time;
- ``health``   readiness: status (``ok``/``draining``), live worker
  count, queue depth, in-flight count, uptime;
- ``stats``    the full metrics registry dump plus derived figures
  (cache hit rate, p50/p99 service latency);
- ``list``     the workload/strategy catalog, for client discovery;
- ``prefix-fetch`` read one warm-start prefix blob out of the daemon's
  prefix store (``{"key": <hex>}`` → ``{"blob": <base64>}`` or
  ``not-found``); the dist coordinator uses it to pull a freshly
  captured prefix off the node that won the capture race;
- ``prefix-put`` store one prefix blob (``{"key": <hex>, "blob":
  <base64>}`` → ``{"stored": <bool>}``, first-writer-wins); how the
  coordinator pre-warms the other nodes in the ring (docs/DIST.md);
- ``shutdown`` begin a graceful drain (same as SIGTERM).

Responses are ``{"id":..., "ok": true, ...}`` or ``{"id":..., "ok":
false, "error": {"code":..., "message":...}}``. Error codes are the
``E_*`` constants below; ``overloaded`` responses carry a
``retry_after_s`` hint. Requests longer than the server's line limit are
answered with ``oversized`` and the connection is closed (the frame
boundary is lost); every other error leaves the connection usable.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.errors import ReproError

#: Bumped when a request or response field changes meaning.
#: v2: added the ``prefix-fetch``/``prefix-put`` verbs and ``not-found``.
PROTOCOL_VERSION = 2

#: Default cap on one request line (the daemon's knob can override).
DEFAULT_MAX_LINE_BYTES = 1 << 20

KNOWN_VERBS = (
    "ping",
    "run",
    "health",
    "stats",
    "list",
    "prefix-fetch",
    "prefix-put",
    "shutdown",
)

# Error codes.
E_BAD_REQUEST = "bad-request"        # malformed JSON / missing fields
E_OVERSIZED = "oversized"            # request line over the limit
E_UNKNOWN_VERB = "unknown-verb"
E_INVALID_JOB = "invalid-job"        # job failed declarative validation
E_OVERLOADED = "overloaded"          # admission queue full; retry later
E_DEADLINE = "deadline"              # per-request deadline expired
E_JOB_FAILED = "job-failed"          # worker raised / crashed twice
E_NOT_FOUND = "not-found"            # prefix-fetch key not in the store
E_SHUTTING_DOWN = "shutting-down"    # daemon is draining
E_INTERNAL = "internal"              # unexpected server-side error


class ProtocolError(ReproError):
    """A wire message could not be parsed as a protocol request."""


@dataclass(frozen=True)
class Request:
    """One parsed request line."""

    verb: str
    id: Any = None
    payload: Mapping[str, Any] = field(default_factory=dict)


def encode(message: Mapping[str, Any]) -> bytes:
    """One wire frame: compact JSON plus the terminating newline."""
    return (
        json.dumps(message, sort_keys=True, separators=(",", ":")) + "\n"
    ).encode()


def decode(line: bytes | str) -> dict[str, Any]:
    """Parse one frame into a dict, or raise :class:`ProtocolError`."""
    if isinstance(line, bytes):
        try:
            line = line.decode()
        except UnicodeDecodeError as exc:
            raise ProtocolError(f"frame is not UTF-8: {exc}") from exc
    try:
        message = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"frame is not valid JSON: {exc}") from exc
    if not isinstance(message, dict):
        raise ProtocolError(
            f"frame must be a JSON object, got {type(message).__name__}"
        )
    return message


def parse_request(line: bytes | str) -> Request:
    """Decode and structurally validate one request line.

    Verb *existence* is checked here; whether the verb is known is the
    server's call (so the error can carry the catalog).
    """
    message = decode(line)
    verb = message.get("verb")
    if not isinstance(verb, str) or not verb:
        raise ProtocolError("request needs a non-empty string 'verb'")
    payload = {k: v for k, v in message.items() if k not in ("verb", "id")}
    return Request(verb=verb, id=message.get("id"), payload=payload)


def ok_response(request_id: Any, **fields: Any) -> dict[str, Any]:
    return {"id": request_id, "ok": True, **fields}


def error_response(
    request_id: Any, code: str, message: str, **fields: Any
) -> dict[str, Any]:
    return {
        "id": request_id,
        "ok": False,
        "error": {"code": code, "message": message},
        **fields,
    }
