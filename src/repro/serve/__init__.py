"""``repro.serve`` — a long-running simulation service.

The serving layer turns the one-shot ``python -m repro run`` flow into a
daemon: a fixed pool of warm forked workers executes jobs submitted over
a Unix or TCP socket (newline-delimited JSON), requests are deduplicated
against the content-addressed result cache and against each other while
in flight, and admission control sheds load with structured
``overloaded`` rejections instead of unbounded queueing. Live
``health``/``stats`` verbs expose the daemon's metrics registry.

Modules:

- :mod:`repro.serve.protocol` — wire format, verbs, error codes;
- :mod:`repro.serve.workers`  — the warm worker pool;
- :mod:`repro.serve.server`   — the asyncio daemon (dedup, backpressure,
  supervision, graceful drain);
- :mod:`repro.serve.client`   — blocking client library;
- :mod:`repro.serve.bench`    — closed/open-loop load generator.
"""

from repro.serve.client import (
    Overloaded,
    RequestFailed,
    RunResponse,
    ServeClient,
    ServeError,
    ServerUnavailable,
    ServeTimeout,
)
from repro.serve.protocol import (
    DEFAULT_MAX_LINE_BYTES,
    KNOWN_VERBS,
    PROTOCOL_VERSION,
    ProtocolError,
)
from repro.serve.server import ServeConfig, SimulationServer

__all__ = [
    "DEFAULT_MAX_LINE_BYTES",
    "KNOWN_VERBS",
    "PROTOCOL_VERSION",
    "Overloaded",
    "ProtocolError",
    "RequestFailed",
    "RunResponse",
    "ServeClient",
    "ServeConfig",
    "ServeError",
    "ServeTimeout",
    "ServerUnavailable",
    "SimulationServer",
]
