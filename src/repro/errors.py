"""Exception hierarchy for the Cornucopia Reloaded reproduction.

Everything raised by this package derives from :class:`ReproError`, so client
code can catch one type. Architectural traps (which are *modelled* control
flow, not programming errors) live in :mod:`repro.machine.trap` and derive
from :class:`ArchitecturalTrap` here.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigError(ReproError):
    """A configuration value is invalid or inconsistent."""


class CapabilityError(ReproError):
    """An operation on a capability value violates the CHERI model.

    Raised for non-monotonic derivation, dereference through an untagged
    capability, out-of-bounds access, or missing permissions. In hardware
    these would be capability exceptions delivered to the OS; in this model
    they indicate the simulated program performed an illegal access, so the
    simulation treats them as fail-stop, exactly as CHERI intends.
    """


class AllocatorError(ReproError):
    """Heap allocator misuse (double free, free of a non-heap pointer...)."""


class VMError(ReproError):
    """Virtual memory misuse (unmapped access, bad munmap, overlap...)."""


class SimulationError(ReproError):
    """The simulation reached an inconsistent internal state (a bug)."""


class StatsError(ReproError, ValueError):
    """A statistics helper was fed invalid input (empty sequence,
    out-of-range percentile, non-positive geomean operand).

    Also a :class:`ValueError` so callers treating these as plain domain
    errors keep working.
    """


class PerfError(ReproError):
    """The continuous-benchmarking layer was misused (unknown benchmark
    or suite, malformed perf report, baseline overwrite at a different
    git commit without force...)."""


class SnapshotError(ReproError):
    """A checkpoint could not be taken, parsed, or restored (unsupported
    workload, corrupt or version-mismatched checkpoint file, restore into
    an incompatible tracer configuration...)."""


class DistError(ReproError):
    """The distributed campaign coordinator could not proceed (no node
    reachable at startup, malformed --nodes list, every node lost
    mid-campaign...). Per-job terminal failures raise
    :class:`~repro.runner.pool.CampaignJobError` instead, after the
    rest of the batch settles."""


class ArchitecturalTrap(ReproError):
    """Base class for traps the simulated CPU delivers to the kernel.

    These are expected, handled control transfers (like page faults), not
    error conditions; the machine layer raises them and the kernel layer
    catches and resolves them.
    """
