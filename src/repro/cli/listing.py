"""``repro list`` — the workload and strategy catalog."""

from __future__ import annotations

import argparse

from repro.cli._common import _workload_names
from repro.core.config import RevokerKind


def cmd_list(args: argparse.Namespace) -> int:
    if getattr(args, "json", False):
        import json

        from repro.runner.campaign import registered_workloads

        print(json.dumps(
            {
                "workloads": _workload_names(),
                "workload_kinds": list(registered_workloads()),
                "strategies": [
                    {"name": kind.value, "provides_safety": kind.provides_safety}
                    for kind in RevokerKind
                ],
            },
            indent=2,
            sort_keys=True,
        ))
        return 0
    print("workloads:")
    for name in _workload_names():
        print(f"  {name}")
    print("strategies:")
    for kind in RevokerKind:
        safety = "temporal safety" if kind.provides_safety else "no safety"
        print(f"  {kind.value:11s} ({safety})")
    return 0


def register(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser("list", help="available workloads and strategies")
    p.add_argument("--json", action="store_true",
                   help="emit the catalog as JSON for machine consumption")
    p.set_defaults(fn=cmd_list)
