"""``repro dist`` — multi-node campaign tools (docs/DIST.md).

``dist run`` is ``campaign`` with a mandatory ``--nodes`` (same spec
format, same options, same output); ``dist status`` probes each node and
prints its health.
"""

from __future__ import annotations

import argparse

from repro.analysis import format_table
from repro.cli.campaign import add_campaign_arguments, cmd_campaign


def cmd_dist_status(args: argparse.Namespace) -> int:
    import json

    from repro.dist import parse_nodes
    from repro.serve.client import ServeError

    specs = parse_nodes(args.nodes)
    rows = []
    payload = {}
    down = 0
    for node_spec in specs:
        health: dict = {}
        try:
            client = node_spec.client(request_timeout=args.timeout, retries=0)
            with client:
                health = client.health()
            alive = True
        except (ServeError, OSError):
            alive = False
            down += 1
        payload[node_spec.name] = {"alive": alive, **health}
        workers = health.get("workers") or {}
        rows.append([
            node_spec.name,
            health.get("status", "up") if alive else "DOWN",
            f"{workers.get('alive', '-')}/{workers.get('configured', '-')}"
            if alive else "-",
            health.get("queue_depth", "-") if alive else "-",
            health.get("in_flight", "-") if alive else "-",
        ])
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(format_table(
            ["node", "state", "workers", "queue", "in-flight"],
            rows,
            title=f"{len(specs) - down}/{len(specs)} nodes up",
        ))
    # Mirror the ring's liveness rule: usable while any node answers.
    return 0 if down < len(specs) else 1


def register(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser(
        "dist",
        help="multi-node sharded campaigns (docs/DIST.md)",
    )
    dsub = p.add_subparsers(dest="dist_cmd", required=True)

    ps = dsub.add_parser("status", help="probe each node and print health")
    ps.add_argument("--nodes", required=True,
                    help="comma-separated unix socket paths or host:port")
    ps.add_argument("--timeout", type=float, default=5.0,
                    help="per-node probe timeout in seconds")
    ps.add_argument("--json", action="store_true",
                    help="emit the probe results as JSON")
    ps.set_defaults(fn=cmd_dist_status)

    pr = dsub.add_parser(
        "run",
        help="run a campaign sharded across serve daemons "
             "(campaign --nodes, spelled out)",
    )
    add_campaign_arguments(pr, nodes_required=True)
    pr.set_defaults(fn=cmd_campaign)
