"""``repro run`` — one workload under one strategy."""

from __future__ import annotations

import argparse

from repro.cli._common import _kind, _workload, add_workload_args
from repro.core.experiment import run_experiment
from repro.machine.costs import cycles_to_micros


def cmd_run(args: argparse.Namespace) -> int:
    workload = _workload(args.workload, args.scale, args.transactions, args.seconds)
    result = run_experiment(workload, args.revoker)
    print(result.summary())
    if result.stw_pauses:
        print(f"pauses: n={len(result.stw_pauses)} "
              f"max={cycles_to_micros(max(result.stw_pauses)):.1f}us")
    if result.foreground_faults:
        print(f"load-barrier faults: {result.foreground_faults} "
              f"(+{result.spurious_faults} spurious)")
    return 0


def register(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser("run", help="run one workload under one strategy")
    p.add_argument("workload")
    p.add_argument("revoker", nargs="?", default="reloaded", type=_kind)
    add_workload_args(p)
    p.set_defaults(fn=cmd_run)
