"""``repro campaign`` — a declarative experiment campaign, run through
the local parallel cached runner or sharded across serve daemons with
``--nodes`` (docs/RUNNER.md, docs/DIST.md)."""

from __future__ import annotations

import argparse
import sys

from repro import settings
from repro.analysis import format_table
from repro.errors import ReproError
from repro.machine.costs import cycles_to_micros


def load_campaign(path: str):
    """Read and validate a campaign spec JSON file."""
    import json
    from pathlib import Path

    from repro.runner import CampaignSpec

    try:
        data = json.loads(Path(path).read_text())
    except OSError as exc:
        raise ReproError(f"cannot read campaign spec: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise ReproError(f"campaign spec is not valid JSON: {exc}") from exc
    return CampaignSpec.from_dict(data)


def cmd_campaign(args: argparse.Namespace) -> int:
    import os
    from pathlib import Path

    from repro.machine.costs import cycles_to_seconds
    from repro.runner import CampaignProgress, ResultCache, run_jobs

    campaign = load_campaign(args.spec)
    jobs = campaign.expand()
    if args.trace_dir:
        # Workers inherit this through the pool's fork, so every fresh job
        # records a per-job trace artifact (see runner.campaign.execute_job).
        settings.set_env("trace_dir", args.trace_dir)
    if args.snapshot_dir:
        # Same inheritance: snapshot-capable jobs checkpoint at epoch
        # closes and resume after worker crashes/timeouts (docs/SNAPSHOT.md).
        settings.set_env("snapshot_dir", args.snapshot_dir)
    if args.warm_start or args.prefix_dir:
        # Warm-start: jobs sharing a workload prefix fork from one stored
        # checkpoint instead of cold-simulating the warmup (docs/WARMSTART.md).
        from repro.snapshot.prefix import default_prefix_dir

        settings.set_env(
            "prefix_dir", args.prefix_dir or str(default_prefix_dir())
        )

    if args.dry_run:
        for job in jobs:
            print(job.describe())
        print(f"{len(jobs)} jobs")
        return 0

    executor = None
    nodes = getattr(args, "nodes", None)
    if nodes:
        if args.jobs is not None:
            raise ReproError(
                "--jobs selects local worker processes; with --nodes the "
                "daemons' own worker pools do the work"
            )
        from repro.dist import DistributedExecutor, parse_nodes

        executor = DistributedExecutor(
            parse_nodes(nodes),
            warm_start=bool(args.warm_start or args.prefix_dir),
        )

    max_workers = args.jobs
    if max_workers == 0:
        max_workers = os.cpu_count() or 1
    cache = None if args.no_cache else ResultCache(args.cache_dir)
    echo = None if args.quiet else (
        lambda line: print(line, file=sys.stderr, flush=True)
    )
    progress = CampaignProgress(len(jobs), echo=echo)
    if executor is not None:
        results = executor.run(
            jobs, cache=cache, timeout_s=args.timeout, progress=progress
        )
    else:
        results = run_jobs(
            jobs,
            max_workers=max_workers,
            cache=cache,
            timeout_s=args.timeout,
            progress=progress,
        )

    rows = []
    for job, r in zip(jobs, results):
        pause = cycles_to_micros(max(r.stw_pauses)) if r.stw_pauses else 0.0
        rows.append([
            job.describe(),
            f"{r.wall_seconds:.3f}",
            f"{cycles_to_seconds(r.total_cpu_cycles):.3f}",
            r.total_bus_transactions,
            r.peak_rss_bytes >> 20,
            r.revocations,
            f"{pause:.1f}us",
        ])
    print(format_table(
        ["job", "wall s", "cpu s", "bus", "rss MiB", "revocations", "max pause"],
        rows,
        title=f"campaign {campaign.name!r}: {len(jobs)} jobs",
    ))
    print(progress.summary())

    if args.results_dir:
        # One canonical-JSON file per job, named by its trace slug —
        # byte-comparable across runs (the CI warm-start and dist smoke
        # jobs cmp these against a reference sweep).
        from repro.runner.campaign import job_trace_slug
        from repro.runner.serialize import dumps_result

        out = Path(args.results_dir)
        out.mkdir(parents=True, exist_ok=True)
        for job, r in zip(jobs, results):
            (out / f"{job_trace_slug(job)}.json").write_text(
                dumps_result(r) + "\n"
            )
    return 0


def add_campaign_arguments(
    p: argparse.ArgumentParser, *, nodes_required: bool = False
) -> None:
    """The campaign option set; shared with ``repro dist run`` (which
    makes ``--nodes`` mandatory)."""
    p.add_argument("spec", help="campaign spec JSON file (see docs/RUNNER.md)")
    p.add_argument("--nodes", default=None, required=nodes_required,
                   help="shard the campaign across these serve daemons "
                        "(comma-separated unix socket paths or host:port; "
                        "docs/DIST.md)")
    p.add_argument("--jobs", type=int, default=None,
                   help="worker processes (default: $REPRO_JOBS or 1; 0 = all "
                        "CPUs; local mode only)")
    p.add_argument("--cache-dir", default=None,
                   help="result cache root (default: $REPRO_CACHE_DIR or ~/.cache/repro/results)")
    p.add_argument("--no-cache", action="store_true",
                   help="re-simulate everything, do not read or write the cache")
    p.add_argument("--timeout", type=float, default=None,
                   help="per-job timeout in seconds")
    p.add_argument("--dry-run", action="store_true",
                   help="print the expanded job matrix and exit")
    p.add_argument("--quiet", action="store_true",
                   help="suppress per-job progress lines")
    p.add_argument("--trace-dir", default=None,
                   help="record a per-job observability trace JSONL into this "
                        "directory (cache hits skip execution: combine with "
                        "--no-cache for full coverage)")
    p.add_argument("--snapshot-dir", default=None,
                   help="checkpoint snapshot-capable jobs into this directory "
                        "at every epoch close; killed/timed-out jobs resume "
                        "from their last checkpoint on retry (docs/SNAPSHOT.md)")
    p.add_argument("--warm-start", action="store_true",
                   help="share simulation prefixes across the sweep: capture "
                        "each group's warmup once and fork every sibling job "
                        "from it (docs/WARMSTART.md)")
    p.add_argument("--prefix-dir", default=None,
                   help="warm-start prefix store root (implies --warm-start; "
                        "default: $REPRO_PREFIX_DIR or ~/.cache/repro/prefixes)")
    p.add_argument("--results-dir", default=None,
                   help="write each job's RunResult as canonical JSON into "
                        "this directory (byte-comparable across runs)")


def register(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser(
        "campaign",
        help="run a declarative experiment campaign (parallel, cached)",
    )
    add_campaign_arguments(p)
    p.set_defaults(fn=cmd_campaign)
