"""``repro attack`` — the adversarial UAF scenario per strategy."""

from __future__ import annotations

import argparse

from repro.analysis import format_table
from repro.core.experiment import ALL_KINDS, run_experiment
from repro.workloads.adversarial import UafAttacker


def cmd_attack(args: argparse.Namespace) -> int:
    rows = []
    compromised = False
    for kind in ALL_KINDS:
        attacker = UafAttacker(rounds=args.rounds)
        run_experiment(attacker, kind)
        r = attacker.report
        verdict = "VULNERABLE" if r.uar_hits else "safe"
        compromised |= bool(r.uar_hits) and kind.provides_safety
        rows.append([kind.value, r.uar_hits, r.uaf_reads, r.revoked_probes, verdict])
    print(format_table(
        ["strategy", "UAR hits", "UAF reads", "revoked probes", "verdict"],
        rows,
        title="use-after-free attack outcomes",
    ))
    return 1 if compromised else 0


def register(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser("attack", help="adversarial UAF scenario per strategy")
    p.add_argument("--rounds", type=int, default=15)
    p.set_defaults(fn=cmd_attack)
