"""``repro pgbench`` — interactive-latency percentiles per strategy."""

from __future__ import annotations

import argparse

from repro.analysis import format_table, percentile
from repro.core.experiment import ALL_KINDS, run_experiment
from repro.workloads.pgbench import PgBenchWorkload


def cmd_pgbench(args: argparse.Namespace) -> int:
    rows = []
    for kind in ALL_KINDS:
        result = run_experiment(
            PgBenchWorkload(transactions=args.transactions, rate_tps=args.rate),
            kind,
        )
        ms = [s.millis for s in result.latencies]
        rows.append([
            kind.value,
            f"{percentile(ms, 50):.2f}",
            f"{percentile(ms, 90):.2f}",
            f"{percentile(ms, 99):.2f}",
            result.revocations,
        ])
    print(format_table(
        ["strategy", "p50 ms", "p90 ms", "p99 ms", "revocations"],
        rows,
        title=f"pgbench latency percentiles ({args.transactions} transactions)",
    ))
    return 0


def register(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser("pgbench", help="interactive latency percentiles")
    p.add_argument("--transactions", type=int, default=400)
    p.add_argument("--rate", type=float, default=None)
    p.set_defaults(fn=cmd_pgbench)
