"""Command-line interface: ``python -m repro <command>``.

Commands (one module per command in this package, each exposing
``register(subparsers)``):

- ``run``      one workload under one strategy, print the run summary;
- ``compare``  one workload under every strategy, print the overhead table;
- ``attack``   the adversarial UAF scenario per strategy (the security demo);
- ``pgbench``  the interactive-latency percentiles per strategy;
- ``campaign`` a declarative experiment campaign (parallel + cached);
  with ``--nodes`` it shards across serve daemons (docs/DIST.md);
- ``dist``     multi-node campaign tools: ``status`` probes node health,
  ``run`` is campaign with a mandatory ``--nodes``;
- ``trace``    allocation traces (synth/stats/replay) **and** structured
  observability traces: ``record`` a run's event trace, ``summarize`` its
  per-epoch breakdown, ``diff`` two traces (e.g. cornucopia vs reloaded
  STW time), ``validate`` against the event schema, and ``export-chrome``
  for chrome://tracing (docs/OBSERVABILITY.md);
- ``check``    schedule exploration under seeded policies with the
  temporal-safety oracles attached (docs/CHECKING.md);
- ``serve``    the long-running simulation service: warm workers behind a
  Unix/TCP socket, request dedup against the result cache, admission
  control, live health/stats (docs/SERVING.md); ``serve bench`` is its
  load generator (the old top-level ``serve-bench`` still works behind a
  one-time deprecation warning);
- ``bench``    continuous benchmarking against the content-addressed
  baseline store (docs/BENCHMARKING.md);
- ``snapshot`` save/resume/inspect checkpoints and the warm-start prefix
  store (docs/SNAPSHOT.md, docs/WARMSTART.md);
- ``list``     the available workloads and strategies (``--json`` for
  machines).
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

# Re-exported for back-compat: these lived at module scope when the CLI
# was a single file, and the serve daemon + tests import them from here.
from repro.cli._common import (  # noqa: F401
    _check_workload_name,
    _kind,
    _workload,
    _workload_names,
)
from repro.errors import ReproError

_SERVE_BENCH_WARNED = False


def _warn_serve_bench_deprecated() -> None:
    """One warning per process for the old ``serve-bench`` spelling."""
    global _SERVE_BENCH_WARNED
    if _SERVE_BENCH_WARNED:
        return
    _SERVE_BENCH_WARNED = True
    import warnings

    message = (
        "'repro serve-bench' is deprecated; use 'repro serve bench'"
    )
    warnings.warn(message, DeprecationWarning, stacklevel=3)
    print(f"warning: {message}", file=sys.stderr)


def build_parser() -> argparse.ArgumentParser:
    from repro.cli import (
        attack,
        campaign,
        check,
        compare,
        dist,
        listing,
        pgbench,
        run,
        serve,
        snapshot,
        trace,
        verify_paper,
    )
    from repro.perf.cli import add_bench_parser

    parser = argparse.ArgumentParser(
        prog="repro",
        description="Cornucopia Reloaded reproduction: CHERI temporal-safety "
        "revocation on a simulated machine",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    listing.register(sub)
    run.register(sub)
    compare.register(sub)
    attack.register(sub)
    pgbench.register(sub)
    verify_paper.register(sub)
    campaign.register(sub)
    dist.register(sub)
    trace.register(sub)
    check.register(sub)
    serve.register(sub)
    snapshot.register(sub)
    add_bench_parser(sub)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    argv = list(argv)
    try:
        # The serve load generator owns its own argparse, and REMAINDER
        # cannot capture leading --options (bpo-17050), so both
        # spellings forward verbatim before the main parser runs.
        if argv[:2] == ["serve", "bench"]:
            from repro.serve.bench import main as bench_main

            return bench_main(argv[2:])
        if argv[:1] == ["serve-bench"]:
            _warn_serve_bench_deprecated()
            from repro.serve.bench import main as bench_main

            return bench_main(argv[1:])
        parser = build_parser()
        args = parser.parse_args(argv)
        return args.fn(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:  # e.g. `python -m repro list | head`
        return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
