"""``repro trace`` — allocation traces (synth/stats/replay) and
structured observability traces (record/summarize/diff/validate/
export-chrome). docs/OBSERVABILITY.md."""

from __future__ import annotations

import argparse

from repro.analysis import format_table
from repro.cli._common import _kind, _workload, add_workload_args
from repro.core.experiment import run_experiment


def _load_summary(path: str):
    """Read + validate an observability trace and summarize it."""
    from repro.obs import TraceSummary, read_jsonl, validate_events

    meta, events = read_jsonl(path)
    validate_events(events)
    return meta, events, TraceSummary.from_events(events)


def _print_summary(path: str, meta: dict, summary) -> None:
    print(f"{path}: {summary.events} events, "
          f"{meta.get('dropped', 0)} dropped, "
          f"{len(summary.epochs)} epochs")
    if not summary.epochs:
        return
    rows = []
    for e in summary.epochs:
        rows.append([
            e.epoch,
            e.stw_cycles,
            e.concurrent_cycles,
            e.fault_count,
            e.spurious_faults,
            e.sweep_bus_transactions,
        ])
    print(format_table(
        ["epoch", "stw cyc", "concurrent cyc", "faults", "spurious", "sweep bus"],
        rows,
        title="per-epoch breakdown",
    ))
    print(f"totals: stw={summary.total_stw_cycles} "
          f"faults={summary.total_faults} "
          f"tlb-shootdowns={summary.tlb_shootdowns} "
          f"cache-evicted-lines={summary.cache_evicted_lines} "
          f"quarantine filled={summary.quarantine_filled_bytes}B "
          f"drained={summary.quarantine_drained_bytes}B")


def cmd_trace(args: argparse.Namespace) -> int:
    from repro.workloads.trace import AllocationTrace, TraceWorkload, synthesize_trace

    if args.trace_cmd == "record":
        from repro.obs import validate_events, write_chrome_trace, write_jsonl
        from repro.obs.tracer import DEFAULT_CAPACITY, TRACER

        workload = _workload(
            args.workload, args.scale, args.transactions, args.seconds
        )
        TRACER.start(capacity=args.capacity or DEFAULT_CAPACITY)
        try:
            result = run_experiment(workload, args.revoker)
            events = TRACER.events()
            dropped = TRACER.dropped
        finally:
            TRACER.stop()
        validate_events(events)
        meta = {
            "workload": workload.name,
            "revoker": args.revoker.value,
            "wall_cycles": result.wall_cycles,
            "dropped": dropped,
        }
        write_jsonl(args.out, events, meta)
        print(f"recorded {len(events)} events ({dropped} dropped) to {args.out}")
        if args.chrome:
            write_chrome_trace(args.chrome, events, meta)
            print(f"chrome trace: {args.chrome}")
        return 0
    if args.trace_cmd == "summarize":
        meta, _, summary = _load_summary(args.path)
        _print_summary(args.path, meta, summary)
        return 0
    if args.trace_cmd == "diff":
        from repro.obs import diff_summaries

        meta_a, _, summary_a = _load_summary(args.a)
        meta_b, _, summary_b = _load_summary(args.b)
        rows = diff_summaries(summary_a, summary_b)
        print(format_table(
            ["metric", meta_a.get("revoker", "a"), meta_b.get("revoker", "b"), "delta"],
            rows,
            title=f"{args.a} vs {args.b}",
        ))
        return 0
    if args.trace_cmd == "validate":
        from repro.obs import read_jsonl, validate_events

        meta, events = read_jsonl(args.path)
        count = validate_events(events)
        print(f"{args.path}: {count} events OK "
              f"(format v{meta.get('version', '?')}, "
              f"{meta.get('dropped', 0)} dropped)")
        return 0
    if args.trace_cmd == "export-chrome":
        from repro.obs import read_jsonl, write_chrome_trace

        meta, events = read_jsonl(args.path)
        write_chrome_trace(args.out, events, meta)
        print(f"wrote {len(events)} events to {args.out} "
              "(load in chrome://tracing or ui.perfetto.dev)")
        return 0
    if args.trace_cmd == "synth":
        trace = synthesize_trace(
            objects=args.objects, churn=args.churn, seed=args.seed
        )
        trace.save(args.path)
        print(f"wrote {len(trace)} events to {args.path}: {trace.stats()}")
        return 0
    if args.trace_cmd == "stats":
        trace = AllocationTrace.load(args.path)
        trace.validate()
        print(f"{args.path}: {len(trace)} events, well-formed: {trace.stats()}")
        return 0
    if args.trace_cmd == "replay":
        trace = AllocationTrace.load(args.path)
        workload = TraceWorkload(trace)
        result = run_experiment(workload, args.revoker)
        print(result.summary())
        print(f"replayed {workload.replayed_events} events, "
              f"{workload.stale_loads} capability loads hit empty or revoked slots")
        return 0
    raise SystemExit(f"unknown trace command {args.trace_cmd!r}")


def register(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser("trace", help="allocation + observability trace tools")
    tsub = p.add_subparsers(dest="trace_cmd", required=True)
    pc = tsub.add_parser("record", help="run a workload and record its event trace")
    pc.add_argument("workload")
    pc.add_argument("revoker", nargs="?", default="reloaded", type=_kind)
    pc.add_argument("--out", default="trace.jsonl",
                    help="output JSONL path (default: trace.jsonl)")
    pc.add_argument("--chrome", default=None,
                    help="also export a chrome://tracing JSON to this path")
    pc.add_argument("--capacity", type=int, default=None,
                    help="ring-buffer capacity in events (default: 262144)")
    add_workload_args(pc)
    pz = tsub.add_parser("summarize", help="per-epoch breakdown of a recorded trace")
    pz.add_argument("path")
    pd = tsub.add_parser("diff", help="compare two recorded traces metric by metric")
    pd.add_argument("a")
    pd.add_argument("b")
    pv = tsub.add_parser("validate", help="check a trace against the event schema")
    pv.add_argument("path")
    pe = tsub.add_parser("export-chrome", help="convert a JSONL trace for chrome://tracing")
    pe.add_argument("path")
    pe.add_argument("out")
    ps = tsub.add_parser("synth", help="synthesize a random trace")
    ps.add_argument("path")
    ps.add_argument("--objects", type=int, default=200)
    ps.add_argument("--churn", type=int, default=1000)
    ps.add_argument("--seed", type=int, default=1)
    pt = tsub.add_parser("stats", help="validate and summarize a trace")
    pt.add_argument("path")
    pr = tsub.add_parser("replay", help="replay a trace under a strategy")
    pr.add_argument("path")
    pr.add_argument("revoker", nargs="?", default="reloaded", type=_kind)
    p.set_defaults(fn=cmd_trace)
