"""Helpers shared by the CLI command modules.

Every command lives in its own module exposing one
``register(subparsers)`` function; what more than one of them needs —
the strategy/workload argparse plumbing — lives here.
"""

from __future__ import annotations

import argparse

from repro.core.config import RevokerKind
from repro.workloads import spec
from repro.workloads.base import Workload
from repro.workloads.grpc_qps import GrpcQpsWorkload
from repro.workloads.pgbench import PgBenchWorkload


def _kind(name: str) -> RevokerKind:
    """argparse type for strategy arguments: converts to RevokerKind,
    routing bad names through ``parser.error`` (consistent exit code 2
    and usage text) via ArgumentTypeError."""
    try:
        return RevokerKind(name)
    except ValueError:
        valid = ", ".join(k.value for k in RevokerKind)
        raise argparse.ArgumentTypeError(
            f"unknown strategy {name!r}; choose from: {valid}"
        ) from None


def _check_workload_name(name: str) -> str:
    """Validate a workload name, with the catalog in the message.

    Runs post-parse (inside :func:`_workload`) rather than as an
    argparse type so that programmatic ``main([...])`` callers get a
    return code instead of ``SystemExit``; the exit code (2) matches
    argparse's either way.
    """
    from repro.errors import ConfigError

    if name in ("pgbench", "grpc"):
        return name
    bench, _, inp = name.partition(".")
    try:
        inputs = spec.inputs_of(bench)
    except ConfigError:
        raise ConfigError(
            f"unknown workload {name!r} (run 'repro list' for the catalog)"
        ) from None
    if inp and inp not in inputs:
        raise ConfigError(
            f"unknown input {inp!r} for {bench}; choose from: {', '.join(inputs)}"
        ) from None
    return name


def _workload(name: str, scale: int, transactions: int, seconds: float) -> Workload:
    _check_workload_name(name)
    if name == "pgbench":
        return PgBenchWorkload(transactions=transactions)
    if name == "grpc":
        return GrpcQpsWorkload(duration_seconds=seconds)
    if "." in name:
        bench, inp = name.split(".", 1)
        return spec.workload(bench, inp, scale=scale)
    return spec.workload(name, scale=scale)


def _workload_names() -> list[str]:
    names = ["pgbench", "grpc"]
    for bench in spec.BENCHMARKS:
        for inp in spec.inputs_of(bench):
            names.append(f"{bench}.{inp}")
    return names


def add_workload_args(p: argparse.ArgumentParser) -> None:
    """The shared workload-shaping options (run/compare/trace record)."""
    p.add_argument("--scale", type=int, default=256,
                   help="byte-quantity divisor for SPEC surrogates")
    p.add_argument("--transactions", type=int, default=500,
                   help="pgbench transaction count")
    p.add_argument("--seconds", type=float, default=0.5,
                   help="gRPC run duration")
