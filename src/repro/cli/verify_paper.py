"""``repro verify-paper`` — quick spot-checks of encoded paper claims."""

from __future__ import annotations

import argparse

from repro.core.config import RevokerKind
from repro.core.experiment import run_experiment
from repro.workloads.adversarial import UafAttacker


def cmd_verify_paper(args: argparse.Namespace) -> int:
    """Quick spot-checks of encoded paper claims on small runs.

    Not the full harness (pytest benchmarks/ regenerates every figure);
    this is the five-minute confidence check.
    """
    from repro.analysis import paper
    from repro.analysis.paper import check_ordering, compare
    from repro.core.experiment import compare_strategies
    from repro.machine.costs import cycles_to_micros
    from repro.workloads import spec as spec_mod

    outcomes = []

    # 1. Pause-time ordering on a revoking SPEC surrogate.
    results = compare_strategies(
        lambda: spec_mod.workload("hmmer", "retro", scale=args.scale),
        (RevokerKind.CHERIVOKE, RevokerKind.CORNUCOPIA, RevokerKind.RELOADED),
    )
    pauses = {k.value: float(max(r.stw_pauses)) for k, r in results.items()}
    ok = check_ordering(pauses, ["cherivoke", "cornucopia", "reloaded"])
    outcomes.append(("pause ordering cherivoke>cornucopia>reloaded", ok))

    # 2. Reloaded single-threaded STW in the tens of microseconds.
    rel = results[RevokerKind.RELOADED]
    med = sorted(rel.stw_pauses)[len(rel.stw_pauses) // 2]
    c = compare(paper.FIG9_RELOADED_STW_US, cycles_to_micros(med))
    outcomes.append((
        f"{c.expectation.key}: {c.measured:.1f}us vs paper ~{c.expectation.value:.0f}us",
        c.ok,
    ))

    # 3. Reloaded bus traffic at most Cornucopia's.
    ok = (
        results[RevokerKind.RELOADED].total_bus_transactions
        <= results[RevokerKind.CORNUCOPIA].total_bus_transactions
    )
    outcomes.append(("reloaded bus <= cornucopia bus", ok))

    # 4. The security property, adversarially.
    attacker = UafAttacker(rounds=8, churn_objects=60)
    run_experiment(attacker, RevokerKind.RELOADED)
    outcomes.append(("no use-after-reallocation under reloaded",
                     attacker.report.uar_hits == 0))

    failures = 0
    for label, ok in outcomes:
        print(f"[{'OK ' if ok else 'OFF'}] {label}")
        failures += 0 if ok else 1
    print(
        f"\n{len(outcomes) - failures}/{len(outcomes)} paper claims verified "
        "(full regeneration: pytest benchmarks/ --benchmark-only)"
    )
    return 1 if failures else 0


def register(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser("verify-paper", help="quick paper-claim spot checks")
    p.add_argument("--scale", type=int, default=512)
    p.set_defaults(fn=cmd_verify_paper)
