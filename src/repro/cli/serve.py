"""``repro serve`` — the long-running simulation service daemon, and
``repro serve bench`` — its load generator. docs/SERVING.md.

``serve bench`` is forwarded verbatim to the load generator's own
argparse by ``main()`` (argparse.REMAINDER cannot capture leading
``--options``, bpo-17050), so the ``serve`` parser here only carries the
daemon flags. The old top-level ``serve-bench`` spelling still works
behind a one-time deprecation warning.
"""

from __future__ import annotations

import argparse


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the simulation service daemon until drained (docs/SERVING.md)."""
    from repro.serve.server import ServeConfig, SimulationServer

    config = ServeConfig(
        socket_path=args.socket,
        host=args.host,
        port=args.port,
        workers=args.workers,
        queue_bound=args.queue,
        job_timeout_s=args.job_timeout,
        drain_timeout_s=args.drain_timeout,
        cache_dir=args.cache_dir,
        no_cache=args.no_cache,
        snapshot_dir=args.snapshot_dir,
        prefix_dir=args.prefix_dir,
        max_line_bytes=args.max_line_bytes,
    )
    return SimulationServer(config).run()


def cmd_serve_bench(args: argparse.Namespace) -> int:  # pragma: no cover
    # Reached only for a bare ``repro serve-bench`` (main() forwards
    # anything with arguments straight to the bench parser, because
    # argparse.REMAINDER refuses to capture leading ``--options``).
    from repro.serve.bench import main as bench_main

    return bench_main(args.bench_args)


def register(sub: argparse._SubParsersAction) -> None:
    from repro.serve.server import DEFAULT_MAX_LINE_BYTES

    p = sub.add_parser(
        "serve",
        help="run the long-lived simulation service (docs/SERVING.md)",
        epilog="load-generate against a daemon with: repro serve bench "
               "(see repro serve bench --help)",
    )
    p.add_argument("--socket", default=None,
                   help="listen on this unix socket path")
    p.add_argument("--host", default=None,
                   help="listen on this TCP host (with --port)")
    p.add_argument("--port", type=int, default=0,
                   help="TCP port (0 = ephemeral; printed at startup)")
    p.add_argument("--workers", type=int, default=None,
                   help="warm worker processes (default: $REPRO_SERVE_WORKERS or 2)")
    p.add_argument("--queue", type=int, default=None,
                   help="admission bound before 'overloaded' rejections "
                        "(default: $REPRO_SERVE_QUEUE or 64)")
    p.add_argument("--job-timeout", type=float, default=None,
                   help="seconds one job may hold a worker "
                        "(default: $REPRO_SERVE_JOB_TIMEOUT or unlimited)")
    p.add_argument("--drain-timeout", type=float, default=10.0,
                   help="seconds to finish in-flight work on shutdown")
    p.add_argument("--cache-dir", default=None,
                   help="result cache root (default: $REPRO_CACHE_DIR or "
                        "~/.cache/repro/results)")
    p.add_argument("--no-cache", action="store_true",
                   help="serve without reading or writing the result cache")
    p.add_argument("--snapshot-dir", default=None,
                   help="checkpoint snapshot-capable jobs into this directory "
                        "(retried requests resume from the last checkpoint; "
                        "default: $REPRO_SNAPSHOT_DIR)")
    p.add_argument("--prefix-dir", default=None,
                   help="warm-start prefix store: workers fork sweep siblings "
                        "from one shared warmup checkpoint (docs/WARMSTART.md; "
                        "default: $REPRO_PREFIX_DIR)")
    p.add_argument("--max-line-bytes", type=int, default=DEFAULT_MAX_LINE_BYTES,
                   help="request-line size limit in bytes (default 1 MiB; "
                        "raise it when dist coordinators push prefix blobs "
                        "bigger than that through prefix-put)")
    p.set_defaults(fn=cmd_serve)

    # Deprecated top-level spelling, kept so ``repro serve-bench`` and its
    # --help keep working; main() pre-dispatches and warns once.
    p = sub.add_parser(
        "serve-bench",
        help="deprecated alias for: repro serve bench",
    )
    p.add_argument("bench_args", nargs=argparse.REMAINDER,
                   help="arguments for the load generator "
                        "(try: repro serve bench --help)")
    p.set_defaults(fn=cmd_serve_bench)
