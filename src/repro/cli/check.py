"""``repro check`` — schedule exploration with temporal-safety oracles
attached, and replay of recorded violation artifacts. docs/CHECKING.md."""

from __future__ import annotations

import argparse
import sys

from repro.cli._common import _kind
from repro.core.config import RevokerKind
from repro.errors import ReproError


def cmd_check(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.check import (
        Explorer,
        build_artifact,
        replay_artifact,
        scenario as lookup_scenario,
    )

    if args.mode == "replay":
        if not args.artifact:
            raise ReproError("check replay requires an artifact path")
        result = replay_artifact(args.artifact)
        for violation in result.violations:
            print(f"  {violation}")
        if result.ok:
            print(f"{args.artifact}: no violation on replay "
                  f"({result.steps} steps) — the bug it witnessed is gone")
            return 0
        print(f"{args.artifact}: violation reproduced "
              f"({len(result.violations)} violations, {result.steps} steps)")
        return 1

    try:
        first, _, last = args.seed_range.partition(":")
        seeds = range(int(first), int(last))
    except ValueError:
        raise ReproError(
            f"--seed-range wants start:end, got {args.seed_range!r}"
        ) from None
    scn = lookup_scenario(args.scenario)
    explorer = Explorer(
        scn,
        revoker=args.revoker,
        policy_kind=args.policy,
        window=args.window,
        workload_seed=args.workload_seed,
    )
    progress = None
    if not args.quiet:
        def progress(result):  # noqa: ANN001 - SeedResult
            mark = "ok" if result.ok else f"{len(result.violations)} VIOLATIONS"
            print(f"  seed {result.seed}: {result.steps} steps, {mark}",
                  file=sys.stderr, flush=True)
    report = explorer.explore(
        seeds, differential=not args.no_differential, progress=progress
    )
    print(report.summary())
    if report.ok:
        return 0

    out_dir = Path(args.artifact_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    for fail in report.failures:
        artifact = build_artifact(
            fail,
            scn.name,
            args.revoker,
            args.workload_seed,
            window=args.window,
            minimize=not args.no_minimize,
        )
        path = out_dir / f"violation-{scn.name}-seed{fail.seed}.json"
        artifact.save(path)
        print(f"artifact: {path} (trace {len(artifact.trace)} choices; "
              f"replay with: repro check replay {path})")
    if args.timeline and report.failures:
        from repro.obs import write_chrome_trace
        from repro.obs.tracer import TRACER, tracing

        with tracing():
            explorer.run_seed(report.failures[0].seed)
            events = TRACER.events()
        count = write_chrome_trace(
            args.timeline,
            events,
            {"scenario": scn.name, "seed": report.failures[0].seed},
        )
        print(f"timeline: {args.timeline} ({count} events, "
              "load in chrome://tracing)")
    return 1


def register(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser(
        "check",
        help="explore schedules with temporal-safety oracles attached",
    )
    p.add_argument("mode", nargs="?", default="explore",
                   choices=["explore", "replay"],
                   help="explore a seed range (default) or replay an artifact")
    p.add_argument("artifact", nargs="?", default=None,
                   help="violation artifact JSON (replay mode)")
    p.add_argument("--scenario", default="churn-small",
                   help="checking scenario (see docs/CHECKING.md)")
    p.add_argument("--revoker", type=_kind, default=RevokerKind.RELOADED)
    p.add_argument("--seed-range", default="0:100",
                   help="schedule seeds start:end (default 0:100)")
    p.add_argument("--policy", default="random",
                   choices=["random", "pct", "round-robin"],
                   help="schedule policy seeded per exploration seed")
    p.add_argument("--window", type=int, default=0,
                   help="cycles of clock drift tolerated among candidate "
                        "cores (0 = exact ties only)")
    p.add_argument("--workload-seed", type=int, default=0,
                   help="workload RNG seed (fixed across schedule seeds)")
    p.add_argument("--no-differential", action="store_true",
                   help="skip the cross-revoker differential check")
    p.add_argument("--no-minimize", action="store_true",
                   help="save failing journals unminimized")
    p.add_argument("--artifact-dir", default="check-artifacts",
                   help="directory for violation artifacts (written only "
                        "on failure)")
    p.add_argument("--timeline", default=None,
                   help="on failure, re-run the first failing seed under "
                        "the tracer and export a chrome://tracing JSON here")
    p.add_argument("--quiet", action="store_true",
                   help="suppress per-seed progress lines")
    p.set_defaults(fn=cmd_check)
