"""``repro compare`` — one workload under every strategy."""

from __future__ import annotations

import argparse

from repro.analysis import format_table
from repro.cli._common import _workload, add_workload_args
from repro.core.config import RevokerKind
from repro.core.experiment import (
    ALL_KINDS,
    bus_overhead,
    cpu_overhead,
    rss_ratio,
    run_experiment,
    wall_overhead,
)
from repro.machine.costs import cycles_to_micros


def cmd_compare(args: argparse.Namespace) -> int:
    results = {}
    for kind in ALL_KINDS:
        workload = _workload(args.workload, args.scale, args.transactions, args.seconds)
        results[kind] = run_experiment(workload, kind)
    base = results[RevokerKind.NONE]
    rows = []
    for kind in ALL_KINDS:
        r = results[kind]
        pause = cycles_to_micros(max(r.stw_pauses)) if r.stw_pauses else 0.0
        rows.append([
            kind.value,
            f"{wall_overhead(r, base) * 100:+.1f}%",
            f"{cpu_overhead(r, base) * 100:+.1f}%",
            f"{bus_overhead(r, base) * 100:+.0f}%",
            f"{rss_ratio(r, base):.2f}",
            r.revocations,
            f"{pause:.1f}us",
        ])
    print(format_table(
        ["strategy", "wall", "cpu", "bus", "rss", "revocations", "max pause"],
        rows,
        title=f"{args.workload}: overhead vs no-revocation baseline",
    ))
    return 0


def register(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser("compare", help="run one workload under every strategy")
    p.add_argument("workload")
    add_workload_args(p)
    p.set_defaults(fn=cmd_compare)
