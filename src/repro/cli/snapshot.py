"""``repro snapshot`` — checkpoint tools: save/resume/inspect, plus the
warm-start prefix store (``snapshot prefix list|warm``). docs/SNAPSHOT.md,
docs/WARMSTART.md."""

from __future__ import annotations

import argparse
import sys

from repro import settings
from repro.analysis import format_table
from repro.cli._common import _check_workload_name, _kind
from repro.core.config import RevokerKind
from repro.errors import ReproError
from repro.workloads import spec


def _cmd_snapshot_prefix(args: argparse.Namespace) -> int:
    """Warm-start prefix store tools: ``list`` (stored prefixes and
    their provenance) and ``warm`` (pre-capture every prefix a campaign
    spec will need). docs/WARMSTART.md."""
    import json
    from pathlib import Path

    from repro.snapshot import read_header
    from repro.snapshot.prefix import (
        PrefixStore,
        default_prefix_dir,
        prefix_divergence_epoch,
        prefix_key,
    )

    root = Path(args.prefix_dir) if args.prefix_dir else default_prefix_dir()
    store = PrefixStore(root)

    if args.prefix_cmd == "list":
        paths = store.paths()
        if not paths:
            print(f"no prefixes stored under {root}")
            return 0
        rows = []
        for path in paths:
            header = read_header(path.read_bytes())
            rows.append([
                path.stem[:12],
                header.get("workload", "?"),
                header.get("revoker", "?"),
                header.get("epoch", "?"),
                path.stat().st_size >> 10,
            ])
        print(format_table(
            ["prefix", "workload", "captured under", "epoch", "KiB"],
            rows,
            title=f"{len(paths)} prefixes in {root}",
        ))
        return 0

    # warm: run one representative job per missing prefix group so a
    # later campaign (or serve daemon) starts with every prefix hot.
    from repro.cli.campaign import load_campaign
    from repro.runner.campaign import execute_job, prefix_eligible

    campaign = load_campaign(args.spec)
    settings.set_env("prefix_dir", str(root))
    epoch = prefix_divergence_epoch()
    groups: dict = {}
    for job in campaign.expand():
        if prefix_eligible(job):
            groups.setdefault(prefix_key(job, epoch), job)
    present = sum(1 for key in groups if key in store)
    captured = missed = 0
    for key in sorted(groups):
        if key in store:
            continue
        execute_job(groups[key])
        if key in store:
            captured += 1
        else:
            # The capture window closed before the threshold poll (tiny
            # run, early trigger): the campaign will run this group cold.
            missed += 1
    print(
        f"{len(groups)} prefix groups: {present} already stored, "
        f"{captured} captured, {missed} without a capture window "
        f"(store: {root})"
    )
    return 0


def cmd_snapshot(args: argparse.Namespace) -> int:
    """Checkpoint tools: ``save`` (run with checkpointing, keep one),
    ``resume`` (continue a checkpoint to completion), ``inspect``
    (print a checkpoint's provenance header), ``prefix`` (warm-start
    prefix store; docs/WARMSTART.md). docs/SNAPSHOT.md."""
    import json
    from pathlib import Path

    from repro.runner.serialize import dumps_result
    from repro.snapshot import read_header, restore_simulation

    def write_result(result, path: str | None) -> None:
        if path:
            Path(path).write_text(dumps_result(result) + "\n")

    if args.snapshot_cmd == "prefix":
        return _cmd_snapshot_prefix(args)

    if args.snapshot_cmd == "inspect":
        try:
            data = Path(args.path).read_bytes()
        except OSError as exc:
            raise ReproError(f"cannot read checkpoint: {exc}") from exc
        print(json.dumps(read_header(data), indent=2, sort_keys=True))
        return 0

    if args.snapshot_cmd == "resume":
        try:
            data = Path(args.path).read_bytes()
        except OSError as exc:
            raise ReproError(f"cannot read checkpoint: {exc}") from exc
        sim, header = restore_simulation(data)
        result = sim.resume()
        write_result(result, args.result)
        print(
            f"resumed {header['workload']}/{header['revoker']} from epoch "
            f"{header['epoch']} (capture #{header['sequence']}): "
            f"wall {result.wall_cycles} cycles, "
            f"{result.revocations} revocations"
        )
        return 0

    # save
    from repro.core.config import SimulationConfig
    from repro.core.simulation import Simulation
    from repro.errors import ConfigError
    from repro.snapshot import SnapshotPlan, SnapshotSession

    _check_workload_name(args.workload)
    if args.workload in ("pgbench", "grpc"):
        raise ConfigError(
            f"{args.workload} does not support snapshots (external-protocol "
            "workload); use a spec churn workload"
        )
    if "." in args.workload:
        bench, inp = args.workload.split(".", 1)
        workload = spec.workload(bench, inp, scale=args.scale, seed=args.seed)
    else:
        workload = spec.workload(args.workload, scale=args.scale, seed=args.seed)

    cfg = SimulationConfig(revoker=args.revoker)
    if args.memory_mib is not None:
        cfg.machine.memory_bytes = args.memory_mib << 20
    every_checks = args.every_checks
    if args.revoker is RevokerKind.NONE and every_checks is None:
        every_checks = 64
    sim = Simulation(workload, cfg)
    session = SnapshotSession(
        sim,
        SnapshotPlan(every_epochs=args.every_epochs, every_checks=every_checks),
    )
    result = sim.run(snapshots=session)
    write_result(result, args.result)
    if not session.captured:
        print(
            f"no checkpoints captured (run completed before the cadence "
            f"fired; {result.revocations} revocations) — nothing written",
            file=sys.stderr,
        )
        return 1
    try:
        blob = session.captured[args.capture_index]
        header = session.headers[args.capture_index]
    except IndexError:
        raise ReproError(
            f"--capture-index {args.capture_index} out of range "
            f"({len(session.captured)} captures)"
        ) from None
    Path(args.out).write_bytes(blob)
    print(
        f"{len(session.captured)} captures; wrote #{header['sequence']} "
        f"(epoch {header['epoch']}, {len(blob)} bytes) to {args.out}"
    )
    return 0


def register(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser(
        "snapshot",
        help="save/resume/inspect simulation checkpoints (docs/SNAPSHOT.md)",
    )
    ssub = p.add_subparsers(dest="snapshot_cmd", required=True)
    pss = ssub.add_parser(
        "save",
        help="run a workload with checkpointing on and save one checkpoint",
    )
    pss.add_argument("workload", help="a spec churn workload, e.g. hmmer.retro")
    pss.add_argument("revoker", nargs="?", default="reloaded", type=_kind)
    pss.add_argument("--scale", type=int, default=512,
                     help="workload scale divisor (default: 512)")
    pss.add_argument("--seed", type=int, default=1)
    pss.add_argument("--memory-mib", type=int, default=None,
                     help="shrink simulated physical memory to this many MiB "
                          "(smaller checkpoints)")
    pss.add_argument("--every-epochs", type=int, default=1,
                     help="capture cadence in completed epochs (default: 1)")
    pss.add_argument("--every-checks", type=int, default=None,
                     help="capture cadence in work-unit polls; required for "
                          "the none revoker (default there: 64)")
    pss.add_argument("--capture-index", type=int, default=0,
                     help="which capture to write (default: first; -1: last)")
    pss.add_argument("--out", default="checkpoint.ckpt",
                     help="checkpoint output path (default: checkpoint.ckpt)")
    pss.add_argument("--result", default=None,
                     help="also write the straight-through RunResult JSON here")
    psr = ssub.add_parser("resume", help="continue a checkpoint to completion")
    psr.add_argument("path")
    psr.add_argument("--result", default=None,
                     help="write the resumed RunResult JSON here (bit-identical "
                          "to the straight-through run's)")
    psi = ssub.add_parser("inspect", help="print a checkpoint's header")
    psi.add_argument("path")
    psp = ssub.add_parser(
        "prefix",
        help="warm-start prefix store tools (docs/WARMSTART.md)",
    )
    ppsub = psp.add_subparsers(dest="prefix_cmd", required=True)
    ppl = ppsub.add_parser("list", help="stored prefixes and their provenance")
    ppl.add_argument("--prefix-dir", default=None,
                     help="prefix store root (default: $REPRO_PREFIX_DIR or "
                          "~/.cache/repro/prefixes)")
    ppw = ppsub.add_parser(
        "warm",
        help="pre-capture every prefix a campaign spec will need",
    )
    ppw.add_argument("spec", help="campaign spec JSON file (see docs/RUNNER.md)")
    ppw.add_argument("--prefix-dir", default=None,
                     help="prefix store root (default: $REPRO_PREFIX_DIR or "
                          "~/.cache/repro/prefixes)")
    p.set_defaults(fn=cmd_snapshot)
