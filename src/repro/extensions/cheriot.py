"""CHERIoT-style temporal safety: a non-trapping load *filter* (§6.3).

CHERIoT adapts Reloaded to MMU-less embedded systems: the capability load
instruction probes the (architecturally defined, tightly-coupled,
physically indexed) revocation bitmap directly and clears the tag of a
condemned capability *on its way into the register file* — no trap, no
software fault handler, and no self-healing of memory (§6.3 fn. 28).

Consequences modelled here:

- freed objects become inaccessible **immediately**: painting at free is
  enough, because no load can ever produce a capability to painted
  memory. The UAF/UAR distinction disappears;
- revocation batching and epochs become invisible to the client; a
  background sweep (on the demo platform, a cycle-stealing hardware state
  machine) still runs to clear stale tags so the bitmap bits can be
  recycled, but it never stops the world;
- because the filter is not self-healing, the *same* stale capability
  costs a filter hit on every load until the sweep clears it.

:class:`LoadFilter` is the architectural piece (installed on a core);
:class:`CheriotRevoker` is the epoch-less background sweeper.
"""

from __future__ import annotations

from typing import Generator

from repro.kernel.revoker.base import Revoker
from repro.kernel.shadow import RevocationBitmap
from repro.machine.capability import Capability
from repro.machine.cpu import AccessResult, Core
from repro.machine.scheduler import CoreSlot


class LoadFilter:
    """The CHERIoT capability load filter for one core.

    Wraps a core's ``load_cap``: every tagged load probes the revocation
    bitmap with the loaded capability's base; condemned capabilities enter
    the register file with the tag cleared. The probe is charged a small
    constant (tightly-coupled memory, §6.3: low latency bounds), not a
    trap.
    """

    #: Cycles per filtered (tagged) load: the tightly-coupled bitmap probe.
    PROBE_CYCLES = 2

    def __init__(self, core: Core, shadow: RevocationBitmap) -> None:
        self.core = core
        self.shadow = shadow
        self.loads_filtered = 0
        self.caps_cleared = 0

    def load_cap(self, cap: Capability) -> AccessResult:
        """A barrier-free, filtered capability load."""
        result = self.core.load_cap(cap)  # CLG never flips: no LG faults
        value = result.value
        if value is not None and value.tag:
            self.loads_filtered += 1
            result.cycles += self.PROBE_CYCLES
            if self.shadow.is_revoked(value):
                self.caps_cleared += 1
                # Not self-healing: memory keeps the stale tag; only the
                # register copy is cleared (§6.3 fn. 28).
                return AccessResult(result.cycles, value.cleared())
        return result


class CheriotRevoker(Revoker):
    """Epoch-less background sweeping behind a load filter.

    The sweep exists to let bitmap bits (and memory) be recycled; safety
    never depends on its progress, so there is no stop-the-world anywhere
    and no foreground fault handling. Register files are scanned at the
    end of each pass (on CHERIoT the scheduler assists; there is no world
    to stop on a single-core microcontroller).
    """

    name = "cheriot"

    def revoke(self, core: Core, slot: CoreSlot) -> Generator:
        record = self._open_epoch(slot)
        yield self.costs.revoke_syscall
        begin = slot.time
        self.machine.bus.sweep_begin()
        try:
            yield from self.sweep_pages_concurrent(
                core, self.machine.pagetable.cap_dirty_pages(), record
            )
        finally:
            self.machine.bus.sweep_end()
        # Root scan without a pause: the filter already guarantees no
        # revoked capability can be (re)loaded, so the scan needs no
        # synchronized snapshot.
        scan_cycles, _ = self.scan_roots(record)
        yield scan_cycles
        self._phase(record, "sweep", "concurrent", begin, slot.time)
        self._close_epoch(slot)


class HardwareSweepEngine:
    """CHERIoT's cycle-stealing hardware revocation state machine (§6.3).

    The Ibex implementation sweeps with a small pipelined engine that, in
    steady state, tests one capability-granule per cycle; at 20 MHz the
    demo platform's 512 KiB of RAM takes just over 3 ms to sweep — less
    than an idle time quantum. This model exposes that arithmetic (and a
    step function for simulations that want to interleave engine progress
    with application work) so the ablation can reproduce the 3 ms claim.
    """

    #: The demonstration platform's clock (§6.3).
    CLOCK_HZ = 20_000_000
    #: Steady-state throughput: one capability test per cycle.
    GRANULES_PER_CYCLE = 1
    #: CHERIoT is a 32-bit platform: capabilities are 64 bits plus tag,
    #: so the engine tests one 8-byte granule per cycle (unlike the
    #: 16-byte granules of the 64-bit machine elsewhere in this package).
    CHERIOT_GRANULE_BYTES = 8

    def __init__(self, memory_bytes: int = 512 << 10) -> None:
        self.memory_bytes = memory_bytes
        self.total_granules = memory_bytes // self.CHERIOT_GRANULE_BYTES
        self.swept_granules = 0
        self.passes_completed = 0

    def cycles_per_pass(self) -> int:
        """Engine cycles to sweep all of memory once."""
        return self.total_granules // self.GRANULES_PER_CYCLE

    def seconds_per_pass(self) -> float:
        """Wall time of one full sweep at the platform clock."""
        return self.cycles_per_pass() / self.CLOCK_HZ

    def step(self, cycles: int) -> int:
        """Advance the engine by ``cycles``; returns completed passes."""
        if cycles < 0:
            raise ValueError("negative cycles")
        self.swept_granules += cycles * self.GRANULES_PER_CYCLE
        completed = self.swept_granules // self.total_granules
        self.swept_granules %= self.total_granules
        self.passes_completed += completed
        return completed
