"""Unmapped-memory quarantine (§6.2).

snmalloc never returns address space, but mmap-heavy consumers do (the
paper's example: a program repeatedly mapping files to copy them), which
opens intra- and inter-allocator UAF/UAR through ``mmap`` itself. The
paper's two-part fix, implemented (but not evaluated) there and here:

1. partial ``munmap`` leaves guard mappings behind — holes in a
   reservation can never be refilled (:meth:`repro.kernel.vm.AddressSpace.munmap`
   already does this);
2. fully-unmapped reservations are *quarantined*: their whole range is
   painted in the revocation bitmap so the next sweep revokes every
   capability referencing them, and only after that epoch is the
   reservation recycled.

:class:`ReservationQuarantine` implements part 2 on top of the existing
sweep infrastructure — the revokers need no changes, which is exactly the
paper's point ("we have extended Cornucopia and Reloaded's sweep
infrastructure to search for and revoke capabilities referencing
quarantined mappings").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import VMError
from repro.kernel.epoch import release_epoch_for
from repro.kernel.kernel import Kernel
from repro.kernel.vm import Reservation, ReservationState


@dataclass
class _PendingReservation:
    reservation: Reservation
    observed_epoch: int

    @property
    def release_at(self) -> int:
        return release_epoch_for(self.observed_epoch)


class ReservationQuarantine:
    """Quarantine-gated recycling of fully-unmapped reservations."""

    def __init__(self, kernel: Kernel) -> None:
        self.kernel = kernel
        self._pending: list[_PendingReservation] = []
        self.recycled: list[Reservation] = []

    def quarantine(self, reservation: Reservation) -> None:
        """Paint a fully-unmapped reservation and hold it until a
        revocation epoch has begun and ended after the paint."""
        if reservation.state is not ReservationState.QUARANTINED:
            raise VMError(
                "only fully-unmapped reservations enter mmap quarantine"
            )
        self.kernel.shadow.paint(reservation.base, reservation.length)
        self._pending.append(
            _PendingReservation(reservation, self.kernel.epoch.read())
        )

    def munmap_and_quarantine(self, reservation: Reservation) -> None:
        """Convenience: unmap the whole reservation, then quarantine it."""
        remaining = [
            vpn
            for vpn in range(
                reservation.start_vpn, reservation.start_vpn + reservation.num_pages
            )
            if vpn not in reservation.guarded_vpns
        ]
        if remaining:
            # Unmap the still-mapped pages (contiguous runs).
            run_start = remaining[0]
            prev = remaining[0]
            for vpn in remaining[1:] + [None]:
                if vpn is not None and vpn == prev + 1:
                    prev = vpn
                    continue
                self.kernel.address_space.munmap(
                    reservation, run_start * 4096, (prev - run_start + 1) * 4096
                )
                if vpn is not None:
                    run_start = prev = vpn
        self.quarantine(reservation)

    @property
    def pending(self) -> int:
        return len(self._pending)

    def poll(self) -> list[Reservation]:
        """Recycle every reservation whose epoch has passed; returns them.

        Call after revocation epochs complete (the examples poll from the
        application; a production integration would hook the epoch event).
        """
        counter = self.kernel.epoch.read()
        ready = [p for p in self._pending if counter >= p.release_at]
        self._pending = [p for p in self._pending if counter < p.release_at]
        for p in ready:
            self.kernel.shadow.unpaint(p.reservation.base, p.reservation.length)
            self.kernel.address_space.recycle(p.reservation)
            self.recycled.append(p.reservation)
        return [p.reservation for p in ready]
