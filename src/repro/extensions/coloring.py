"""Composing CHERI and memory coloring (§7.3).

The paper's most concrete future-work proposal: move MTE-style color bits
*under CHERI's integrity protection* — the allocator fixes a color in the
returned capability, recolors the memory on ``free()``, and a mis-colored
access is dead on arrival. Temporal safety becomes immediate (no UAF/UAR
gap), and sweeping revocation is only needed when a region has exhausted
its color space: quarantine pressure falls by roughly the number of
colors.

:class:`ColoredCapability` carries the color inside the (architecturally
integrity-protected) pointer — it cannot be separated from the
capability, which is exactly what distinguishes this composition from
plain MTE, where pointer colors are forgeable address bits (§6.1 caveat 1
disappears). Memory colors live per allocation slot.

:class:`ColoredHeap` exposes the allocator surface; its counters let the
ablation benchmark (bench_ablation_coloring) measure revocation pressure
as a function of the color count — the paper predicts quarantine growth
inversely proportional to the number of colors.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.alloc.snmalloc import FreedRegion, SnMalloc
from repro.errors import AllocatorError, CapabilityError
from repro.kernel.kernel import Kernel
from repro.machine.capability import Capability


@dataclass(frozen=True)
class ColoredCapability:
    """A capability whose color rides under CHERI integrity (§7.3)."""

    cap: Capability
    color: int

    @property
    def base(self) -> int:
        return self.cap.base

    @property
    def length(self) -> int:
        return self.cap.length

    @property
    def tag(self) -> bool:
        return self.cap.tag


@dataclass
class ColoringStats:
    """What the color space bought us."""

    frees_total: int = 0
    #: Frees absorbed by a recolor (no quarantine, no revocation needed).
    frees_recolored: int = 0
    #: Frees that exhausted the color space and entered quarantine.
    frees_quarantined: int = 0
    #: Mis-colored accesses refused (would-be UAF/UAR, caught instantly).
    miscolor_faults: int = 0

    @property
    def quarantine_reduction(self) -> float:
        """Fraction of frees that avoided quarantine entirely."""
        if self.frees_total == 0:
            return 0.0
        return self.frees_recolored / self.frees_total


class ColoredHeap:
    """An allocator layer giving every allocation a (capability, color)
    pair and enforcing color matching on access."""

    def __init__(self, kernel: Kernel, num_colors: int = 16) -> None:
        if num_colors < 2:
            raise AllocatorError("coloring needs at least two colors")
        self.kernel = kernel
        self.alloc = SnMalloc(kernel)
        self.num_colors = num_colors
        #: Current color of each allocation slot (keyed by base address).
        self._memory_color: dict[int, int] = {}
        #: Slots whose color space is exhausted, awaiting revocation.
        self.quarantined: list[FreedRegion] = []
        self.stats = ColoringStats()

    # --- Allocation ------------------------------------------------------------

    def malloc(self, nbytes: int) -> ColoredCapability:
        cap, _ = self.alloc.malloc(nbytes)
        color = self._memory_color.setdefault(cap.base, 0)
        return ColoredCapability(cap, color)

    def free(self, ccap: ColoredCapability) -> None:
        """Free with recoloring: the slot is *immediately* reusable unless
        its color space is exhausted (§7.3: quarantine grows at a rate
        inversely proportional to the number of colors)."""
        self.check_access(ccap)  # a stale-colored double free faults here
        region, _ = self.alloc.free(ccap.cap)
        self.stats.frees_total += 1
        old = self._memory_color[region.addr]
        if old + 1 < self.num_colors:
            # Recolor and return the slot to service on the spot: every
            # outstanding capability now carries the wrong color and is
            # permanently useless.
            self._memory_color[region.addr] = old + 1
            self.alloc.release(region)
            self.stats.frees_recolored += 1
        else:
            # Colors exhausted: classic quarantine + revocation path.
            self.kernel.shadow.paint(region.addr, region.size)
            self.quarantined.append(region)
            self.stats.frees_quarantined += 1

    def release_after_revocation(self) -> int:
        """After a revocation epoch, recycle exhausted slots with a fresh
        color space; returns the number released."""
        self.kernel.shadow.unpaint_many(
            (region.addr, region.size) for region in self.quarantined
        )
        released = len(self.quarantined)
        for region in self.quarantined:
            self._memory_color[region.addr] = 0
            self.alloc.release(region)
        self.quarantined.clear()
        return released

    # --- Enforcement ----------------------------------------------------------------

    def check_access(self, ccap: ColoredCapability) -> None:
        """The architectural color check on dereference: capability color
        must match the memory color. Mis-colored stores are discarded and
        mis-colored capabilities may be revoked on sight (§7.3) — modelled
        as a fail-stop fault plus the fault counter.

        The check is "completely architectural" (no bitmap, no kernel):
        just two color fields — which is what makes it suitable for DMA
        engines and hardware sweepers.
        """
        if not ccap.tag:
            raise CapabilityError("untagged capability")
        mem_color = self._memory_color.get(ccap.base)
        if mem_color is None or mem_color != ccap.color:
            self.stats.miscolor_faults += 1
            raise CapabilityError(
                f"color mismatch at {ccap.base:#x}: capability color "
                f"{ccap.color} vs memory color {mem_color}"
            )
