"""Revised PTE capability load control (§7.6).

Stock Reloaded has an awkward obligation: capability-*clean* pages must
still have their generation bits kept up to date on every epoch — the
background pass pays a PTE write (our ``gen_only_visit``) per clean page
per epoch even though no capability can be loaded from them. §7.6
proposes a third PTE disposition: **capability loads always trap**. Pages
in this state need no generation maintenance at all; the (rare) trap on a
capability-width load from such a page is resolved by replacing the PTE
with one carrying the current generation.

Model:

- freshly mapped pages are born with ``always_trap_cap_loads`` set (they
  are clean by construction);
- the first *tagged capability store* to such a page transitions it to
  the normal generation-checked disposition at the storing core's current
  CLG — the stored capability was necessarily already checked (§3.2), so
  the current generation is correct;
- the background pass visits only capability-dirty pages; always-trap
  pages are skipped entirely — no sweep, no PTE write;
- a capability load from an always-trap page traps regardless of the
  loaded tag (fn. 18's "trap on any capability-width load" behaviour)
  and is healed by installing a current-generation PTE. The page's
  contents are skipped while it remains clean.

The machine hooks (`PTE.always_trap_cap_loads`, the load/store barrier
checks in :mod:`repro.machine.cpu`) are part of the base machine; this
module provides the revoker that exploits them.
"""

from __future__ import annotations

from repro.kernel.revoker.reloaded import ReloadedRevoker
from repro.machine.cpu import Core


class AlwaysTrapReloadedRevoker(ReloadedRevoker):
    """Reloaded with §7.6's always-trap disposition for clean pages."""

    name = "reloaded-7.6"

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        # New mappings are born always-trap instead of generation-tracked.
        self.address_space.new_pages_always_trap = True
        # Retrofit pages mapped before the revoker was installed.
        for pte in self.machine.pagetable.mapped_pages():
            if not pte.cap_dirty and not pte.guard:
                pte.always_trap_cap_loads = True
        self.clean_page_traps = 0

    def handle_lg_fault(self, core: Core, vpn: int) -> int:
        pte = self.machine.pagetable.require(vpn)
        if pte.always_trap_cap_loads:
            # §7.6: quickly resolved by replacing the PTE with one that
            # carries the current load generation. Contents are skipped —
            # the page is capability-clean by definition of the state.
            self.clean_page_traps += 1
            pte.always_trap_cap_loads = False
            pte.lg = core.clg
            core.tlb.fill(vpn, pte)
            return (
                self.costs.trap_roundtrip
                + self.costs.pmap_lock
                + self.costs.pte_update
            )
        return super().handle_lg_fault(core, vpn)

    # The background pass inherits ReloadedRevoker.revoke unchanged: its
    # loop skips pages whose lg already matches... but always-trap pages
    # carry no meaningful lg, so exclude them explicitly.
    def revoke(self, core, slot):
        # Wrap the parent generator, but first mark always-trap pages as
        # out of scope for this epoch by aligning their (ignored) lg so
        # the parent's "already current" test skips them without a visit.
        target = self.current_lg ^ 1
        skipped = 0
        for pte in self.machine.pagetable.mapped_pages():
            if pte.always_trap_cap_loads and not pte.cap_dirty:
                pte.lg = target
                skipped += 1
        self.pages_skipped_always_trap = getattr(
            self, "pages_skipped_always_trap", 0
        ) + skipped
        yield from super().revoke(core, slot)
