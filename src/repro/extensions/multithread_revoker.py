"""Multi-threaded background revocation (§7.1).

Cornucopia and Reloaded use a single thread for all background sweep
work. The paper's first future-work item: split the sweep between
multiple threads so multiple cores accelerate revocation — epochs finish
sooner, so the window during which the application pays foreground faults
and contention shrinks.

:class:`MultithreadReloadedRevoker` keeps Reloaded's phases intact; only
the background pass changes: mapped pages are partitioned into stripes,
worker generators sweep the stripes on their own cores, and the
controller joins them before closing the epoch. Page visits are
idempotent within an epoch (§4.3), so striping needs no extra locking
beyond the per-PTE updates already modelled.
"""

from __future__ import annotations

from typing import Generator

from repro.kernel.revoker.base import SWEEP_YIELD_CYCLES
from repro.kernel.revoker.reloaded import ReloadedRevoker
from repro.machine.cpu import Core
from repro.machine.pagetable import PTE
from repro.machine.scheduler import Block, CoreSlot, Event, ResumeWorld, StopWorld


class MultithreadReloadedRevoker(ReloadedRevoker):
    """Reloaded with an N-way striped background sweep."""

    name = "reloaded-mt"

    def __init__(self, *args, sweep_threads: int = 2, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        if sweep_threads < 1:
            raise ValueError("need at least one sweep thread")
        self.sweep_threads = sweep_threads
        #: Core indices for extra workers (assigned at revoke time from
        #: the cores not running the controller).
        self.worker_cores: list[int] = []

    def _sweep_stripe(
        self,
        core: Core,
        pages: list[PTE],
        new_lg: int,
        record,
        done: Event,
        counter: list[int],
    ) -> Generator:
        batch = 0
        for pte in pages:
            if pte.guard or pte.lg == new_lg:
                continue
            if pte.cap_dirty:
                cycles = self.sweep_page(core, pte, record)
            else:
                cycles = self.gen_only_visit(pte, record)
            pte.lg = new_lg
            batch += cycles + self.costs.pmap_lock + self.costs.pte_update
            if batch >= SWEEP_YIELD_CYCLES:
                yield batch
                batch = 0
        if batch:
            yield batch
        counter[0] -= 1
        if counter[0] == 0:
            self.machine.scheduler.signal(done)

    def revoke(self, core: Core, slot: CoreSlot) -> Generator:
        record = self._open_epoch(slot)
        yield self.costs.revoke_syscall
        new_lg = self.current_lg ^ 1

        # Phase 1: identical tiny stop-the-world.
        yield StopWorld()
        stw_begin = slot.time
        yield self.stw_entry_cycles()
        for cpu in self.machine.cores:
            yield cpu.flip_clg()
        self.current_lg = new_lg
        self.address_space.current_lg = new_lg
        scan_cycles, _ = self.scan_roots(record)
        yield scan_cycles
        yield ResumeWorld()
        self._phase(record, "stw", "stw", stw_begin, slot.time)

        # Phase 2: striped background sweep across sweep_threads threads.
        concurrent_begin = slot.time
        pages = [p for p in self.machine.pagetable.mapped_pages()]
        n = self.sweep_threads
        stripes = [pages[i::n] for i in range(n)]
        done = Event("mt-sweep-done")
        counter = [n]
        self.machine.bus.sweep_begin()
        try:
            sched = self.machine.scheduler
            # Extra workers run on the other non-application cores (or
            # share this one if none were configured).
            cores = self.worker_cores or [slot.index] * (n - 1)
            for i, stripe in enumerate(stripes[1:]):
                core_index = cores[i % len(cores)]
                sched.spawn(
                    f"revoker-worker-{i}",
                    self._sweep_stripe(
                        self.machine.cores[core_index], stripe, new_lg,
                        record, done, counter,
                    ),
                    core_index,
                    stops_for_stw=False,
                )
            yield from self._sweep_stripe(core, stripes[0], new_lg, record, done, counter)
            while counter[0] > 0:
                yield Block(done)
        finally:
            self.machine.bus.sweep_end()
        self._phase(record, "concurrent", "concurrent", concurrent_begin, slot.time)

        self._close_epoch(slot)
