"""Multi-pass Cornucopia: the dead end that motivated Reloaded (§3.1).

Before building Reloaded, the Cornucopia authors tried iterating the
store-tracking strategy — running a *second* concurrent pass over the
pages re-dirtied during the first, hoping to leave fewer pages for the
stop-the-world phase. It "showed very little reduction in pause times
[23, fig. 15] and, by definition, would anyway increase total work and
DRAM traffic" — because an application that dirties pages during pass 1
keeps dirtying them during pass 2; the world-stopped re-scan shrinks only
as much as the store rate happens to fall.

:class:`MultipassCornucopiaRevoker` implements N concurrent passes so the
motivation experiment is reproducible (bench_ablation_multipass): pause
times barely move while sweep traffic grows with every extra pass.
"""

from __future__ import annotations

from typing import Generator

from repro.kernel.revoker.cornucopia import CornucopiaRevoker
from repro.machine.cpu import Core
from repro.machine.scheduler import CoreSlot, ResumeWorld, StopWorld


class MultipassCornucopiaRevoker(CornucopiaRevoker):
    """Cornucopia with ``passes`` concurrent rounds before the STW."""

    name = "cornucopia-multipass"

    def __init__(self, *args, passes: int = 2, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        if passes < 1:
            raise ValueError("need at least one concurrent pass")
        self.passes = passes
        #: Pages swept per concurrent round, per epoch (for the ablation).
        self.pass_page_counts: list[list[int]] = []

    def revoke(self, core: Core, slot: CoreSlot) -> Generator:
        record = self._open_epoch(slot)
        yield self.costs.revoke_syscall

        # Concurrent rounds: the first covers every capability-dirty
        # page; later rounds re-sweep only what got re-dirtied meanwhile.
        per_pass: list[int] = []
        concurrent_begin = slot.time
        self.machine.bus.sweep_begin()
        try:
            for round_no in range(self.passes):
                if round_no == 0:
                    targets = self.machine.pagetable.cap_dirty_pages()
                else:
                    targets = self.machine.pagetable.redirtied_pages()
                    if not targets:
                        per_pass.append(0)
                        continue
                before = record.pages_swept
                yield from self.sweep_pages_concurrent(
                    core, targets, record, extra_per_page=self.costs.pte_update
                )
                per_pass.append(record.pages_swept - before)
            yield self.machine.tlb_shootdown()
        finally:
            self.machine.bus.sweep_end()
        self._phase(record, "concurrent", "concurrent", concurrent_begin, slot.time)
        self.pass_page_counts.append(per_pass)

        # The stop-the-world phase is unchanged: whatever is *still*
        # re-dirtied must be swept with the world stopped.
        yield StopWorld()
        stw_begin = slot.time
        yield self.stw_entry_cycles()
        scan_cycles, _ = self.scan_roots(record)
        yield scan_cycles
        yield from self.sweep_pages_stw(
            core, self.machine.pagetable.redirtied_pages(), record
        )
        yield ResumeWorld()
        self._phase(record, "stw", "stw", stw_begin, slot.time)

        self._close_epoch(slot)
