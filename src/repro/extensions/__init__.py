"""Extensions from the paper's related/future work sections: mmap
quarantine (§6.2), CHERI+coloring (§7.3), the CHERIoT load filter (§6.3),
and multi-threaded background revocation (§7.1)."""

from repro.extensions.always_trap import AlwaysTrapReloadedRevoker
from repro.extensions.cheriot import CheriotRevoker, HardwareSweepEngine, LoadFilter
from repro.extensions.coloring import ColoredCapability, ColoredHeap, ColoringStats
from repro.extensions.multipass import MultipassCornucopiaRevoker
from repro.extensions.multithread_revoker import MultithreadReloadedRevoker
from repro.extensions.reservations import ReservationQuarantine

__all__ = [
    "AlwaysTrapReloadedRevoker",
    "CheriotRevoker",
    "ColoredCapability",
    "ColoredHeap",
    "ColoringStats",
    "HardwareSweepEngine",
    "LoadFilter",
    "MultipassCornucopiaRevoker",
    "MultithreadReloadedRevoker",
    "ReservationQuarantine",
]
