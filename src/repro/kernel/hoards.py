"""Kernel capability hoards (§4.4).

User pointers flow freely into the kernel: ephemerally (system call
arguments) or hoarded — kqueue/aio-style subsystems keep user capabilities
and return them later, and a context-switched thread's register file is
itself a hoard. At some point during every revocation epoch the kernel
must scan everything it holds on behalf of the process, and must never
divulge an unchecked capability. For Reloaded this scan happens in the
stop-the-world phase (§4.4).

:class:`RegisterFile` models a thread's capability registers;
:class:`KernelHoards` models the named hoarding subsystems. Both expose
``scan`` — test each capability against the revocation bitmap and clear
the condemned ones — and report counts so the STW cost can be charged.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.kernel.shadow import RevocationBitmap
from repro.machine.capability import Capability


@dataclass
class ScanOutcome:
    """Result of scanning one capability store: how many were looked at
    and how many were revoked."""

    checked: int = 0
    revoked: int = 0

    def merge(self, other: "ScanOutcome") -> None:
        self.checked += other.checked
        self.revoked += other.revoked


class RegisterFile:
    """A user thread's capability registers.

    Workloads keep their working pointers here; the STW register scan
    (§3.2) walks it. Capacity mirrors the architectural register count —
    spills go through memory, where the sweep finds them.
    """

    def __init__(self, capacity: int = 32) -> None:
        self.capacity = capacity
        self._regs: dict[int, Capability] = {}

    def set(self, index: int, cap: Capability) -> None:
        if not 0 <= index < self.capacity:
            raise IndexError(f"register {index} out of range")
        self._regs[index] = cap

    def get(self, index: int) -> Capability | None:
        return self._regs.get(index)

    def clear(self, index: int) -> None:
        self._regs.pop(index, None)

    def live_caps(self) -> list[tuple[int, Capability]]:
        return [(i, c) for i, c in self._regs.items() if c.tag]

    def __len__(self) -> int:
        return len(self._regs)

    def scan(self, shadow: RevocationBitmap) -> ScanOutcome:
        """Clear every revoked capability in this register file."""
        outcome = ScanOutcome()
        for index, cap in list(self._regs.items()):
            if not cap.tag:
                continue
            outcome.checked += 1
            if shadow.is_revoked(cap):
                self._regs[index] = cap.cleared()
                outcome.revoked += 1
        return outcome


class KernelHoards:
    """Named kernel subsystems hoarding user capabilities (kqueue, aio,
    saved register files of descheduled threads...)."""

    def __init__(self) -> None:
        self._hoards: dict[str, list[Capability]] = {}

    def stash(self, subsystem: str, cap: Capability) -> int:
        """Hoard ``cap`` in ``subsystem``; returns a ticket to retrieve it."""
        hoard = self._hoards.setdefault(subsystem, [])
        hoard.append(cap)
        return len(hoard) - 1

    def retrieve(self, subsystem: str, ticket: int) -> Capability:
        """Return a hoarded capability to user space. The kernel may never
        divulge an unchecked capability; because every scan runs while the
        world is stopped and copy-out happens only afterwards, whatever is
        stored here has been checked (§4.4)."""
        return self._hoards[subsystem][ticket]

    def total_caps(self) -> int:
        return sum(len(h) for h in self._hoards.values())

    def scan(self, shadow: RevocationBitmap) -> ScanOutcome:
        """Clear every revoked capability in every hoard."""
        outcome = ScanOutcome()
        for hoard in self._hoards.values():
            for i, cap in enumerate(hoard):
                if not cap.tag:
                    continue
                outcome.checked += 1
                if shadow.is_revoked(cap):
                    hoard[i] = cap.cleared()
                    outcome.revoked += 1
        return outcome
