"""The revocation epoch clock (§2.2.3).

A publicly readable counter, initialized to zero, incremented *prior to*
the start of every revocation pass and *again after* its end: odd while a
revocation is in flight, even when idle.

The dequarantine rule: an allocator that painted memory while reading
epoch ``e`` must wait until the counter has advanced at least twice (if
``e`` was even) or thrice (if odd) — this guarantees a full revocation
pass both *began* and *ended* after the paint. :func:`release_epoch_for`
computes that threshold.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import SimulationError
from repro.machine.scheduler import Event
from repro.obs.tracer import TRACER


def release_epoch_for(observed: int) -> int:
    """The counter value at which memory painted while reading ``observed``
    may be dequarantined (§2.2.3)."""
    if observed % 2 == 0:
        return observed + 2
    return observed + 3


class EpochClock:
    """The kernel's epoch counter plus a wakeup event for waiters."""

    def __init__(self) -> None:
        self.counter = 0
        #: Signaled (broadcast) at every counter transition; waiters must
        #: re-check their condition.
        self.changed = Event("epoch-changed")
        #: Epochs completed (counter end-transitions), for rate statistics.
        self.completed = 0
        #: Oracle probe point (:mod:`repro.check`): called with the new
        #: counter value after every begin/end transition. ``None`` (the
        #: default) costs one attribute test per transition.
        self.on_transition: Callable[[int], None] | None = None

    @property
    def revoking(self) -> bool:
        """True while a revocation pass is in flight (counter is odd)."""
        return self.counter % 2 == 1

    def begin_revocation(self) -> None:
        if self.revoking:
            raise SimulationError("revocation already in flight")
        self.counter += 1
        if self.on_transition is not None:
            self.on_transition(self.counter)
        if TRACER.enabled:
            TRACER.emit("epoch.tick", counter=self.counter, revoking=True)

    def end_revocation(self) -> None:
        if not self.revoking:
            raise SimulationError("no revocation in flight")
        self.counter += 1
        self.completed += 1
        if self.on_transition is not None:
            self.on_transition(self.counter)
        if TRACER.enabled:
            TRACER.emit("epoch.tick", counter=self.counter, revoking=False)

    def read(self) -> int:
        """What a user-space allocator sees when it loads the counter."""
        return self.counter
