"""Virtual memory: mappings and reservations.

The simulation runs one process under test, so there is a single
:class:`AddressSpace` over the machine's memory. ``mmap`` hands out
capability-bounded regions backed by reservations (§6.2): bounds are
padded to the representable length required by compressed capabilities,
the padding is backed by guard pages, and partial ``munmap`` leaves guard
mappings behind so holes can never be refilled by later mappings (the
UAF-through-mmap gap the paper closes). Fully-unmapped reservations are
quarantined and only recycled after a revocation pass — that part lives
in :mod:`repro.extensions.reservations`.

Peak resident set (the paper's fig. 3 metric) is tracked here: a page
counts toward RSS while mapped and non-guard, which includes pages whose
contents sit in allocator quarantine — exactly why quarantine shows up as
RSS overshoot in the paper.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import VMError
from repro.machine.capability import Capability, representable_length
from repro.machine.costs import PAGE_BYTES
from repro.machine.machine import Machine
from repro.obs.tracer import TRACER


class ReservationState(enum.Enum):
    ACTIVE = "active"
    QUARANTINED = "quarantined"  # fully unmapped, awaiting revocation
    RECYCLED = "recycled"


@dataclass
class Reservation:
    """A contiguous span of address space handed out by one mmap (§6.2)."""

    start_vpn: int
    num_pages: int
    requested_bytes: int
    state: ReservationState = ReservationState.ACTIVE
    #: Pages munmapped so far (now guard mappings).
    guarded_vpns: set[int] = field(default_factory=set)

    @property
    def base(self) -> int:
        return self.start_vpn * PAGE_BYTES

    @property
    def length(self) -> int:
        return self.num_pages * PAGE_BYTES

    def contains(self, addr: int) -> bool:
        return self.base <= addr < self.base + self.length


class AddressSpace:
    """The process's address space: a bump allocator of page spans.

    The system allocators never return address space (§6.2: snmalloc and
    the C runtime's embedded allocators never munmap), so a bump layout is
    faithful; the reservations extension adds quarantine-gated recycling
    for mmap-heavy consumers.
    """

    def __init__(self, machine: Machine) -> None:
        self.machine = machine
        self._next_vpn = 1  # page 0 stays unmapped (null-ish guard)
        self.num_pages_total = machine.memory.num_pages
        self.reservations: list[Reservation] = []
        self.mapped_pages = 0
        self.peak_mapped_pages = 0
        #: The load-generation value newly mapped PTEs receive. The kernel
        #: keeps this equal to the cores' CLG so fresh (tag-free) pages
        #: never fault (§4.1 fn. 19).
        self.current_lg = 0
        #: §7.6: when set (by AlwaysTrapReloadedRevoker), fresh pages are
        #: born in the always-trap disposition instead.
        self.new_pages_always_trap = False

    # --- Mapping -----------------------------------------------------------------

    def mmap(self, nbytes: int, *, cap_store: bool = True) -> tuple[Capability, Reservation]:
        """Map a fresh region of at least ``nbytes`` and return the root
        capability over it plus its reservation.

        The reservation is padded to the compressed-bounds representable
        length; the capability's bounds cover exactly the representable
        region (padding is part of the reservation, backed by real pages
        here for simplicity — the paper backs padding with guards).
        """
        if nbytes <= 0:
            raise VMError(f"mmap of non-positive size {nbytes}")
        length = representable_length(nbytes)
        pages = (length + PAGE_BYTES - 1) // PAGE_BYTES
        start = self._next_vpn
        if start + pages > self.num_pages_total:
            raise VMError(
                f"address space exhausted: want {pages} pages at {start} "
                f"of {self.num_pages_total}"
            )
        self._next_vpn = start + pages
        for vpn in range(start, start + pages):
            self.machine.pagetable.map_page(
                vpn, cap_store=cap_store, lg=self.current_lg,
                always_trap_cap_loads=self.new_pages_always_trap,
            )
        self.mapped_pages += pages
        self.peak_mapped_pages = max(self.peak_mapped_pages, self.mapped_pages)
        reservation = Reservation(start, pages, nbytes)
        self.reservations.append(reservation)
        if TRACER.enabled:
            TRACER.emit("vm.mmap", vpn=start, pages=pages, bytes=nbytes)
        cap = Capability.root(start * PAGE_BYTES, pages * PAGE_BYTES)
        return cap, reservation

    def munmap(self, reservation: Reservation, addr: int, nbytes: int) -> None:
        """Unmap pages of a reservation, replacing them with guard pages so
        the hole cannot be refilled (§6.2 step 1). When the last page goes,
        the reservation is quarantined."""
        if reservation.state is not ReservationState.ACTIVE:
            raise VMError("munmap of a non-active reservation")
        if addr % PAGE_BYTES or nbytes % PAGE_BYTES or nbytes <= 0:
            raise VMError("munmap must be page aligned")
        first = addr // PAGE_BYTES
        last = (addr + nbytes) // PAGE_BYTES
        if first < reservation.start_vpn or last > reservation.start_vpn + reservation.num_pages:
            raise VMError("munmap outside reservation")
        for vpn in range(first, last):
            if vpn in reservation.guarded_vpns:
                raise VMError(f"double munmap of page {vpn}")
            pte = self.machine.pagetable.require(vpn)
            pte.guard = True
            pte.readable = pte.writable = False
            self.machine.memory.zero_page(vpn)
            reservation.guarded_vpns.add(vpn)
            self.machine.tlb_shootdown(vpn)
        self.mapped_pages -= last - first
        if TRACER.enabled:
            TRACER.emit("vm.munmap", vpn=first, pages=last - first)
        if len(reservation.guarded_vpns) == reservation.num_pages:
            reservation.state = ReservationState.QUARANTINED

    def recycle(self, reservation: Reservation) -> None:
        """Tear down a fully-revoked quarantined reservation, releasing its
        page-table entries (used by the reservations extension)."""
        if reservation.state is not ReservationState.QUARANTINED:
            raise VMError("recycle of a non-quarantined reservation")
        for vpn in range(reservation.start_vpn, reservation.start_vpn + reservation.num_pages):
            self.machine.pagetable.unmap_page(vpn)
        reservation.state = ReservationState.RECYCLED

    # --- Reporting ------------------------------------------------------------------

    @property
    def rss_bytes(self) -> int:
        return self.mapped_pages * PAGE_BYTES

    @property
    def peak_rss_bytes(self) -> int:
        return self.peak_mapped_pages * PAGE_BYTES
