"""The revocation ("shadow") bitmap (§2.2.2).

One bit per 16-byte granule of the address space — the same density as
CHERI tags. A set bit means: capabilities whose *base* falls on that
granule are to be revoked. Allocators paint an allocation's entire range
when it enters quarantine, so any capability derived from it (whose base
must lie inside the allocation, by monotonicity) is caught.

In CheriBSD the bitmap is a kernel-provided anonymous object written by
user allocators and read by the kernel sweep. Here it is numpy-backed;
the *traffic* of painting and probing is charged by the callers through
their core's cache, using the synthetic shadow address range this class
exposes (consecutive heap pages share shadow cache lines, as in reality:
a 4 KiB page's shadow is 32 bytes).
"""

from __future__ import annotations

import numpy as np

from repro.errors import VMError
from repro.machine.capability import Capability
from repro.machine.costs import GRANULE_BYTES
from repro.obs.tracer import TRACER


class RevocationBitmap:
    """Shadow bitmap over a ``size_bytes`` address space."""

    def __init__(self, size_bytes: int) -> None:
        self.size_bytes = size_bytes
        self.num_granules = size_bytes // GRANULE_BYTES
        self._bits = np.zeros(self.num_granules, dtype=bool)
        #: Synthetic byte address of the bitmap's backing store, used only
        #: so painting/probing shows up in cache/bus accounting.
        self.shadow_base = size_bytes
        self.painted_granules = 0

    # --- Address helpers -----------------------------------------------------

    def _granule_range(self, addr: int, nbytes: int) -> tuple[int, int]:
        if addr % GRANULE_BYTES or nbytes % GRANULE_BYTES:
            raise VMError(
                f"quarantine region must be granule aligned: {addr:#x}+{nbytes}"
            )
        g0 = addr // GRANULE_BYTES
        g1 = g0 + nbytes // GRANULE_BYTES
        if g1 > self.num_granules:
            raise VMError(f"quarantine region out of range: {addr:#x}+{nbytes}")
        return g0, g1

    def shadow_addr_of_granule(self, granule: int) -> int:
        """Byte address of the bitmap bit for ``granule`` (for cache charging)."""
        return self.shadow_base + granule // 8

    def shadow_span(self, addr: int, nbytes: int) -> tuple[int, int]:
        """(shadow byte address, shadow byte length) covering a region."""
        g0, g1 = self._granule_range(addr, nbytes)
        start = self.shadow_base + g0 // 8
        length = max(1, (g1 - g0 + 7) // 8)
        return start, length

    # --- Painting (user side) ---------------------------------------------------

    def paint(self, addr: int, nbytes: int) -> int:
        """Mark a freed region for revocation; returns granules painted."""
        g0, g1 = self._granule_range(addr, nbytes)
        span = self._bits[g0:g1]
        newly = int((~span).sum())
        span[:] = True
        self.painted_granules += newly
        if TRACER.enabled:
            TRACER.emit("shadow.paint", granules=g1 - g0)
        return g1 - g0

    def unpaint(self, addr: int, nbytes: int) -> int:
        """Clear a region's bits when the allocator dequarantines it (the
        region is about to be reused, so future capabilities to it must not
        be revoked). Returns granules cleared."""
        g0, g1 = self._granule_range(addr, nbytes)
        span = self._bits[g0:g1]
        cleared = int(span.sum())
        span[:] = False
        self.painted_granules -= cleared
        if TRACER.enabled:
            TRACER.emit("shadow.unpaint", granules=g1 - g0)
        return g1 - g0

    def unpaint_many(self, regions) -> int:
        """Clear the bits of many ``(addr, nbytes)`` regions in one call
        (quarantine batch release); returns total granules spanned —
        the Python-loop overhead stays here instead of in every caller."""
        total = 0
        for addr, nbytes in regions:
            total += self.unpaint(addr, nbytes)
        return total

    # --- Probing (kernel side) ----------------------------------------------------

    def is_revoked(self, cap: Capability) -> bool:
        """Whether ``cap`` is condemned: probes the bit of its *base*
        (§2.2.2 fn. 9 — bases cannot be forged out of an allocation)."""
        g = cap.revocation_probe_address // GRANULE_BYTES
        if g >= self.num_granules:
            return False
        return bool(self._bits[g])

    def probe_bases(self, bases: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`is_revoked`: probe many capability bases in
        one gather; returns a bool array aligned with ``bases``.

        Bases past the end of the bitmap read as not-condemned, matching
        the scalar probe's out-of-range rule.
        """
        g = bases // GRANULE_BYTES
        in_range = g < self.num_granules
        if in_range.all():
            return self._bits[g]
        out = np.zeros(len(g), dtype=bool)
        out[in_range] = self._bits[g[in_range]]
        return out

    def is_painted_addr(self, addr: int) -> bool:
        return bool(self._bits[addr // GRANULE_BYTES])

    @property
    def any_painted(self) -> bool:
        return self.painted_granules > 0
