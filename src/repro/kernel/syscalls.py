"""The system call surface between user space and the kernel.

CheriBSD exposes revocation to user space through a small ABI: the
mapped, read-only epoch counter; the revocation bitmap painting interface
(capability-derived access to the process's shadow region, §2.2.2 fn. 10);
and the revocation syscall the mrs controller invokes once per phase
(§4.3 fn. 21), which holds the address map busy for the concurrent
phases.

In this model the allocator layers call kernel objects directly for
speed; :class:`SyscallInterface` packages the same operations behind an
explicit, validated boundary for code (examples, tests, external tools)
that wants the ABI shape — including the access-control checks the fast
path skips, mirroring how the paper's experiments "unsafely bypass" the
bitmap controls through a shim while the real ABI enforces them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator

from repro.errors import VMError
from repro.kernel.kernel import Kernel
from repro.kernel.vm import Reservation
from repro.machine.capability import Capability
from repro.machine.cpu import Core
from repro.machine.scheduler import CoreSlot


@dataclass(frozen=True)
class ShadowGrant:
    """Capability-based access to part of the revocation bitmap: the
    kernel grants an allocator paint rights only over its own heap
    (Cornucopia's appendix A access control)."""

    base: int
    length: int

    def covers(self, addr: int, nbytes: int) -> bool:
        return self.base <= addr and addr + nbytes <= self.base + self.length


class SyscallInterface:
    """The user-visible kernel ABI."""

    def __init__(self, kernel: Kernel) -> None:
        self.kernel = kernel
        self._grants: list[ShadowGrant] = []

    # --- Memory mapping -----------------------------------------------------

    def sys_mmap(self, nbytes: int) -> tuple[Capability, Reservation]:
        """Map fresh address space; the returned capability is the root
        of everything derivable over the reservation."""
        return self.kernel.address_space.mmap(nbytes)

    def sys_munmap(self, reservation: Reservation, addr: int, nbytes: int) -> None:
        self.kernel.address_space.munmap(reservation, addr, nbytes)

    # --- Shadow bitmap access control (§2.2.2 fn. 10) --------------------------

    def grant_shadow(self, heap: Capability) -> ShadowGrant:
        """Grant paint rights over ``heap``'s range (the kernel would hand
        back a capability to the corresponding bitmap slice)."""
        if not heap.tag:
            raise VMError("shadow grant requires a valid heap capability")
        grant = ShadowGrant(heap.base, heap.length)
        self._grants.append(grant)
        return grant

    def sys_paint(self, grant: ShadowGrant, addr: int, nbytes: int) -> int:
        """Paint within a granted range; painting outside it is refused
        (a stray allocator cannot condemn someone else's memory)."""
        if grant not in self._grants or not grant.covers(addr, nbytes):
            raise VMError(
                f"shadow paint outside grant [{grant.base:#x},"
                f"{grant.base + grant.length:#x}): {addr:#x}+{nbytes}"
            )
        return self.kernel.shadow.paint(addr, nbytes)

    def sys_unpaint(self, grant: ShadowGrant, addr: int, nbytes: int) -> int:
        if grant not in self._grants or not grant.covers(addr, nbytes):
            raise VMError("shadow unpaint outside grant")
        return self.kernel.shadow.unpaint(addr, nbytes)

    # --- Epochs and revocation --------------------------------------------------

    def sys_epoch_read(self) -> int:
        """The mapped, read-only epoch counter (§2.2.3)."""
        return self.kernel.epoch.read()

    def sys_revoke(self, core: Core, slot: CoreSlot) -> Generator:
        """The revocation syscall: runs one full epoch on the calling
        thread (which must not be stopped by the world-stop — it drives
        it). The caller is the mrs controller thread in practice."""
        revoker = self.kernel.revoker
        if revoker is None:
            raise VMError("no revoker configured in this kernel")
        yield from revoker.revoke(core, slot)
