"""CheriBSD-like kernel substrate: VM, shadow bitmap, epochs, hoards,
and the revoker subsystem."""

from repro.kernel.epoch import EpochClock, release_epoch_for
from repro.kernel.hoards import KernelHoards, RegisterFile, ScanOutcome
from repro.kernel.kernel import Kernel
from repro.kernel.shadow import RevocationBitmap
from repro.kernel.syscalls import ShadowGrant, SyscallInterface
from repro.kernel.vm import AddressSpace, Reservation, ReservationState

__all__ = [
    "AddressSpace",
    "EpochClock",
    "Kernel",
    "KernelHoards",
    "RegisterFile",
    "Reservation",
    "ReservationState",
    "RevocationBitmap",
    "ScanOutcome",
    "ShadowGrant",
    "SyscallInterface",
    "release_epoch_for",
]
