"""CHERIvoke: fully stop-the-world sweeping revocation (§2.2.1).

The paper's "CHERIvoke" condition is its Cornucopia re-implementation
*eschewing the concurrent phase*: one revocation epoch stops the world,
scans capability roots, sweeps every capability-dirty page, and restarts
the world. Simple, correct, and — for large heaps — seconds of pause
(fig. 9's blue series).
"""

from __future__ import annotations

from typing import Generator

from repro.kernel.revoker.base import Revoker
from repro.machine.cpu import Core
from repro.machine.scheduler import CoreSlot, ResumeWorld, StopWorld


class CheriVokeRevoker(Revoker):
    """Single world-stopped sweep per epoch."""

    name = "cherivoke"

    def revoke(self, core: Core, slot: CoreSlot) -> Generator:
        record = self._open_epoch(slot)
        yield self.costs.revoke_syscall

        yield StopWorld()
        stw_begin = slot.time
        yield self.stw_entry_cycles()
        scan_cycles, _ = self.scan_roots(record)
        yield scan_cycles
        # Sweep everything that may hold capabilities, world stopped.
        # (Batched yields: same pause end-cycle, one scheduler step per
        # ~SWEEP_YIELD_CYCLES instead of one per page.)
        yield from self.sweep_pages_stw(
            core, self.machine.pagetable.cap_dirty_pages(), record
        )
        yield ResumeWorld()
        self._phase(record, "sweep", "stw", stw_begin, slot.time)

        self._close_epoch(slot)
