"""Shared revocation machinery: the page sweep, capability-root scans,
and per-epoch phase timing records.

Every strategy (CHERIvoke, Cornucopia, Reloaded) is a :class:`Revoker`
whose :meth:`revoke` is a generator executing one full revocation epoch on
the controller thread's core, yielding cycle costs (and the scheduler's
stop-/resume-world control objects) as it goes. The epoch protocol is
identical across strategies (§2.2.3): increment the public counter before
starting, sweep per the strategy, increment again after.

The sweep inner loop is the paper's: for each tagged granule of a page,
probe the revocation bitmap with the capability's *base*; clear the tag if
painted (§2.2.2). Traffic is charged through the executing core's cache —
the page's 64 lines plus the 32 bytes of shadow bitmap it maps to.

The granule scan runs vectorized by default (one numpy gather of the
page's tagged bases against the shadow bitmap, one masked store to clear
revoked tags — what a hardware sweep engine would pipeline); the original
per-granule loop remains as the reference model behind ``REPRO_SCALAR=1``
(see :mod:`repro.fastpath`).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Generator, Iterable

import numpy as np

from repro.errors import SimulationError
from repro.fastpath import scalar_mode
from repro.kernel.epoch import EpochClock
from repro.kernel.hoards import KernelHoards, RegisterFile, ScanOutcome
from repro.kernel.shadow import RevocationBitmap
from repro.kernel.vm import AddressSpace
from repro.machine.costs import LINES_PER_PAGE
from repro.machine.cpu import Core
from repro.machine.machine import Machine
from repro.machine.pagetable import PTE
from repro.machine.scheduler import CoreSlot
from repro.obs.tracer import TRACER

#: Concurrent sweeps accumulate about this many cycles of page visits per
#: scheduler yield. Coarser batching means fewer simulation steps; the
#: value stays well under the preemption quantum so interleaving with the
#: application (and STW entry latency) is still fine-grained.
SWEEP_YIELD_CYCLES = 100_000


@dataclass
class PhaseSample:
    """One timed phase of one revocation epoch (fig. 9's unit)."""

    epoch: int
    name: str
    kind: str  # "stw" | "concurrent"
    begin: int
    end: int

    def __post_init__(self) -> None:
        # Phase accounting assumes monotonically increasing begin/end; a
        # negative duration would silently corrupt every downstream STW
        # and concurrent-cycle statistic, so fail loudly instead.
        if self.end < self.begin:
            raise SimulationError(
                f"phase {self.name!r} of epoch {self.epoch} ends at "
                f"{self.end} before it began at {self.begin}"
            )

    @property
    def duration(self) -> int:
        return self.end - self.begin


@dataclass
class EpochRecord:
    """Everything measured about one revocation epoch."""

    epoch: int
    phases: list[PhaseSample] = field(default_factory=list)
    #: Cumulative foreground load-fault handling time (Reloaded; fig. 9's
    #: brown series / fig. 7's dotted segment).
    fault_cycles: int = 0
    fault_count: int = 0
    pages_swept: int = 0
    pages_gen_only: int = 0
    caps_checked: int = 0
    caps_revoked: int = 0
    roots_checked: int = 0
    roots_revoked: int = 0

    def stw_cycles(self) -> int:
        return sum(p.duration for p in self.phases if p.kind == "stw")

    def concurrent_cycles(self) -> int:
        return sum(p.duration for p in self.phases if p.kind == "concurrent")


class Revoker(abc.ABC):
    """A sweeping revocation strategy (§2.2)."""

    #: Human-readable strategy name (matches the paper's figures).
    name: str = "abstract"
    #: Whether this strategy actually provides temporal safety
    #: ("Paint+sync" does not; §5).
    provides_safety: bool = True

    def __init__(
        self,
        machine: Machine,
        address_space: AddressSpace,
        shadow: RevocationBitmap,
        epoch: EpochClock,
        hoards: KernelHoards,
    ) -> None:
        self.machine = machine
        self.address_space = address_space
        self.shadow = shadow
        self.epoch = epoch
        self.hoards = hoards
        #: User threads' register files, registered by the simulation.
        self.register_files: list[RegisterFile] = []
        self.records: list[EpochRecord] = []
        self.costs = machine.costs
        self._current_record: EpochRecord | None = None

    # --- Epoch protocol helpers -------------------------------------------------

    def _open_epoch(self, slot: CoreSlot) -> EpochRecord:
        self.epoch.begin_revocation()
        self.machine.scheduler.signal(self.epoch.changed, at_time=slot.time)
        record = EpochRecord(epoch=self.epoch.counter)
        self.records.append(record)
        self._current_record = record
        if TRACER.enabled:
            TRACER.emit(
                "epoch.open", ts=slot.time, epoch=record.epoch, revoker=self.name
            )
        # Reset per-epoch sweep bookkeeping (kernel-side software state).
        for pte in self.machine.pagetable.mapped_pages():
            pte.swept_this_epoch = False
            pte.redirtied = False
        return record

    def _close_epoch(self, slot: CoreSlot) -> None:
        record = self._current_record
        self.epoch.end_revocation()
        self.machine.scheduler.signal(self.epoch.changed, at_time=slot.time)
        self._current_record = None
        if TRACER.enabled and record is not None:
            TRACER.emit(
                "epoch.close",
                ts=slot.time,
                epoch=record.epoch,
                pages_swept=record.pages_swept,
                caps_revoked=record.caps_revoked,
            )

    def _phase(self, record: EpochRecord, name: str, kind: str, begin: int, end: int) -> None:
        record.phases.append(
            PhaseSample(epoch=record.epoch, name=name, kind=kind, begin=begin, end=end)
        )
        if TRACER.enabled:
            TRACER.emit(
                "revoker.phase",
                ts=end,
                epoch=record.epoch,
                phase=name,
                kind=kind,
                begin=begin,
                end=end,
            )

    # --- The sweep ----------------------------------------------------------------

    def sweep_page(
        self,
        core: Core,
        pte: PTE,
        record: EpochRecord,
        *,
        warm_cache: bool = False,
    ) -> int:
        """Sweep one page's contents on ``core``; returns cycles consumed.

        Idempotent within an epoch (§4.3): overlapping foreground and
        background visits are safe, they just re-scan.

        Background and world-stopped sweeps stream the page past the cache
        (non-temporal reads, the behaviour §5.6 recommends for page
        scans); a *foreground* fault sweep sets ``warm_cache`` because it
        runs on the application's core and leaves the page's lines behind
        for the application — the cache-warming effect §5.6 observes.
        """
        memory = self.machine.memory
        if scalar_mode():
            n_tagged, revoked = self._scan_page_scalar(memory, pte.vpn)
        else:
            n_tagged, revoked = self._scan_page_vector(memory, pte.vpn)
        if warm_cache:
            misses = core.cache.access_page(pte.vpn, write=revoked > 0)
        elif self.costs.tag_table_sweep:
            # §7.5 relaxed tag coherence: consult the (written-back) tag
            # table first and fetch only the data lines that hold tags.
            # A page's tags are 32 bytes of tag table: about one line per
            # two pages, charged via shadow-style amortized access below.
            data_lines = min(
                LINES_PER_PAGE, n_tagged * self.costs.tag_sweep_lines_per_cap
            )
            misses = data_lines + 1  # + the tag-table line (amortized high)
            core.bus.read(core.name, misses)
            if revoked:
                core.bus.write(core.name, 1 + (revoked - 1) // 4)
        else:
            misses = LINES_PER_PAGE
            core.bus.read(core.name, LINES_PER_PAGE)
            if revoked:
                # Revocation dirtied the page: write back the lines holding
                # the cleared tags (16 granules per line).
                core.bus.write(core.name, 1 + (revoked - 1) // 4)
        # The page's 32 bytes of shadow bitmap stay cache-resident across
        # consecutive pages (16 heap pages share a shadow line).
        g0, _ = memory.page_granule_range(pte.vpn)
        shadow_addr = self.shadow.shadow_addr_of_granule(g0)
        misses += core.cache.access_range(shadow_addr, 32)
        cycles = (
            self.costs.page_sweep_cycles(n_tagged, revoked)
            + misses * self.costs.mem_stream
        )
        if revoked and not pte.writable:
            # §4.3: a read-only page is handled as read-only unless a
            # capability on it must be revoked — then the full page-fault
            # machinery upgrades it to writable for the clearing store.
            cycles += self.costs.sweep_ro_upgrade
            pte.writable = True
        pte.swept_this_epoch = True
        pte.redirtied = False
        record.pages_swept += 1
        record.caps_checked += n_tagged
        record.caps_revoked += revoked
        return cycles

    # The granule scan exists twice: the scalar reference model below and
    # the vectorized fast path (the default; ``REPRO_SCALAR=1`` selects
    # the reference). Both return (tagged, revoked) counts and leave
    # memory in the same state; tests/test_sweep_equivalence.py pins the
    # equivalence on full fixed-seed runs.

    def _scan_page_scalar(self, memory, vpn: int) -> tuple[int, int]:
        """Reference scan: probe each tagged granule's base one at a time."""
        tagged = memory.tagged_granules_in_page(vpn)
        revoked = 0
        for granule in tagged:
            cap = memory.cap_at_granule(granule)
            if self.shadow.is_revoked(cap):
                memory.clear_tag_at_granule(granule)
                revoked += 1
        return len(tagged), revoked

    def _scan_page_vector(self, memory, vpn: int) -> tuple[int, int]:
        """Vector scan: gather every tagged granule's capability base,
        probe the shadow bitmap in one vector op, clear revoked tags as
        one masked store."""
        tags, bases = memory.page_tag_arrays(vpn)
        idx = np.flatnonzero(tags)
        if not idx.size:
            return 0, 0
        condemned = self.shadow.probe_bases(bases[idx])
        revoked = int(np.count_nonzero(condemned))
        if revoked:
            g0, _ = memory.page_granule_range(vpn)
            memory.clear_granules(idx[condemned] + g0)
        return int(idx.size), revoked

    def sweep_pages_concurrent(
        self,
        core: Core,
        pages: Iterable[PTE],
        record: EpochRecord,
        *,
        extra_per_page: int = 0,
    ) -> Generator:
        """Sweep ``pages`` concurrently, yielding accumulated cycles in
        :data:`SWEEP_YIELD_CYCLES` batches (the common revoker inner
        loop; ``extra_per_page`` covers per-page PTE bookkeeping)."""
        batch = 0
        for pte in pages:
            batch += self.sweep_page(core, pte, record) + extra_per_page
            if batch >= SWEEP_YIELD_CYCLES:
                yield batch
                batch = 0
        if batch:
            yield batch

    def sweep_pages_stw(
        self, core: Core, pages: Iterable[PTE], record: EpochRecord
    ) -> Generator:
        """Sweep ``pages`` with the world stopped, yielding cycles in
        coarse batches. Nothing else can run during a stop-the-world, so
        batching the yields is free — the pause ends at the same cycle —
        and saves one scheduler step per page."""
        batch = 0
        for pte in pages:
            batch += self.sweep_page(core, pte, record)
            if batch >= SWEEP_YIELD_CYCLES:
                yield batch
                batch = 0
        if batch:
            yield batch

    def gen_only_visit(self, pte: PTE, record: EpochRecord) -> int:
        """Update a capability-clean page's generation without reading its
        contents (§4.1 fn. 19); returns cycles consumed."""
        pte.swept_this_epoch = True
        pte.redirtied = False
        record.pages_gen_only += 1
        return self.costs.sweep_clean_page + self.costs.pte_update

    # --- Capability roots (registers + kernel hoards, §4.4) -------------------------

    def scan_roots(self, record: EpochRecord) -> tuple[int, ScanOutcome]:
        """Scan every register file and kernel hoard with the world
        stopped; returns (cycles, outcome)."""
        outcome = ScanOutcome()
        registers = 0
        for rf in self.register_files:
            registers += len(rf)
            outcome.merge(rf.scan(self.shadow))
        hoarded = self.hoards.total_caps()
        outcome.merge(self.hoards.scan(self.shadow))
        cycles = (
            registers * self.costs.stw_per_register
            + hoarded * self.costs.stw_per_hoarded_cap
        )
        record.roots_checked += outcome.checked
        record.roots_revoked += outcome.revoked
        return cycles, outcome

    def stw_entry_cycles(self) -> int:
        """Cost of quiescing the process (thread_single; §4.4, §5.4)."""
        extra = max(0, len(self.register_files) - 1)
        return self.costs.stw_base + extra * self.costs.stw_per_extra_thread

    # --- Foreground fault handling ----------------------------------------------------

    def handle_lg_fault(self, core: Core, vpn: int) -> int:
        """Handle a capability load-generation fault. Only Reloaded takes
        these; other strategies never flip generations."""
        raise NotImplementedError(
            f"{self.name} does not use capability load barriers"
        )

    # --- Strategy ---------------------------------------------------------------------

    @abc.abstractmethod
    def revoke(self, core: Core, slot: CoreSlot) -> Generator:
        """One full revocation epoch, run on the controller thread."""

    # --- Aggregate reporting -------------------------------------------------------------

    def total_stw_cycles(self) -> int:
        return sum(r.stw_cycles() for r in self.records)

    def total_fault_cycles(self) -> int:
        return sum(r.fault_cycles for r in self.records)

    def total_pages_swept(self) -> int:
        return sum(r.pages_swept for r in self.records)

    def total_caps_revoked(self) -> int:
        return sum(r.caps_revoked for r in self.records)
