"""Cornucopia: concurrent sweep plus a re-dirty stop-the-world (§2.2.5).

Each epoch has two phases:

1. a **concurrent** phase on the revoker's core visiting every
   capability-dirty page while the application keeps running. Capability
   stores during this phase re-dirty their pages (the hardware-assisted
   store barrier of §4.2, modelled in :meth:`repro.machine.cpu.Core.store_cap`);
2. a **stop-the-world** phase scanning capability roots and re-sweeping
   every page re-dirtied during phase 1.

Because the application may store a (not-yet-checked) capability anywhere
at any time, Cornucopia must treat every capability store as contaminating
— which is why write-heavy address spaces see it re-visit approximately
all their pages with the world stopped (§5.2, fig. 6 discussion), the
behaviour Reloaded's load barrier eliminates.
"""

from __future__ import annotations

from typing import Generator

from repro.kernel.revoker.base import Revoker
from repro.machine.cpu import Core
from repro.machine.scheduler import CoreSlot, ResumeWorld, StopWorld


class CornucopiaRevoker(Revoker):
    """Concurrent pass + world-stopped re-dirty pass."""

    name = "cornucopia"

    def revoke(self, core: Core, slot: CoreSlot) -> Generator:
        record = self._open_epoch(slot)
        yield self.costs.revoke_syscall

        # Phase 1: concurrent sweep of all capability-dirty pages.
        concurrent_begin = slot.time
        self.machine.bus.sweep_begin()
        try:
            yield from self.sweep_pages_concurrent(
                core,
                self.machine.pagetable.cap_dirty_pages(),
                record,
                extra_per_page=self.costs.pte_update,
            )
        finally:
            self.machine.bus.sweep_end()
        # One batched shootdown publishes the cleaned state (the original
        # implementation batches these rather than IPI-ing per page).
        yield self.machine.tlb_shootdown()
        self._phase(record, "concurrent", "concurrent", concurrent_begin, slot.time)

        # Phase 2: stop the world, scan roots, re-sweep re-dirtied pages.
        yield StopWorld()
        stw_begin = slot.time
        yield self.stw_entry_cycles()
        scan_cycles, _ = self.scan_roots(record)
        yield scan_cycles
        yield from self.sweep_pages_stw(
            core, self.machine.pagetable.redirtied_pages(), record
        )
        yield ResumeWorld()
        self._phase(record, "stw", "stw", stw_begin, slot.time)

        self._close_epoch(slot)
