"""Cornucopia Reloaded: load-barrier revocation (§3-4).

The strategy this paper (and repository) is about. Each epoch:

1. **Stop-the-world** (tiny): quiesce the process, flip every core's
   capability load generation register (no PTE is touched, no shootdown —
   §4.1), and scan the capability roots: thread register files and kernel
   hoards (§4.4). This re-establishes the central invariant: *no
   capability held in a register or loadable without a trap points into
   pre-epoch quarantine* (§3.2).
2. **Concurrent**: application capability loads from stale-generation
   pages trap; the fault handler sweeps the page on the faulting core and
   updates the PTE (foreground, self-healing — §2.3 fn. 14, §4.3).
   Meanwhile a background pass visits all remaining stale pages:
   capability-dirty ones get a full content sweep, clean ones a cheap
   generation-only PTE update. Pages stored to during the epoch need no
   re-visit — only already-checked capabilities can have been stored
   (§3.2), which is precisely the work Cornucopia wastes.

The epoch ends when every PTE carries the new generation.
"""

from __future__ import annotations

from typing import Generator

from repro.kernel.revoker.base import SWEEP_YIELD_CYCLES as _SWEEP_YIELD_CYCLES
from repro.kernel.revoker.base import Revoker
from repro.machine.cpu import Core
from repro.machine.scheduler import CoreSlot, ResumeWorld, StopWorld
from repro.obs.tracer import TRACER


class ReloadedRevoker(Revoker):
    """Per-page capability load barrier revocation."""

    name = "reloaded"

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        #: The generation value PTEs must reach for the current epoch.
        self.current_lg = 0
        self.foreground_faults = 0
        self.spurious_faults = 0

    # --- Foreground: the load barrier fault handler (§4.3) ---------------------

    def handle_lg_fault(self, core: Core, vpn: int) -> int:
        """Sweep the faulting page on the faulting thread's core and heal
        the PTE; returns cycles charged to the faulting thread."""
        cycles = self.costs.trap_roundtrip + self.costs.pmap_lock
        pte = self.machine.pagetable.require(vpn)
        if pte.lg == core.clg:
            # Another core (or the background pass) already processed this
            # page; only the local TLB is stale (§4.3 first pmap check).
            self.spurious_faults += 1
            cycles += core.resolve_spurious_lg_fault(vpn)
            if TRACER.enabled:
                TRACER.emit("revoker.fault", vpn=vpn, spurious=True, cycles=cycles)
            return cycles
        record = self._current_record
        if record is None:
            # A stale page outside an epoch would be an invariant violation.
            raise RuntimeError(
                f"load-generation fault on page {vpn} with no epoch in flight"
            )
        sweep = self.sweep_page(core, pte, record, warm_cache=True)
        pte.lg = core.clg
        core.tlb.fill(vpn, pte)
        cycles += sweep + self.costs.pmap_lock + self.costs.pte_update
        record.fault_cycles += cycles
        record.fault_count += 1
        self.foreground_faults += 1
        if TRACER.enabled:
            TRACER.emit(
                "revoker.fault",
                vpn=vpn,
                spurious=False,
                cycles=cycles,
                epoch=record.epoch,
            )
        return cycles

    # --- The epoch ------------------------------------------------------------------

    def revoke(self, core: Core, slot: CoreSlot) -> Generator:
        record = self._open_epoch(slot)
        yield self.costs.revoke_syscall
        new_lg = self.current_lg ^ 1

        # Phase 1: the (brief) stop-the-world.
        yield StopWorld()
        stw_begin = slot.time
        yield self.stw_entry_cycles()
        for cpu in self.machine.cores:
            yield cpu.flip_clg()
        self.current_lg = new_lg
        # Fresh mappings must be born with the new generation (§4.1 fn. 19).
        self.address_space.current_lg = new_lg
        scan_cycles, _ = self.scan_roots(record)
        yield scan_cycles
        yield ResumeWorld()
        self._phase(record, "stw", "stw", stw_begin, slot.time)

        # Phase 2: background sweep of all still-stale pages, racing the
        # application's foreground faults.
        concurrent_begin = slot.time
        self.machine.bus.sweep_begin()
        try:
            batch = 0
            per_page = self.costs.pmap_lock + self.costs.pte_update
            for pte in self.machine.pagetable.mapped_pages():
                if pte.guard or pte.lg == new_lg:
                    continue  # foreground fault already healed it, or guard
                if pte.cap_dirty:
                    cycles = self.sweep_page(core, pte, record)
                else:
                    cycles = self.gen_only_visit(pte, record)
                pte.lg = new_lg
                batch += cycles + per_page
                if batch >= _SWEEP_YIELD_CYCLES:
                    yield batch
                    batch = 0
            if batch:
                yield batch
        finally:
            self.machine.bus.sweep_end()
        self._phase(record, "concurrent", "concurrent", concurrent_begin, slot.time)

        self._close_epoch(slot)
