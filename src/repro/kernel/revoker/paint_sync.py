"""Paint+sync: quarantine machinery without revocation (§5).

The paper's fourth condition: the user-space quarantine bitmap management
(painting, batching, epoch synchronization) runs exactly as with the real
strategies, but revocation epochs perform *no* sweeping — they just tick
the epoch counter so quarantine drains on the usual schedule.

Paint+sync provides **no temporal safety**; it exists to separate the
shim's overheads from the revokers' (figs. 2, 5, 7, 8).
"""

from __future__ import annotations

from typing import Generator

from repro.kernel.revoker.base import Revoker
from repro.machine.cpu import Core
from repro.machine.scheduler import CoreSlot


class PaintSyncRevoker(Revoker):
    """Epoch ticks with zero sweep work and zero pauses."""

    name = "paint+sync"
    provides_safety = False

    def revoke(self, core: Core, slot: CoreSlot) -> Generator:
        record = self._open_epoch(slot)
        yield self.costs.revoke_syscall
        # No STW, no sweep: the epoch completes immediately.
        begin = slot.time
        yield self.costs.revoke_syscall
        self._phase(record, "tick", "concurrent", begin, slot.time)
        self._close_epoch(slot)
