"""Revocation strategies: CHERIvoke, Cornucopia, Reloaded, Paint+sync."""

from repro.kernel.revoker.base import EpochRecord, PhaseSample, Revoker
from repro.kernel.revoker.cherivoke import CheriVokeRevoker
from repro.kernel.revoker.cornucopia import CornucopiaRevoker
from repro.kernel.revoker.paint_sync import PaintSyncRevoker
from repro.kernel.revoker.reloaded import ReloadedRevoker

__all__ = [
    "CheriVokeRevoker",
    "CornucopiaRevoker",
    "EpochRecord",
    "PaintSyncRevoker",
    "PhaseSample",
    "ReloadedRevoker",
    "Revoker",
]
