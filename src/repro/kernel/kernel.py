"""The assembled kernel for the process under test.

Owns the address space, the revocation bitmap, the epoch clock, the
kernel capability hoards, and (optionally) one installed revoker. The
simulation layer routes architectural traps here.
"""

from __future__ import annotations

from typing import Type

from repro.errors import SimulationError
from repro.kernel.epoch import EpochClock
from repro.kernel.hoards import KernelHoards, RegisterFile
from repro.kernel.revoker.base import Revoker
from repro.kernel.shadow import RevocationBitmap
from repro.kernel.vm import AddressSpace
from repro.machine.cpu import Core
from repro.machine.machine import Machine
from repro.machine.trap import LoadGenerationFault


class Kernel:
    """CheriBSD-like kernel state for one process."""

    def __init__(self, machine: Machine) -> None:
        self.machine = machine
        self.address_space = AddressSpace(machine)
        self.shadow = RevocationBitmap(machine.memory.size_bytes)
        self.epoch = EpochClock()
        self.hoards = KernelHoards()
        self.revoker: Revoker | None = None

    def install_revoker(self, revoker_cls: Type[Revoker]) -> Revoker:
        """Instantiate and install a revocation strategy."""
        if self.revoker is not None:
            raise SimulationError("a revoker is already installed")
        self.revoker = revoker_cls(
            self.machine,
            self.address_space,
            self.shadow,
            self.epoch,
            self.hoards,
        )
        return self.revoker

    def register_thread(self, register_file: RegisterFile) -> None:
        """Tell the revoker about a user thread's register file so the
        STW root scan covers it (§4.4)."""
        if self.revoker is not None:
            self.revoker.register_files.append(register_file)

    def handle_lg_fault(self, core: Core, fault: LoadGenerationFault) -> int:
        """Foreground load-generation fault dispatch; returns cycles."""
        if self.revoker is None:
            raise SimulationError(
                "load-generation fault with no revoker installed"
            ) from fault
        return self.revoker.handle_lg_fault(core, fault.vpn)
