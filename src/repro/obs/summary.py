"""Trace summarization: per-epoch accounting and trace-vs-trace diffs.

This is the analysis the paper's figure 9 performs on its raw phase
timings: group a trace's events by revocation epoch and report where the
cycles went — STW pause, concurrent sweep, foreground fault handling —
plus the bus traffic each sweep streamed. ``diff_summaries`` compares two
recordings of the same workload under different strategies (the
cornucopia-vs-reloaded STW breakdown is the motivating use).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.obs.tracer import TraceEvent


@dataclass
class EpochSummary:
    """Everything one epoch's events add up to."""

    epoch: int
    stw_cycles: int = 0
    concurrent_cycles: int = 0
    fault_count: int = 0
    spurious_faults: int = 0
    fault_cycles: int = 0
    sweep_bus_transactions: int = 0
    phases: list[str] = field(default_factory=list)


@dataclass
class TraceSummary:
    """A whole trace, reduced to per-epoch rows plus trace-wide totals."""

    epochs: list[EpochSummary] = field(default_factory=list)
    events: int = 0
    stw_pauses: list[int] = field(default_factory=list)
    quarantine_filled_bytes: int = 0
    quarantine_drained_bytes: int = 0
    tlb_shootdowns: int = 0
    cache_evicted_lines: int = 0

    # --- Totals ------------------------------------------------------------

    @property
    def total_stw_cycles(self) -> int:
        return sum(e.stw_cycles for e in self.epochs)

    @property
    def total_concurrent_cycles(self) -> int:
        return sum(e.concurrent_cycles for e in self.epochs)

    @property
    def total_fault_cycles(self) -> int:
        return sum(e.fault_cycles for e in self.epochs)

    @property
    def total_faults(self) -> int:
        return sum(e.fault_count for e in self.epochs)

    @property
    def total_sweep_bus(self) -> int:
        return sum(e.sweep_bus_transactions for e in self.epochs)

    @property
    def max_stw_pause(self) -> int:
        return max(self.stw_pauses) if self.stw_pauses else 0

    @classmethod
    def from_events(cls, events: Iterable[TraceEvent]) -> "TraceSummary":
        """Reduce a trace to its summary.

        Tolerant of ring-buffer truncation: events arriving before the
        first surviving ``epoch.open`` are attributed to a synthetic
        epoch 0 row (created on demand) rather than dropped.
        """
        summary = cls()
        by_epoch: dict[int, EpochSummary] = {}
        current: EpochSummary | None = None
        sweep_open_at: int | None = None

        def epoch_row(number: int) -> EpochSummary:
            row = by_epoch.get(number)
            if row is None:
                row = by_epoch[number] = EpochSummary(epoch=number)
                summary.epochs.append(row)
            return row

        for event in events:
            summary.events += 1
            name = event.name
            args = event.args
            if name == "epoch.open":
                current = epoch_row(int(args["epoch"]))
            elif name == "epoch.close":
                current = None
            elif name == "revoker.phase":
                row = epoch_row(int(args["epoch"]))
                cycles = int(args["end"]) - int(args["begin"])
                row.phases.append(str(args["phase"]))
                if args.get("kind") == "stw":
                    row.stw_cycles += cycles
                else:
                    row.concurrent_cycles += cycles
            elif name == "revoker.fault":
                row = current if current is not None else epoch_row(0)
                row.fault_count += 1
                row.fault_cycles += int(args["cycles"])
                if args.get("spurious"):
                    row.spurious_faults += 1
            elif name == "sweep.begin":
                sweep_open_at = int(args["transactions"])
            elif name == "sweep.end":
                if sweep_open_at is not None:
                    delta = int(args["transactions"]) - sweep_open_at
                    row = current if current is not None else epoch_row(0)
                    row.sweep_bus_transactions += max(0, delta)
                    sweep_open_at = None
            elif name == "stw.end":
                summary.stw_pauses.append(int(args["duration"]))
            elif name == "quarantine.fill":
                summary.quarantine_filled_bytes += int(args["bytes"])
            elif name == "quarantine.drain":
                summary.quarantine_drained_bytes += int(args["bytes"])
            elif name == "tlb.shootdown":
                summary.tlb_shootdowns += 1
            elif name == "cache.evict":
                summary.cache_evicted_lines += int(args["lines"])
        summary.epochs.sort(key=lambda e: e.epoch)
        return summary


def _delta(a: float, b: float) -> str:
    """Human delta of ``b`` relative to ``a``."""
    if a == 0:
        return "n/a" if b == 0 else "+inf"
    return f"{(b - a) / a * 100:+.1f}%"


def diff_summaries(a: TraceSummary, b: TraceSummary) -> list[list[str]]:
    """Rows of ``metric, a, b, delta`` comparing two trace summaries."""
    metrics: list[tuple[str, float, float]] = [
        ("epochs", len(a.epochs), len(b.epochs)),
        ("stw cycles", a.total_stw_cycles, b.total_stw_cycles),
        ("max stw pause", a.max_stw_pause, b.max_stw_pause),
        ("concurrent cycles", a.total_concurrent_cycles, b.total_concurrent_cycles),
        ("fault count", a.total_faults, b.total_faults),
        ("fault cycles", a.total_fault_cycles, b.total_fault_cycles),
        ("sweep bus transactions", a.total_sweep_bus, b.total_sweep_bus),
        ("tlb shootdowns", a.tlb_shootdowns, b.tlb_shootdowns),
        ("quarantine filled bytes", a.quarantine_filled_bytes, b.quarantine_filled_bytes),
        ("quarantine drained bytes", a.quarantine_drained_bytes, b.quarantine_drained_bytes),
    ]
    return [
        [name, str(int(va)), str(int(vb)), _delta(va, vb)]
        for name, va, vb in metrics
    ]
