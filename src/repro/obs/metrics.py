"""Counters and histograms behind the tracer.

A :class:`MetricsRegistry` is a flat namespace of named :class:`Counter`
and :class:`Histogram` instruments. Histograms use power-of-two buckets
(cycle counts span nine orders of magnitude between a TLB refill and a
CHERIvoke pause, so exponential buckets are the natural resolution) and
therefore stay O(64) memory regardless of observation count.

``to_dict`` produces plain JSON-able data — string keys, ints and floats
only — because registries are folded into :class:`~repro.core.metrics.RunResult`
and must survive the campaign cache's JSON round-trip bit-for-bit.
"""

from __future__ import annotations

from typing import Any, Mapping


class Counter:
    """A monotonically increasing integer."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n


class Histogram:
    """Power-of-two-bucketed distribution of non-negative values.

    Bucket ``k`` counts observations with ``2**(k-1) <= int(v) < 2**k``
    — i.e. ``k = int(v).bit_length()``, with bucket 0 holding values
    below 1; exact min/max/sum ride alongside so means and
    extremes stay precise even though the distribution is bucketed.
    """

    __slots__ = ("count", "sum", "min", "max", "buckets")

    def __init__(self) -> None:
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self.buckets: dict[int, int] = {}

    def observe(self, value: float) -> None:
        if value < 0:
            raise ValueError(f"histogram observation must be >= 0, got {value}")
        self.count += 1
        self.sum += value
        self.min = min(self.min, value)
        self.max = max(self.max, value)
        k = int(value).bit_length() if value >= 1 else 0
        self.buckets[k] = self.buckets.get(k, 0) + 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile (``0 <= q <= 1``) from the
        power-of-two buckets.

        Within the bucket holding rank ``q * (count - 1)``, the answer is
        linearly interpolated by rank across the bucket's span, so
        distinct interior quantiles landing in one bucket still order
        strictly (p50 < p99 for a tight distribution) and the estimate is
        deterministic. The exact min/max clamp the tails, so
        ``quantile(0.0)`` and ``quantile(1.0)`` are exact. This is what
        the serving layer's live p50/p99 latency figures come from.
        """
        from repro.errors import StatsError

        if not 0.0 <= q <= 1.0:
            raise StatsError(f"quantile must be in [0, 1], got {q}")
        if not self.count:
            raise StatsError("quantile of an empty histogram")
        if q == 0.0:
            return self.min
        if q == 1.0:
            return self.max
        rank = q * (self.count - 1)
        seen = 0
        for k in sorted(self.buckets):
            n = self.buckets[k]
            if seen + n > rank:
                # Bucket k spans [2**(k-1), 2**k); bucket 0 spans [0, 1).
                lo, hi = (0.0, 1.0) if k == 0 else (
                    float(2 ** (k - 1)), float(2 ** k)
                )
                frac = (rank - seen) / n
                return max(self.min, min(self.max, lo + (hi - lo) * frac))
            seen += n
        return self.max  # pragma: no cover - guarded by count above

    def to_dict(self) -> dict[str, Any]:
        # An empty histogram's min/max are +/-inf, which strict JSON
        # cannot carry; encode them as null (NOT 0.0 — a zero would
        # corrupt ``min`` on the first post-restore ``observe``).
        return {
            "count": self.count,
            "sum": self.sum,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "mean": self.mean,
            # JSON object keys are strings; keep them so round-trips are exact.
            "buckets": {str(k): n for k, n in sorted(self.buckets.items())},
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Histogram":
        """Inverse of :meth:`to_dict`: restore a live instrument from its
        JSON snapshot (``None`` min/max map back to the empty-state
        infinities, so a restored empty histogram behaves like a fresh
        one — ``quantile`` raises, the first ``observe`` sets min/max)."""
        h = cls()
        h.count = int(data["count"])
        h.sum = float(data["sum"])
        h.min = float("inf") if data["min"] is None else float(data["min"])
        h.max = float("-inf") if data["max"] is None else float(data["max"])
        h.buckets = {int(k): int(n) for k, n in data["buckets"].items()}
        return h


class MetricsRegistry:
    """A namespace of counters and histograms, created on first use."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        c = self._counters.get(name)
        if c is None:
            c = self._counters[name] = Counter()
        return c

    def histogram(self, name: str) -> Histogram:
        h = self._histograms.get(name)
        if h is None:
            h = self._histograms[name] = Histogram()
        return h

    def __len__(self) -> int:
        return len(self._counters) + len(self._histograms)

    def flatten(self) -> dict[str, float]:
        """Flat ``{name: value}`` scalar view: counters by value,
        histograms by ``<name>.sum`` / ``<name>.count``.

        This is the fold the continuous-benchmarking layer
        (:mod:`repro.perf`) records as deterministic simulated-cycle
        metrics alongside wall-clock — every value here is a function of
        the simulation alone, so it must be bit-identical across hosts.
        """
        out = {name: float(c.value) for name, c in sorted(self._counters.items())}
        for name, h in sorted(self._histograms.items()):
            out[f"{name}.sum"] = float(h.sum)
            out[f"{name}.count"] = float(h.count)
        return out

    @classmethod
    def flatten_dict(cls, data: Mapping[str, Any]) -> dict[str, float]:
        """:meth:`flatten` applied to a :meth:`to_dict` snapshot (e.g. the
        ``metrics`` fold on a :class:`~repro.core.metrics.RunResult`)."""
        return cls.from_dict(data).flatten()

    def to_dict(self) -> dict[str, Any]:
        """Plain JSON-able snapshot (sorted, string-keyed throughout)."""
        return {
            "counters": {
                name: c.value for name, c in sorted(self._counters.items())
            },
            "histograms": {
                name: h.to_dict() for name, h in sorted(self._histograms.items())
            },
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "MetricsRegistry":
        """Inverse of :meth:`to_dict`; used when resuming a checkpointed
        run whose instruments must continue from their saved state."""
        reg = cls()
        for name, value in data.get("counters", {}).items():
            reg.counter(name).value = int(value)
        for name, hist in data.get("histograms", {}).items():
            reg._histograms[name] = Histogram.from_dict(hist)
        return reg
