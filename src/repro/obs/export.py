"""Trace exporters and loaders.

Two on-disk formats:

- **JSONL** — the canonical interchange format: a ``meta`` header line
  followed by one ``event`` line per record. Loads back into the exact
  :class:`~repro.obs.tracer.TraceEvent` list that was written
  (round-trip equality is pinned by tests), which is what
  ``python -m repro trace summarize/diff`` consume;
- **Chrome trace_event JSON** — load the file at ``chrome://tracing`` /
  Perfetto to see epochs, phases, and pauses on a timeline. Phase-shaped
  events (``revoker.phase``, with ``begin``/``end``) become complete
  ("X") slices; everything else becomes instants ("i"). Timestamps are
  simulated cycles presented as microseconds (the viewer's unit).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Iterable, Mapping

from repro.errors import ReproError
from repro.obs.tracer import TraceEvent

#: Version stamped in every JSONL trace header.
TRACE_FORMAT_VERSION = 1


class TraceFormatError(ReproError):
    """A trace file could not be decoded."""


# --- JSONL ------------------------------------------------------------------


def write_jsonl(
    path: Path | str,
    events: Iterable[TraceEvent],
    meta: Mapping[str, Any] | None = None,
) -> int:
    """Write a trace as JSONL; returns the number of events written."""
    n = 0
    with open(path, "w", encoding="utf-8") as handle:
        header: dict[str, Any] = {
            "type": "meta",
            "version": TRACE_FORMAT_VERSION,
        }
        if meta:
            header.update(meta)
        handle.write(json.dumps(header, sort_keys=True) + "\n")
        for event in events:
            handle.write(
                json.dumps(
                    {"type": "event", "name": event.name, "ts": event.ts,
                     "args": event.args},
                    sort_keys=True,
                )
                + "\n"
            )
            n += 1
    return n


def read_jsonl(path: Path | str) -> tuple[dict[str, Any], list[TraceEvent]]:
    """Load a JSONL trace; returns ``(meta, events)``."""
    try:
        lines = Path(path).read_text(encoding="utf-8").splitlines()
    except OSError as exc:
        raise TraceFormatError(f"cannot read trace {path}: {exc}") from exc
    if not lines:
        raise TraceFormatError(f"trace {path} is empty")
    meta = _decode_line(lines[0], path, 1)
    if meta.get("type") != "meta":
        raise TraceFormatError(f"trace {path}: first line is not a meta header")
    version = meta.get("version")
    if version != TRACE_FORMAT_VERSION:
        raise TraceFormatError(
            f"trace {path}: format {version!r} != supported {TRACE_FORMAT_VERSION}"
        )
    events: list[TraceEvent] = []
    for i, line in enumerate(lines[1:], start=2):
        if not line.strip():
            continue
        record = _decode_line(line, path, i)
        if record.get("type") != "event":
            raise TraceFormatError(
                f"trace {path}:{i}: unexpected record type {record.get('type')!r}"
            )
        try:
            events.append(
                TraceEvent(record["name"], record["ts"], dict(record.get("args", {})))
            )
        except KeyError as exc:
            raise TraceFormatError(
                f"trace {path}:{i}: event missing field {exc}"
            ) from exc
    return meta, events


def _decode_line(line: str, path: Path | str, lineno: int) -> dict[str, Any]:
    try:
        record = json.loads(line)
    except json.JSONDecodeError as exc:
        raise TraceFormatError(f"trace {path}:{lineno}: bad JSON: {exc}") from exc
    if not isinstance(record, dict):
        raise TraceFormatError(f"trace {path}:{lineno}: record is not an object")
    return record


# --- Chrome trace_event -----------------------------------------------------

#: Events rendered as complete slices: name -> (begin field, end field).
_SLICE_EVENTS = {"revoker.phase": ("begin", "end")}


def to_chrome_trace(
    events: Iterable[TraceEvent],
    meta: Mapping[str, Any] | None = None,
) -> dict[str, Any]:
    """Build a Chrome ``trace_event`` document from a trace."""
    records: list[dict[str, Any]] = []
    for event in events:
        span = _SLICE_EVENTS.get(event.name)
        if span is not None and span[0] in event.args and span[1] in event.args:
            begin = int(event.args[span[0]])
            end = int(event.args[span[1]])
            records.append({
                "name": str(event.args.get("phase", event.name)),
                "cat": event.name,
                "ph": "X",
                "ts": begin,
                "dur": max(0, end - begin),
                "pid": 0,
                "tid": str(event.args.get("kind", "trace")),
                "args": event.args,
            })
        else:
            records.append({
                "name": event.name,
                "cat": event.name.partition(".")[0],
                "ph": "i",
                "s": "g",
                "ts": event.ts,
                "pid": 0,
                "tid": event.name.partition(".")[0],
                "args": event.args,
            })
    return {
        "traceEvents": records,
        "displayTimeUnit": "ms",
        "otherData": dict(meta) if meta else {},
    }


def write_chrome_trace(
    path: Path | str,
    events: Iterable[TraceEvent],
    meta: Mapping[str, Any] | None = None,
) -> int:
    """Write a Chrome trace; returns the number of records written."""
    document = to_chrome_trace(events, meta)
    Path(path).write_text(json.dumps(document, sort_keys=True), encoding="utf-8")
    return len(document["traceEvents"])
