"""Structured observability: event tracing and metrics.

The paper's evaluation leans on fine-grained instrumentation — ``pmcstat``
bus counters, per-epoch phase timings, STW/fault breakdowns (figs. 4-6, 9)
— so the simulator carries the equivalent lens: a ring-buffered structured
event :class:`~repro.obs.tracer.Tracer` fed by hooks in the machine,
kernel, and allocator layers, plus a :class:`~repro.obs.metrics.MetricsRegistry`
of counters and histograms folded into each run's
:class:`~repro.core.metrics.RunResult`.

Tracing is off by default and costs one attribute check per hook site
when disabled (see :data:`~repro.obs.tracer.TRACER`); nothing is
allocated until :meth:`~repro.obs.tracer.Tracer.start`. Recorded traces
export to JSONL (:mod:`repro.obs.export`) and Chrome ``trace_event``
JSON, validate against the event schema (:mod:`repro.obs.schema`), and
summarize/diff through ``python -m repro trace`` (docs/OBSERVABILITY.md).
"""

from __future__ import annotations

from repro.obs.export import (
    TRACE_FORMAT_VERSION,
    TraceFormatError,
    read_jsonl,
    to_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.metrics import Counter, Histogram, MetricsRegistry
from repro.obs.schema import EVENT_SCHEMA, TraceSchemaError, validate_event, validate_events
from repro.obs.summary import TraceSummary, diff_summaries
from repro.obs.tracer import TRACER, TraceEvent, Tracer, tracing

__all__ = [
    "TRACER",
    "TRACE_FORMAT_VERSION",
    "Counter",
    "EVENT_SCHEMA",
    "Histogram",
    "MetricsRegistry",
    "TraceEvent",
    "TraceFormatError",
    "TraceSchemaError",
    "Tracer",
    "TraceSummary",
    "diff_summaries",
    "read_jsonl",
    "to_chrome_trace",
    "tracing",
    "validate_event",
    "validate_events",
    "write_chrome_trace",
    "write_jsonl",
]
