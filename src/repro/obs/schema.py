"""The trace event schema: the catalogue every recorded trace must obey.

Each entry maps an event name to the argument fields the emitting hook
guarantees. Validation is what CI asserts against campaign trace
artifacts: every event's name must be catalogued, its timestamp a
non-negative integer, and its required fields present (extra fields are
allowed — hooks may grow detail without a schema bump).

docs/OBSERVABILITY.md documents each event's meaning and emitting site.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.errors import ReproError


class TraceSchemaError(ReproError):
    """A trace event does not conform to the event schema."""


#: Event name -> required argument fields.
EVENT_SCHEMA: dict[str, frozenset[str]] = {
    # Epoch protocol (kernel/epoch.py, kernel/revoker/base.py).
    "epoch.tick": frozenset({"counter", "revoking"}),
    "epoch.open": frozenset({"epoch"}),
    "epoch.close": frozenset({"epoch"}),
    # Revoker phases and foreground faults (kernel/revoker/*).
    "revoker.phase": frozenset({"epoch", "phase", "kind", "begin", "end"}),
    "revoker.fault": frozenset({"vpn", "spurious", "cycles"}),
    # Scheduler stop-the-world episodes (machine/scheduler.py).
    "stw.begin": frozenset({"stopped"}),
    "stw.end": frozenset({"duration"}),
    # Bus sweep streaming windows (machine/cache.py).
    "sweep.begin": frozenset({"transactions"}),
    "sweep.end": frozenset({"transactions"}),
    # Per-core MMU events (machine/cpu.py, machine/machine.py).
    "core.clg_flip": frozenset({"core", "clg"}),
    "tlb.shootdown": frozenset({"vpn", "cores"}),
    # Cache evictions (machine/cache.py; batched span path).
    "cache.evict": frozenset({"source", "lines"}),
    "cache.invalidate_page": frozenset({"source", "vpn"}),
    # Address-space events (kernel/vm.py).
    "vm.mmap": frozenset({"vpn", "pages", "bytes"}),
    "vm.munmap": frozenset({"vpn", "pages"}),
    # Shadow bitmap traffic (kernel/shadow.py).
    "shadow.paint": frozenset({"granules"}),
    "shadow.unpaint": frozenset({"granules"}),
    # Quarantine lifecycle (alloc/quarantine.py).
    "quarantine.fill": frozenset({"bytes", "total"}),
    "quarantine.seal": frozenset({"bytes", "epoch"}),
    "quarantine.drain": frozenset({"batches", "bytes", "epoch"}),
}


def validate_event(name: str, ts: int, args: Mapping[str, object]) -> None:
    """Raise :class:`TraceSchemaError` unless the event conforms."""
    required = EVENT_SCHEMA.get(name)
    if required is None:
        known = ", ".join(sorted(EVENT_SCHEMA))
        raise TraceSchemaError(f"unknown event {name!r}; catalogued: {known}")
    if not isinstance(ts, int) or isinstance(ts, bool) or ts < 0:
        raise TraceSchemaError(f"event {name!r}: bad timestamp {ts!r}")
    missing = required - args.keys()
    if missing:
        raise TraceSchemaError(
            f"event {name!r} missing fields {sorted(missing)}"
        )


def validate_events(events: Iterable) -> int:
    """Validate a whole trace (any iterable of
    :class:`~repro.obs.tracer.TraceEvent`); returns the event count."""
    n = 0
    for event in events:
        validate_event(event.name, event.ts, event.args)
        n += 1
    return n
