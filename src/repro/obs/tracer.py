"""The structured-event tracer.

One process-wide :data:`TRACER` singleton is wired into the hot paths of
the machine, kernel, and allocator layers. Every hook site is guarded::

    if TRACER.enabled:
        TRACER.emit("cache.evict", source=..., lines=...)

so the *disabled* cost is a single attribute check on a module-level
object — no call, no allocation, no dict lookup (the perf-smoke
benchmark pins this: tracing off must not move the sweep microbenchmark).
The singleton is never rebound; hook sites may safely bind it at import
time with ``from repro.obs.tracer import TRACER``.

When enabled, events land in a bounded ring buffer: once ``capacity``
events are held, the oldest are overwritten and counted as dropped —
recording never grows without bound and never fails. Timestamps default
to the installed ``clock`` (the simulation installs the scheduler's wall
clock); sites that know a more precise per-core time pass ``ts=``
explicitly.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

from repro.obs.metrics import MetricsRegistry

#: Default ring capacity: bounded memory (~tens of MB) while deep enough
#: for every epoch of the evaluation-scale runs.
DEFAULT_CAPACITY = 1 << 18


@dataclass
class TraceEvent:
    """One structured event: a name, a cycle timestamp, and its fields."""

    name: str
    ts: int
    args: dict[str, Any] = field(default_factory=dict)


class Tracer:
    """A ring-buffered structured-event recorder with attached metrics."""

    __slots__ = ("enabled", "clock", "capacity", "metrics", "_buf", "_head", "emitted")

    def __init__(self) -> None:
        #: The one-attribute-check fast-path gate every hook site reads.
        self.enabled = False
        #: Default timestamp source (cycles); installed by the simulation.
        self.clock: Callable[[], int] | None = None
        self.capacity = DEFAULT_CAPACITY
        self.metrics = MetricsRegistry()
        self._buf: list[TraceEvent] = []
        self._head = 0
        #: Lifetime events emitted since :meth:`start` (≥ buffered count).
        self.emitted = 0

    # --- Recording control -------------------------------------------------

    def start(
        self,
        capacity: int = DEFAULT_CAPACITY,
        clock: Callable[[], int] | None = None,
    ) -> None:
        """Begin a fresh recording (discards any previous buffer)."""
        if capacity < 1:
            raise ValueError(f"tracer capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.clock = clock
        self.metrics = MetricsRegistry()
        self._buf = []
        self._head = 0
        self.emitted = 0
        self.enabled = True

    def stop(self) -> None:
        """Stop recording; the buffer stays readable until the next start."""
        self.enabled = False
        self.clock = None

    # --- Emission ----------------------------------------------------------

    def emit(self, name: str, ts: int | None = None, **args: Any) -> None:
        """Record one event. No-op while disabled (hook sites check
        :attr:`enabled` first; this re-check keeps direct calls safe)."""
        if not self.enabled:
            return
        if ts is None:
            clock = self.clock
            ts = clock() if clock is not None else 0
        event = TraceEvent(name, ts, args)
        buf = self._buf
        if len(buf) < self.capacity:
            buf.append(event)
        else:
            buf[self._head] = event
            self._head = (self._head + 1) % self.capacity
        self.emitted += 1
        self.metrics.counter(f"events/{name}").inc()

    # --- Reading -----------------------------------------------------------

    @property
    def dropped(self) -> int:
        """Events overwritten by ring wraparound since :meth:`start`."""
        return self.emitted - len(self._buf)

    def events(self) -> list[TraceEvent]:
        """The buffered events, oldest first."""
        return self._buf[self._head:] + self._buf[: self._head]

    def __len__(self) -> int:
        return len(self._buf)


#: The process-wide tracer every instrumentation hook checks.
TRACER = Tracer()


@contextmanager
def tracing(
    capacity: int = DEFAULT_CAPACITY,
    clock: Callable[[], int] | None = None,
) -> Iterator[Tracer]:
    """Enable :data:`TRACER` for the duration of a ``with`` block."""
    TRACER.start(capacity=capacity, clock=clock)
    try:
        yield TRACER
    finally:
        TRACER.stop()
