"""Cornucopia Reloaded reproduction.

A production-quality reproduction of *Cornucopia Reloaded: Load Barriers
for CHERI Heap Temporal Safety* (Filardo et al., ASPLOS 2024) on a
simulated CHERI machine: the three revocation strategies (CHERIvoke,
Cornucopia, Cornucopia Reloaded), the CheriBSD-like kernel substrate they
live in, the snmalloc/mrs allocation stack, and the paper's workloads and
evaluation harness.

Quickstart::

    from repro import RevokerKind, SimulationConfig, run_experiment
    from repro.workloads import spec

    result = run_experiment(spec.workload("xalancbmk"),
                            RevokerKind.RELOADED)
    print(result.wall_cycles, result.stw_pauses)
"""

from repro.core.config import MachineConfig, QuarantinePolicy, RevokerKind, SimulationConfig
from repro.core.experiment import compare_strategies, overhead, run_experiment
from repro.core.metrics import RunResult
from repro.core.simulation import Simulation

__version__ = "1.0.0"

__all__ = [
    "MachineConfig",
    "QuarantinePolicy",
    "RevokerKind",
    "RunResult",
    "Simulation",
    "SimulationConfig",
    "compare_strategies",
    "overhead",
    "run_experiment",
    "__version__",
]
