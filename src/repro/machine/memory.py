"""Tagged memory: the capability-tag substrate (§2.1, [30]).

Every naturally-aligned 16-byte granule of memory carries one out-of-band
tag bit distinguishing a valid capability from plain data. This model keeps
the tag bits in a numpy array (fast page-granular scans, exactly what the
revocation sweep needs) and the capability values themselves in a dict
keyed by granule index (only tagged granules occupy space).

Plain data *values* are not stored: no behaviour in the paper's evaluation
depends on data contents, only on where capabilities are and what they
point to. Data stores still matter — they clear tags — and are modelled.

The simulation runs one process under test (as does the paper's harness),
so memory is addressed by virtual address directly; the page table layer
(:mod:`repro.machine.pagetable`) carries the per-page metadata the
revokers manipulate.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.errors import VMError
from repro.machine.capability import Capability
from repro.machine.costs import GRANULE_BYTES, GRANULES_PER_PAGE, PAGE_BYTES


class TaggedMemory:
    """A flat, tagged memory of ``size_bytes`` bytes.

    All addresses are byte addresses; capability slots must be granule
    (16-byte) aligned, as on real CHERI hardware.
    """

    def __init__(self, size_bytes: int) -> None:
        if size_bytes <= 0 or size_bytes % PAGE_BYTES:
            raise VMError(f"memory size must be a positive page multiple: {size_bytes}")
        self.size_bytes = size_bytes
        self.num_granules = size_bytes // GRANULE_BYTES
        self.num_pages = size_bytes // PAGE_BYTES
        #: One bool per granule: the architectural tag bits.
        self.tags = np.zeros(self.num_granules, dtype=bool)
        #: Per-granule capability *base* addresses, valid only where the
        #: tag bit is set (stale values persist after tag clears — every
        #: reader must mask through :attr:`tags` first). This is what lets
        #: the revocation sweep probe a whole page's capabilities against
        #: the shadow bitmap in one vector op.
        self.cap_bases = np.zeros(self.num_granules, dtype=np.int64)
        #: Capability values for tagged granules only.
        self._caps: dict[int, Capability] = {}

    # --- Address arithmetic ---------------------------------------------

    @staticmethod
    def granule_of(addr: int) -> int:
        return addr // GRANULE_BYTES

    @staticmethod
    def page_of(addr: int) -> int:
        return addr // PAGE_BYTES

    def _check_granule_aligned(self, addr: int) -> int:
        if addr % GRANULE_BYTES:
            raise VMError(f"capability access must be 16-byte aligned: {addr:#x}")
        if not 0 <= addr < self.size_bytes:
            raise VMError(f"address out of simulated memory: {addr:#x}")
        return addr // GRANULE_BYTES

    # --- Capability accesses ----------------------------------------------

    def store_cap(self, addr: int, cap: Capability) -> None:
        """Store a capability at ``addr``; sets the granule's tag if the
        capability is valid, clears it otherwise (storing an untagged value
        is just a data store of its bit pattern)."""
        g = self._check_granule_aligned(addr)
        if cap.tag:
            self.tags[g] = True
            self.cap_bases[g] = cap.base
            self._caps[g] = cap
        else:
            self.tags[g] = False
            self._caps.pop(g, None)

    def load_cap(self, addr: int) -> Capability | None:
        """Load the capability at ``addr``; None if the granule is untagged.

        Reads go through the capability dict (the numpy tag array mirrors
        it for fast page-granular scans; single-element numpy indexing is
        too slow for this hot path).
        """
        g = self._check_granule_aligned(addr)
        return self._caps.get(g)

    def clear_tag_at_granule(self, granule: int) -> None:
        """Revoke: clear the tag of one granule (the stored bit pattern
        becomes dead data)."""
        self.tags[granule] = False
        self._caps.pop(granule, None)

    def cap_at_granule(self, granule: int) -> Capability:
        return self._caps[granule]

    # --- Data accesses -----------------------------------------------------

    def store_data(self, addr: int, nbytes: int) -> None:
        """A data store: clears the tags of every granule it overlaps
        (partial overwrites of a capability destroy it, as in hardware)."""
        if nbytes <= 0:
            return
        if not 0 <= addr and addr + nbytes <= self.size_bytes:
            raise VMError(f"data store out of memory: {addr:#x}+{nbytes}")
        g0 = addr // GRANULE_BYTES
        g1 = (addr + nbytes - 1) // GRANULE_BYTES
        caps = self._caps
        if g1 - g0 < 64:
            # Small stores: dict membership beats numpy slice overhead.
            for g in range(g0, g1 + 1):
                if g in caps:
                    del caps[g]
                    self.tags[g] = False
        elif self.tags[g0 : g1 + 1].any():
            for off in np.flatnonzero(self.tags[g0 : g1 + 1]):
                g = g0 + int(off)
                caps.pop(g, None)
            self.tags[g0 : g1 + 1] = False

    # --- Page-granular queries (the sweep's working set) --------------------

    def page_granule_range(self, vpn: int) -> tuple[int, int]:
        g0 = vpn * GRANULES_PER_PAGE
        return g0, g0 + GRANULES_PER_PAGE

    def tagged_granules_in_page(self, vpn: int) -> list[int]:
        """Granule indices within page ``vpn`` that currently hold tags."""
        g0, g1 = self.page_granule_range(vpn)
        return [int(g) + g0 for g in np.flatnonzero(self.tags[g0:g1])]

    def page_tag_arrays(self, vpn: int) -> tuple[np.ndarray, np.ndarray]:
        """(tags, bases) views over page ``vpn``'s granules.

        Both are live numpy views (no copies); ``bases`` entries are only
        meaningful where the corresponding ``tags`` entry is True. This is
        the sweep fast path's input: probe every tagged granule's base
        against the revocation bitmap in one gather.
        """
        g0, g1 = self.page_granule_range(vpn)
        return self.tags[g0:g1], self.cap_bases[g0:g1]

    def clear_granules(self, granules: np.ndarray) -> None:
        """Revoke a batch of granules: clear their tags as one masked
        store and drop their capability values (the vector counterpart of
        :meth:`clear_tag_at_granule`)."""
        self.tags[granules] = False
        pop = self._caps.pop
        for g in granules.tolist():
            pop(g, None)

    def page_tag_count(self, vpn: int) -> int:
        g0, g1 = self.page_granule_range(vpn)
        return int(self.tags[g0:g1].sum())

    def page_has_tags(self, vpn: int) -> bool:
        g0, g1 = self.page_granule_range(vpn)
        return bool(self.tags[g0:g1].any())

    def zero_page(self, vpn: int) -> None:
        """Clear every tag in a page (page reuse / unmap)."""
        g0, g1 = self.page_granule_range(vpn)
        if self.tags[g0:g1].any():
            for g in np.flatnonzero(self.tags[g0:g1]):
                self._caps.pop(int(g) + g0, None)
            self.tags[g0:g1] = False

    # --- Whole-memory iteration (verification helpers, not the sweep) ------

    def iter_tagged(self) -> Iterator[tuple[int, Capability]]:
        """Yield (granule_index, capability) for every tagged granule.

        Used by tests and invariant checkers; the revokers never get to
        iterate memory this cheaply.
        """
        for g, cap in self._caps.items():
            yield g, cap

    @property
    def total_tags(self) -> int:
        return len(self._caps)
