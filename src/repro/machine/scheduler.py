"""Cooperative discrete-event scheduler with a stop-the-world protocol.

Threads are Python generators. Everything a thread yields is either a
cycle count (time consumed on its core) or one of the control objects
defined here:

- :class:`Sleep` — advance time without consuming CPU (idle gaps between
  pgbench transactions, client think time);
- :class:`Block` — wait on an :class:`Event` (epoch waits, quarantine-full
  back-pressure);
- :class:`StopWorld` / :class:`ResumeWorld` — the revocation syscall's
  world-stop rendezvous. Only threads with ``stops_for_stw`` set are
  stopped (application threads); the revoker's own thread keeps running.

Cores have independent clocks; the scheduler always advances the
least-advanced core that has runnable work, so clocks never drift by more
than one operation. Idle cores fast-forward when work arrives. A per-core
round-robin with a preemption quantum models timesharing — which is what
lets the background revoker steal time from gRPC's unpinned server
threads (§5.3, §7.7).

Two optional, check-oriented attachment points (both ``None`` by default,
costing one attribute test per step; see :mod:`repro.check`):

- :attr:`Scheduler.policy` — a schedule policy that resolves the choice
  among equal-time candidate cores in :meth:`Scheduler._pick` (and, with a
  nonzero ``window``, among near-equal ones). With no policy installed the
  pick is the hard-wired first-minimal-core rule, bit-identical to the
  historical behaviour.
- :attr:`Scheduler.probe` — a :class:`SchedulerProbe` observing dispatch,
  step completion, sleeper promotion, and stop-the-world transitions; the
  temporal-safety oracles hang off these.

Convention used throughout the package: every kernel or allocator entry
point that can consume simulated time or block is itself a generator,
composed with ``yield from``; leaf helpers return plain cycle counts that
the caller yields.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass
from typing import Callable, Generator, Iterable, Protocol

from repro.errors import SimulationError
from repro.machine.cpu import Core
from repro.obs.tracer import TRACER

#: Default preemption quantum, cycles (1 ms at 2.5 GHz).
DEFAULT_QUANTUM = 2_500_000

#: What a thread body may yield.
Yieldable = "int | Sleep | Block | StopWorld | ResumeWorld"
ThreadBody = Generator


class Sleep:
    """Advance this thread's wake time by ``cycles`` without busying a core."""

    __slots__ = ("cycles",)

    def __init__(self, cycles: int) -> None:
        if cycles < 0:
            raise SimulationError(f"negative sleep {cycles}")
        self.cycles = cycles


class Event:
    """A broadcast condition: ``signal`` wakes every current waiter.

    Waiters must re-check their condition after waking (standard condition
    variable discipline); the epoch counter and quarantine policies use
    this via wait-loops.
    """

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.waiters: list[Thread] = []

    def __repr__(self) -> str:  # pragma: no cover
        return f"Event({self.name}, waiters={len(self.waiters)})"


class Block:
    """Yielded to wait on an :class:`Event`."""

    __slots__ = ("event",)

    def __init__(self, event: Event) -> None:
        self.event = event


class StopWorld:
    """Yielded by the revoker: stop all ``stops_for_stw`` threads.

    The yielding thread resumes (with the world stopped) once every such
    thread has reached a safe point; the scheduler charges the rendezvous
    by fast-forwarding the requester to the latest stopped core's clock.
    """

    __slots__ = ()


class ResumeWorld:
    """Yielded by the revoker to restart the world."""

    __slots__ = ()


class SchedulerProbe:
    """Observer interface for schedule checking (all hooks no-ops here).

    A probe sees every scheduling decision as it happens: thread dispatch
    (with the core clock it will run at), step completion, which sleepers
    were promoted together, and stop-the-world hold/release sets. The
    oracles in :mod:`repro.check.oracle` subclass this; the scheduler
    guards every call site with ``if self.probe is not None`` so the
    disabled cost is one attribute test.
    """

    def on_pick(self, slot: "CoreSlot", thread: "Thread", begin: int) -> None:
        """``thread`` is about to run on ``slot`` at core time ``begin``
        (``slot.time`` still holds the pre-fast-forward clock)."""

    def on_step(self, thread: "Thread") -> None:
        """``thread`` just completed one step (its core clock is final)."""

    def on_promote(self, slot: "CoreSlot", batch: "list[Thread]") -> None:
        """``batch`` (in enqueue order) was promoted from sleep onto
        ``slot``'s run queue in one scheduling decision."""

    def on_stw_begin(self, begin: int, held: "list[Thread]") -> None:
        """A stop-the-world began at ``begin``, holding ``held``."""

    def on_stw_end(self, end: int, released: "list[Thread]") -> None:
        """The stop-the-world ended at ``end``, releasing ``released``."""


class SchedulePolicyLike(Protocol):
    """What :attr:`Scheduler.policy` must look like (duck-typed so the
    policies can live in :mod:`repro.check` without an import cycle)."""

    #: Candidate cores within this many cycles of the minimal effective
    #: time are offered to :meth:`choose` (0 = exact ties only).
    window: int

    def choose(self, candidates: "list[CoreSlot]") -> int:
        """Return an index into ``candidates`` (≥ 2 entries)."""
        ...


class ThreadState(enum.Enum):
    RUNNABLE = "runnable"
    SLEEPING = "sleeping"
    BLOCKED = "blocked"
    STOPPED = "stopped"  # held by stop-the-world
    FINISHED = "finished"


@dataclass
class StwRecord:
    """One stop-the-world episode, for pause-time reporting (fig. 9)."""

    begin: int
    end: int

    def __post_init__(self) -> None:
        # Phase accounting assumes monotone clocks; a pause that "ends
        # before it began" would silently poison every pause statistic.
        if self.end < self.begin:
            raise SimulationError(
                f"stop-the-world ends at {self.end} before it began at {self.begin}"
            )

    @property
    def duration(self) -> int:
        return self.end - self.begin


class Thread:
    """A simulated thread: a generator body pinned to one core."""

    def __init__(
        self,
        name: str,
        body: ThreadBody,
        core: "CoreSlot",
        *,
        stops_for_stw: bool = True,
    ) -> None:
        self.name = name
        self.body = body
        self.core = core
        self.stops_for_stw = stops_for_stw
        self.state = ThreadState.RUNNABLE
        #: Earliest core time at which this thread may next run.
        self.wake_floor: int = 0
        #: Pre-STW state to restore at resume (for held sleepers/blockers).
        self._held_state: ThreadState | None = None
        #: Wokens-while-stopped: event fired during STW, run at resume.
        self._pending_wake = False
        self.busy_cycles: int = 0
        self._credit: int = 0

    def __repr__(self) -> str:  # pragma: no cover
        return f"Thread({self.name}, {self.state.value}, core={self.core.index})"


class CoreSlot:
    """Scheduler-side state for one core: its clock and run queue."""

    def __init__(self, index: int, core: Core, quantum: int = DEFAULT_QUANTUM) -> None:
        self.index = index
        self.core = core
        self.time: int = 0
        self.quantum = quantum
        self.runq: deque[Thread] = deque()


class Scheduler:
    """The machine's thread scheduler and global clock."""

    def __init__(self, cores: Iterable[Core], quantum: int = DEFAULT_QUANTUM) -> None:
        self.cores = [CoreSlot(i, c, quantum) for i, c in enumerate(cores)]
        self.threads: list[Thread] = []
        self._sleeping: list[Thread] = []
        self.stw_active = False
        self._stw_requester: Thread | None = None
        self._stw_begin: int = 0
        self.stw_records: list[StwRecord] = []
        #: Called with each StwRecord as it completes (metrics hook).
        self.on_stw: Callable[[StwRecord], None] | None = None
        #: Optional schedule policy (see :mod:`repro.check.policy`): an
        #: object with a ``window`` attribute (cycles of tolerated clock
        #: drift among candidates) and ``choose(candidates) -> index``.
        #: ``None`` keeps the hard-wired first-minimal-core pick.
        self.policy: "SchedulePolicyLike | None" = None
        #: Optional :class:`SchedulerProbe` observing every decision.
        self.probe: SchedulerProbe | None = None
        self._steps = 0

    # --- Thread management ---------------------------------------------------

    def spawn(
        self,
        name: str,
        body: ThreadBody,
        core_index: int,
        *,
        stops_for_stw: bool = True,
    ) -> Thread:
        """Create a thread pinned to ``core_index`` and make it runnable."""
        slot = self.cores[core_index]
        thread = Thread(name, body, slot, stops_for_stw=stops_for_stw)
        thread.wake_floor = slot.time
        self.threads.append(thread)
        if self.stw_active and thread.stops_for_stw:
            thread.state = ThreadState.STOPPED
            thread._pending_wake = True
        else:
            slot.runq.append(thread)
        return thread

    def current_time(self) -> int:
        """The latest core clock (the simulation's wall clock so far)."""
        return max(slot.time for slot in self.cores)

    # --- Events ---------------------------------------------------------------

    def signal(self, event: Event, at_time: int | None = None) -> None:
        """Wake every waiter of ``event``.

        ``at_time`` defaults to the current wall clock; woken threads
        cannot run earlier than it.
        """
        when = self.current_time() if at_time is None else at_time
        waiters, event.waiters = event.waiters, []
        for thread in waiters:
            thread.wake_floor = max(thread.wake_floor, when)
            if thread.state is ThreadState.STOPPED:
                thread._pending_wake = True
            elif thread.state is ThreadState.BLOCKED:
                if self.stw_active and thread.stops_for_stw:
                    # Held by STW: becomes runnable at world resume.
                    thread.state = ThreadState.STOPPED
                    thread._pending_wake = True
                else:
                    thread.state = ThreadState.RUNNABLE
                    thread.core.runq.append(thread)

    # --- Stop-the-world ---------------------------------------------------------

    def _stop_world(self, requester: Thread) -> None:
        # Rendezvous invariant: the requester is charged up to the clock of
        # every core with RUNNABLE work to stop — those threads must reach a
        # safe point. SLEEPING and BLOCKED threads are already off-CPU at a
        # safe point, so their cores add nothing to the rendezvous; in
        # exchange, _resume_world floors *every* held thread (whatever its
        # held state) at the pause's end, so nothing held here can ever
        # execute inside the recorded [begin, end] window.
        if self.stw_active:
            raise SimulationError("nested stop-the-world")
        self.stw_active = True
        self._stw_requester = requester
        rendezvous = requester.core.time
        held: list[Thread] = []
        for thread in self.threads:
            if thread is requester or not thread.stops_for_stw:
                continue
            if thread.state is ThreadState.RUNNABLE:
                rendezvous = max(rendezvous, thread.core.time)
                thread.core.runq.remove(thread)
                thread._held_state = ThreadState.RUNNABLE
                thread.state = ThreadState.STOPPED
                held.append(thread)
            elif thread.state is ThreadState.SLEEPING:
                self._sleeping.remove(thread)
                thread._held_state = ThreadState.SLEEPING
                thread.state = ThreadState.STOPPED
                held.append(thread)
            elif thread.state is ThreadState.BLOCKED:
                thread._held_state = ThreadState.BLOCKED
                thread.state = ThreadState.STOPPED
                held.append(thread)
        requester.core.time = max(requester.core.time, rendezvous)
        self._stw_begin = requester.core.time
        if self.probe is not None:
            self.probe.on_stw_begin(self._stw_begin, held)
        if TRACER.enabled:
            stopped = sum(
                1 for t in self.threads if t.state is ThreadState.STOPPED
            )
            TRACER.emit("stw.begin", ts=self._stw_begin, stopped=stopped)

    def _resume_world(self, requester: Thread) -> None:
        if not self.stw_active or self._stw_requester is not requester:
            raise SimulationError("resume-world without matching stop-the-world")
        end = requester.core.time
        released: list[Thread] = []
        for thread in self.threads:
            if thread.state is not ThreadState.STOPPED:
                continue
            held = thread._held_state
            thread._held_state = None
            released.append(thread)
            if held is ThreadState.RUNNABLE or thread._pending_wake:
                thread._pending_wake = False
                thread.state = ThreadState.RUNNABLE
                thread.wake_floor = max(thread.wake_floor, end)
                thread.core.runq.append(thread)
            elif held is ThreadState.SLEEPING:
                thread.state = ThreadState.SLEEPING
                thread.wake_floor = max(thread.wake_floor, end)
                self._sleeping.append(thread)
            elif held is ThreadState.BLOCKED:
                thread.state = ThreadState.BLOCKED
                # A later signal() may carry an at_time that predates this
                # pause (a lagging core's view); without raising the floor
                # here, the woken thread could run *inside* the recorded
                # STW window it was held through.
                thread.wake_floor = max(thread.wake_floor, end)
            else:  # spawned during STW with no pending wake
                thread.state = ThreadState.RUNNABLE
                thread.wake_floor = max(thread.wake_floor, end)
                thread.core.runq.append(thread)
        self.stw_active = False
        self._stw_requester = None
        record = StwRecord(begin=self._stw_begin, end=end)
        self.stw_records.append(record)
        if self.probe is not None:
            self.probe.on_stw_end(end, released)
        if TRACER.enabled:
            TRACER.emit("stw.end", ts=end, duration=record.duration)
        if self.on_stw is not None:
            self.on_stw(record)

    # --- Main loop -----------------------------------------------------------------

    def _promote_due_sleepers(self) -> None:
        if not self._sleeping:
            return
        still = []
        promoted: list[Thread] = []
        for thread in self._sleeping:
            slot = thread.core
            if slot.runq and thread.wake_floor > slot.time:
                still.append(thread)
                continue
            # Due now, or the core is idle (it fast-forwards to the wake).
            promoted.append(thread)
        self._sleeping[:] = still
        if not promoted:
            return
        # Enqueue in wake order, not insertion order: an idle core
        # fast-forwards its clock to the queue head's wake_floor, so a
        # later-waking sleeper queued first would drag every earlier
        # sleeper behind it past its own wake time.
        promoted.sort(key=lambda t: t.wake_floor)
        batches: dict[int, list[Thread]] = {}
        for thread in promoted:
            thread.state = ThreadState.RUNNABLE
            thread.core.runq.append(thread)
            batches.setdefault(thread.core.index, []).append(thread)
        if self.probe is not None:
            for index, batch in batches.items():
                self.probe.on_promote(self.cores[index], batch)

    def _pick(self) -> Thread | None:
        self._promote_due_sleepers()
        policy = self.policy
        best: CoreSlot | None = None
        best_time = 0
        if policy is None:
            for slot in self.cores:
                if not slot.runq:
                    continue
                head = slot.runq[0]
                effective = max(slot.time, head.wake_floor)
                if best is None or effective < best_time:
                    best = slot
                    best_time = effective
            if best is None:
                return None
        else:
            best = self._pick_with_policy(policy)
            if best is None:
                return None
        head = best.runq[0]
        if self.probe is not None:
            self.probe.on_pick(best, head, max(best.time, head.wake_floor))
        best.time = max(best.time, head.wake_floor)
        return head

    def _pick_with_policy(self, policy: "SchedulePolicyLike") -> CoreSlot | None:
        """Delegate the choice among (near-)equal-time candidate cores to
        the installed policy. With ``window == 0`` the candidate set is
        exactly the cores tied at the minimal effective time, so a policy
        that always answers 0 reproduces the default pick bit for bit."""
        candidates: list[CoreSlot] = []
        times: list[int] = []
        for slot in self.cores:
            if not slot.runq:
                continue
            candidates.append(slot)
            times.append(max(slot.time, slot.runq[0].wake_floor))
        if not candidates:
            return None
        cutoff = min(times) + policy.window
        eligible = [s for s, t in zip(candidates, times) if t <= cutoff]
        if len(eligible) == 1:
            return eligible[0]
        return eligible[policy.choose(eligible)]

    def _rotate(self, thread: Thread) -> None:
        slot = thread.core
        if slot.runq and slot.runq[0] is thread:
            slot.runq.rotate(-1)
        thread._credit = 0

    def _step(self, thread: Thread) -> None:
        slot = thread.core
        try:
            item = next(thread.body)
        except StopIteration:
            thread.state = ThreadState.FINISHED
            if slot.runq and slot.runq[0] is thread:
                slot.runq.popleft()
            elif thread in slot.runq:
                slot.runq.remove(thread)
            if self.stw_active and self._stw_requester is thread:
                raise SimulationError(
                    f"thread {thread.name} exited with the world stopped"
                )
            if self.probe is not None:
                self.probe.on_step(thread)
            return
        if isinstance(item, (int, float)):
            cycles = int(item)
            if cycles < 0:
                raise SimulationError(f"{thread.name} yielded negative cycles")
            slot.time += cycles
            thread.busy_cycles += cycles
            thread._credit += cycles
            if thread._credit >= slot.quantum:
                self._rotate(thread)
        elif isinstance(item, Sleep):
            slot.runq.popleft()
            thread.state = ThreadState.SLEEPING
            thread.wake_floor = slot.time + item.cycles
            thread._credit = 0
            self._sleeping.append(thread)
        elif isinstance(item, Block):
            slot.runq.popleft()
            thread.state = ThreadState.BLOCKED
            thread._credit = 0
            item.event.waiters.append(thread)
        elif isinstance(item, StopWorld):
            # An STW episode is a scheduling boundary: the requester's
            # accumulated quantum credit must not leak across it, or a
            # revoker sharing a core gets preempted mid-sweep for work it
            # did *before* the pause (and vice versa at resume).
            thread._credit = 0
            self._stop_world(thread)
        elif isinstance(item, ResumeWorld):
            thread._credit = 0
            self._resume_world(thread)
        else:
            raise SimulationError(
                f"{thread.name} yielded unsupported item {item!r}"
            )
        if self.probe is not None:
            self.probe.on_step(thread)

    def run_until_condition(self, condition: Callable[[], bool], max_steps: int = 10_000_000) -> int:
        """Step the simulation until ``condition()`` holds (used to drain
        an in-flight revocation epoch after the application exits)."""
        for _ in range(max_steps):
            if condition():
                return self.current_time()
            thread = self._pick()
            if thread is None:
                raise SimulationError("no runnable threads while draining")
            self._step(thread)
        raise SimulationError("run_until_condition exceeded max_steps")

    def run(
        self,
        until: Iterable[Thread] | None = None,
        max_steps: int = 500_000_000,
    ) -> int:
        """Run until every thread in ``until`` finishes (default: every
        thread). Returns the final wall clock. Daemon-style threads that
        never finish are simply abandoned when ``until`` is satisfied.
        """
        # With no explicit target set, "done" means every thread —
        # including ones spawned while running — has finished.
        targets = list(until) if until is not None else None
        for _ in range(max_steps):
            pending = self.threads if targets is None else targets
            if all(t.state is ThreadState.FINISHED for t in pending):
                return self.current_time()
            thread = self._pick()
            if thread is None:
                unfinished = [t.name for t in pending if t.state is not ThreadState.FINISHED]
                raise SimulationError(
                    f"deadlock: no runnable or sleeping threads; waiting on {unfinished}"
                )
            self._step(thread)
            self._steps += 1
        raise SimulationError(f"exceeded max_steps={max_steps}")
