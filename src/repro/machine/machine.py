"""The assembled machine: memory, bus, cores, page table, scheduler.

:class:`Machine` is the hardware a :class:`repro.core.simulation.Simulation`
boots: a Morello-like SMP with four cache-coherent cores by default
(§2.1.1), tagged memory, and one page table (the simulation runs a single
process under test, as the paper's harness does).
"""

from __future__ import annotations

from repro.errors import ConfigError
from repro.machine.cache import Bus
from repro.machine.costs import PAGE_BYTES, CostModel, default_cost_model
from repro.machine.cpu import Core
from repro.machine.memory import TaggedMemory
from repro.machine.pagetable import PageTable
from repro.machine.scheduler import DEFAULT_QUANTUM, Scheduler
from repro.obs.tracer import TRACER


class Machine:
    """A simulated CHERI SMP machine."""

    def __init__(
        self,
        memory_bytes: int = 256 << 20,
        num_cores: int = 4,
        costs: CostModel | None = None,
        cache_bytes: int = 1 << 20,
        quantum: int = DEFAULT_QUANTUM,
    ) -> None:
        if num_cores < 1:
            raise ConfigError("need at least one core")
        if memory_bytes % PAGE_BYTES:
            raise ConfigError("memory must be a page multiple")
        self.costs = costs if costs is not None else default_cost_model()
        self.memory = TaggedMemory(memory_bytes)
        self.bus = Bus()
        self.pagetable = PageTable()
        self.cores = [
            Core(i, self.memory, self.pagetable, self.bus, self.costs, cache_bytes)
            for i in range(num_cores)
        ]
        self.scheduler = Scheduler(self.cores, quantum=quantum)

    @property
    def num_cores(self) -> int:
        return len(self.cores)

    def core(self, index: int) -> Core:
        return self.cores[index]

    def wall_clock(self) -> int:
        return self.scheduler.current_time()

    def tlb_shootdown(self, vpn: int | None = None) -> int:
        """Invalidate ``vpn`` (or everything) in every core's TLB; returns
        the IPI cycle cost, charged to the caller."""
        for core in self.cores:
            if vpn is None:
                core.tlb.invalidate_all()
            else:
                core.tlb.invalidate(vpn)
        if TRACER.enabled:
            TRACER.emit("tlb.shootdown", vpn=vpn, cores=len(self.cores))
        return self.costs.tlb_shootdown * (len(self.cores) - 1)
