"""Page tables with capability load-generation and dirty metadata.

Each mapped page's PTE carries, beyond the usual permissions:

- ``cap_store`` permission — capability stores trap without it (the
  CHERI-MIPS-era control reused for shared file mappings, §2.2.4 fn. 13);
- ``cap_dirty`` (CD) — set by hardware on the first capability store, the
  store barrier both Cornucopia and Reloaded use to skip capability-clean
  pages (§2.2.4, §4.2);
- ``redirtied`` — set by a capability store while a revocation sweep is in
  flight; Cornucopia must re-visit such pages with the world stopped
  (§2.2.5), and hardware dirty-bit tracking makes this cheap (§4.2);
- ``lg`` — the load generation bit compared against the core's CLG control
  register on every tagged capability load (§4.1). Only Reloaded flips
  generations; for the other strategies the bit stays in agreement.

Per-core TLBs cache PTE snapshots; a stale TLB entry whose generation
disagrees with the (already-updated) PTE causes a spurious fault resolved
by a TLB refill, exactly the double-check in §4.3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.errors import VMError


@dataclass
class PTE:
    """One page table entry. Mutable: the kernel and revokers update it."""

    vpn: int
    readable: bool = True
    writable: bool = True
    cap_load: bool = True
    cap_store: bool = True
    #: CD bit: a capability store has happened since the page was mapped
    #: or last observed clean. Pages with cap_dirty False need no content
    #: sweep (§2.2.4).
    cap_dirty: bool = False
    #: A capability store has happened since the current epoch's sweep
    #: visited this page (hardware-assisted re-dirty tracking, §4.2).
    redirtied: bool = False
    #: Load generation bit (§4.1).
    lg: int = 0
    #: §7.6 disposition: capability loads from this page always trap,
    #: regardless of generation or loaded tag; the page needs no
    #: generation maintenance while it stays capability-clean.
    always_trap_cap_loads: bool = False
    #: Guard page: mapped to fault on any access (reservation holes, §6.2).
    guard: bool = False
    #: Visited by the current epoch's sweep (kernel bookkeeping; cleared
    #: when an epoch opens).
    swept_this_epoch: bool = False


class PageTable:
    """The page table of the (single) simulated address space."""

    def __init__(self) -> None:
        self._ptes: dict[int, PTE] = {}

    def map_page(
        self,
        vpn: int,
        *,
        writable: bool = True,
        cap_store: bool = True,
        lg: int = 0,
        guard: bool = False,
        always_trap_cap_loads: bool = False,
    ) -> PTE:
        if vpn in self._ptes:
            raise VMError(f"page {vpn} already mapped")
        pte = PTE(vpn=vpn, writable=writable, cap_store=cap_store, lg=lg,
                  guard=guard, always_trap_cap_loads=always_trap_cap_loads)
        self._ptes[vpn] = pte
        return pte

    def unmap_page(self, vpn: int) -> None:
        if vpn not in self._ptes:
            raise VMError(f"page {vpn} not mapped")
        del self._ptes[vpn]

    def get(self, vpn: int) -> PTE | None:
        return self._ptes.get(vpn)

    def require(self, vpn: int) -> PTE:
        pte = self._ptes.get(vpn)
        if pte is None:
            raise VMError(f"page {vpn} not mapped")
        return pte

    def __contains__(self, vpn: int) -> bool:
        return vpn in self._ptes

    def __len__(self) -> int:
        return len(self._ptes)

    def mapped_pages(self) -> Iterator[PTE]:
        """Iterate PTEs in page order (the background sweep's visit order)."""
        for vpn in sorted(self._ptes):
            yield self._ptes[vpn]

    def cap_dirty_pages(self) -> list[PTE]:
        return [p for p in self.mapped_pages() if p.cap_dirty and not p.guard]

    def redirtied_pages(self) -> list[PTE]:
        return [p for p in self.mapped_pages() if p.redirtied and not p.guard]


@dataclass
class TLBEntry:
    """A core-local snapshot of the PTE fields the pipeline consults."""

    lg: int
    cap_load: bool
    cap_store: bool
    always_trap: bool = False


class TLB:
    """One core's TLB.

    Models *staleness* (which generates the spurious-fault path of §4.3
    and forces CHERIvoke/Cornucopia-era designs into shootdowns) rather
    than capacity pressure.
    """

    def __init__(self) -> None:
        self._entries: dict[int, TLBEntry] = {}
        self.refills = 0
        self.shootdowns = 0

    def lookup(self, vpn: int) -> TLBEntry | None:
        return self._entries.get(vpn)

    def fill(self, vpn: int, pte: PTE) -> TLBEntry:
        entry = TLBEntry(lg=pte.lg, cap_load=pte.cap_load,
                         cap_store=pte.cap_store,
                         always_trap=pte.always_trap_cap_loads)
        self._entries[vpn] = entry
        self.refills += 1
        return entry

    def invalidate(self, vpn: int) -> None:
        self._entries.pop(vpn, None)

    def invalidate_all(self) -> None:
        self._entries.clear()
        self.shootdowns += 1
