"""Architectural traps delivered by the simulated CPU.

These derive from :class:`repro.errors.ArchitecturalTrap`: they are modelled
control transfers into the kernel, raised by :mod:`repro.machine.cpu` and
caught by the kernel layer, not programming errors.
"""

from __future__ import annotations

from repro.errors import ArchitecturalTrap


class LoadGenerationFault(ArchitecturalTrap):
    """A tagged capability load hit a page whose PTE load-generation bit
    disagrees with the core's CLG register (§4.1).

    The Reloaded fault handler responds by sweeping the page on the
    faulting thread and re-running the load (a self-healing load barrier,
    §2.3 fn. 14).
    """

    def __init__(self, vpn: int, addr: int) -> None:
        super().__init__(f"capability load generation fault: page {vpn} addr {addr:#x}")
        self.vpn = vpn
        self.addr = addr


class CapStoreFault(ArchitecturalTrap):
    """A tagged capability store targeted a page whose PTE forbids
    capability stores (e.g. shared file mappings, §2.2.4 fn. 13)."""

    def __init__(self, vpn: int, addr: int) -> None:
        super().__init__(f"capability store fault: page {vpn} addr {addr:#x}")
        self.vpn = vpn
        self.addr = addr


class PageFault(ArchitecturalTrap):
    """An access touched an unmapped or guard page.

    Under the reservation scheme (§6.2) a stale pointer into unmapped
    address space faults here instead of aliasing a later mapping.
    """

    def __init__(self, vpn: int, addr: int, write: bool) -> None:
        kind = "write" if write else "read"
        super().__init__(f"page fault: {kind} of unmapped page {vpn} addr {addr:#x}")
        self.vpn = vpn
        self.addr = addr
        self.write = write
