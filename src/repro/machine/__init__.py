"""Simulated CHERI/Morello machine substrate.

Public surface: :class:`Machine` (the assembled SMP), the
:class:`Capability` value type, and the cost model. See DESIGN.md §2 for
the module map.
"""

from repro.machine.cache import Bus, Cache
from repro.machine.capability import Capability, Perm, representable_length
from repro.machine.costs import (
    CostModel,
    GRANULE_BYTES,
    GRANULES_PER_PAGE,
    LINE_BYTES,
    LINES_PER_PAGE,
    PAGE_BYTES,
    cycles_to_micros,
    cycles_to_millis,
    cycles_to_seconds,
    default_cost_model,
)
from repro.machine.cpu import Core
from repro.machine.machine import Machine
from repro.machine.memory import TaggedMemory
from repro.machine.pagetable import PTE, PageTable, TLB
from repro.machine.scheduler import (
    Block,
    Event,
    ResumeWorld,
    Scheduler,
    Sleep,
    StopWorld,
    StwRecord,
    Thread,
    ThreadState,
)
from repro.machine.trap import CapStoreFault, LoadGenerationFault, PageFault

__all__ = [
    "Block",
    "Bus",
    "Cache",
    "CapStoreFault",
    "Capability",
    "Core",
    "CostModel",
    "Event",
    "GRANULES_PER_PAGE",
    "GRANULE_BYTES",
    "LINES_PER_PAGE",
    "LINE_BYTES",
    "LoadGenerationFault",
    "Machine",
    "PAGE_BYTES",
    "PTE",
    "PageFault",
    "PageTable",
    "Perm",
    "ResumeWorld",
    "Scheduler",
    "Sleep",
    "StopWorld",
    "StwRecord",
    "TLB",
    "TaggedMemory",
    "Thread",
    "ThreadState",
    "cycles_to_micros",
    "cycles_to_millis",
    "cycles_to_seconds",
    "default_cost_model",
    "representable_length",
]
