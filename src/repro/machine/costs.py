"""Cycle-cost model for the simulated CHERI/Morello machine.

Every architectural event that the simulation charges time for is named
here, in one place, so that calibration and ablation are possible without
touching mechanism code. The default values approximate a Morello-class
core at 2.5 GHz (the paper's evaluation platform, §2.1.1): one microsecond
is 2500 cycles.

The absolute values are calibration inputs, not claims: the reproduction
targets the *shape* of the paper's results (which strategy wins, by what
rough factor), which is driven by how many of each event occurs — and that
is produced by the mechanism, not by this table.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Bytes per capability granule: one tag bit covers this much memory (§2.2.2).
GRANULE_BYTES = 16

#: Bytes per cache line charged on the memory bus.
LINE_BYTES = 64

#: Bytes per virtual memory page.
PAGE_BYTES = 4096

#: Capability granules per page.
GRANULES_PER_PAGE = PAGE_BYTES // GRANULE_BYTES

#: Cache lines per page.
LINES_PER_PAGE = PAGE_BYTES // LINE_BYTES

#: Simulated core clock, cycles per second (Morello clocks at 2.5 GHz).
CYCLES_PER_SECOND = 2_500_000_000


def cycles_to_seconds(cycles: float) -> float:
    """Convert a cycle count to seconds at the simulated clock rate."""
    return cycles / CYCLES_PER_SECOND


def cycles_to_millis(cycles: float) -> float:
    """Convert a cycle count to milliseconds at the simulated clock rate."""
    return cycles * 1000.0 / CYCLES_PER_SECOND


def cycles_to_micros(cycles: float) -> float:
    """Convert a cycle count to microseconds at the simulated clock rate."""
    return cycles * 1_000_000.0 / CYCLES_PER_SECOND


@dataclass
class CostModel:
    """Cycle costs of architectural and kernel events.

    Attributes are grouped by the layer that charges them. All values are
    cycles unless noted.
    """

    # --- Core pipeline -------------------------------------------------
    #: A plain register-to-register instruction (used for Compute ops).
    op_compute: int = 1
    #: Issue cost of any load or store that hits in the cache.
    mem_hit: int = 4
    #: Additional penalty when a load or store misses to DRAM.
    mem_miss: int = 110
    #: Per-line penalty of *streaming* (sequential, prefetched) misses —
    #: what a page sweep pays. Morello's sweep throughput (fig. 9: tens of
    #: MiB per tens of ms) implies a few GB/s, i.e. tens of cycles per
    #: 64-byte line, far below the random-access miss latency.
    mem_stream: int = 35
    #: Extra issue cost of a capability (vs integer) load or store; tagged
    #: accesses move 16 bytes plus the tag.
    cap_access_extra: int = 1

    # --- Traps and kernel entry ---------------------------------------
    #: Kernel entry + exit for a synchronous trap (load-generation fault,
    #: capability store fault). Covers pipeline flush, vectoring, ERET.
    trap_roundtrip: int = 600
    #: Taking and releasing the pmap lock around a PTE update (§4.3).
    pmap_lock: int = 120
    #: Rewriting one PTE (e.g. bumping its load generation bit).
    pte_update: int = 40
    #: A TLB shootdown IPI, charged per remote core notified.
    tlb_shootdown: int = 2500
    #: Re-walking the page table when a stale TLB entry caused a spurious
    #: load-generation fault (the PTE was already current; §4.3).
    tlb_refill: int = 60

    # --- Revocation sweep ----------------------------------------------
    #: Per-granule cost of the sweep inner loop: load the tag, and if set,
    #: probe the revocation bitmap for the capability base (§2.2.2).
    sweep_granule: int = 2
    #: Extra cost per *tagged* granule encountered (bitmap probe arithmetic
    #: and the conditional revocation store).
    sweep_tagged_extra: int = 8
    #: Extra cost to clear (revoke) one capability found quarantined.
    sweep_revoke_extra: int = 12
    #: Fixed per-page overhead of a sweep visit: acquiring the page,
    #: checking its disposition, and updating bookkeeping (§4.3).
    sweep_page_overhead: int = 350
    #: Per-page cost of a generation-only visit (capability-clean page:
    #: the PTE's generation is updated without reading contents; §4.1
    #: footnote and §7.6).
    sweep_clean_page: int = 120
    #: Upgrading a read-only page to writable through the full page-fault
    #: machinery, paid only when a capability on such a page must actually
    #: be revoked (§4.3: read-only pages are otherwise put back into
    #: service as-is).
    sweep_ro_upgrade: int = 3_000
    #: §7.5 relaxed tag coherence: when True, the sweep first reads the
    #: page's *tag table* view (one line covers many pages' tags) and
    #: touches data lines only where tags are actually set, instead of
    #: streaming every data line. Requires an efficient global view of
    #: tags at epoch start (e.g. tag write-back), which the paper poses
    #: as future work — off by default.
    tag_table_sweep: bool = False
    #: Lines of data read per *tagged* granule under tag_table_sweep
    #: (the granule's own line; neighbours usually share it).
    tag_sweep_lines_per_cap: int = 1

    # --- Stop-the-world ------------------------------------------------
    #: Base cost of quiescing a single-threaded process with FreeBSD's
    #: thread_single() machinery and restarting it (§4.4, §5.4: "tens of
    #: microseconds" for single-threaded workloads).
    stw_base: int = 60_000
    #: Additional cost per extra application thread that must be brought
    #: to a safe point (gRPC's two busy cores push Reloaded's median STW
    #: to 323 us, §5.4).
    stw_per_extra_thread: int = 320_000
    #: Cost to scan one capability register during the STW register-file
    #: scan (§3.2).
    stw_per_register: int = 20
    #: Cost to scan one capability hoarded by the kernel (§4.4).
    stw_per_hoarded_cap: int = 30
    #: Cost to flip one core's capability load generation bit (§4.1).
    clg_flip: int = 200

    # --- Allocator / mrs shim -------------------------------------------
    #: Allocator fast-path cost of malloc (size-class pop).
    malloc_fast: int = 60
    #: Allocator slow-path extra (new slab, chunk request).
    malloc_slow_extra: int = 900
    #: Allocator fast-path cost of free.
    free_fast: int = 55
    #: Per-granule cost of painting the revocation bitmap on free (§2.2.2).
    paint_per_granule: int = 1
    #: Fixed overhead per free for quarantine bookkeeping in the shim.
    quarantine_bookkeeping: int = 120
    #: Fixed overhead of the revocation syscall (one per phase, §4.3).
    revoke_syscall: int = 4_000

    # --- Contention -----------------------------------------------------
    #: Multiplier applied to the DRAM miss penalty of application accesses
    #: while a revocation sweep is actively streaming memory on another
    #: core (shared-bus bandwidth contention; §5.6 discusses the cache and
    #: bus interactions of concurrent sweeps).
    sweep_contention_factor: float = 0.7

    # --- Derived helpers -------------------------------------------------
    def page_sweep_cycles(self, tagged: int, revoked: int) -> int:
        """Cycles to sweep one 4 KiB page holding ``tagged`` tagged granules,
        of which ``revoked`` get revoked."""
        return (
            self.sweep_page_overhead
            + GRANULES_PER_PAGE * self.sweep_granule
            + tagged * self.sweep_tagged_extra
            + revoked * self.sweep_revoke_extra
        )

    def stw_cycles(self, extra_threads: int, registers: int, hoarded: int) -> int:
        """Cycles for a stop-the-world rendezvous plus capability scans."""
        return (
            self.stw_base
            + extra_threads * self.stw_per_extra_thread
            + registers * self.stw_per_register
            + hoarded * self.stw_per_hoarded_cap
        )


def default_cost_model() -> CostModel:
    """Return a fresh :class:`CostModel` with the calibrated defaults."""
    return CostModel()
