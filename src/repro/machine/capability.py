"""CHERI capability value type.

A capability is an architectural fat pointer: an address (the cursor), a
bounds range ``[base, top)``, a permission set, and a validity *tag*. The
three properties the paper relies on (§2.1) are modelled exactly:

1. capabilities carry bounds limiting the addresses they authorize;
2. capabilities may only be *derived* from a superset capability
   (monotonicity); and
3. valid capabilities are perfectly distinguishable from plain data
   (the tag, stored out of band by :class:`repro.machine.memory.TaggedMemory`).

Revocation tests the bit corresponding to the capability *base*, not its
cursor, because CHERI guarantees the base cannot be moved (§2.2.2 fn. 9);
:meth:`Capability.revocation_probe_address` encodes that rule.

Bounds compression (CHERI Concentrate [57]) is modelled by
:func:`representable_alignment`: large allocations must be aligned and
padded so their bounds are exactly representable, which is why the kernel's
reservations pad with guard pages (§6.2 fn. 26).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace

from repro.errors import CapabilityError

#: Number of mantissa bits in the modelled bounds-compression format.
#: CHERI Concentrate on Morello uses a 14-bit mantissa for 128-bit
#: capabilities; lengths needing a coarser exponent must be aligned.
MANTISSA_BITS = 14


class Perm(enum.IntFlag):
    """Capability permission bits (the subset this model needs)."""

    LOAD = enum.auto()
    STORE = enum.auto()
    LOAD_CAP = enum.auto()
    STORE_CAP = enum.auto()
    GLOBAL = enum.auto()

    @classmethod
    def all(cls) -> "Perm":
        return cls.LOAD | cls.STORE | cls.LOAD_CAP | cls.STORE_CAP | cls.GLOBAL

    @classmethod
    def data_rw(cls) -> "Perm":
        return cls.LOAD | cls.STORE


def representable_alignment(length: int) -> int:
    """Alignment (bytes) required for a ``length``-byte region's bounds to
    be exactly representable under compressed bounds.

    Lengths that fit in the mantissa need no alignment; larger lengths need
    ``2**e`` alignment where ``e`` is the exponent required to express the
    length. This mirrors CHERI Concentrate closely enough to reproduce the
    padding behaviour allocators and reservations must implement.
    """
    if length < 0:
        raise CapabilityError(f"negative length {length}")
    if length < (1 << MANTISSA_BITS):
        return 1
    exponent = max(0, length.bit_length() - MANTISSA_BITS)
    return 1 << exponent


def representable_length(length: int) -> int:
    """Round ``length`` up to the next representable length."""
    align = representable_alignment(length)
    return (length + align - 1) & ~(align - 1)


@dataclass(frozen=True, slots=True)
class Capability:
    """An immutable CHERI capability.

    Use :meth:`root` to construct the primordial capability for a region
    and :meth:`derive` / :meth:`with_address` for monotonic refinement.
    ``tag`` is True for valid capabilities; revocation and data overwrites
    clear it (producing an untagged value that can no longer authorize
    anything).
    """

    base: int
    length: int
    address: int
    perms: Perm = Perm.all()
    tag: bool = True

    def __post_init__(self) -> None:
        if self.base < 0 or self.length < 0:
            raise CapabilityError(
                f"malformed capability base={self.base} length={self.length}"
            )

    # --- Constructors ---------------------------------------------------

    @classmethod
    def root(cls, base: int, length: int, perms: Perm | None = None) -> "Capability":
        """The primordial capability over ``[base, base+length)``."""
        return cls(
            base=base,
            length=length,
            address=base,
            perms=Perm.all() if perms is None else perms,
        )

    # --- Properties -------------------------------------------------------

    @property
    def top(self) -> int:
        """One past the last byte this capability authorizes."""
        return self.base + self.length

    @property
    def is_valid(self) -> bool:
        """Whether the tag is set (the capability authorizes anything)."""
        return self.tag

    def in_bounds(self, address: int, nbytes: int = 1) -> bool:
        """Whether ``[address, address+nbytes)`` lies within bounds."""
        return self.base <= address and address + nbytes <= self.top

    @property
    def revocation_probe_address(self) -> int:
        """The address whose revocation-bitmap bit governs this capability.

        Revocation probes the *base*, which CHERI guarantees is immovable
        (§2.2.2 fn. 9), so out-of-bounds cursors cannot dodge revocation.
        """
        return self.base

    # --- Monotonic derivation --------------------------------------------

    def derive(
        self,
        base: int,
        length: int,
        perms: Perm | None = None,
    ) -> "Capability":
        """Derive a sub-capability with narrowed bounds and permissions.

        Raises :class:`CapabilityError` on any attempt to widen bounds or
        add permissions (monotonicity, §2.1 property 2), or to derive from
        an untagged capability.
        """
        if not self.tag:
            raise CapabilityError("cannot derive from an untagged capability")
        if base < self.base or base + length > self.top:
            raise CapabilityError(
                f"non-monotonic derivation: [{base:#x},{base + length:#x}) "
                f"not within [{self.base:#x},{self.top:#x})"
            )
        new_perms = self.perms if perms is None else perms
        if new_perms & ~self.perms:
            raise CapabilityError(
                f"non-monotonic permissions: {new_perms!r} not within {self.perms!r}"
            )
        return Capability(base=base, length=length, address=base, perms=new_perms)

    def with_address(self, address: int) -> "Capability":
        """Return a copy with the cursor moved to ``address``.

        Moving the cursor far outside bounds makes compressed bounds
        unrepresentable; the architecture then clears the tag, which this
        model reproduces via :meth:`_representable_cursor`.

        This is the hottest constructor in the simulation, so it builds
        the copy directly instead of via ``dataclasses.replace``.
        """
        cap = object.__new__(Capability)
        object.__setattr__(cap, "base", self.base)
        object.__setattr__(cap, "length", self.length)
        object.__setattr__(cap, "address", address)
        object.__setattr__(cap, "perms", self.perms)
        tag = self.tag
        if tag and not (self.base <= address <= self.base + self.length):
            tag = cap._representable_cursor()
        object.__setattr__(cap, "tag", tag)
        return cap

    def _representable_cursor(self) -> bool:
        """Whether the cursor stays within the representable window.

        The window extends one representable-alignment unit beyond each
        bound, a simplification of CHERI Concentrate's actual window that
        preserves the property the paper needs: bases cannot be moved and
        cursors cannot stray arbitrarily while keeping the tag.
        """
        slack = max(representable_alignment(self.length), 1 << 10)
        return (self.base - slack) <= self.address <= (self.top + slack)

    def cleared(self) -> "Capability":
        """Return this capability with its tag cleared (revoked)."""
        return replace(self, tag=False)

    # --- Dereference checks -----------------------------------------------

    def check_dereference(self, nbytes: int, perm: "Perm | int") -> None:
        """Validate a ``nbytes`` access at the cursor needing ``perm``.

        Raises :class:`CapabilityError` exactly when CHERI hardware would
        deliver a capability exception: untagged, out of bounds, or missing
        permission.
        """
        if not self.tag:
            raise CapabilityError(
                f"dereference through untagged capability at {self.address:#x}"
            )
        addr = self.address
        if addr < self.base or addr + nbytes > self.base + self.length:
            raise CapabilityError(
                f"out-of-bounds access: {nbytes} bytes at {self.address:#x} "
                f"outside [{self.base:#x},{self.top:#x})"
            )
        # Raw-int comparisons: IntFlag operator dispatch is too slow for
        # this, the hottest check in the simulation. Callers may pass the
        # precomputed integer mask directly.
        want = perm if type(perm) is int else perm.value
        if (int(self.perms) & want) != want:
            raise CapabilityError(
                f"missing permission {perm!r} (have {self.perms!r})"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        t = "v" if self.tag else "-"
        return (
            f"Cap[{t} {self.address:#x} in {self.base:#x}+{self.length:#x} "
            f"{self.perms!r}]"
        )
