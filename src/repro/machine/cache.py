"""Per-core cache and memory-bus traffic accounting.

The paper reports "bus accesses (a proxy for DRAM accesses) ... by
system-mode pmcstat" (§5) per core; figures 4 and 6 compare the traffic
each revocation strategy induces. This module provides the equivalent
instrumentation: each simulated core owns a single-level LRU line cache in
front of a shared :class:`Bus` that counts transactions per source.

The cache is deliberately simple (fully-associative LRU over 64-byte
lines). What the figures measure is *which pages get streamed how many
times* by sweeps versus the application's resident working set — behaviour
an LRU capture perfectly well — not associativity effects.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from itertools import islice, repeat

from repro.errors import SimulationError
from repro.fastpath import scalar_mode
from repro.machine.costs import LINE_BYTES, LINES_PER_PAGE
from repro.obs.tracer import TRACER

#: Spans at or below this many lines go straight to the scalar loop:
#: the batched path's setup costs more than it saves on tiny accesses
#: (ordinary data loads/stores touch one or two lines).
_SPAN_BATCH_MIN_LINES = 4


@dataclass
class BusCounters:
    """Transaction counts attributed to one source (core or subsystem)."""

    reads: int = 0
    writes: int = 0

    @property
    def total(self) -> int:
        return self.reads + self.writes


class Bus:
    """The shared memory bus: counts DRAM transactions per source.

    Also tracks whether a revocation sweep is actively streaming memory;
    the CPU model consults :attr:`sweep_active` to apply the bandwidth
    contention factor (§5.6) to concurrent application misses.
    """

    def __init__(self) -> None:
        self.counters: dict[str, BusCounters] = {}
        self._sweepers: int = 0

    def _of(self, source: str) -> BusCounters:
        counters = self.counters.get(source)
        if counters is None:
            counters = self.counters[source] = BusCounters()
        return counters

    def read(self, source: str, lines: int = 1) -> None:
        self._of(source).reads += lines

    def write(self, source: str, lines: int = 1) -> None:
        self._of(source).writes += lines

    # --- Sweep contention -------------------------------------------------

    def sweep_begin(self) -> None:
        self._sweepers += 1
        if TRACER.enabled:
            TRACER.emit("sweep.begin", transactions=self.total_transactions())

    def sweep_end(self) -> None:
        if self._sweepers <= 0:
            raise SimulationError("sweep_end without a matching sweep_begin")
        self._sweepers -= 1
        if TRACER.enabled:
            TRACER.emit("sweep.end", transactions=self.total_transactions())

    @property
    def sweep_active(self) -> bool:
        return self._sweepers > 0

    # --- Reporting ---------------------------------------------------------

    def total_transactions(self) -> int:
        return sum(c.total for c in self.counters.values())

    def transactions(self, source: str) -> int:
        # Pure read: must not materialize a counter for an unknown source
        # (that would pollute snapshot()/total_transactions()).
        counters = self.counters.get(source)
        return counters.total if counters is not None else 0

    def snapshot(self) -> dict[str, int]:
        return {name: c.total for name, c in self.counters.items()}


class Cache:
    """A fully-associative LRU cache of 64-byte lines for one core.

    ``access`` returns True on a miss. Misses issue a bus read; evicting a
    dirty line issues a bus write-back.
    """

    def __init__(self, bus: Bus, source: str, capacity_bytes: int = 1 << 20) -> None:
        if capacity_bytes < LINE_BYTES:
            raise ValueError("cache smaller than one line")
        self.bus = bus
        self.source = source
        self.capacity_lines = capacity_bytes // LINE_BYTES
        #: line address -> dirty flag, in LRU order (oldest first).
        self._lines: OrderedDict[int, bool] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def _touch(self, line: int, write: bool) -> bool:
        """Access one line; returns True if it missed."""
        lines = self._lines
        if line in lines:
            dirty = lines.pop(line)
            lines[line] = dirty or write
            self.hits += 1
            return False
        self.misses += 1
        self.bus.read(self.source)
        if len(lines) >= self.capacity_lines:
            _, victim_dirty = lines.popitem(last=False)
            if victim_dirty:
                self.bus.write(self.source)
        lines[line] = write
        return True

    def _touch_loop(self, first: int, last: int, write: bool) -> int:
        """The scalar reference path: one :meth:`_touch` per line."""
        misses = 0
        for line in range(first, last + 1):
            if self._touch(line, write):
                misses += 1
        return misses

    def _touch_span(self, first: int, last: int, write: bool) -> int:
        """Batched equivalent of :meth:`_touch_loop` over ``[first, last]``.

        Computes hits, misses, and evictions with set/interval arithmetic
        over the LRU dict instead of per-line bookkeeping. Exactly
        bit-equivalent to the scalar loop — including final LRU order (the
        span's lines end up most-recent in ascending address order) and
        dirty-victim write-backs — except in two rare interleavings it
        detects and punts to the loop: the span is larger than the
        remaining capacity headroom allows without evicting lines the span
        itself (re)inserted, or one of the would-be victims is a span line
        the loop would have refreshed first.
        """
        lines = self._lines
        span = range(first, last + 1)
        n = len(span)
        resident = lines.keys() & span
        nhits = len(resident)
        misses = n - nhits
        evictions = len(lines) + misses - self.capacity_lines
        if evictions > 0:
            if evictions > len(lines) - nhits:
                # Victims would include span lines inserted by this very
                # access (capacity smaller than the span's footprint).
                return self._touch_loop(first, last, write)
            victims = tuple(islice(lines, evictions))
            if not resident.isdisjoint(victims):
                # An LRU-front span line would be refreshed mid-loop and
                # escape eviction; the interleaving matters — replay it.
                return self._touch_loop(first, last, write)
        else:
            victims = ()
        self.hits += nhits
        self.misses += misses
        pop = lines.pop
        if misses:
            self.bus.read(self.source, misses)
        if victims:
            dirty_victims = 0
            for line in victims:
                if pop(line):
                    dirty_victims += 1
            if dirty_victims:
                self.bus.write(self.source, dirty_victims)
            if TRACER.enabled:
                TRACER.emit(
                    "cache.evict",
                    source=self.source,
                    lines=len(victims),
                    dirty=dirty_victims,
                )
        # Reinsert the whole span at the MRU end in ascending order, as
        # the ascending scalar loop leaves it.
        if write:
            for line in resident:
                pop(line)
            lines.update(zip(span, repeat(True)))
        elif not nhits:
            lines.update(zip(span, repeat(False)))
        else:
            flags = [pop(line) if line in resident else False for line in span]
            lines.update(zip(span, flags))
        return misses

    def access(self, addr: int, write: bool = False) -> bool:
        """Access the line containing ``addr``; returns True on a miss."""
        return self._touch(addr // LINE_BYTES, write)

    def access_range(self, addr: int, nbytes: int, write: bool = False) -> int:
        """Access every line in ``[addr, addr+nbytes)``; returns miss count."""
        if nbytes <= 0:
            return 0
        first = addr // LINE_BYTES
        last = (addr + nbytes - 1) // LINE_BYTES
        if last - first < _SPAN_BATCH_MIN_LINES or scalar_mode():
            return self._touch_loop(first, last, write)
        return self._touch_span(first, last, write)

    def access_page(self, vpn: int, write: bool = False) -> int:
        """Stream one whole page through the cache (a sweep visit);
        returns the number of lines that missed."""
        base_line = vpn * LINES_PER_PAGE
        last = base_line + LINES_PER_PAGE - 1
        if scalar_mode():
            return self._touch_loop(base_line, last, write)
        return self._touch_span(base_line, last, write)

    def invalidate_page(self, vpn: int) -> None:
        """Drop all lines of a page (page reuse after unmap)."""
        base_line = vpn * LINES_PER_PAGE
        for line in range(base_line, base_line + LINES_PER_PAGE):
            self._lines.pop(line, None)
        if TRACER.enabled:
            TRACER.emit("cache.invalidate_page", source=self.source, vpn=vpn)

    @property
    def resident_lines(self) -> int:
        return len(self._lines)

    @property
    def miss_rate(self) -> float:
        total = self.hits + self.misses
        return self.misses / total if total else 0.0
