"""Per-core cache and memory-bus traffic accounting.

The paper reports "bus accesses (a proxy for DRAM accesses) ... by
system-mode pmcstat" (§5) per core; figures 4 and 6 compare the traffic
each revocation strategy induces. This module provides the equivalent
instrumentation: each simulated core owns a single-level LRU line cache in
front of a shared :class:`Bus` that counts transactions per source.

The cache is deliberately simple (fully-associative LRU over 64-byte
lines). What the figures measure is *which pages get streamed how many
times* by sweeps versus the application's resident working set — behaviour
an LRU capture perfectly well — not associativity effects.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.machine.costs import LINE_BYTES, LINES_PER_PAGE


@dataclass
class BusCounters:
    """Transaction counts attributed to one source (core or subsystem)."""

    reads: int = 0
    writes: int = 0

    @property
    def total(self) -> int:
        return self.reads + self.writes


class Bus:
    """The shared memory bus: counts DRAM transactions per source.

    Also tracks whether a revocation sweep is actively streaming memory;
    the CPU model consults :attr:`sweep_active` to apply the bandwidth
    contention factor (§5.6) to concurrent application misses.
    """

    def __init__(self) -> None:
        self.counters: dict[str, BusCounters] = {}
        self._sweepers: int = 0

    def _of(self, source: str) -> BusCounters:
        counters = self.counters.get(source)
        if counters is None:
            counters = self.counters[source] = BusCounters()
        return counters

    def read(self, source: str, lines: int = 1) -> None:
        self._of(source).reads += lines

    def write(self, source: str, lines: int = 1) -> None:
        self._of(source).writes += lines

    # --- Sweep contention -------------------------------------------------

    def sweep_begin(self) -> None:
        self._sweepers += 1

    def sweep_end(self) -> None:
        self._sweepers -= 1
        assert self._sweepers >= 0

    @property
    def sweep_active(self) -> bool:
        return self._sweepers > 0

    # --- Reporting ---------------------------------------------------------

    def total_transactions(self) -> int:
        return sum(c.total for c in self.counters.values())

    def transactions(self, source: str) -> int:
        return self._of(source).total

    def snapshot(self) -> dict[str, int]:
        return {name: c.total for name, c in self.counters.items()}


class Cache:
    """A fully-associative LRU cache of 64-byte lines for one core.

    ``access`` returns True on a miss. Misses issue a bus read; evicting a
    dirty line issues a bus write-back.
    """

    def __init__(self, bus: Bus, source: str, capacity_bytes: int = 1 << 20) -> None:
        if capacity_bytes < LINE_BYTES:
            raise ValueError("cache smaller than one line")
        self.bus = bus
        self.source = source
        self.capacity_lines = capacity_bytes // LINE_BYTES
        #: line address -> dirty flag, in LRU order (oldest first).
        self._lines: OrderedDict[int, bool] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def _touch(self, line: int, write: bool) -> bool:
        """Access one line; returns True if it missed."""
        lines = self._lines
        if line in lines:
            dirty = lines.pop(line)
            lines[line] = dirty or write
            self.hits += 1
            return False
        self.misses += 1
        self.bus.read(self.source)
        if len(lines) >= self.capacity_lines:
            _, victim_dirty = lines.popitem(last=False)
            if victim_dirty:
                self.bus.write(self.source)
        lines[line] = write
        return True

    def access(self, addr: int, write: bool = False) -> bool:
        """Access the line containing ``addr``; returns True on a miss."""
        return self._touch(addr // LINE_BYTES, write)

    def access_range(self, addr: int, nbytes: int, write: bool = False) -> int:
        """Access every line in ``[addr, addr+nbytes)``; returns miss count."""
        if nbytes <= 0:
            return 0
        first = addr // LINE_BYTES
        last = (addr + nbytes - 1) // LINE_BYTES
        misses = 0
        for line in range(first, last + 1):
            if self._touch(line, write):
                misses += 1
        return misses

    def access_page(self, vpn: int, write: bool = False) -> int:
        """Stream one whole page through the cache (a sweep visit);
        returns the number of lines that missed."""
        base_line = vpn * LINES_PER_PAGE
        misses = 0
        for line in range(base_line, base_line + LINES_PER_PAGE):
            if self._touch(line, write):
                misses += 1
        return misses

    def invalidate_page(self, vpn: int) -> None:
        """Drop all lines of a page (page reuse after unmap)."""
        base_line = vpn * LINES_PER_PAGE
        for line in range(base_line, base_line + LINES_PER_PAGE):
            self._lines.pop(line, None)

    @property
    def resident_lines(self) -> int:
        return len(self._lines)

    @property
    def miss_rate(self) -> float:
        total = self.hits + self.misses
        return self.misses / total if total else 0.0
