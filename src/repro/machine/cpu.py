"""The simulated CHERI core: barriered loads and stores.

A :class:`Core` executes architectural memory operations on behalf of the
thread currently scheduled on it, charging cycles and cache/bus traffic,
and raising the traps the revokers are built on:

- the **capability load barrier** (§4.1): every load of a *tagged* value is
  checked against the page's load-generation bit (via the core's TLB); a
  mismatch with the core's CLG control register traps. Flipping CLG is all
  Reloaded's stop-the-world phase does to the MMU — PTEs are untouched, so
  there are no shootdowns at epoch start;
- the **capability store barrier** (§2.2.4, §4.2): tagged stores set the
  page's capability-dirty bit, and re-set the "re-dirtied" bit if the
  current epoch's sweep has already visited the page.

Faults propagate as exceptions to the simulation layer, which runs the
kernel's handler on this same core (foreground fault handling, §4.3).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.machine.cache import Bus, Cache
from repro.machine.capability import Capability, Perm
from repro.machine.costs import GRANULE_BYTES, PAGE_BYTES, CostModel
from repro.machine.memory import TaggedMemory
from repro.machine.pagetable import PageTable, TLB, TLBEntry
from repro.machine.trap import CapStoreFault, LoadGenerationFault, PageFault
from repro.obs.tracer import TRACER

# Precomputed integer permission masks: IntFlag operator dispatch is too
# slow for per-access use (check_dereference accepts raw masks).
_PERM_LOAD = Perm.LOAD.value
_PERM_STORE = Perm.STORE.value
_PERM_LOAD_CAP = Perm.LOAD.value | Perm.LOAD_CAP.value
_PERM_STORE_CAP = Perm.STORE.value | Perm.STORE_CAP.value


@dataclass
class AccessResult:
    """Outcome of one architectural access: the value (for loads) and the
    cycles it consumed."""

    cycles: int
    value: Capability | None = None


class Core:
    """One CPU core: CLG register, TLB, private cache."""

    def __init__(
        self,
        core_id: int,
        memory: TaggedMemory,
        pagetable: PageTable,
        bus: Bus,
        costs: CostModel,
        cache_bytes: int = 1 << 20,
    ) -> None:
        self.core_id = core_id
        self.name = f"core{core_id}"
        self.memory = memory
        self.pagetable = pagetable
        self.bus = bus
        self.costs = costs
        self.cache = Cache(bus, self.name, cache_bytes)
        self.tlb = TLB()
        #: Capability load generation control register (§4.1).
        self.clg = 0
        #: Load-generation faults taken on this core.
        self.lg_faults = 0
        #: Of those, spurious ones resolved by a TLB refill (§4.3).
        self.lg_faults_spurious = 0

    # --- Internals ---------------------------------------------------------

    def _translate(self, addr: int, *, write: bool) -> tuple[int, TLBEntry]:
        """TLB lookup for ``addr``; faults on unmapped or guard pages."""
        vpn = addr // PAGE_BYTES
        entry = self.tlb.lookup(vpn)
        if entry is None:
            pte = self.pagetable.get(vpn)
            if pte is None or pte.guard:
                raise PageFault(vpn, addr, write)
            entry = self.tlb.fill(vpn, pte)
        return vpn, entry

    def _miss_penalty(self) -> int:
        """DRAM penalty, inflated while a sweep is streaming the bus (§5.6)."""
        penalty = self.costs.mem_miss
        if self.bus.sweep_active:
            penalty = int(penalty * (1.0 + self.costs.sweep_contention_factor))
        return penalty

    def _charge_access(self, addr: int, nbytes: int, write: bool) -> int:
        misses = self.cache.access_range(addr, nbytes, write)
        lines = (addr + nbytes - 1) // 64 - addr // 64 + 1
        cycles = lines * self.costs.mem_hit
        if misses:
            cycles += misses * self._miss_penalty()
        return cycles

    # --- Architectural operations ------------------------------------------

    def load_cap(self, cap: Capability) -> AccessResult:
        """Capability load through ``cap`` at its cursor.

        Raises :class:`LoadGenerationFault` when the loaded granule is
        tagged and the TLB's generation for the page disagrees with this
        core's CLG. Untagged loads never trap (§4.1 fn. 18 — the trap is
        conditioned on the loaded tag).
        """
        cap.check_dereference(GRANULE_BYTES, _PERM_LOAD_CAP)
        addr = cap.address
        vpn, entry = self._translate(addr, write=False)
        if entry.always_trap:
            # §7.6 disposition: any capability-width load traps,
            # regardless of the loaded tag (fn. 18's stronger variant).
            self.lg_faults += 1
            raise LoadGenerationFault(vpn, addr)
        value = self.memory.load_cap(addr)
        if value is not None and entry.lg != self.clg:
            self.lg_faults += 1
            raise LoadGenerationFault(vpn, addr)
        cycles = self._charge_access(addr, GRANULE_BYTES, write=False)
        return AccessResult(cycles + self.costs.cap_access_extra, value)

    def store_cap(self, cap: Capability, value: Capability) -> AccessResult:
        """Capability store of ``value`` through ``cap`` at its cursor.

        Tagged stores require the PTE's cap-store permission and drive the
        dirty tracking both concurrent revokers rely on.
        """
        cap.check_dereference(GRANULE_BYTES, _PERM_STORE_CAP)
        addr = cap.address
        vpn, entry = self._translate(addr, write=True)
        if value.tag:
            if not entry.cap_store:
                raise CapStoreFault(vpn, addr)
            pte = self.pagetable.require(vpn)
            if pte.always_trap_cap_loads:
                # First capability store to an always-trap page: it is no
                # longer clean, so it transitions to generation tracking
                # at this core's current CLG — the stored capability was
                # already checked (§3.2), making the current generation
                # correct (§7.6).
                pte.always_trap_cap_loads = False
                pte.lg = self.clg
            pte.cap_dirty = True
            if pte.swept_this_epoch:
                pte.redirtied = True
        self.memory.store_cap(addr, value)
        cycles = self._charge_access(addr, GRANULE_BYTES, write=True)
        return AccessResult(cycles + self.costs.cap_access_extra)

    def _translate_span(self, addr: int, nbytes: int, *, write: bool) -> None:
        """Translate every page a multi-byte access touches (an access
        creeping from a mapped page into a guard page must fault)."""
        self._translate(addr, write=write)
        last = addr + nbytes - 1
        if last // PAGE_BYTES != addr // PAGE_BYTES:
            for vpn in range(addr // PAGE_BYTES + 1, last // PAGE_BYTES + 1):
                self._translate(vpn * PAGE_BYTES, write=write)

    def load_data(self, cap: Capability, nbytes: int) -> AccessResult:
        """Plain data load of ``nbytes`` at the cursor."""
        cap.check_dereference(nbytes, _PERM_LOAD)
        self._translate_span(cap.address, nbytes, write=False)
        return AccessResult(self._charge_access(cap.address, nbytes, write=False))

    def store_data(self, cap: Capability, nbytes: int) -> AccessResult:
        """Plain data store of ``nbytes`` at the cursor; clears the tags of
        every granule it overlaps."""
        cap.check_dereference(nbytes, _PERM_STORE)
        self._translate_span(cap.address, nbytes, write=True)
        self.memory.store_data(cap.address, nbytes)
        return AccessResult(self._charge_access(cap.address, nbytes, write=True))

    # --- Kernel-side helpers -------------------------------------------------

    def resolve_spurious_lg_fault(self, vpn: int) -> int:
        """The fault handler found the PTE already current: refill the TLB
        and retry (§4.3). Returns the cycles charged."""
        self.lg_faults_spurious += 1
        pte = self.pagetable.require(vpn)
        self.tlb.fill(vpn, pte)
        return self.costs.tlb_refill

    def flip_clg(self) -> int:
        """Advance this core's capability load generation (§4.1). Returns
        the cycles charged. No PTE is touched and no shootdown is issued —
        that is the architectural feature Reloaded is built on."""
        self.clg ^= 1
        if TRACER.enabled:
            TRACER.emit("core.clg_flip", core=self.name, clg=self.clg)
        return self.costs.clg_flip
