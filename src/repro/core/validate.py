"""Runtime invariant checking for simulations.

DESIGN.md §4 lists the invariants the system lives by; this module makes
them executable against a (running or finished) :class:`Simulation`, so
tests, examples, and long experiments can assert correctness directly
instead of re-deriving the checks. The checker is also the fault-
injection harness's oracle: deliberately broken revokers must make it
fail (see tests/test_fault_injection.py).

Checks are conservative: they only flag states that are definitely wrong
given the epoch rules of §2.2.3, never racy intermediate states.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.simulation import Simulation


@dataclass
class Violation:
    """One detected invariant violation."""

    invariant: str
    detail: str

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return f"{self.invariant}: {self.detail}"


@dataclass
class ValidationReport:
    violations: list[Violation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def add(self, invariant: str, detail: str) -> None:
        self.violations.append(Violation(invariant, detail))

    def raise_if_failed(self) -> None:
        if not self.ok:
            lines = "\n".join(str(v) for v in self.violations)
            raise AssertionError(f"invariant violations:\n{lines}")


def check_invariants(sim: "Simulation") -> ValidationReport:
    """Run every applicable invariant check against ``sim``."""
    report = ValidationReport()
    _check_epoch_discipline(sim, report)
    _check_live_heap_unpainted(sim, report)
    _check_allocation_disjointness(sim, report)
    if sim.mrs is not None:
        _check_quarantine_accounting(sim, report)
        revoker = sim.kernel.revoker
        if revoker is not None and revoker.provides_safety and not sim.kernel.epoch.revoking:
            _check_revocation_guarantee(sim, report)
    return report


# --- Individual checks ------------------------------------------------------------


def _check_epoch_discipline(sim: "Simulation", report: ValidationReport) -> None:
    """§2.2.3: the counter is odd exactly while an epoch is in flight and
    advances twice per completed epoch."""
    epoch = sim.kernel.epoch
    if epoch.revoking != (epoch.counter % 2 == 1):
        report.add("epoch-discipline", f"counter {epoch.counter} vs revoking flag")
    expected = 2 * epoch.completed + (1 if epoch.revoking else 0)
    if epoch.counter != expected:
        report.add(
            "epoch-discipline",
            f"counter {epoch.counter} != 2*completed({epoch.completed})"
            f"{'+1' if epoch.revoking else ''}",
        )


def _check_live_heap_unpainted(sim: "Simulation", report: ValidationReport) -> None:
    """A live allocation must never be condemned: the allocator paints
    only on free and unpaints before reuse."""
    shadow = sim.kernel.shadow
    for addr in sim.alloc._live:
        if shadow.is_painted_addr(addr):
            report.add("live-unpainted", f"live allocation at {addr:#x} is painted")


def _check_allocation_disjointness(sim: "Simulation", report: ValidationReport) -> None:
    """No two live allocations overlap."""
    spans = sorted(
        (addr, addr + size) for addr, (size, _) in sim.alloc._live.items()
    )
    for (b1, t1), (b2, _) in zip(spans, spans[1:]):
        if t1 > b2:
            report.add(
                "allocation-disjointness",
                f"[{b1:#x},{t1:#x}) overlaps allocation at {b2:#x}",
            )


def _check_quarantine_accounting(sim: "Simulation", report: ValidationReport) -> None:
    """Quarantine bookkeeping balances, and quarantined regions are
    painted until released."""
    q = sim.mrs.quarantine
    if q.total_bytes != q.pending_bytes + q.sealed_bytes:
        report.add("quarantine-accounting", "total != pending + sealed")
    if q.pending_bytes != sum(r.size for r in q.pending):
        report.add("quarantine-accounting", "pending_bytes out of sync")
    shadow = sim.kernel.shadow
    for region in q.pending:
        if not shadow.is_painted_addr(region.addr):
            report.add(
                "quarantine-painted",
                f"pending region {region.addr:#x} not painted",
            )
    for batch in q.sealed:
        for region in batch.regions:
            if not shadow.is_painted_addr(region.addr):
                report.add(
                    "quarantine-painted",
                    f"sealed region {region.addr:#x} not painted",
                )


def _check_revocation_guarantee(sim: "Simulation", report: ValidationReport) -> None:
    """§2.2.3 (with no epoch in flight): any tagged capability whose base
    is painted must target memory painted *after* the last epoch began —
    i.e. a region still in quarantine. Anything else escaped a sweep.

    Covers memory, thread register files, and kernel hoards (§4.4).
    """
    shadow = sim.kernel.shadow
    q = sim.mrs.quarantine
    allowed = {r.addr for r in q.pending}
    allowed.update(r.addr for b in q.sealed for r in b.regions)

    def offending(cap) -> bool:
        return cap.tag and shadow.is_revoked(cap) and cap.base not in allowed

    for granule, cap in sim.machine.memory.iter_tagged():
        if offending(cap):
            report.add(
                "revocation-guarantee",
                f"memory granule {granule} holds revoked cap to {cap.base:#x}",
            )
    revoker = sim.kernel.revoker
    for rf in revoker.register_files:
        for index, cap in rf.live_caps():
            if offending(cap):
                report.add(
                    "revocation-guarantee",
                    f"register {index} holds revoked cap to {cap.base:#x}",
                )
    for name, hoard in sim.kernel.hoards._hoards.items():
        for cap in hoard:
            if offending(cap):
                report.add(
                    "revocation-guarantee",
                    f"kernel hoard {name!r} holds revoked cap to {cap.base:#x}",
                )
