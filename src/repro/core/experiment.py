"""Experiment drivers: run workloads across strategies and compute the
overheads the paper's figures report.

Every comparison constructs the workload fresh per condition from a
factory with the same seed, so all conditions execute the identical
operation trace (the paper runs the same binary under every condition,
§5); the no-revocation baseline anchors the overhead ratios.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable

from repro.core.config import RevokerKind, SimulationConfig
from repro.core.metrics import RunResult
from repro.core.simulation import Simulation
from repro.workloads.base import Workload

#: A fresh-workload factory (workloads are stateful; one per run).
WorkloadFactory = Callable[[], Workload]

#: The conditions evaluated by the paper, in its figures' order.
ALL_KINDS: tuple[RevokerKind, ...] = (
    RevokerKind.NONE,
    RevokerKind.PAINT_SYNC,
    RevokerKind.CHERIVOKE,
    RevokerKind.CORNUCOPIA,
    RevokerKind.RELOADED,
)

#: Just the safety-providing strategies.
SAFETY_KINDS: tuple[RevokerKind, ...] = (
    RevokerKind.CHERIVOKE,
    RevokerKind.CORNUCOPIA,
    RevokerKind.RELOADED,
)


def run_experiment(
    workload: Workload | WorkloadFactory,
    kind: RevokerKind,
    config: SimulationConfig | None = None,
    snapshots=None,
) -> RunResult:
    """Run one workload under one strategy and return its metrics.

    ``snapshots`` (a :class:`~repro.snapshot.SnapshotPlan` or session)
    enables epoch-boundary checkpointing; see docs/SNAPSHOT.md.
    """
    if callable(workload) and not isinstance(workload, Workload):
        workload = workload()
    cfg = config if config is not None else SimulationConfig()
    cfg.revoker = kind
    return Simulation(workload, cfg).run(snapshots=snapshots)


def compare_strategies(
    factory: WorkloadFactory,
    kinds: Iterable[RevokerKind] = ALL_KINDS,
    config_factory: Callable[[], SimulationConfig] | None = None,
) -> dict[RevokerKind, RunResult]:
    """Run the same workload trace under each strategy."""
    results: dict[RevokerKind, RunResult] = {}
    for kind in kinds:
        cfg = config_factory() if config_factory is not None else SimulationConfig()
        results[kind] = run_experiment(factory, kind, cfg)
    return results


def overhead(test: float, baseline: float) -> float:
    """Fractional overhead of ``test`` relative to ``baseline``
    (0.10 means +10%)."""
    if baseline <= 0:
        return 0.0
    return test / baseline - 1.0


def wall_overhead(test: RunResult, baseline: RunResult) -> float:
    return overhead(test.wall_cycles, baseline.wall_cycles)


def cpu_overhead(test: RunResult, baseline: RunResult) -> float:
    return overhead(test.total_cpu_cycles, baseline.total_cpu_cycles)


def bus_overhead(test: RunResult, baseline: RunResult) -> float:
    return overhead(test.total_bus_transactions, baseline.total_bus_transactions)


def rss_ratio(test: RunResult, baseline: RunResult) -> float:
    if baseline.peak_rss_bytes <= 0:
        return 0.0
    return test.peak_rss_bytes / baseline.peak_rss_bytes


@dataclass
class BatchResult:
    """Multiple runs of one condition, aggregated the paper's way (§5.1:
    several executions per benchmark, sampling across randomization)."""

    kind: RevokerKind
    runs: list[RunResult]

    def _values(self, metric: Callable[[RunResult], float]) -> list[float]:
        return [metric(r) for r in self.runs]

    def mean(self, metric: Callable[[RunResult], float]) -> float:
        values = self._values(metric)
        return sum(values) / len(values)

    def stddev(self, metric: Callable[[RunResult], float]) -> float:
        values = self._values(metric)
        if len(values) < 2:
            return 0.0
        mu = sum(values) / len(values)
        return (sum((v - mu) ** 2 for v in values) / (len(values) - 1)) ** 0.5

    def mean_pm_std(self, metric: Callable[[RunResult], float]) -> tuple[float, float]:
        return self.mean(metric), self.stddev(metric)


def run_batches(
    seeded_factory: Callable[[int], Workload],
    kind: RevokerKind,
    seeds: Iterable[int] = (1, 2, 3, 4),
    config_factory: Callable[[], SimulationConfig] | None = None,
) -> BatchResult:
    """Run one condition across several seeds and aggregate.

    ``seeded_factory(seed)`` must build a fresh workload whose trace is a
    function of the seed — the sampling axis standing in for the paper's
    per-boot randomization (§5.1's four batches of four executions).
    """
    runs = []
    for seed in seeds:
        cfg = config_factory() if config_factory is not None else SimulationConfig()
        runs.append(run_experiment(seeded_factory(seed), kind, cfg))
    if not runs:
        raise ValueError("run_batches needs at least one seed")
    return BatchResult(kind, runs)
