"""The simulation orchestrator: boots a machine, installs a kernel and a
revocation strategy, wires the allocation stack, spawns the workload's
threads (plus the mrs controller), runs to completion, and collects a
:class:`~repro.core.metrics.RunResult`.

:class:`AppContext` is the API workloads program against. Its capability
load path implements the retry-on-fault loop: when the core delivers a
load-generation fault (Reloaded's barrier), the kernel handler sweeps the
page *on the application's own core* and the load re-runs — self-healing,
exactly as §4.3 describes — with the handler's cycles charged to the
application thread.
"""

from __future__ import annotations

from typing import Generator

from repro.alloc.baseline import BaselineShim
from repro.alloc.mrs import MrsShim
from repro.alloc.snmalloc import SnMalloc
from repro.core.config import RevokerKind, SimulationConfig
from repro.core.metrics import LatencySample, RunResult
from repro.errors import SimulationError
from repro.kernel.hoards import RegisterFile
from repro.kernel.kernel import Kernel
from repro.kernel.revoker import (
    CheriVokeRevoker,
    CornucopiaRevoker,
    PaintSyncRevoker,
    ReloadedRevoker,
)
from repro.machine.capability import Capability
from repro.machine.machine import Machine
from repro.machine.scheduler import Sleep, Thread, ThreadState
from repro.machine.trap import LoadGenerationFault
from repro.obs.tracer import TRACER
from repro.workloads.base import Workload

_REVOKER_CLASSES = {
    RevokerKind.PAINT_SYNC: PaintSyncRevoker,
    RevokerKind.CHERIVOKE: CheriVokeRevoker,
    RevokerKind.CORNUCOPIA: CornucopiaRevoker,
    RevokerKind.RELOADED: ReloadedRevoker,
}


class AppContext:
    """One application thread's view of the machine and allocator."""

    def __init__(self, sim: "Simulation", name: str, core_index: int) -> None:
        self.sim = sim
        self.name = name
        self.core = sim.machine.cores[core_index]
        self.slot = sim.machine.scheduler.cores[core_index]
        self.registers = RegisterFile()
        #: The run's SnapshotSession when checkpointing is on, else None.
        #: Workloads that support snapshots poll ``snapshot.due()`` at
        #: their work-unit boundary and park on ``snapshot.barrier``.
        self.snapshot = None
        sim.kernel.register_thread(self.registers)

    # --- Allocation ------------------------------------------------------------

    def malloc(self, nbytes: int) -> Generator:
        """Allocate ``nbytes``; returns a bounded capability."""
        cap = yield from self.sim.shim.malloc(self.core, self.slot, nbytes)
        return cap

    def free(self, cap: Capability) -> Generator:
        yield from self.sim.shim.free(self.core, self.slot, cap)

    # --- Memory ------------------------------------------------------------------

    def load_cap(self, cap: Capability) -> Generator:
        """Barriered capability load; returns the loaded capability or
        None for an untagged slot. Retries through load-generation faults,
        charging the foreground handler to this thread (§4.3)."""
        while True:
            try:
                result = self.core.load_cap(cap)
            except LoadGenerationFault as fault:
                yield self.sim.kernel.handle_lg_fault(self.core, fault)
                continue
            yield result.cycles
            return result.value

    def load_cap_inline(self, cap: Capability) -> tuple[Capability | None, int]:
        """Non-yielding variant of :meth:`load_cap` for hot workload loops:
        returns (value, cycles) so callers can batch several loads into one
        scheduler step. The cycle total includes any foreground fault
        handling, charged to this thread when the caller yields it."""
        cycles = 0
        while True:
            try:
                result = self.core.load_cap(cap)
            except LoadGenerationFault as fault:
                cycles += self.sim.kernel.handle_lg_fault(self.core, fault)
                continue
            return result.value, cycles + result.cycles

    def store_cap(self, dst: Capability, value: Capability) -> Generator:
        result = self.core.store_cap(dst, value)
        yield result.cycles

    def load_data(self, cap: Capability, nbytes: int) -> Generator:
        result = self.core.load_data(cap, nbytes)
        yield result.cycles

    def store_data(self, cap: Capability, nbytes: int) -> Generator:
        result = self.core.store_data(cap, nbytes)
        yield result.cycles

    def cap_activity(self, ptes: list) -> int:
        """Apply the MMU side effects of a burst of capability stores that
        happen *inside* a modelled compute block (used by server workloads
        whose per-transaction compute stands for work containing very many
        pointer writes — simulating each store individually would dominate
        the simulation). Marks each page capability-dirty, re-dirtying it
        if the current epoch's sweep already visited it (§4.2), exactly as
        the per-store barrier in Core.store_cap does. Returns a small
        cycle charge (the stores' real cost is part of the compute block).
        """
        for pte in ptes:
            pte.cap_dirty = True
            if pte.swept_this_epoch:
                pte.redirtied = True
        return 3 * len(ptes)

    # --- Time ----------------------------------------------------------------------

    def compute(self, cycles: int) -> Generator:
        """Burn CPU without touching memory."""
        yield cycles

    def idle(self, cycles: int) -> Generator:
        """Sleep off-CPU (inter-transaction think time)."""
        yield Sleep(cycles)

    def now(self) -> int:
        """This thread's current core clock."""
        return self.slot.time

    # --- Instrumentation ------------------------------------------------------------

    def record_latency(self, label: str, begin: int, end: int) -> None:
        self.sim.latencies.append(LatencySample(label, begin, end))

    def stash_in_kernel(self, subsystem: str, cap: Capability) -> int:
        """Hand a capability to a hoarding kernel subsystem (§4.4)."""
        return self.sim.kernel.hoards.stash(subsystem, cap)

    def retrieve_from_kernel(self, subsystem: str, ticket: int) -> Capability:
        return self.sim.kernel.hoards.retrieve(subsystem, ticket)


class Simulation:
    """One workload run under one configuration."""

    def __init__(self, workload: Workload, config: SimulationConfig | None = None) -> None:
        self.config = config if config is not None else SimulationConfig()
        self.config.validate()
        self.workload = workload
        mc = self.config.machine
        self.machine = Machine(
            memory_bytes=mc.memory_bytes,
            num_cores=mc.num_cores,
            costs=mc.costs,
            cache_bytes=mc.cache_bytes,
            quantum=mc.quantum,
        )
        self.kernel = Kernel(self.machine)
        self.alloc = SnMalloc(self.kernel)
        self.latencies: list[LatencySample] = []
        kind = self.config.revoker
        policy = self.config.policy
        if policy is None:
            policy = getattr(workload, "quarantine_policy", None)
        if kind is RevokerKind.NONE:
            if self.config.custom_revoker is not None:
                raise SimulationError("custom_revoker requires a non-NONE kind")
            self.shim: BaselineShim | MrsShim = BaselineShim(self.alloc)
            self.mrs: MrsShim | None = None
        else:
            revoker_cls = self.config.custom_revoker or _REVOKER_CLASSES[kind]
            self.kernel.install_revoker(revoker_cls)
            self.mrs = MrsShim(self.alloc, self.kernel, policy)
            self.shim = self.mrs
        self._ran = False
        # Snapshot plumbing. Contexts/threads are remembered so a restore
        # can pair fresh generators with their pickled Thread shells.
        self._snapshots = None
        self._contexts: list[AppContext] = []
        self._app_threads: list[Thread] = []
        self._controller_thread: Thread | None = None
        self._restored = False
        self._resumed = False

    # --- Thread placement ----------------------------------------------------------

    def _app_core_for(self, index: int) -> int:
        """App threads occupy app_core, app_core-1, ... (the paper pins
        gRPC's two server threads to cores 2 and 3)."""
        core = self.config.app_core - index
        if core < 0:
            raise SimulationError(
                f"not enough cores for app thread {index} (app_core="
                f"{self.config.app_core})"
            )
        return core

    # --- Run ---------------------------------------------------------------------------

    def run(self, snapshots=None) -> RunResult:
        """Run to completion. ``snapshots`` (a
        :class:`~repro.snapshot.SnapshotSession`, or a
        :class:`~repro.snapshot.SnapshotPlan` to build one from) enables
        checkpoint capture at epoch-close boundaries; see docs/SNAPSHOT.md.
        """
        if self._ran:
            raise SimulationError("a Simulation can only run once")
        self._ran = True
        sched = self.machine.scheduler
        if snapshots is not None:
            self._snapshots = self._build_session(snapshots)
        if TRACER.enabled and TRACER.clock is None:
            # Hooks that have no per-core clock (quarantine, epoch ticks)
            # stamp events with the scheduler's wall clock.
            TRACER.clock = sched.current_time

        for i, (name, body) in enumerate(self.workload.thread_bodies()):
            core_index = self._app_core_for(i)
            ctx = AppContext(self, name, core_index)
            ctx.snapshot = self._snapshots
            thread = sched.spawn(name, body(ctx), core_index, stops_for_stw=True)
            self._contexts.append(ctx)
            self._app_threads.append(thread)

        if self.mrs is not None:
            rc = self.config.revoker_core
            self._controller_thread = sched.spawn(
                "mrs-controller",
                self.mrs.controller(self.machine.cores[rc], sched.cores[rc]),
                rc,
                stops_for_stw=False,
            )
        return self._finish()

    def resume(self) -> RunResult:
        """Continue a simulation restored by
        :func:`repro.snapshot.restore_simulation` to completion. The
        resulting :class:`RunResult` is bit-identical to what the
        straight-through run returns (the determinism contract)."""
        from repro.errors import SnapshotError

        if not self._restored:
            raise SnapshotError(
                "resume() is only valid on a simulation restored from a "
                "checkpoint; use run() for a fresh simulation"
            )
        if self._resumed:
            raise SimulationError("a restored Simulation can only resume once")
        self._resumed = True
        # Release the app threads parked at the snapshot barrier, exactly
        # as the straight-through run does after capturing (at_time=0 is a
        # no-op on every wake floor, so both paths continue identically).
        self.machine.scheduler.signal(self._snapshots.barrier, at_time=0)
        return self._finish()

    def _finish(self) -> RunResult:
        """Drive the scheduler to application completion (capturing at
        quiescent points when snapshots are on), drain any in-flight
        epoch, and collect the result. Common tail of run() and resume()."""
        sched = self.machine.scheduler
        if self._snapshots is None:
            wall = sched.run(until=self._app_threads)
        else:
            wall = self._drive_snapshots()
        if self.mrs is not None and self.kernel.epoch.revoking:
            # The application exited mid-epoch; drain the revocation so
            # phase records and the epoch counter are complete. Wall time
            # stays at application completion (the paper's metric).
            sched.run_until_condition(lambda: not self.kernel.epoch.revoking)
        return self._collect(wall, self._app_threads, self._controller_thread)

    # --- Snapshots ---------------------------------------------------------------------

    def _build_session(self, snapshots):
        from repro.errors import SnapshotError
        from repro.snapshot.session import SnapshotPlan, SnapshotSession

        if isinstance(snapshots, SnapshotPlan):
            session = SnapshotSession(self, snapshots)
        elif isinstance(snapshots, SnapshotSession):
            session = snapshots
            if session.sim is not self:
                raise SnapshotError("SnapshotSession belongs to another simulation")
        else:
            raise SnapshotError(
                f"snapshots must be a SnapshotPlan or SnapshotSession, "
                f"got {type(snapshots).__name__}"
            )
        if not getattr(self.workload, "supports_snapshot", False):
            raise SnapshotError(
                f"workload {self.workload.name!r} does not support snapshots "
                f"(it keeps state in generator frames or speaks to external "
                f"processes); see Workload.supports_snapshot"
            )
        sched = self.machine.scheduler
        hooks = [sched.policy, sched.probe, sched.on_stw, self.kernel.epoch.on_transition]
        if self.mrs is not None:
            hooks += [self.mrs.quarantine.on_seal, self.mrs.quarantine.on_release]
        if any(h is not None for h in hooks):
            raise SnapshotError(
                "cannot snapshot with check-layer hooks installed (schedule "
                "policies, probes, and oracle callbacks are process objects "
                "a checkpoint cannot carry)"
            )
        return session

    def _snapshot_ready(self) -> bool:
        """Quiescent for capture: every app thread finished or parked at
        the snapshot barrier (at least one parked), and the mrs controller
        idle between epochs — blocked in ``revoke_requested.waiters``,
        which also proves no trigger is pending, so a fresh controller
        generator re-blocks identically after restore."""
        barrier = self._snapshots.barrier
        parked = 0
        for thread in self._app_threads:
            if thread.state is ThreadState.FINISHED:
                continue
            if thread.state is ThreadState.BLOCKED and thread in barrier.waiters:
                parked += 1
            else:
                return False
        if not parked:
            return False
        controller = self._controller_thread
        if controller is not None:
            if controller.state is not ThreadState.BLOCKED:
                return False
            if controller not in self.mrs.revoke_requested.waiters:
                return False
        return True

    def _capture_and_release(self) -> None:
        from repro.snapshot.capture import capture_simulation

        session = self._snapshots
        # Advance the cadence BEFORE pickling: the checkpoint and the
        # continuing run must agree on when the next capture is due.
        session.mark_captured()
        blob, header = capture_simulation(self)
        session.deliver(blob, header)
        self.machine.scheduler.signal(session.barrier, at_time=0)

    def _drive_snapshots(self) -> int:
        """Like ``sched.run(until=app_threads)``, but pause at snapshot
        quiescence to capture. Wall-clock equivalence: both loops check
        for completion before each pick and return ``current_time()``."""
        sched = self.machine.scheduler

        def app_done() -> bool:
            return all(
                t.state is ThreadState.FINISHED for t in self._app_threads
            )

        while True:
            wall = sched.run_until_condition(
                lambda: app_done() or self._snapshot_ready(),
                max_steps=500_000_000,
            )
            if app_done():
                return wall
            self._capture_and_release()

    # --- Metrics -----------------------------------------------------------------------

    def _collect(
        self,
        wall: int,
        app_threads: list[Thread],
        controller: Thread | None,
    ) -> RunResult:
        result = RunResult(workload=self.workload.name, revoker=self.config.revoker)
        result.wall_cycles = wall
        result.app_cpu_cycles = sum(t.busy_cycles for t in app_threads)
        by_core: dict[str, int] = {}
        for thread in self.machine.scheduler.threads:
            name = self.machine.cores[thread.core.index].name
            by_core[name] = by_core.get(name, 0) + thread.busy_cycles
        result.cpu_cycles_by_core = by_core
        result.bus_by_source = self.machine.bus.snapshot()
        result.peak_rss_bytes = self.kernel.address_space.peak_rss_bytes
        result.stw_pauses = [r.duration for r in self.machine.scheduler.stw_records]
        result.latencies = list(self.latencies)

        revoker = self.kernel.revoker
        if revoker is not None:
            result.epoch_records = list(revoker.records)
            result.revocations = self.kernel.epoch.completed
            result.caps_revoked = revoker.total_caps_revoked()
            result.pages_swept = revoker.total_pages_swept()
            if isinstance(revoker, _REVOKER_CLASSES[RevokerKind.RELOADED]):
                result.foreground_faults = revoker.foreground_faults
                result.spurious_faults = revoker.spurious_faults
        if self.mrs is not None:
            samples = self.mrs.sampled_alloc_bytes
            result.mean_alloc_bytes = (sum(samples) / len(samples)) if samples else float(
                self.alloc.allocated_bytes
            )
            result.sum_freed_bytes = self.mrs.quarantine.lifetime_bytes
            qsamples = self.mrs.quarantine.sampled_bytes
            result.mean_quarantine_bytes = (
                sum(qsamples) / len(qsamples) if qsamples else 0.0
            )
            result.blocked_operations = self.mrs.blocked_operations
        else:
            result.sum_freed_bytes = self.alloc.total_freed_bytes
            result.mean_alloc_bytes = float(self.alloc.allocated_bytes)
        if TRACER.enabled:
            self._fold_metrics(result)
        return result

    def _fold_metrics(self, result: RunResult) -> None:
        """Fold per-epoch accounting into the tracer's registry and
        snapshot it onto the result (observability runs only)."""
        registry = TRACER.metrics
        for record in result.epoch_records:
            registry.histogram("epoch/stw_cycles").observe(record.stw_cycles())
            registry.histogram("epoch/concurrent_cycles").observe(
                record.concurrent_cycles()
            )
            registry.histogram("epoch/fault_cycles").observe(record.fault_cycles)
            registry.histogram("epoch/pages_swept").observe(record.pages_swept)
            registry.histogram("epoch/caps_revoked").observe(record.caps_revoked)
            registry.counter("epochs/faults").inc(record.fault_count)
        for pause in result.stw_pauses:
            registry.histogram("stw/pause_cycles").observe(pause)
        for core in self.machine.cores:
            registry.counter(f"cache/{core.name}/hits").inc(core.cache.hits)
            registry.counter(f"cache/{core.name}/misses").inc(core.cache.misses)
        registry.counter("bus/transactions").inc(
            self.machine.bus.total_transactions()
        )
        result.metrics = registry.to_dict()
