"""Configuration for simulations: machine shape, strategy, policy.

The defaults mirror the paper's methodology (§5): a four-core machine
with the application pinned to core 3, the revocation controller thread
pinned to core 2, and the mrs quarantine policy of one quarter of the
total heap with an 8 MiB floor.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.alloc.quarantine import QuarantinePolicy
from repro.errors import ConfigError
from repro.machine.costs import CostModel, default_cost_model
from repro.machine.scheduler import DEFAULT_QUANTUM


class RevokerKind(enum.Enum):
    """The five evaluated conditions (§5)."""

    #: No temporal safety, no quarantine: plain snmalloc (the baseline).
    NONE = "none"
    #: Quarantine machinery without revocation passes; no safety (§5).
    PAINT_SYNC = "paint+sync"
    #: Fully stop-the-world sweeps (§2.2.1).
    CHERIVOKE = "cherivoke"
    #: Concurrent sweep + re-dirty stop-the-world (§2.2.5).
    CORNUCOPIA = "cornucopia"
    #: Load-barrier revocation — the paper's contribution (§3-4).
    RELOADED = "reloaded"

    @property
    def provides_safety(self) -> bool:
        return self in (
            RevokerKind.CHERIVOKE,
            RevokerKind.CORNUCOPIA,
            RevokerKind.RELOADED,
        )


@dataclass
class MachineConfig:
    """Shape of the simulated Morello-like machine (§2.1.1)."""

    memory_bytes: int = 256 << 20
    num_cores: int = 4
    cache_bytes: int = 1 << 20
    quantum: int = DEFAULT_QUANTUM
    costs: CostModel = field(default_factory=default_cost_model)

    def validate(self) -> None:
        if self.num_cores < 1:
            raise ConfigError("num_cores must be >= 1")
        if self.memory_bytes < (1 << 20):
            raise ConfigError("memory_bytes unreasonably small")


@dataclass
class SimulationConfig:
    """One simulation run's full configuration."""

    revoker: RevokerKind = RevokerKind.RELOADED
    machine: MachineConfig = field(default_factory=MachineConfig)
    #: None means: use the workload's recommended policy if it has one
    #: (scaled workloads scale the 8 MiB quarantine floor with their
    #: heaps), else the paper defaults.
    policy: QuarantinePolicy | None = None
    #: Core index for the first application thread; additional threads
    #: take successively lower indices (the paper pins the app to core 3).
    app_core: int = 3
    #: Core for the revocation controller thread (paper: core 2). Set to
    #: an app core to model the unpinned gRPC contention regime (§5.3).
    revoker_core: int = 2
    #: Override the revoker implementation class (extensions such as
    #: MultithreadReloadedRevoker or CheriotRevoker); ``revoker`` must not
    #: be NONE. None selects the strategy from ``revoker``.
    custom_revoker: type | None = None

    def validate(self) -> None:
        self.machine.validate()
        if not 0 <= self.app_core < self.machine.num_cores:
            raise ConfigError(f"app_core {self.app_core} out of range")
        if not 0 <= self.revoker_core < self.machine.num_cores:
            raise ConfigError(f"revoker_core {self.revoker_core} out of range")
