"""The public API: configuration, simulation, metrics, experiments."""

from repro.core.config import MachineConfig, RevokerKind, SimulationConfig
from repro.core.experiment import (
    ALL_KINDS,
    SAFETY_KINDS,
    bus_overhead,
    compare_strategies,
    cpu_overhead,
    overhead,
    rss_ratio,
    run_experiment,
    wall_overhead,
)
from repro.core.metrics import LatencySample, RunResult
from repro.core.simulation import AppContext, Simulation
from repro.core.validate import ValidationReport, Violation, check_invariants

# Re-exported for convenience: the quarantine policy is part of the
# configuration surface.
from repro.alloc.quarantine import QuarantinePolicy

__all__ = [
    "ALL_KINDS",
    "AppContext",
    "LatencySample",
    "MachineConfig",
    "QuarantinePolicy",
    "RevokerKind",
    "RunResult",
    "SAFETY_KINDS",
    "Simulation",
    "SimulationConfig",
    "ValidationReport",
    "Violation",
    "bus_overhead",
    "compare_strategies",
    "cpu_overhead",
    "overhead",
    "rss_ratio",
    "check_invariants",
    "run_experiment",
    "wall_overhead",
]
