"""Run metrics: everything the paper's evaluation reports.

The paper names four key overheads of CHERIvoke-style revocation (§5):
wall-clock time, CPU time, bus accesses, and memory occupancy. A
:class:`RunResult` carries all four plus the latency and phase-timing
detail behind figures 7-9 and tables 1-2.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.core.config import RevokerKind
from repro.kernel.revoker.base import EpochRecord
from repro.machine.costs import cycles_to_millis, cycles_to_seconds


@dataclass
class LatencySample:
    """One completed unit of work (a pgbench transaction, a gRPC RPC)."""

    label: str
    begin: int
    end: int

    @property
    def cycles(self) -> int:
        return self.end - self.begin

    @property
    def millis(self) -> float:
        return cycles_to_millis(self.cycles)


@dataclass
class RunResult:
    """Everything measured in one simulation run."""

    workload: str
    revoker: RevokerKind
    #: Elapsed simulated cycles (the paper's wall-clock time).
    wall_cycles: int = 0
    #: Busy cycles per core name (pmcstat-style per-core CPU time).
    cpu_cycles_by_core: dict[str, int] = field(default_factory=dict)
    #: Busy cycles of the application thread(s) alone.
    app_cpu_cycles: int = 0
    #: Memory bus transactions per source (core name).
    bus_by_source: dict[str, int] = field(default_factory=dict)
    #: Peak resident set, bytes (fig. 3's metric).
    peak_rss_bytes: int = 0
    #: Stop-the-world pause durations, cycles, in order (fig. 9).
    stw_pauses: list[int] = field(default_factory=list)
    #: Per-epoch revocation detail (phases, faults, sweep counts).
    epoch_records: list[EpochRecord] = field(default_factory=list)
    #: Completed transactions / requests with their latencies (figs. 7-8).
    latencies: list[LatencySample] = field(default_factory=list)
    #: Observability fold: the run's :class:`~repro.obs.metrics.MetricsRegistry`
    #: snapshot (``counters`` + ``histograms``), populated only when the
    #: tracer was enabled for the run; empty otherwise. Plain JSON-able
    #: data so results round-trip through the campaign cache unchanged.
    metrics: dict[str, Any] = field(default_factory=dict)

    # Allocator / quarantine statistics (table 2).
    revocations: int = 0
    mean_alloc_bytes: float = 0.0
    sum_freed_bytes: int = 0
    mean_quarantine_bytes: float = 0.0
    blocked_operations: int = 0
    foreground_faults: int = 0
    spurious_faults: int = 0
    caps_revoked: int = 0
    pages_swept: int = 0

    # --- Derived metrics -----------------------------------------------------

    @property
    def total_cpu_cycles(self) -> int:
        """CPU time across every core (the paper's fig. 2 metric)."""
        return sum(self.cpu_cycles_by_core.values())

    @property
    def total_bus_transactions(self) -> int:
        return sum(self.bus_by_source.values())

    @property
    def wall_seconds(self) -> float:
        return cycles_to_seconds(self.wall_cycles)

    @property
    def freed_to_alloc_ratio(self) -> float:
        """Table 2's F:A column."""
        if self.mean_alloc_bytes <= 0:
            return 0.0
        return self.sum_freed_bytes / self.mean_alloc_bytes

    @property
    def revocations_per_second(self) -> float:
        seconds = self.wall_seconds
        return self.revocations / seconds if seconds > 0 else 0.0

    @property
    def total_fault_cycles(self) -> int:
        return sum(r.fault_cycles for r in self.epoch_records)

    def latency_cycles(self) -> list[int]:
        return [s.cycles for s in self.latencies]

    def max_stw_pause_ms(self) -> float:
        return cycles_to_millis(max(self.stw_pauses)) if self.stw_pauses else 0.0

    def summary(self) -> str:
        """One-line human summary, for examples and quick looks."""
        return (
            f"{self.workload}/{self.revoker.value}: "
            f"wall={self.wall_seconds:.3f}s cpu={cycles_to_seconds(self.total_cpu_cycles):.3f}s "
            f"bus={self.total_bus_transactions} rss={self.peak_rss_bytes >> 20}MiB "
            f"revocations={self.revocations} "
            f"max_pause={self.max_stw_pause_ms():.3f}ms"
        )
