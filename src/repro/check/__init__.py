"""Schedule exploration and temporal-safety oracles (docs/CHECKING.md).

The paper's correctness story (§2.2.3, §3) is a story about *orderings*:
the epoch counter's begin/end transitions, the stop-the-world rendezvous,
and quarantine release must interleave safely under any scheduling of
mutator and revoker threads. The cooperative :class:`repro.machine
.scheduler.Scheduler` normally exercises exactly one interleaving — the
one its round-robin tie-break happens to produce. This package explores
the others:

- :mod:`repro.check.policy` — pluggable schedule policies (seeded random,
  PCT-style priority, recorded-trace replay) that resolve the scheduler's
  choice among (near-)equal-time candidate cores and journal every pick;
- :mod:`repro.check.oracle` — invariant checkers probing the scheduler,
  epoch clock, and quarantine after every step;
- :mod:`repro.check.scenarios` — small named workload/machine rigs sized
  for thousands of runs;
- :mod:`repro.check.explorer` — the seeded exploration driver plus the
  cross-revoker differential check;
- :mod:`repro.check.replay` — violation artifacts, trace minimization,
  and deterministic replay.

CLI: ``python -m repro check --seed-range 0:500 --scenario churn-small``
and ``python -m repro check replay <artifact.json>``.
"""

from repro.check.explorer import ExplorationReport, Explorer, SeedResult
from repro.check.oracle import Oracle, OracleSuite, Violation, default_oracles
from repro.check.policy import (
    PCTPolicy,
    RandomPolicy,
    ReplayPolicy,
    RoundRobinPolicy,
    SchedulePolicy,
    make_policy,
)
from repro.check.replay import (
    ViolationArtifact,
    build_artifact,
    minimize_trace,
    replay_artifact,
)
from repro.check.scenarios import SCENARIOS, Scenario, scenario

__all__ = [
    "ExplorationReport",
    "Explorer",
    "Oracle",
    "OracleSuite",
    "PCTPolicy",
    "RandomPolicy",
    "ReplayPolicy",
    "RoundRobinPolicy",
    "SCENARIOS",
    "Scenario",
    "SchedulePolicy",
    "SeedResult",
    "Violation",
    "ViolationArtifact",
    "build_artifact",
    "default_oracles",
    "make_policy",
    "minimize_trace",
    "replay_artifact",
    "scenario",
]
