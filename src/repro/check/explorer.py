"""The schedule-exploration driver.

An :class:`Explorer` runs one :class:`~repro.check.scenarios.Scenario`
many times, each under a differently-seeded schedule policy, with the
full oracle suite attached; every run yields a :class:`SeedResult`
carrying the policy's choice journal, so any violation is replayable
choice for choice (:mod:`repro.check.replay`).

The cross-revoker differential check rides along: under the
deterministic round-robin policy the same workload seed is run twice per
revocation strategy (the pair must be bit-identical — any divergence is
hidden nondeterminism) and the final states are compared across
strategies. The workload's
logical trace (iterations, malloc/free counts, live bytes, bytes freed)
must agree across *all* strategies — the paper's same-binary methodology
— while the tag-level memory fingerprint is compared among the
safety-providing trio (cherivoke/cornucopia/reloaded agree granule for
granule only when their release schedules coincide, so tag identity is
checked pairwise only where the allocation address traces match;
paint+sync never sweeps and is excluded from tag comparison by design).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

import numpy as np

from repro.check.oracle import Oracle, OracleSuite, Violation, default_oracles
from repro.check.policy import SchedulePolicy, make_policy
from repro.check.scenarios import Scenario, scenario as lookup_scenario
from repro.core.config import RevokerKind
from repro.core.simulation import Simulation

#: Strategies the differential check runs (everything that quarantines).
DIFFERENTIAL_KINDS = (
    RevokerKind.PAINT_SYNC,
    RevokerKind.CHERIVOKE,
    RevokerKind.CORNUCOPIA,
    RevokerKind.RELOADED,
)

#: Fingerprint fields that must agree across *all* strategies.
_TRACE_FIELDS = (
    "iterations",
    "malloc_calls",
    "free_calls",
    "allocated_bytes",
    "lifetime_freed_bytes",
)


@dataclass
class SeedResult:
    """One explored schedule: its policy, its choices, its verdict."""

    seed: int
    policy: dict
    journal: list[int]
    steps: int
    wall: int
    violations: list[Violation]

    @property
    def ok(self) -> bool:
        return not self.violations


@dataclass
class ExplorationReport:
    """Everything one ``repro check`` exploration produced."""

    scenario: str
    revoker: str
    workload_seed: int
    results: list[SeedResult] = field(default_factory=list)
    differential: list[Violation] = field(default_factory=list)

    @property
    def failures(self) -> list[SeedResult]:
        return [r for r in self.results if not r.ok]

    @property
    def total_violations(self) -> int:
        return sum(len(r.violations) for r in self.results) + len(self.differential)

    @property
    def ok(self) -> bool:
        return self.total_violations == 0

    def summary(self) -> str:
        lines = [
            f"scenario {self.scenario} / revoker {self.revoker}: "
            f"{len(self.results)} schedules explored, "
            f"{len(self.failures)} failing, "
            f"{self.total_violations} violations"
        ]
        for result in self.failures:
            for violation in result.violations:
                lines.append(f"  seed {result.seed}: {violation}")
        for violation in self.differential:
            lines.append(f"  differential: {violation}")
        return "\n".join(lines)


def memory_fingerprint(sim: Simulation) -> dict:
    """Hashable final-state summary of one finished simulation."""
    memory = sim.machine.memory
    tagged = np.flatnonzero(memory.tags)
    bases = memory.cap_bases[tagged]
    workload = sim.workload
    return {
        "iterations": getattr(workload, "iterations_run", None),
        "malloc_calls": sim.alloc.malloc_calls,
        "free_calls": sim.alloc.free_calls,
        "allocated_bytes": sim.alloc.allocated_bytes,
        "lifetime_freed_bytes": (
            sim.mrs.quarantine.lifetime_bytes
            if sim.mrs is not None
            else sim.alloc.total_freed_bytes
        ),
        "tag_count": int(tagged.size),
        "tag_digest": hashlib.sha256(tagged.tobytes()).hexdigest()[:16],
        "base_digest": hashlib.sha256(bases.tobytes()).hexdigest()[:16],
        "alloc_trace_digest": _alloc_trace_digest(sim),
    }


def _alloc_trace_digest(sim: Simulation) -> str:
    """Digest of the allocation *address* trace (requires the simulation
    to have run with ``sim.alloc.trace_addresses = []``). Two strategies
    with the same digest placed every object identically, so their final
    tag state is directly comparable."""
    trace = sim.alloc.trace_addresses
    if trace is None:
        return "untraced"
    h = hashlib.sha256()
    for addr in trace:
        h.update(addr.to_bytes(8, "little"))
    return h.hexdigest()[:16]


class Explorer:
    """Seed-sweeping exploration of one scenario under one revoker."""

    def __init__(
        self,
        scenario: Scenario | str,
        revoker: RevokerKind = RevokerKind.RELOADED,
        policy_kind: str = "random",
        window: int = 0,
        workload_seed: int = 0,
        oracle_factory: Callable[[], list[Oracle]] = default_oracles,
    ) -> None:
        self.scenario = (
            lookup_scenario(scenario) if isinstance(scenario, str) else scenario
        )
        self.revoker = revoker
        self.policy_kind = policy_kind
        self.window = window
        self.workload_seed = workload_seed
        self.oracle_factory = oracle_factory

    def run_seed(
        self, seed: int, policy: SchedulePolicy | None = None
    ) -> SeedResult:
        """One simulation under one schedule, oracles attached."""
        if policy is None:
            policy = make_policy(self.policy_kind, seed=seed, window=self.window)
        sim = self.scenario.build(self.workload_seed, self.revoker)
        sim.machine.scheduler.policy = policy
        suite = OracleSuite(self.oracle_factory())
        suite.bind(sim)
        sim.run()
        suite.finish()
        return SeedResult(
            seed=seed,
            policy=policy.describe(),
            journal=list(policy.journal),
            steps=suite.steps,
            wall=sim.machine.scheduler.current_time(),
            violations=suite.violations,
        )

    def explore(
        self,
        seeds: Iterable[int],
        differential: bool = True,
        progress: Callable[[SeedResult], None] | None = None,
    ) -> ExplorationReport:
        """Sweep ``seeds``; optionally run the cross-revoker differential."""
        report = ExplorationReport(
            scenario=self.scenario.name,
            revoker=self.revoker.value,
            workload_seed=self.workload_seed,
        )
        for seed in seeds:
            result = self.run_seed(seed)
            report.results.append(result)
            if progress is not None:
                progress(result)
        if differential:
            report.differential = self.run_differential()
        return report

    def _fingerprint_run(self, kind: RevokerKind) -> dict:
        sim = self.scenario.build(self.workload_seed, kind)
        sim.machine.scheduler.policy = make_policy("round-robin")
        sim.alloc.trace_addresses = []
        sim.run()
        return memory_fingerprint(sim)

    def run_differential(
        self, kinds: Sequence[RevokerKind] = DIFFERENTIAL_KINDS
    ) -> list[Violation]:
        """Run the workload seed once per strategy under the deterministic
        round-robin schedule and compare final states (docstring above for
        what must agree with what)."""
        violations: list[Violation] = []
        prints: dict[RevokerKind, dict] = {}
        for kind in kinds:
            first = self._fingerprint_run(kind)
            second = self._fingerprint_run(kind)
            for fld, value in first.items():
                if second[fld] != value:
                    violations.append(
                        Violation(
                            "differential",
                            f"{kind.value} is nondeterministic: {fld} = "
                            f"{value} then {second[fld]} on identical runs",
                            step=0,
                            wall=0,
                        )
                    )
            prints[kind] = first
        reference_kind = kinds[0]
        reference = prints[reference_kind]
        for kind in kinds[1:]:
            for fld in _TRACE_FIELDS:
                if prints[kind][fld] != reference[fld]:
                    violations.append(
                        Violation(
                            "differential",
                            f"{fld} diverges: {reference_kind.value}="
                            f"{reference[fld]} vs {kind.value}={prints[kind][fld]}",
                            step=0,
                            wall=0,
                        )
                    )
        safety = [k for k in kinds if k.provides_safety]
        for i, a in enumerate(safety):
            for b in safety[i + 1:]:
                pa, pb = prints[a], prints[b]
                if pa["alloc_trace_digest"] != pb["alloc_trace_digest"]:
                    continue  # different placement: tag states incomparable
                for fld in ("tag_count", "tag_digest", "base_digest"):
                    if pa[fld] != pb[fld]:
                        violations.append(
                            Violation(
                                "differential",
                                f"same allocation trace but {fld} diverges: "
                                f"{a.value}={pa[fld]} vs {b.value}={pb[fld]}",
                                step=0,
                                wall=0,
                            )
                        )
        return violations
