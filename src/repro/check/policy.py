"""Schedule policies: who runs when the scheduler could pick several.

The scheduler's only nondeterminism-shaped decision is in ``_pick``: when
several cores' queue heads are eligible at the same effective time (or
within ``window`` cycles of the minimum — bounded clock drift, exactly
what real loosely-synchronized cores exhibit), *something* has to break
the tie. The hard-wired rule is "first core wins"; a policy replaces it.

Every policy journals each pick (the index it chose among the candidate
list) into :attr:`SchedulePolicy.journal`, so any run can be replayed
choice for choice by :class:`ReplayPolicy` — the substrate for violation
artifacts and trace minimization (:mod:`repro.check.replay`).

Determinism contract: a policy constructed with the same arguments must
make the same choices given the same candidate sequences. All randomness
comes from a private seeded :class:`random.Random`.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Sequence

from repro.errors import ConfigError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.machine.scheduler import CoreSlot


class SchedulePolicy:
    """Base policy: journaling plus the default first-candidate choice.

    ``window`` widens the candidate set: cores whose effective time is
    within ``window`` cycles of the minimum are offered too. 0 restricts
    choice to exact ties, which cannot perturb simulated timings by more
    than the tie itself.
    """

    #: Short name used by artifacts and the CLI.
    kind = "round-robin"

    def __init__(self, window: int = 0) -> None:
        if window < 0:
            raise ConfigError(f"policy window must be >= 0, got {window}")
        self.window = window
        #: One entry per choice point: the chosen candidate index.
        self.journal: list[int] = []

    def choose(self, candidates: "Sequence[CoreSlot]") -> int:
        index = self._select(candidates)
        if not 0 <= index < len(candidates):
            raise ConfigError(
                f"{self.kind} policy chose {index} of {len(candidates)} candidates"
            )
        self.journal.append(index)
        return index

    def _select(self, candidates: "Sequence[CoreSlot]") -> int:
        return 0

    def describe(self) -> dict:
        """Constructor arguments, for violation artifacts."""
        return {"kind": self.kind, "window": self.window}


class RoundRobinPolicy(SchedulePolicy):
    """The historical tie-break, as a policy: always the first candidate.

    With ``window=0`` this reproduces the policy-free scheduler bit for
    bit (pinned by ``tests/test_check.py``); it exists so the explorer can
    include the deterministic baseline schedule in a seed sweep and so
    differential runs have a schedule that is identical across revokers.
    """

    kind = "round-robin"


class RandomPolicy(SchedulePolicy):
    """Uniform seeded choice among the candidates."""

    kind = "random"

    def __init__(self, seed: int, window: int = 0) -> None:
        super().__init__(window)
        self.seed = seed
        self._rng = random.Random(seed)

    def _select(self, candidates: "Sequence[CoreSlot]") -> int:
        return self._rng.randrange(len(candidates))

    def describe(self) -> dict:
        return {"kind": self.kind, "window": self.window, "seed": self.seed}


class PCTPolicy(SchedulePolicy):
    """PCT-style priority scheduling (Burckhardt et al., ASPLOS 2010).

    Each core draws a random priority; the highest-priority candidate
    wins every choice. At ``depth`` randomly pre-drawn choice points the
    winning core's priority is demoted below everything else — the
    priority-change events that let PCT hit ordering bugs of depth *d*
    with probability ≥ 1/(n·k^(d-1)). Choice points (not steps) index the
    change points so the schedule depends only on decisions actually
    offered to the policy.
    """

    kind = "pct"

    def __init__(
        self,
        seed: int,
        window: int = 0,
        depth: int = 3,
        horizon: int = 4096,
    ) -> None:
        super().__init__(window)
        if depth < 0:
            raise ConfigError(f"pct depth must be >= 0, got {depth}")
        self.seed = seed
        self.depth = depth
        self.horizon = horizon
        self._rng = random.Random(seed)
        self._priorities: dict[int, float] = {}
        self._change_points = frozenset(
            self._rng.randrange(max(1, horizon)) for _ in range(depth)
        )
        self._choices = 0

    def _priority(self, core_index: int) -> float:
        prio = self._priorities.get(core_index)
        if prio is None:
            prio = self._rng.random()
            self._priorities[core_index] = prio
        return prio

    def _select(self, candidates: "Sequence[CoreSlot]") -> int:
        best_index = max(
            range(len(candidates)),
            key=lambda i: self._priority(candidates[i].index),
        )
        if self._choices in self._change_points:
            # Demote the winner below every current priority.
            floor = min(self._priorities.values(), default=0.0)
            self._priorities[candidates[best_index].index] = floor - 1.0
        self._choices += 1
        return best_index

    def describe(self) -> dict:
        return {
            "kind": self.kind,
            "window": self.window,
            "seed": self.seed,
            "depth": self.depth,
            "horizon": self.horizon,
        }


class ReplayPolicy(SchedulePolicy):
    """Replay a recorded choice journal, defaulting to 0 past its end.

    Out-of-range recorded choices (possible when a minimizer edited the
    trace and the candidate sets shifted) are clamped rather than
    rejected: minimization only needs the violation to still fire, not
    the exact original schedule.
    """

    kind = "replay"

    def __init__(self, trace: Sequence[int], window: int = 0) -> None:
        super().__init__(window)
        self.trace = list(trace)
        self._cursor = 0

    def _select(self, candidates: "Sequence[CoreSlot]") -> int:
        if self._cursor >= len(self.trace):
            return 0
        choice = self.trace[self._cursor]
        self._cursor += 1
        return min(max(choice, 0), len(candidates) - 1)

    def describe(self) -> dict:
        return {"kind": self.kind, "window": self.window, "trace": self.trace}


def make_policy(kind: str, seed: int = 0, window: int = 0, **kwargs) -> SchedulePolicy:
    """Policy factory used by the CLI and the explorer."""
    if kind == "round-robin":
        return RoundRobinPolicy(window)
    if kind == "random":
        return RandomPolicy(seed, window)
    if kind == "pct":
        return PCTPolicy(seed, window, **kwargs)
    raise ConfigError(
        f"unknown schedule policy {kind!r}; choose from: round-robin, random, pct"
    )
