"""Named checking scenarios: small rigs sized for hundreds of runs.

A scenario bundles a seeded workload factory with a machine shape tuned
for exploration (a few MiB of memory so numpy granule arrays stay tiny,
aggressive quarantine floors so revocation epochs actually happen within
a short run). Exploration sweeps one scenario across many schedule seeds;
the workload seed stays fixed per simulation seed so that any schedule
divergence is the scheduler's doing, not the workload's.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Generator

from repro.alloc.quarantine import QuarantinePolicy
from repro.core.config import MachineConfig, RevokerKind, SimulationConfig
from repro.core.simulation import Simulation
from repro.errors import ConfigError
from repro.workloads.base import Workload
from repro.workloads.churn import ChurnProfile, ChurnWorkload, SizeMix

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.simulation import AppContext


@dataclass(frozen=True)
class Scenario:
    """A named (workload factory, machine shape) rig for checking runs."""

    name: str
    description: str
    make_workload: Callable[[int], Workload]
    memory_bytes: int = 4 << 20
    num_cores: int = 4

    def config(self, revoker: RevokerKind = RevokerKind.RELOADED) -> SimulationConfig:
        return SimulationConfig(
            revoker=revoker,
            machine=MachineConfig(
                memory_bytes=self.memory_bytes, num_cores=self.num_cores
            ),
        )

    def build(
        self,
        workload_seed: int,
        revoker: RevokerKind = RevokerKind.RELOADED,
    ) -> Simulation:
        """A fresh simulation of this scenario (one run's worth)."""
        return Simulation(self.make_workload(workload_seed), self.config(revoker))


def _churn(
    heap_bytes: int, churn_bytes: int, quarantine_floor: int
) -> Callable[[int], Workload]:
    def make(seed: int) -> Workload:
        profile = ChurnProfile(
            name="check-churn",
            heap_bytes=heap_bytes,
            churn_bytes=churn_bytes,
            size_mix=SizeMix((64, 256, 1024), (0.5, 0.3, 0.2)),
            pointer_slots=2,
            seed=seed,
        )
        return ChurnWorkload(profile, QuarantinePolicy(min_bytes=quarantine_floor))

    return make


class SleeperWorkload(Workload):
    """Two threads interleaving tiny allocator bursts with seeded idle
    gaps of widely varying length — plus a pure-sleeper helper thread
    sharing thread 0's core, so one core routinely holds *several*
    sleepers with unordered wake times at once. That is the population
    the wake-order oracle (and the sleeper-promotion ordering bugfix it
    pins) exists for. Frees are small but the quarantine floor below is
    smaller, so revocation epochs still happen.
    """

    name = "sleepers"
    quarantine_policy = QuarantinePolicy(min_bytes=2 << 10)

    def __init__(self, seed: int, rounds: int = 120) -> None:
        self.seed = seed
        self.rounds = rounds

    def thread_bodies(self):
        return [
            ("sleeper-0", self._body(0)),
            ("sleeper-1", self._body(1)),
        ]

    def _helper(self) -> Generator:
        from repro.machine.scheduler import Sleep

        rng = random.Random(self.seed * 7 + 13)
        for _ in range(self.rounds):
            yield rng.randrange(100, 1_500)
            yield Sleep(rng.randrange(100, 20_000))

    def _body(self, index: int):
        def run(ctx: "AppContext") -> Generator:
            rng = random.Random(self.seed * 1_000_003 + index)
            if index == 0:
                # A co-resident sleeper on this very core: promotions of
                # two sleepers in one decision need a shared core.
                ctx.sim.machine.scheduler.spawn(
                    "sleeper-helper", self._helper(), ctx.slot.index
                )
            caps = []
            for round_no in range(self.rounds):
                cap = yield from ctx.malloc(64 + 16 * (round_no % 4))
                caps.append(cap)
                if len(caps) > 4:
                    yield from ctx.free(caps.pop(0))
                yield from ctx.compute(rng.randrange(200, 2_000))
                yield from ctx.idle(rng.randrange(100, 20_000))
            for cap in caps:
                yield from ctx.free(cap)

        return run


SCENARIOS: dict[str, Scenario] = {
    s.name: s
    for s in (
        Scenario(
            name="churn-small",
            description=(
                "96 KiB heap churning 512 KiB with a 16 KiB quarantine "
                "floor; several revocation epochs per run"
            ),
            make_workload=_churn(96 << 10, 512 << 10, 16 << 10),
        ),
        Scenario(
            name="churn-tiny",
            description=(
                "48 KiB heap churning 192 KiB with an 8 KiB quarantine "
                "floor; the fastest useful rig"
            ),
            make_workload=_churn(48 << 10, 192 << 10, 8 << 10),
            memory_bytes=2 << 20,
        ),
        Scenario(
            name="sleepers",
            description=(
                "two threads with seeded idle gaps, one sharing the "
                "controller's core; exercises sleeper promotion and the "
                "stop-the-world hold/floor discipline"
            ),
            make_workload=SleeperWorkload,
            memory_bytes=2 << 20,
        ),
    )
}


def scenario(name: str) -> Scenario:
    """Look up a scenario by name, with a helpful error."""
    try:
        return SCENARIOS[name]
    except KeyError:
        raise ConfigError(
            f"unknown scenario {name!r}; choose from: "
            + ", ".join(sorted(SCENARIOS))
        ) from None
