"""Violation artifacts: persist, minimize, and replay a failing schedule.

A :class:`ViolationArtifact` captures everything needed to re-run one
failing interleaving deterministically: the scenario, revoker, workload
seed, and the policy's recorded choice journal. Replaying is just the
same simulation under :class:`~repro.check.policy.ReplayPolicy`, so the
artifact stays valid as long as the scenario exists.

Minimization shrinks the journal before it is saved: first a binary
search for the shortest violating prefix (past the journal's end the
replay policy falls back to first-candidate, so prefixes are meaningful
schedules), then a greedy pass zeroing individual choices. Both steps
only require that *a* violation still fires, not the exact original one
— the shrunken schedule is often a cleaner witness than the original.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Sequence

from repro.check.explorer import Explorer, SeedResult
from repro.check.policy import ReplayPolicy
from repro.core.config import RevokerKind
from repro.errors import ConfigError

ARTIFACT_VERSION = 1


@dataclass
class ViolationArtifact:
    """A replayable witness of one oracle violation."""

    scenario: str
    revoker: str
    workload_seed: int
    window: int
    #: The (possibly minimized) choice journal that reproduces the bug.
    trace: list[int]
    #: The policy that originally found it, for provenance.
    policy: dict = field(default_factory=dict)
    violations: list[dict] = field(default_factory=list)
    version: int = ARTIFACT_VERSION

    def to_dict(self) -> dict:
        return {
            "version": self.version,
            "scenario": self.scenario,
            "revoker": self.revoker,
            "workload_seed": self.workload_seed,
            "window": self.window,
            "trace": self.trace,
            "policy": self.policy,
            "violations": self.violations,
        }

    def save(self, path: Path | str) -> None:
        Path(path).write_text(
            json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )

    @classmethod
    def load(cls, path: Path | str) -> "ViolationArtifact":
        try:
            data = json.loads(Path(path).read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise ConfigError(f"cannot read violation artifact {path}: {exc}") from exc
        if data.get("version") != ARTIFACT_VERSION:
            raise ConfigError(
                f"artifact {path} has version {data.get('version')!r}, "
                f"this build reads {ARTIFACT_VERSION}"
            )
        return cls(
            scenario=data["scenario"],
            revoker=data["revoker"],
            workload_seed=data["workload_seed"],
            window=data["window"],
            trace=list(data["trace"]),
            policy=dict(data.get("policy", {})),
            violations=list(data.get("violations", [])),
        )


def _replay_run(
    scenario: str,
    revoker: RevokerKind,
    workload_seed: int,
    trace: Sequence[int],
    window: int,
) -> SeedResult:
    explorer = Explorer(
        scenario, revoker=revoker, window=window, workload_seed=workload_seed
    )
    return explorer.run_seed(seed=-1, policy=ReplayPolicy(trace, window))


def minimize_trace(
    trace: Sequence[int],
    violates: Callable[[list[int]], bool],
    max_runs: int = 48,
) -> list[int]:
    """Shrink ``trace`` while ``violates`` keeps firing.

    ``violates`` takes a candidate journal and returns whether replaying
    it still produces any violation. At most ``max_runs`` replays are
    spent; the best trace found within the budget is returned.
    """
    # Shortest violating prefix, by binary search: replay past the end of
    # a prefix degenerates to first-candidate picks, so if violates(t[:k])
    # fires the bug needs only the first k recorded choices.
    lo, hi = 0, len(trace)
    runs = 0
    while lo < hi and runs < max_runs:
        mid = (lo + hi) // 2
        runs += 1
        if violates(list(trace[:mid])):
            hi = mid
        else:
            lo = mid + 1
    best = list(trace[:hi])
    # Greedy pass: try to default individual choices back to 0.
    for i in range(len(best)):
        if runs >= max_runs:
            break
        if best[i] == 0:
            continue
        candidate = best.copy()
        candidate[i] = 0
        runs += 1
        if violates(candidate):
            best = candidate
    return best


def build_artifact(
    result: SeedResult,
    scenario: str,
    revoker: RevokerKind,
    workload_seed: int,
    window: int = 0,
    minimize: bool = True,
    max_runs: int = 48,
) -> ViolationArtifact:
    """Turn a failing :class:`SeedResult` into a saveable artifact,
    minimizing its journal when asked (and when the violation replays —
    a violation that needs wall-clock state the replay cannot reproduce
    is saved with the full journal instead)."""
    if result.ok:
        raise ConfigError("cannot build a violation artifact from a passing run")
    trace = list(result.journal)

    def violates(candidate: list[int]) -> bool:
        replayed = _replay_run(scenario, revoker, workload_seed, candidate, window)
        return not replayed.ok

    if minimize and violates(trace):
        trace = minimize_trace(trace, violates, max_runs=max_runs)
    return ViolationArtifact(
        scenario=scenario,
        revoker=revoker.value,
        workload_seed=workload_seed,
        window=window,
        trace=trace,
        policy=result.policy,
        violations=[v.to_dict() for v in result.violations],
    )


def replay_artifact(artifact: ViolationArtifact | Path | str) -> SeedResult:
    """Re-run an artifact's schedule with the oracle suite attached."""
    if not isinstance(artifact, ViolationArtifact):
        artifact = ViolationArtifact.load(artifact)
    return _replay_run(
        artifact.scenario,
        RevokerKind(artifact.revoker),
        artifact.workload_seed,
        artifact.trace,
        artifact.window,
    )
