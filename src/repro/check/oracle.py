"""Temporal-safety oracles: invariants checked while a simulation runs.

Each oracle is a :class:`repro.machine.scheduler.SchedulerProbe` plus
epoch/quarantine probe hooks; the :class:`OracleSuite` multiplexes one
probe slot across all of them and wires the epoch clock and quarantine
callbacks when bound to a simulation. Violations are collected, never
raised — an exploration run reports every broken invariant of every seed
rather than dying at the first.

The catalogue (docs/CHECKING.md):

- :class:`ClockStwOracle` — per-core clocks are monotone; stop-the-world
  records never overlap; a thread held by a pause never runs again before
  the pause's end (the rendezvous/resume floor invariant).
- :class:`WakeOrderOracle` — sleepers promoted together enter their core's
  run queue in ``wake_floor`` order and run in that order.
- :class:`QuarantineOracle` — no quarantine batch drains before its
  release epoch, and a full revocation pass (begin *and* end transition)
  separates every seal from its release (§2.2.3's 2-or-3 increment rule).
- :class:`RevocationOracle` — when the epoch that revoked a freed
  allocation has closed, no tagged capability to it remains loadable
  anywhere: heap memory, register files, or kernel hoards (§3, §4.4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.kernel.epoch import release_epoch_for
from repro.machine.scheduler import SchedulerProbe

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.alloc.quarantine import SealedBatch
    from repro.core.simulation import Simulation
    from repro.machine.scheduler import CoreSlot, Thread


@dataclass(frozen=True)
class Violation:
    """One broken invariant, at one point of one interleaving."""

    oracle: str
    message: str
    #: Scheduler step count at detection (aligns with the choice journal).
    step: int
    #: Simulation wall clock (max core clock) at detection.
    wall: int

    def __str__(self) -> str:  # pragma: no cover - display only
        return f"[{self.oracle}] step {self.step} @ {self.wall}: {self.message}"

    def to_dict(self) -> dict:
        return {
            "oracle": self.oracle,
            "message": self.message,
            "step": self.step,
            "wall": self.wall,
        }


class Oracle(SchedulerProbe):
    """Base oracle: violation collection plus no-op probe hooks."""

    name = "abstract"

    def __init__(self) -> None:
        self.violations: list[Violation] = []
        self._suite: "OracleSuite | None" = None
        self.sim: "Simulation | None" = None

    def bind(self, sim: "Simulation", suite: "OracleSuite") -> None:
        self.sim = sim
        self._suite = suite

    def report(self, message: str) -> None:
        suite = self._suite
        step = suite.steps if suite is not None else 0
        wall = 0
        if self.sim is not None:
            wall = self.sim.machine.scheduler.current_time()
        self.violations.append(Violation(self.name, message, step, wall))

    # --- Non-scheduler probe points ------------------------------------------

    def on_epoch_transition(self, counter: int) -> None:
        """The epoch counter just moved to ``counter``."""

    def on_quarantine_seal(self, batch: "SealedBatch") -> None:
        """A pending quarantine buffer was sealed."""

    def on_quarantine_release(self, batch: "SealedBatch", counter: int) -> None:
        """``batch`` was popped for release at epoch ``counter`` (its
        regions are about to be unpainted and returned for reuse)."""

    def on_run_end(self) -> None:
        """The simulation finished (final-state checks)."""


class ClockStwOracle(Oracle):
    """Clock monotonicity and the stop-the-world hold/floor discipline."""

    name = "clock-stw"

    def __init__(self) -> None:
        super().__init__()
        self._clocks: dict[int, int] = {}
        self._floors: dict["Thread", int] = {}
        self._last_stw_end: int | None = None
        self._stw_begin: int | None = None

    def on_pick(self, slot: "CoreSlot", thread: "Thread", begin: int) -> None:
        prev = self._clocks.get(slot.index)
        if prev is not None and slot.time < prev:
            self.report(
                f"core {slot.index} clock moved backwards: {prev} -> {slot.time}"
            )
        self._clocks[slot.index] = max(slot.time, begin)
        floor = self._floors.pop(thread, None)
        if floor is not None and begin < floor:
            self.report(
                f"{thread.name} held by a stop-the-world ending at {floor} "
                f"runs again at {begin}, inside the pause"
            )

    def on_stw_begin(self, begin: int, held: "list[Thread]") -> None:
        if self._stw_begin is not None:
            self.report("stop-the-world began inside another stop-the-world")
        if self._last_stw_end is not None and begin < self._last_stw_end:
            self.report(
                f"stop-the-world at {begin} overlaps the previous pause "
                f"ending at {self._last_stw_end}"
            )
        self._stw_begin = begin

    def on_stw_end(self, end: int, released: "list[Thread]") -> None:
        begin = self._stw_begin
        self._stw_begin = None
        if begin is not None and end < begin:
            self.report(f"stop-the-world ends at {end} before it began at {begin}")
        self._last_stw_end = end
        for thread in released:
            if thread.stops_for_stw:
                self._floors[thread] = end
                if thread.wake_floor < end:
                    self.report(
                        f"{thread.name} released from stop-the-world with "
                        f"wake_floor {thread.wake_floor} < pause end {end}"
                    )


class WakeOrderOracle(Oracle):
    """Sleepers promoted together must queue and run in wake order."""

    name = "wake-order"

    def __init__(self) -> None:
        super().__init__()
        #: Per-thread handle into its promotion batch's pending list.
        self._pending: dict["Thread", list["Thread"]] = {}

    def on_promote(self, slot: "CoreSlot", batch: "list[Thread]") -> None:
        floors = [t.wake_floor for t in batch]
        if floors != sorted(floors):
            names = ", ".join(f"{t.name}@{t.wake_floor}" for t in batch)
            self.report(
                f"sleepers promoted onto core {slot.index} out of wake "
                f"order: {names}"
            )
        if len(batch) > 1:
            pending = list(batch)
            for thread in batch:
                self._pending[thread] = pending

    def on_pick(self, slot: "CoreSlot", thread: "Thread", begin: int) -> None:
        pending = self._pending.pop(thread, None)
        if pending is None:
            return
        for other in pending:
            if other is thread:
                break
            if other in self._pending and other.wake_floor < thread.wake_floor:
                self.report(
                    f"{thread.name} (wake {thread.wake_floor}) ran before "
                    f"co-promoted {other.name} (wake {other.wake_floor}) "
                    f"on core {slot.index}"
                )
        pending.remove(thread)

    def on_stw_begin(self, begin: int, held: "list[Thread]") -> None:
        # A stop-the-world re-floors and re-queues held threads in spawn
        # order; batch ordering claims do not survive it.
        for thread in held:
            pending = self._pending.pop(thread, None)
            if pending is not None and thread in pending:
                pending.remove(thread)


class QuarantineOracle(Oracle):
    """The §2.2.3 dequarantine rule, checked against the transition log."""

    name = "quarantine"

    def __init__(self) -> None:
        super().__init__()
        self._transitions: list[int] = []
        #: batch id -> transition-log length at seal time.
        self._sealed_at: dict[int, int] = {}

    def on_epoch_transition(self, counter: int) -> None:
        if self._transitions and counter != self._transitions[-1] + 1:
            self.report(
                f"epoch counter jumped {self._transitions[-1]} -> {counter}"
            )
        self._transitions.append(counter)

    def on_quarantine_seal(self, batch: "SealedBatch") -> None:
        self._sealed_at[id(batch)] = len(self._transitions)

    def on_quarantine_release(self, batch: "SealedBatch", counter: int) -> None:
        release_at = release_epoch_for(batch.observed_epoch)
        if batch.release_at != release_at:
            self.report(
                f"batch observing epoch {batch.observed_epoch} computes "
                f"release {batch.release_at}, rule says {release_at}"
            )
        if counter < release_at:
            self.report(
                f"quarantine batch (observed {batch.observed_epoch}) drained "
                f"at epoch {counter}, before its release epoch {release_at}"
            )
        mark = self._sealed_at.pop(id(batch), None)
        if mark is None:
            return
        since = self._transitions[mark:]
        # A full pass must separate seal from release: some begin
        # transition (odd value) and its matching end both after the seal.
        full_pass = any(
            value % 2 == 1 and value + 1 in since for value in since
        )
        if not full_pass:
            self.report(
                f"no full begin->end revocation pass between seal "
                f"(observed {batch.observed_epoch}) and release at {counter}"
            )


class RevocationOracle(Oracle):
    """No tagged capability to revoked memory survives its epoch."""

    name = "revocation"

    def __init__(self) -> None:
        super().__init__()

    def _scan_for_caps_into(self, regions, where: str) -> None:
        """Report every loadable tagged capability whose base falls in
        ``regions`` (a list of FreedRegion)."""
        sim = self.sim
        if sim is None or not regions:
            return
        memory = sim.machine.memory
        tagged = np.flatnonzero(memory.tags)
        if tagged.size:
            bases = memory.cap_bases[tagged]
            starts = np.array([r.addr for r in regions], dtype=np.int64)
            ends = np.array([r.addr + r.size for r in regions], dtype=np.int64)
            order = np.argsort(starts)
            starts, ends = starts[order], ends[order]
            slot = np.searchsorted(starts, bases, side="right") - 1
            valid = slot >= 0
            hit = np.zeros(bases.shape, dtype=bool)
            hit[valid] = bases[valid] < ends[slot[valid]]
            for granule in tagged[hit]:
                cap = memory.cap_at_granule(int(granule))
                self.report(
                    f"tagged capability base={cap.base:#x} to revoked "
                    f"memory still loadable at granule {int(granule)} ({where})"
                )
        spans = [(r.addr, r.addr + r.size) for r in regions]

        def in_regions(base: int) -> bool:
            return any(lo <= base < hi for lo, hi in spans)

        revoker = sim.kernel.revoker
        if revoker is not None:
            for rf in revoker.register_files:
                for index, cap in rf.live_caps():
                    if in_regions(cap.base):
                        self.report(
                            f"tagged capability base={cap.base:#x} to revoked "
                            f"memory in register {index} ({where})"
                        )
        for subsystem, hoard in sim.kernel.hoards._hoards.items():
            for cap in hoard:
                if cap.tag and in_regions(cap.base):
                    self.report(
                        f"tagged capability base={cap.base:#x} to revoked "
                        f"memory hoarded in {subsystem!r} ({where})"
                    )

    def on_quarantine_release(self, batch: "SealedBatch", counter: int) -> None:
        self._scan_for_caps_into(batch.regions, f"release at epoch {counter}")

    def on_epoch_transition(self, counter: int) -> None:
        if counter % 2 or self.sim is None or self.sim.mrs is None:
            return
        # The pass that just closed must have cleared every capability to
        # batches whose release epoch has now arrived — they are releasable
        # the instant the controller looks.
        for batch in self.sim.mrs.quarantine.sealed:
            if counter >= batch.release_at:
                self._scan_for_caps_into(
                    batch.regions, f"epoch {counter} closed"
                )


@dataclass
class OracleSuite(SchedulerProbe):
    """Fan one scheduler probe slot + the epoch/quarantine callbacks out
    to a set of oracles, counting scheduler steps as the common clock."""

    oracles: list[Oracle] = field(default_factory=list)
    steps: int = 0

    def bind(self, sim: "Simulation") -> None:
        """Install the suite's hooks into ``sim`` (before ``sim.run()``)."""
        sched = sim.machine.scheduler
        sched.probe = self
        sim.kernel.epoch.on_transition = self._on_epoch_transition
        if sim.mrs is not None:
            sim.mrs.quarantine.on_seal = self._on_quarantine_seal
            sim.mrs.quarantine.on_release = self._on_quarantine_release
        for oracle in self.oracles:
            oracle.bind(sim, self)

    @property
    def violations(self) -> list[Violation]:
        out: list[Violation] = []
        for oracle in self.oracles:
            out.extend(oracle.violations)
        out.sort(key=lambda v: v.step)
        return out

    # --- Scheduler probe fan-out ---------------------------------------------

    def on_pick(self, slot, thread, begin) -> None:
        for oracle in self.oracles:
            oracle.on_pick(slot, thread, begin)

    def on_step(self, thread) -> None:
        self.steps += 1
        for oracle in self.oracles:
            oracle.on_step(thread)

    def on_promote(self, slot, batch) -> None:
        for oracle in self.oracles:
            oracle.on_promote(slot, batch)

    def on_stw_begin(self, begin, held) -> None:
        for oracle in self.oracles:
            oracle.on_stw_begin(begin, held)

    def on_stw_end(self, end, released) -> None:
        for oracle in self.oracles:
            oracle.on_stw_end(end, released)

    # --- Epoch/quarantine fan-out ----------------------------------------------

    def _on_epoch_transition(self, counter: int) -> None:
        for oracle in self.oracles:
            oracle.on_epoch_transition(counter)

    def _on_quarantine_seal(self, batch) -> None:
        for oracle in self.oracles:
            oracle.on_quarantine_seal(batch)

    def _on_quarantine_release(self, batch, counter) -> None:
        for oracle in self.oracles:
            oracle.on_quarantine_release(batch, counter)

    def finish(self) -> None:
        for oracle in self.oracles:
            oracle.on_run_end()


def default_oracles() -> list[Oracle]:
    """One fresh instance of every oracle in the catalogue."""
    return [
        ClockStwOracle(),
        WakeOrderOracle(),
        QuarantineOracle(),
        RevocationOracle(),
    ]
