"""SPEC CPU2006 INT surrogates (§5.1).

Eight of the SPEC CPU2006 integer benchmarks compile as pure-capability
CHERI programs; the paper uses them as its batch workloads. We cannot run
SPEC itself, so each benchmark is a :class:`ChurnProfile` whose heap size,
churn volume, object-size mix, pointer density, and compute rate are set
from the paper's own published characterization — primarily table 2 (mean
allocated heap, sum freed, revocation counts) and the qualitative notes
(xalancbmk/omnetpp are pointer-chase-heavy with enormous churn; bzip2 and
sjeng never engage revocation; gobmk and hmmer run under the minimum-
quarantine regime).

All byte quantities are divided by ``scale`` (default 64) to keep the
simulation laptop-sized; the mrs 8 MiB quarantine floor is scaled by the
same factor (exposed via :attr:`ChurnWorkload.quarantine_policy`), so the
policy geometry — which benchmarks are floor-dominated, how many
revocations run — is preserved. EXPERIMENTS.md documents the scaling.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.alloc.quarantine import QuarantinePolicy
from repro.errors import ConfigError
from repro.workloads.churn import ChurnProfile, ChurnWorkload, SizeMix

#: Paper-scale mrs minimum quarantine (§5).
MRS_MIN_QUARANTINE = 8 << 20

#: Default down-scaling of all byte quantities.
DEFAULT_SCALE = 64

MIB = 1 << 20
GIB = 1 << 30


@dataclass(frozen=True)
class SpecSpec:
    """Paper-scale characterization of one benchmark input."""

    benchmark: str
    input: str
    #: Mean allocated heap, bytes (table 2 / fig. 3 annotations).
    heap_bytes: int
    #: Lifetime bytes freed (table 2 "Sum Freed").
    freed_bytes: int
    size_mix: SizeMix
    pointer_slots: int
    cap_stores_per_iter: int
    cap_loads_per_iter: int
    deref_bytes: int
    data_accesses_per_iter: tuple[int, int, int]
    #: Compute per churn iteration at paper scale; controls the churn
    #: *rate* and hence revocations/second (table 2's last column).
    compute_per_iter: int
    #: Scale the object sizes along with the byte quantities (benchmarks
    #: whose allocations are few and huge — libquantum's state vectors,
    #: bzip2's block buffers — would otherwise degenerate to a handful of
    #: objects at aggressive scales).
    scale_objects: bool = False
    #: Allocator-free compute iterations appended after the churn phase
    #: (compute-dominated benchmarks).
    steady_iterations: int = 0


def _mix(*pairs: tuple[int, float]) -> SizeMix:
    return SizeMix(tuple(s for s, _ in pairs), tuple(w for _, w in pairs))


#: Pointer-rich small-node mix (XML DOM / discrete-event graphs).
_POINTER_RICH = _mix((64, 0.25), (192, 0.25), (1024, 0.2), (4096, 0.2), (16384, 0.1))
#: Mid-weight mixed records.
_MIXED = _mix((128, 0.3), (512, 0.3), (4096, 0.3), (32768, 0.1))
#: Small scratch buffers (game trees, DP tables).
_SMALL = _mix((64, 0.4), (256, 0.4), (2048, 0.2))
#: Few large array allocations (libquantum state vectors, bzip2 blocks).
_LARGE = _mix((65536, 0.6), (262144, 0.4))

#: The eight CHERI-compatible SPEC CPU2006 INT benchmarks (§5.1), with
#: per-input specs. Table 2 sources the heap/freed volumes for the rows it
#: reports; the rest are set to match each benchmark's published role in
#: figs. 1-4 (bzip2/sjeng below every revocation trigger, etc.).
_SPECS: dict[tuple[str, str], SpecSpec] = {}


def _register(spec: SpecSpec) -> None:
    _SPECS[(spec.benchmark, spec.input)] = spec


_register(SpecSpec(
    "xalancbmk", "ref",
    heap_bytes=625 * MIB, freed_bytes=int(66.9 * GIB),
    size_mix=_POINTER_RICH, pointer_slots=3,
    cap_stores_per_iter=2, cap_loads_per_iter=4, deref_bytes=64,
    data_accesses_per_iter=(4, 2, 64), compute_per_iter=20_000,
))
_register(SpecSpec(
    "omnetpp", "ref",
    heap_bytes=365 * MIB, freed_bytes=int(73.8 * GIB),
    size_mix=_POINTER_RICH, pointer_slots=3,
    cap_stores_per_iter=3, cap_loads_per_iter=4, deref_bytes=64,
    data_accesses_per_iter=(3, 2, 64), compute_per_iter=15_000,
))
_register(SpecSpec(
    "astar", "lakes",
    heap_bytes=235 * MIB, freed_bytes=int(3.36 * GIB),
    size_mix=_MIXED, pointer_slots=2,
    cap_stores_per_iter=1, cap_loads_per_iter=3, deref_bytes=128,
    data_accesses_per_iter=(6, 3, 128), compute_per_iter=30_000,
))
_register(SpecSpec(
    "astar", "rivers",
    heap_bytes=150 * MIB, freed_bytes=int(2.2 * GIB),
    size_mix=_MIXED, pointer_slots=2,
    cap_stores_per_iter=1, cap_loads_per_iter=3, deref_bytes=128,
    data_accesses_per_iter=(6, 3, 128), compute_per_iter=30_000,
))
_register(SpecSpec(
    "gobmk", "13x13",
    heap_bytes=30 * MIB, freed_bytes=int(0.10 * GIB),
    size_mix=_SMALL, pointer_slots=1,
    cap_stores_per_iter=1, cap_loads_per_iter=2, deref_bytes=64,
    data_accesses_per_iter=(6, 4, 64), compute_per_iter=60_000,
))
_register(SpecSpec(
    "gobmk", "trevord",
    heap_bytes=124 * MIB, freed_bytes=int(0.212 * GIB),
    size_mix=_SMALL, pointer_slots=1,
    cap_stores_per_iter=1, cap_loads_per_iter=2, deref_bytes=64,
    data_accesses_per_iter=(6, 4, 64), compute_per_iter=60_000,
))
_register(SpecSpec(
    "hmmer", "nph3",
    heap_bytes=int(49.3 * MIB), freed_bytes=int(2.06 * GIB),
    size_mix=_MIXED, pointer_slots=1,
    cap_stores_per_iter=1, cap_loads_per_iter=1, deref_bytes=256,
    data_accesses_per_iter=(8, 4, 256), compute_per_iter=25_000,
))
_register(SpecSpec(
    "hmmer", "retro",
    heap_bytes=int(20.4 * MIB), freed_bytes=int(0.579 * GIB),
    size_mix=_MIXED, pointer_slots=1,
    cap_stores_per_iter=1, cap_loads_per_iter=1, deref_bytes=256,
    data_accesses_per_iter=(8, 4, 256), compute_per_iter=25_000,
))
_register(SpecSpec(
    "libquantum", "ref",
    heap_bytes=96 * MIB, freed_bytes=int(2.5 * GIB),
    size_mix=_LARGE, pointer_slots=1,
    cap_stores_per_iter=1, cap_loads_per_iter=1, deref_bytes=1024,
    data_accesses_per_iter=(4, 4, 1024), compute_per_iter=250_000,
    scale_objects=True,
))
# bzip2 and sjeng never accumulate enough quarantine to trigger
# revocation (fig. 1 note); bzip2 churns a little, sjeng essentially
# allocates once.
_register(SpecSpec(
    "bzip2", "chicken",
    heap_bytes=180 * MIB, freed_bytes=int(0.04 * GIB),
    size_mix=_LARGE, pointer_slots=0,
    cap_stores_per_iter=0, cap_loads_per_iter=0, deref_bytes=0,
    data_accesses_per_iter=(6, 6, 1024), compute_per_iter=200_000,
    scale_objects=True, steady_iterations=2500,
))
_register(SpecSpec(
    "bzip2", "liberty",
    heap_bytes=160 * MIB, freed_bytes=int(0.03 * GIB),
    size_mix=_LARGE, pointer_slots=0,
    cap_stores_per_iter=0, cap_loads_per_iter=0, deref_bytes=0,
    data_accesses_per_iter=(6, 6, 1024), compute_per_iter=200_000,
    scale_objects=True, steady_iterations=2200,
))
_register(SpecSpec(
    "sjeng", "ref",
    heap_bytes=172 * MIB, freed_bytes=int(0.005 * GIB),
    size_mix=_LARGE, pointer_slots=0,
    cap_stores_per_iter=0, cap_loads_per_iter=0, deref_bytes=0,
    data_accesses_per_iter=(8, 4, 256), compute_per_iter=150_000,
    scale_objects=True, steady_iterations=3000,
))

#: Benchmarks in fig. 1's order.
BENCHMARKS: tuple[str, ...] = (
    "astar", "bzip2", "gobmk", "hmmer", "libquantum", "omnetpp", "sjeng",
    "xalancbmk",
)

#: The subset that engages revocation (bzip2/sjeng excluded, §5.1).
REVOKING_BENCHMARKS: tuple[str, ...] = (
    "astar", "gobmk", "hmmer", "libquantum", "omnetpp", "xalancbmk",
)

#: Table 2's representative rows, as (benchmark, input).
TABLE2_ROWS: tuple[tuple[str, str], ...] = (
    ("xalancbmk", "ref"),
    ("astar", "lakes"),
    ("omnetpp", "ref"),
    ("hmmer", "nph3"),
    ("hmmer", "retro"),
    ("gobmk", "trevord"),
)


def inputs_of(benchmark: str) -> list[str]:
    """The workload inputs available for ``benchmark``."""
    found = sorted(inp for (b, inp) in _SPECS if b == benchmark)
    if not found:
        raise ConfigError(f"unknown SPEC benchmark {benchmark!r}")
    return found


def scaled_policy(scale: int) -> QuarantinePolicy:
    """The mrs policy with its 8 MiB floor scaled to the workload scale."""
    return QuarantinePolicy(min_bytes=max(4096, MRS_MIN_QUARANTINE // scale))


def workload(
    benchmark: str,
    input: str | None = None,
    scale: int = DEFAULT_SCALE,
    seed: int = 1,
) -> ChurnWorkload:
    """Build the surrogate for one SPEC benchmark input.

    ``scale`` divides every byte quantity (heap, churn volume, quarantine
    floor); operation-level parameters are unscaled.
    """
    if input is None:
        input = inputs_of(benchmark)[0]
    spec = _SPECS.get((benchmark, input))
    if spec is None:
        raise ConfigError(f"unknown SPEC workload {benchmark!r}/{input!r}")
    if scale < 1:
        raise ConfigError(f"scale must be >= 1, got {scale}")
    size_mix = spec.size_mix
    if spec.scale_objects and scale > 16:
        factor = scale // 16
        size_mix = SizeMix(
            tuple(max(4096, size // factor) for size in size_mix.sizes),
            size_mix.weights,
        )
    profile = ChurnProfile(
        name=f"{benchmark}.{input}",
        heap_bytes=max(1 << 16, spec.heap_bytes // scale),
        churn_bytes=max(1 << 14, spec.freed_bytes // scale),
        size_mix=size_mix,
        pointer_slots=spec.pointer_slots,
        cap_stores_per_iter=spec.cap_stores_per_iter,
        cap_loads_per_iter=spec.cap_loads_per_iter,
        deref_bytes=spec.deref_bytes,
        data_accesses_per_iter=spec.data_accesses_per_iter,
        compute_per_iter=spec.compute_per_iter,
        steady_iterations=spec.steady_iterations,
        seed=seed,
    )
    return ChurnWorkload(profile, quarantine_policy=scaled_policy(scale))
